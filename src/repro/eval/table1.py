"""Table I harness: the paper's main numerical experiment.

For each ISCAS-85-class circuit (NOR-mapped) and each stimulus
configuration, R randomized runs are scored: mean t_err of the digital
baseline and the sigmoid simulator against the analog reference, their
ratio, and mean simulation wall times.  A final c1355 same-stimulus row
repeats the comparison with the sigmoid simulator driven by exactly the
digital stimulus (nominal slopes).

Paper scale is 50 runs per cell; the default here is CI-scale and
configurable.  Expected *shape* (not absolute numbers): ratio < 1 at
(20 ps, 10 ps), growing toward ~1 as inter-transition times increase, and
sigmoid wall time far below the analog reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.iscas85 import c17, c499_like, c1355_like
from repro.circuits.netlist import Netlist
from repro.circuits.nor_map import nor_map
from repro.core.models import GateModelBundle
from repro.digital.delay import DelayLibrary
from repro.eval.report import format_table
from repro.eval.runner import ExperimentRunner
from repro.eval.stimuli import PAPER_CONFIGS, StimulusConfig

CIRCUIT_BUILDERS = {
    "c17": c17,
    "c499_like": c499_like,
    "c1355_like": c1355_like,
}


@dataclass
class Table1Config:
    """Harness configuration (defaults are CI-scale)."""

    circuits: tuple[str, ...] = ("c17", "c499_like", "c1355_like")
    stimuli: tuple[StimulusConfig, ...] = PAPER_CONFIGS
    n_runs: int = 3
    seed: int = 0
    include_same_stimulus_row: bool = True
    same_stimulus_circuit: str = "c1355_like"


@dataclass
class Table1Row:
    """One table cell-row: circuit × stimulus configuration."""

    circuit: str
    n_nor_gates: int
    config: StimulusConfig
    error_ratio: float
    t_err_digital_ps: float
    t_err_sigmoid_ps: float
    t_sim_sigmoid_s: float
    t_sim_analog_s: float
    same_stimulus: bool = False
    n_runs: int = 0


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)


def nor_mapped(circuit: str) -> Netlist:
    """Build and NOR-map one of the benchmark circuits."""
    try:
        builder = CIRCUIT_BUILDERS[circuit]
    except KeyError:
        raise KeyError(
            f"unknown circuit {circuit!r}; options: {sorted(CIRCUIT_BUILDERS)}"
        ) from None
    return nor_map(builder())


def run_cell(
    runner: ExperimentRunner,
    config: StimulusConfig,
    n_runs: int,
    seed: int,
    same_stimulus: bool = False,
) -> Table1Row:
    """Average one circuit × stimulus cell over ``n_runs`` random runs."""
    results = [
        runner.run(config, seed=seed + k, same_stimulus=same_stimulus)
        for k in range(n_runs)
    ]
    err_d = float(np.mean([r.t_err_digital for r in results]))
    err_s = float(np.mean([r.t_err_sigmoid for r in results]))
    return Table1Row(
        circuit=runner.core.name,
        n_nor_gates=runner.core.n_gates,
        config=config,
        error_ratio=(err_s / err_d) if err_d > 0 else float("nan"),
        t_err_digital_ps=err_d * 1e12,
        t_err_sigmoid_ps=err_s * 1e12,
        t_sim_sigmoid_s=float(np.mean([r.t_sim_sigmoid for r in results])),
        t_sim_analog_s=float(np.mean([r.t_sim_analog for r in results])),
        same_stimulus=same_stimulus,
        n_runs=n_runs,
    )


def run_table1(
    bundle: GateModelBundle,
    delay_library: DelayLibrary,
    config: Table1Config | None = None,
) -> Table1Result:
    """Run the full Table I grid."""
    if config is None:
        config = Table1Config()
    result = Table1Result()
    runners: dict[str, ExperimentRunner] = {}
    for circuit in config.circuits:
        runner = ExperimentRunner(nor_mapped(circuit), bundle, delay_library)
        runners[circuit] = runner
        for stim in config.stimuli:
            result.rows.append(
                run_cell(runner, stim, config.n_runs, config.seed)
            )
    if (
        config.include_same_stimulus_row
        and config.same_stimulus_circuit in runners
    ):
        runner = runners[config.same_stimulus_circuit]
        result.rows.append(
            run_cell(
                runner,
                config.stimuli[0],
                config.n_runs,
                config.seed,
                same_stimulus=True,
            )
        )
    return result


def format_table1(result: Table1Result) -> str:
    """Render rows in the layout of the paper's Table I."""
    header = [
        "circuit",
        "#NOR-gates",
        "mu,sigma(ps)",
        "error ratio",
        "terr_Digital(ps)",
        "terr_Sigmoid(ps)",
        "tsim_Sigmoid(s)",
        "tsim_Analog(s)",
    ]
    rows = []
    for row in result.rows:
        name = row.circuit.replace("_nor", "")
        if row.same_stimulus:
            name += " (same stimulus)"
        rows.append(
            [
                name,
                str(row.n_nor_gates),
                row.config.label,
                f"{row.error_ratio:.2f}",
                f"{row.t_err_digital_ps:.2f}",
                f"{row.t_err_sigmoid_ps:.2f}",
                f"{row.t_sim_sigmoid_s:.3f}",
                f"{row.t_sim_analog_s:.1f}",
            ]
        )
    return format_table(header, rows)
