"""Table I harness: the paper's main numerical experiment.

For each ISCAS-85-class circuit (NOR-mapped) and each stimulus
configuration, R randomized runs are scored: mean t_err of the digital
baseline and the sigmoid simulator against the analog reference, their
ratio, and mean simulation wall times.  A final c1355 same-stimulus row
repeats the comparison with the sigmoid simulator driven by exactly the
digital stimulus (nominal slopes).

Paper scale is 50 runs per cell; the default here is CI-scale and
configurable.  Expected *shape* (not absolute numbers): ratio < 1 at
(20 ps, 10 ps), growing toward ~1 as inter-transition times increase, and
sigmoid wall time far below the analog reference.

Timing-column semantics: in the default batched mode the
``tsim_Sigmoid(s)`` / ``tsim_Analog(s)`` columns report the batch wall
time divided by the run count — the amortized per-run cost that batching
buys, NOT the paper's isolated per-run measurement.  Use
``Table1Config(batched=False)`` (CLI ``--serial``) when timing columns
must be methodology-comparable to the paper or to serial-mode records;
the ``t_err`` and ratio columns agree between the two modes to
sub-femtosecond precision either way.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field

import numpy as np

from repro.analog.batching import dispatch_jobs
from repro.circuits.iscas85 import (
    c17,
    c499_like,
    c880_like,
    c1355_like,
    c3540_like,
    s27_like,
)
from repro.circuits.netlist import Netlist
from repro.circuits.nor_map import nor_map
from repro.core.models import GateModelBundle
from repro.digital.delay import DelayLibrary
from repro.errors import ModelError
from repro.eval.report import format_table
from repro.eval.runner import ExperimentRunner
from repro.eval.stimuli import PAPER_CONFIGS, StimulusConfig
from repro.options import (
    _UNSET,
    ExecutionOptions,
    execution_aliases,
    normalize_execution,
)

CIRCUIT_BUILDERS = {
    "c17": c17,
    "c499_like": c499_like,
    "c880_like": c880_like,
    "c1355_like": c1355_like,
    "c3540_like": c3540_like,
    # Sequential zoo member (ISCAS-89 class): Table I itself never
    # runs it (the analog reference is combinational), but the fuzz /
    # differential harness resolves benchmark names through this
    # registry and grades it with the clocked sessions.
    "s27_like": s27_like,
}

#: Lock-step run-batch bound shared by `Table1Config` and `run_cell`
#: (single knob: staged-engine table memory grows with the batch size).
DEFAULT_MAX_RUNS_PER_BATCH = 64


@execution_aliases("compiled", "backend", "chunk_size", "target")
@dataclass
class Table1Config:
    """Harness configuration (defaults are CI-scale).

    ``batched`` routes every cell through
    :meth:`~repro.eval.runner.ExperimentRunner.run_batch` (all runs of a
    cell in one lock-step analog batch, one stacked fit, one sigmoid
    pass); ``batched=False`` keeps the serial per-run reference path the
    equivalence tests compare against.  ``max_runs_per_batch`` bounds
    staged-engine memory per lock-step batch, and ``n_workers > 1``
    fans the circuits out over a process pool (mirroring
    ``SweepConfig.n_workers`` — worth it at paper scale, not at CI
    scale where spawn overhead dominates).  ``backend`` names the
    transfer-model backend the sigmoid simulator's bundle must have
    been trained with (``ann``/``lut``/``spline``/``poly``) — the CLI
    and the ablation runner resolve the bundle from it, and
    :func:`run_table1` rejects a bundle trained with a different one.
    ``compiled`` (default on) runs the digital and sigmoid simulators
    on their levelized array cores (:mod:`repro.core.compile`,
    :mod:`repro.digital.compiled`); ``compiled=False`` (CLI
    ``--interpreted``) keeps the per-gate interpreted walks.
    ``chunk_size`` (CLI ``--chunk-size``) streams the digital and
    sigmoid runs through stateful sessions in chunks of that many
    merged stimulus transitions — bounded memory, parity-locked against
    the one-shot path.  ``target`` (CLI ``--target``) selects the
    execution target of the fused sigmoid kernels
    (:mod:`repro.core.targets`).

    The three execution knobs live on one shared
    :class:`~repro.options.ExecutionOptions` (``config.execution``);
    ``backend`` / ``compiled`` / ``chunk_size`` remain accepted as
    constructor kwargs and readable/writable attributes — they alias
    onto ``execution``.
    """

    circuits: tuple[str, ...] = ("c17", "c499_like", "c1355_like")
    stimuli: tuple[StimulusConfig, ...] = PAPER_CONFIGS
    n_runs: int = 3
    seed: int = 0
    include_same_stimulus_row: bool = True
    same_stimulus_circuit: str = "c1355_like"
    batched: bool = True
    max_runs_per_batch: int = DEFAULT_MAX_RUNS_PER_BATCH
    n_workers: int = 1
    execution: ExecutionOptions | None = None
    backend: InitVar = _UNSET
    compiled: InitVar = _UNSET
    chunk_size: InitVar = _UNSET
    target: InitVar = _UNSET

    def __post_init__(self, backend, compiled, chunk_size, target) -> None:
        self.execution = normalize_execution(
            self.execution,
            compiled=compiled,
            backend=backend,
            chunk_size=chunk_size,
            target=target,
        )


@dataclass
class Table1Row:
    """One table cell-row: circuit × stimulus configuration."""

    circuit: str
    n_nor_gates: int
    config: StimulusConfig
    error_ratio: float
    t_err_digital_ps: float
    t_err_sigmoid_ps: float
    t_sim_sigmoid_s: float
    t_sim_analog_s: float
    same_stimulus: bool = False
    n_runs: int = 0


@dataclass
class Table1Result:
    rows: list[Table1Row] = field(default_factory=list)


def nor_mapped(circuit: str) -> Netlist:
    """Build and NOR-map one of the benchmark circuits."""
    try:
        builder = CIRCUIT_BUILDERS[circuit]
    except KeyError:
        raise KeyError(
            f"unknown circuit {circuit!r}; options: {sorted(CIRCUIT_BUILDERS)}"
        ) from None
    return nor_map(builder())


def run_cell(
    runner: ExperimentRunner,
    config: StimulusConfig,
    n_runs: int,
    seed: int,
    same_stimulus: bool = False,
    batched: bool = True,
    max_runs_per_batch: int = DEFAULT_MAX_RUNS_PER_BATCH,
) -> Table1Row:
    """Average one circuit × stimulus cell over ``n_runs`` random runs."""
    seeds = [seed + k for k in range(n_runs)]
    if batched:
        results = runner.run_batch(
            config,
            seeds,
            same_stimulus=same_stimulus,
            max_runs_per_batch=max_runs_per_batch,
        )
    else:
        results = [
            runner.run(config, seed=s, same_stimulus=same_stimulus)
            for s in seeds
        ]
    err_d = float(np.mean([r.t_err_digital for r in results]))
    err_s = float(np.mean([r.t_err_sigmoid for r in results]))
    return Table1Row(
        circuit=runner.core.name,
        n_nor_gates=runner.core.n_gates,
        config=config,
        error_ratio=(err_s / err_d) if err_d > 0 else float("nan"),
        t_err_digital_ps=err_d * 1e12,
        t_err_sigmoid_ps=err_s * 1e12,
        t_sim_sigmoid_s=float(np.mean([r.t_sim_sigmoid for r in results])),
        t_sim_analog_s=float(np.mean([r.t_sim_analog for r in results])),
        same_stimulus=same_stimulus,
        n_runs=n_runs,
    )


def _run_circuit_cells(
    job: tuple[str, GateModelBundle, DelayLibrary, Table1Config],
) -> tuple[list[Table1Row], Table1Row | None]:
    """All grid rows of one circuit (a picklable unit of dispatch)."""
    circuit, bundle, delay_library, config = job
    runner = ExperimentRunner(
        nor_mapped(circuit),
        bundle,
        delay_library,
        compiled=config.compiled,
        chunk_size=config.chunk_size,
        target=config.target,
    )
    rows = [
        run_cell(
            runner,
            stim,
            config.n_runs,
            config.seed,
            batched=config.batched,
            max_runs_per_batch=config.max_runs_per_batch,
        )
        for stim in config.stimuli
    ]
    same_row = None
    if (
        config.include_same_stimulus_row
        and circuit == config.same_stimulus_circuit
    ):
        same_row = run_cell(
            runner,
            config.stimuli[0],
            config.n_runs,
            config.seed,
            same_stimulus=True,
            batched=config.batched,
            max_runs_per_batch=config.max_runs_per_batch,
        )
    return rows, same_row


def run_table1(
    bundle: GateModelBundle,
    delay_library: DelayLibrary,
    config: Table1Config | None = None,
) -> Table1Result:
    """Run the full Table I grid.

    Circuits are independent units of work: with ``config.n_workers > 1``
    they are dispatched across a process pool, one job per circuit, and
    the rows come back in the deterministic serial order.
    """
    if config is None:
        config = Table1Config()
    bundle_backend = bundle.backend
    if bundle_backend != "unknown" and bundle_backend != config.backend:
        raise ModelError(
            f"Table1Config.backend is {config.backend!r} but the bundle "
            f"was trained with the {bundle_backend!r} backend"
        )
    jobs = [
        (circuit, bundle, delay_library, config)
        for circuit in config.circuits
    ]
    outcomes = dispatch_jobs(
        _run_circuit_cells, jobs, n_workers=config.n_workers
    )
    result = Table1Result()
    same_row = None
    for rows, circuit_same_row in outcomes:
        result.rows.extend(rows)
        if circuit_same_row is not None:
            same_row = circuit_same_row
    if same_row is not None:
        result.rows.append(same_row)
    return result


def format_table1(result: Table1Result) -> str:
    """Render rows in the layout of the paper's Table I."""
    header = [
        "circuit",
        "#NOR-gates",
        "mu,sigma(ps)",
        "error ratio",
        "terr_Digital(ps)",
        "terr_Sigmoid(ps)",
        "tsim_Sigmoid(s)",
        "tsim_Analog(s)",
    ]
    rows = []
    for row in result.rows:
        name = row.circuit.replace("_nor", "")
        if row.same_stimulus:
            name += " (same stimulus)"
        rows.append(
            [
                name,
                str(row.n_nor_gates),
                row.config.label,
                f"{row.error_ratio:.2f}",
                f"{row.t_err_digital_ps:.2f}",
                f"{row.t_err_sigmoid_ps:.2f}",
                f"{row.t_sim_sigmoid_s:.3f}",
                f"{row.t_sim_analog_s:.1f}",
            ]
        )
    return format_table(header, rows)
