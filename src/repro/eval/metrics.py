"""The paper's accuracy metric: mismatch time against the analog reference.

"The total amount of time t_err during which the respective prediction and
SPICE did not match were summed among all outputs of a circuit ... the
prediction trace and the SPICE trace are considered to match at time t if
both traces are above (below) the threshold Vdd/2." (Sec. V-B)
"""

from __future__ import annotations

from repro.analog.waveform import Waveform
from repro.constants import VTH
from repro.core.trace import SigmoidalTrace
from repro.digital.trace import DigitalTrace
from repro.errors import SimulationError


def as_digital(trace, threshold: float = VTH) -> DigitalTrace:
    """Normalize any supported trace type to a :class:`DigitalTrace`."""
    if isinstance(trace, DigitalTrace):
        return trace
    if isinstance(trace, SigmoidalTrace):
        return trace.digitize(threshold)
    if isinstance(trace, Waveform):
        return DigitalTrace.from_waveform(trace, threshold)
    raise SimulationError(f"cannot digitize {type(trace).__name__}")


def mismatch_time(
    reference,
    prediction,
    t_start: float,
    t_stop: float,
    threshold: float = VTH,
) -> float:
    """Mismatch time of one signal pair over ``[t_start, t_stop]``."""
    ref = as_digital(reference, threshold)
    pred = as_digital(prediction, threshold)
    return ref.mismatch_time(pred, t_start, t_stop)


def total_mismatch_time(
    references: dict,
    predictions: dict,
    t_start: float,
    t_stop: float,
    threshold: float = VTH,
) -> float:
    """Sum of mismatch times over all outputs (the paper's per-run t_err)."""
    missing = set(references) - set(predictions)
    if missing:
        raise SimulationError(f"predictions missing outputs: {sorted(missing)}")
    total = 0.0
    for name, ref in references.items():
        total += mismatch_time(ref, predictions[name], t_start, t_stop, threshold)
    return total
