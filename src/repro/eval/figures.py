"""Data generators for the paper's figures.

Figures are regenerated as *data series* (plotting is environment
dependent); each function returns a dict of named arrays plus the derived
quantities the figure annotates.  The figure benches print compact
summaries of these series.

* :func:`fig1_data` — Fig. 1: an inverter's analog input/output waveforms
  for a two-transition pulse, their sigmoid fits, and the TOM parameters.
  Uses the fully coupled network engine for maximum fidelity.
* :func:`fig4_data` — Fig. 4: the four-Heaviside-transition stimulus
  (TA, TB, TC) and the pulse-shaped waveform arriving at the first target
  gate of a characterization chain.
* :func:`fig5_data` — Fig. 5: an example output trace of the c1355-class
  circuit comparing the digital prediction, the sigmoid prediction and
  the analog reference (same-stimulus mode, like the paper's last-row
  comparison).
"""

from __future__ import annotations

import numpy as np

from repro.analog.cells import DEFAULT_LIBRARY
from repro.analog.engine import TransientEngine
from repro.analog.netlist import AnalogCircuit
from repro.analog.stimuli import SteppedSource, pulse_train_times
from repro.characterization.chains import ChainSpec, build_chain_netlist, STIM, LOW
from repro.analog.staged import StagedSimulator
from repro.core.fitting import fit_waveform
from repro.core.tom import T_CAP
from repro.eval.runner import ExperimentRunner
from repro.eval.stimuli import StimulusConfig


def fig1_data(
    pulse: tuple[float, float] = (30e-12, 42e-12),
    t_stop: float = 80e-12,
) -> dict:
    """Inverter waveform + fit, with the TOM parameters of Eq. 3 / Fig. 1."""
    lib = DEFAULT_LIBRARY
    circuit = AnalogCircuit()
    circuit.declare_input("src")
    # Two shaping inverters produce a realistic input edge, then the
    # observed inverter drives a fanout-1 load.
    lib.add_inv(circuit, "src", "s0")
    lib.add_inv(circuit, "s0", "vin")
    lib.add_inv(circuit, "vin", "vout")
    lib.add_inv(circuit, "vout", "load")
    for net in ("s0", "vin", "vout", "load"):
        lib.add_wire_load(circuit, net, 1)
    engine = TransientEngine(circuit)
    source = SteppedSource([np.array(pulse)], initial_levels=0)
    result = engine.simulate(
        {"src": source}, t_stop=t_stop, record_nodes=["vin", "vout"]
    )

    wf_in = result.waveform("vin")
    wf_out = result.waveform("vout")
    fit_in = fit_waveform(wf_in)
    fit_out = fit_waveform(wf_out)

    tom_features = None
    if fit_in.n_transitions >= 2 and fit_out.n_transitions >= 2:
        (a_in_0, b_in_0), (a_in_1, b_in_1) = fit_in.trace.params[:2]
        (a_out_0, b_out_0), (a_out_1, b_out_1) = fit_out.trace.params[:2]
        tom_features = {
            "T": min(float(b_in_1 - b_out_0), T_CAP),
            "a_in_n": float(a_in_1),
            "a_out_prev": float(a_out_0),
            "a_out_n": float(a_out_1),
            "delta_b": float(b_out_1 - b_in_1),
        }
    return {
        "t": wf_in.t,
        "vin_analog": wf_in.v,
        "vin_fit": fit_in.trace.value(wf_in.t),
        "vout_analog": wf_out.v,
        "vout_fit": fit_out.trace.value(wf_out.t),
        "fit_in_params": fit_in.trace.params,
        "fit_out_params": fit_out.trace.params,
        "fit_in_rms": fit_in.rms_error,
        "fit_out_rms": fit_out.rms_error,
        "tom": tom_features,
    }


def fig4_data(
    ta: float = 16e-12,
    tb: float = 16e-12,
    tc: float = 16e-12,
    t_stop: float = 140e-12,
) -> dict:
    """Heaviside stimulus and the pulse-shaped input of the first target.

    Default intervals sit above this technology's pulse-death cliff
    (~2x the NOR gate delay) so all four transitions survive shaping, as
    in the paper's figure.
    """
    spec = ChainSpec(pattern=("P0",), n_periods=2, n_shaping=2)
    netlist, probes = build_chain_netlist(spec)
    sim = StagedSimulator(netlist)
    times = pulse_train_times(30e-12, [ta, tb, tc])
    stim = SteppedSource([times], initial_levels=0)
    low = SteppedSource.constant(0, 1)
    first_target_input = probes.stages[0].in_net
    result = sim.simulate(
        {STIM: stim, LOW: low},
        t_stop=t_stop,
        record_nets=[first_target_input],
    )
    wf = result.waveform(first_target_input)
    return {
        "t": wf.t,
        "heaviside": stim.value(wf.t)[:, 0],
        "shaped": wf.v,
        "transition_times": times,
        "intervals": {"TA": ta, "TB": tb, "TC": tc},
    }


def fig5_data(
    runner: ExperimentRunner,
    config: StimulusConfig | None = None,
    seed: int = 0,
    n_samples: int = 2000,
) -> dict:
    """Example output trace comparison (digital vs sigmoid vs analog).

    Picks the primary output with the most reference transitions so the
    figure shows interesting switching activity, mirroring Fig. 5.
    """
    if config is None:
        config = StimulusConfig(20e-12, 10e-12, 20)
    result = runner.run(config, seed=seed, same_stimulus=True, keep_traces=True)
    references = result.po_traces["references"]
    po = max(references, key=lambda name: references[name].n_transitions)

    wf = result.po_traces["analog_waveforms"][po]
    t = np.linspace(0.0, result.t_stop, n_samples)
    digital = result.po_traces["digital"][po]
    sigmoid = result.po_traces["sigmoid"][po]
    return {
        "po": po,
        "t": t,
        "analog": wf.value_at(t),
        "digital": digital.sample(t, v_high=wf.v.max()),
        "sigmoid": sigmoid.value(t),
        "reference_times": references[po].times,
        "digital_times": digital.times,
        "sigmoid_times": [b / 1e10 for b in sigmoid.crossing_times_tau()],
        "t_err_digital": result.t_err_digital,
        "t_err_sigmoid": result.t_err_sigmoid,
        "error_ratio": result.error_ratio,
    }
