"""Randomized evaluation stimuli (Sec. V-B).

The paper stimulates every circuit input with random transition sequences
whose inter-transition times follow a normal distribution (mu_t, sigma_t),
using three configurations: (20 ps, 10 ps) with 20 transitions,
(100 ps, 50 ps) with 10, and (500 ps, 250 ps) with 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analog.stimuli import SteppedSource
from repro.errors import SimulationError

#: Minimum inter-transition gap (generator resolution), seconds.
MIN_GAP = 2e-12

#: Quiet period before the first transition so circuits start settled.
T_FIRST = 30e-12


@dataclass(frozen=True)
class StimulusConfig:
    """One (mu_t, sigma_t, n_transitions) stimulus configuration."""

    mu: float
    sigma: float
    n_transitions: int

    def __post_init__(self) -> None:
        if self.mu <= 0 or self.sigma < 0:
            raise SimulationError("mu must be positive, sigma non-negative")
        if self.n_transitions < 1:
            raise SimulationError("need at least one transition")

    @property
    def label(self) -> str:
        return f"{self.mu * 1e12:.0f},{self.sigma * 1e12:.0f}"


#: The paper's three configurations.
PAPER_CONFIGS = (
    StimulusConfig(20e-12, 10e-12, 20),
    StimulusConfig(100e-12, 50e-12, 10),
    StimulusConfig(500e-12, 250e-12, 5),
)


def random_transition_times(
    config: StimulusConfig, rng: np.random.Generator, t_first: float = T_FIRST
) -> np.ndarray:
    """One input's transition times: cumulative clipped-normal gaps."""
    gaps = rng.normal(config.mu, config.sigma, size=config.n_transitions)
    gaps = np.maximum(gaps, MIN_GAP)
    return t_first + np.cumsum(gaps)


def draw_pi_stimulus(
    config: StimulusConfig,
    rng: np.random.Generator,
    random_initial: bool = True,
) -> tuple[np.ndarray, int]:
    """One PI's ``(transition times, initial level)`` from ``rng``.

    The single authority on the per-PI draw order (times first, then the
    level): :func:`random_pi_sources` and the differential harness's
    digital-reference stimuli both consume it, which is what guarantees
    the two reference modes see the same abstract stimulus per seed.
    """
    times = random_transition_times(config, rng)
    level = int(rng.integers(0, 2)) if random_initial else 0
    return times, level


def random_pi_sources(
    primary_inputs: list[str],
    config: StimulusConfig,
    seed: int,
    random_initial: bool = True,
) -> tuple[dict[str, SteppedSource], float]:
    """Per-PI single-run sources plus the latest transition time.

    Each primary input gets its own sequence (and optionally a random
    initial level) from a deterministic per-seed stream.
    """
    rng = np.random.default_rng(seed)
    sources: dict[str, SteppedSource] = {}
    t_last = 0.0
    for pi in primary_inputs:
        times, level = draw_pi_stimulus(config, rng, random_initial)
        sources[pi] = SteppedSource([times], initial_levels=level)
        t_last = max(t_last, float(times[-1]))
    return sources, t_last
