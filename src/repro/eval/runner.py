"""One evaluation experiment: circuit × stimulus × three simulators.

Flow (matching Sec. V-B):

1. random Heaviside trains stimulate the circuit's primary inputs,
2. the **analog reference** runs on the netlist augmented with
   pulse-shaping inverters at every input and termination inverters at
   every output (like the paper's SPICE setup) — the shaped PI waveforms
   and the PO waveforms are recorded,
3. the **digital simulator** is driven by the digitized PI waveforms
   (per-instance fixed arc delays),
4. the **sigmoid simulator** is driven by sigmoid fits of the same PI
   waveforms — or, in *same-stimulus* mode (Table I last row), by
   nominal-slope conversions of exactly the digital stimuli,
5. every simulator's PO traces are digitized and scored with ``t_err``
   against the analog reference, and wall-clock times are recorded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analog.batching import merge_run_sources, shard_slices
from repro.analog.cells import CellLibrary, DEFAULT_LIBRARY
from repro.analog.staged import StagedSimulator
from repro.analog.waveform import Waveform
from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.core.fitting import fit_waveform, fit_waveforms
from repro.core.models import GateModelBundle
from repro.core.simulator import SigmoidCircuitSimulator
from repro.core.trace import SigmoidalTrace
from repro.digital.characterize import build_instance_delays
from repro.digital.delay import DelayLibrary
from repro.digital.simulator import DigitalSimulator
from repro.digital.trace import DigitalTrace
from repro.eval.metrics import total_mismatch_time
from repro.eval.stimuli import StimulusConfig, random_pi_sources

#: Propagation allowance per logic level when sizing the simulation span.
_LEVEL_DELAY_ALLOWANCE = 10e-12


def simulation_span(t_last: float, depth: int) -> float:
    """Simulation span for a run whose last stimulus edge is ``t_last``.

    The single authority on span sizing: the serial and batched
    evaluation paths *and* the differential harness's digital-reference
    mode all use it, so settled-value checks and golden snapshots can
    never drift apart on ``t_stop``.
    """
    return t_last + depth * _LEVEL_DELAY_ALLOWANCE + 60e-12


def augment_with_shaping(core: Netlist) -> Netlist:
    """Add pulse-shaping inverter pairs at PIs and termination at POs.

    The returned netlist drives each original PI net from a new source
    input ``<pi>__src`` through two inverters (non-inverting overall), and
    loads each PO with a two-inverter termination chain, mirroring the
    paper's SPICE circuit augmentation.
    """
    aug = Netlist(f"{core.name}_aug")
    for pi in core.primary_inputs:
        aug.add_input(f"{pi}__src")
        aug.add_gate(f"{pi}__s0", GateType.NOR, [f"{pi}__src", f"{pi}__src"])
        aug.add_gate(pi, GateType.NOR, [f"{pi}__s0", f"{pi}__s0"])
    for name in core.topological_order():
        gate = core.gates[name]
        aug.add_gate(name, gate.gtype, list(gate.inputs))
    for po in core.primary_outputs:
        aug.add_gate(f"{po}__t0", GateType.NOR, [po, po])
        aug.add_gate(f"{po}__t1", GateType.NOR, [f"{po}__t0", f"{po}__t0"])
        aug.add_output(po)
    aug.validate()
    return aug


def _po_traces_payload(
    analog_waveforms: dict,
    digital: dict,
    sigmoid: dict,
    references: dict,
    pi_digital: dict,
) -> dict:
    """The ``keep_traces`` payload, with one key set for both run paths.

    The differential-verification harness consumes these by key on the
    serial and the batched path alike; building the dict here keeps the
    two from drifting apart.
    """
    return {
        "analog_waveforms": analog_waveforms,
        "digital": digital,
        "sigmoid": sigmoid,
        "references": references,
        "pi_digital": pi_digital,
    }


@dataclass
class ExperimentResult:
    """Scores and timings of one run."""

    circuit: str
    config: StimulusConfig
    seed: int
    t_stop: float
    t_err_digital: float
    t_err_sigmoid: float
    t_sim_analog: float
    t_sim_digital: float
    t_sim_sigmoid: float
    t_fit_inputs: float
    po_traces: dict = field(default_factory=dict, repr=False)

    @property
    def error_ratio(self) -> float:
        if self.t_err_digital == 0.0:
            return float("inf") if self.t_err_sigmoid > 0 else 1.0
        return self.t_err_sigmoid / self.t_err_digital


class ExperimentRunner:
    """Reusable harness bound to one core netlist and trained models.

    ``compiled`` selects the levelized array cores for the digital and
    sigmoid simulators (the default); ``compiled=False`` keeps the
    interpreted per-gate walks as the equivalence-testing reference.

    ``service`` targets a running
    :class:`~repro.serve.PredictionService`: the sigmoid predictions of
    every run are submitted as service requests (one per run, gathered
    as futures — the service coalesces them back into one lock-step
    batch) instead of executing on the runner's local simulator.  The
    digital baseline and the analog reference always run locally: they
    are the comparison references the served predictions are scored
    against.  The service's bundle is authoritative in that mode.
    """

    def __init__(
        self,
        core: Netlist,
        bundle: GateModelBundle,
        delay_library: DelayLibrary,
        library: CellLibrary = DEFAULT_LIBRARY,
        compiled: bool = True,
        chunk_size: int | None = None,
        service=None,
        target: str | None = None,
    ) -> None:
        core.validate()
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.core = core
        self.bundle = bundle
        self.library = library
        self.compiled = compiled
        self.service = service
        #: Execution target for the fused sigmoid kernels
        #: (:mod:`repro.core.targets`); ``None`` = numpy.
        self.target = target
        #: Streamed digital/sigmoid execution: stimuli are fed through
        #: stateful sessions in ~``chunk_size``-transition chunks
        #: (bounded memory, parity-locked against one-shot); ``None``
        #: keeps the single-feed wrappers.
        self.chunk_size = chunk_size
        self.augmented = augment_with_shaping(core)
        self.analog = StagedSimulator(self.augmented, library=library)
        self.digital = DigitalSimulator(
            core,
            build_instance_delays(core, delay_library, library),
            compiled=compiled,
        )
        self.sigmoid = SigmoidCircuitSimulator(
            core, bundle, compiled=compiled, target=target
        )
        self._depth = core.depth()

    def _t_stop_for(self, t_last: float) -> float:
        """Simulation span for this circuit (see :func:`simulation_span`)."""
        return simulation_span(t_last, self._depth)

    # ------------------------------------------------------------------
    def _digital_batch(
        self,
        pi_digital_runs: "list[dict[str, DigitalTrace]]",
        t_stops: "list[float]",
    ) -> "list[dict[str, DigitalTrace]]":
        if self.chunk_size is None:
            return self.digital.simulate_batch(pi_digital_runs, t_stops)
        from repro.digital.session import stream_digital_batch

        return stream_digital_batch(
            self.digital, pi_digital_runs, t_stops, self.chunk_size
        )

    def _sigmoid_batch(
        self,
        pi_sigmoid_runs: "list[dict[str, SigmoidalTrace]]",
        record_nets: "list[str]",
    ) -> "list[dict[str, SigmoidalTrace]]":
        if self.service is not None:
            from repro.options import ExecutionOptions

            execution = ExecutionOptions(
                compiled=self.compiled,
                backend=self.service.bundle.backend,
                chunk_size=self.chunk_size,
                target=self.target if self.target is not None else "numpy",
            )
            futures = [
                self.service.submit(
                    self.core,
                    runs,
                    kind="sigmoid",
                    record_nets=record_nets,
                    execution=execution,
                )
                for runs in pi_sigmoid_runs
            ]
            return [future.result() for future in futures]
        if self.chunk_size is None:
            return self.sigmoid.simulate_batch(
                pi_sigmoid_runs, record_nets=record_nets
            )
        from repro.core.session import stream_sigmoid_batch

        return stream_sigmoid_batch(
            self.sigmoid,
            pi_sigmoid_runs,
            self.chunk_size,
            record_nets=record_nets,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        config: StimulusConfig,
        seed: int,
        same_stimulus: bool = False,
        keep_traces: bool = False,
    ) -> ExperimentResult:
        """Execute one randomized run and score it."""
        pis = self.core.primary_inputs
        pos = self.core.primary_outputs
        sources, t_last = random_pi_sources(pis, config, seed)
        t_stop = self._t_stop_for(t_last)

        # --- analog reference -----------------------------------------
        aug_sources = {f"{pi}__src": sources[pi] for pi in pis}
        t0 = time.perf_counter()
        analog = self.analog.simulate(
            aug_sources, t_stop=t_stop, record_nets=pis + pos
        )
        t_sim_analog = time.perf_counter() - t0

        pi_waveforms = {pi: analog.waveform(pi) for pi in pis}
        po_references = {
            po: DigitalTrace.from_waveform(analog.waveform(po)) for po in pos
        }

        # --- digital stimulus + simulation ------------------------------
        pi_digital = {
            pi: DigitalTrace.from_waveform(wf) for pi, wf in pi_waveforms.items()
        }
        t0 = time.perf_counter()
        digital_all = self._digital_batch([pi_digital], [t_stop])[0]
        po_digital = {po: digital_all[po] for po in pos}
        t_sim_digital = time.perf_counter() - t0

        # --- sigmoid stimulus + simulation -------------------------------
        t0 = time.perf_counter()
        if same_stimulus:
            pi_sigmoid = {
                pi: SigmoidalTrace.from_digital(trace)
                for pi, trace in pi_digital.items()
            }
        else:
            pi_sigmoid = {
                pi: fit_waveform(wf).trace for pi, wf in pi_waveforms.items()
            }
        t_fit_inputs = time.perf_counter() - t0
        t0 = time.perf_counter()
        po_sigmoid = self._sigmoid_batch([pi_sigmoid], pos)[0]
        t_sim_sigmoid = time.perf_counter() - t0

        # --- scoring -----------------------------------------------------
        t_err_digital = total_mismatch_time(po_references, po_digital, 0.0, t_stop)
        t_err_sigmoid = total_mismatch_time(po_references, po_sigmoid, 0.0, t_stop)

        result = ExperimentResult(
            circuit=self.core.name,
            config=config,
            seed=seed,
            t_stop=t_stop,
            t_err_digital=t_err_digital,
            t_err_sigmoid=t_err_sigmoid,
            t_sim_analog=t_sim_analog,
            t_sim_digital=t_sim_digital,
            t_sim_sigmoid=t_sim_sigmoid,
            t_fit_inputs=t_fit_inputs,
        )
        if keep_traces:
            result.po_traces = _po_traces_payload(
                {po: analog.waveform(po) for po in pos},
                po_digital,
                po_sigmoid,
                po_references,
                pi_digital,
            )
        return result

    # ------------------------------------------------------------------
    def run_batch(
        self,
        config: StimulusConfig,
        seeds: "list[int]",
        same_stimulus: bool = False,
        max_runs_per_batch: int = 64,
        keep_traces: bool = False,
    ) -> "list[ExperimentResult]":
        """Execute many randomized runs of one cell in lock-step.

        The batched counterpart of :meth:`run`: every run draws exactly
        the stimuli its serial twin would draw (one
        :func:`random_pi_sources` stream per seed), but all runs of a
        shard go through the analog reference as ONE merged lock-step
        batch, all PI waveforms are fitted through one
        :func:`fit_waveforms` call, and the sigmoid simulator covers the
        shard in a single topological pass.  ``max_runs_per_batch``
        bounds staged-engine table memory exactly like
        ``SweepConfig.max_runs_per_shard`` does for characterization.

        Scores match :meth:`run` to sub-femtosecond precision: each
        run's waveforms are integrated on the shared shard grid (whose
        per-run prefix matches the serial grid) and cross-run coupling
        enters only through the staged engine's quiescence chunk
        skipping, which is bounded below the engine's EPS_V tolerance.
        Per-run wall-clock fields report the batch time divided by the
        shard size — the amortized cost that makes batching worthwhile.
        """
        results: list[ExperimentResult] = []
        for shard in shard_slices(len(seeds), max_runs_per_batch):
            results.extend(
                self._run_shard(
                    config, seeds[shard], same_stimulus, keep_traces
                )
            )
        return results

    def _run_shard(
        self,
        config: StimulusConfig,
        seeds: "list[int]",
        same_stimulus: bool,
        keep_traces: bool = False,
    ) -> "list[ExperimentResult]":
        pis = self.core.primary_inputs
        pos = self.core.primary_outputs
        n_runs = len(seeds)

        per_run_sources = []
        t_stops = []
        for seed in seeds:
            sources, t_last = random_pi_sources(pis, config, seed)
            per_run_sources.append(
                {f"{pi}__src": sources[pi] for pi in pis}
            )
            t_stops.append(self._t_stop_for(t_last))

        # --- analog reference: one merged lock-step batch --------------
        merged = merge_run_sources(per_run_sources)
        t0 = time.perf_counter()
        analog = self.analog.simulate(
            merged, t_stop=max(t_stops), record_nets=pis + pos
        )
        t_sim_analog = (time.perf_counter() - t0) / n_runs

        # Each run is scored on its own serial time span: the shared
        # shard grid is simply the longest run's grid, so truncating to
        # the per-run sample count recovers the serial waveform.
        def run_waveform(net: str, run: int) -> Waveform:
            n_samples = int(np.ceil(t_stops[run] / self.analog.dt)) + 1
            return Waveform(
                analog.t[:n_samples],
                analog.samples(net)[run, :n_samples].astype(float),
            )

        pi_waveforms = [
            {pi: run_waveform(pi, run) for pi in pis} for run in range(n_runs)
        ]
        po_references = [
            {
                po: DigitalTrace.from_waveform(run_waveform(po, run))
                for po in pos
            }
            for run in range(n_runs)
        ]

        # --- digital stimulus + simulation (one lock-step batch) --------
        pi_digital = [
            {pi: DigitalTrace.from_waveform(wf) for pi, wf in waveforms.items()}
            for waveforms in pi_waveforms
        ]
        t0 = time.perf_counter()
        digital_all = self._digital_batch(pi_digital, t_stops)
        t_sim_digital = (time.perf_counter() - t0) / n_runs
        po_digital = [
            {po: traces[po] for po in pos} for traces in digital_all
        ]

        # --- sigmoid stimulus (one stacked fit) + simulation -------------
        t0 = time.perf_counter()
        if same_stimulus:
            pi_sigmoid = [
                {
                    pi: SigmoidalTrace.from_digital(trace)
                    for pi, trace in traces.items()
                }
                for traces in pi_digital
            ]
        else:
            fits = fit_waveforms(
                [pi_waveforms[run][pi] for run in range(n_runs) for pi in pis]
            )
            pi_sigmoid = [
                {
                    pi: fits[run * len(pis) + k].trace
                    for k, pi in enumerate(pis)
                }
                for run in range(n_runs)
            ]
        t_fit_inputs = (time.perf_counter() - t0) / n_runs
        t0 = time.perf_counter()
        po_sigmoid = self._sigmoid_batch(pi_sigmoid, pos)
        t_sim_sigmoid = (time.perf_counter() - t0) / n_runs

        # --- scoring -----------------------------------------------------
        results = []
        for run, seed in enumerate(seeds):
            result = ExperimentResult(
                circuit=self.core.name,
                config=config,
                seed=seed,
                t_stop=t_stops[run],
                t_err_digital=total_mismatch_time(
                    po_references[run], po_digital[run], 0.0, t_stops[run]
                ),
                t_err_sigmoid=total_mismatch_time(
                    po_references[run], po_sigmoid[run], 0.0, t_stops[run]
                ),
                t_sim_analog=t_sim_analog,
                t_sim_digital=t_sim_digital,
                t_sim_sigmoid=t_sim_sigmoid,
                t_fit_inputs=t_fit_inputs,
            )
            if keep_traces:
                result.po_traces = _po_traces_payload(
                    {po: run_waveform(po, run) for po in pos},
                    po_digital[run],
                    po_sigmoid[run],
                    po_references[run],
                    pi_digital[run],
                )
            results.append(result)
        return results
