"""Backend-ablation runner: one Table I per transfer-model backend.

The paper generated "interpolation polynomials, splines, and
look-up-tables for comparison purposes" (Sec. IV-A); this module runs
the full Table-I harness once per registered backend so the comparison
covers the complete circuit-level metric, not just held-out MAE.  The
trained bundles come from the per-backend artifact cache
(:func:`~repro.characterization.artifacts.default_bundle`), so an
ablation run trains at most the missing backends and reuses everything
else.

``python -m repro.cli ablate`` is the command-line entry;
``benchmarks/test_bench_ablations.py`` records a CI-scale run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.characterization.artifacts import default_bundle
from repro.digital.delay import DelayLibrary
from repro.eval.table1 import Table1Config, Table1Result, format_table1, run_table1

#: The paper's families: the ANN prototype plus its three table rivals.
DEFAULT_ABLATION_BACKENDS: tuple[str, ...] = ("ann", "lut", "spline", "poly")


@dataclass
class AblationConfig:
    """One backend-ablation sweep over the Table-I grid."""

    backends: tuple[str, ...] = DEFAULT_ABLATION_BACKENDS
    scale: str = "tiny"
    table: Table1Config = field(
        default_factory=lambda: Table1Config(
            circuits=("c17",), n_runs=1, include_same_stimulus_row=False
        )
    )


def run_backend_ablation(
    delay_library: DelayLibrary,
    config: AblationConfig | None = None,
    verbose: bool = False,
) -> dict[str, Table1Result]:
    """Run the Table-I grid once per backend.

    Returns ``{backend: Table1Result}`` in the configured backend order.
    Bundles are resolved through the per-backend artifact cache and the
    table harness runs identically for every backend — only the
    transfer models differ.
    """
    if config is None:
        config = AblationConfig()
    results: dict[str, Table1Result] = {}
    for backend in config.backends:
        bundle = default_bundle(
            scale=config.scale, backend=backend, verbose=verbose
        )
        table_config = replace(config.table, backend=backend)
        results[backend] = run_table1(bundle, delay_library, table_config)
    return results


def format_ablation(results: dict[str, Table1Result]) -> str:
    """Render one Table I per backend, labelled."""
    blocks = []
    for backend, result in results.items():
        blocks.append(f"=== backend: {backend} ===")
        blocks.append(format_table1(result))
    return "\n".join(blocks)
