"""Experiment harness reproducing the paper's evaluation (Sec. V).

* :mod:`~repro.eval.stimuli` — randomized transition sequences with
  normal inter-transition times (Sec. V-B),
* :mod:`~repro.eval.metrics` — the ``t_err`` mismatch-time metric,
* :mod:`~repro.eval.runner` — one experiment: circuit × stimuli ×
  {analog reference, digital simulator, sigmoid simulator},
* :mod:`~repro.eval.table1` — the Table I harness,
* :mod:`~repro.eval.ablation` — Table I once per transfer-model backend,
* :mod:`~repro.eval.figures` — data series for Figs. 1, 4 and 5,
* :mod:`~repro.eval.report` — plain-text table rendering.
"""

from repro.eval.stimuli import StimulusConfig, random_pi_sources
from repro.eval.metrics import total_mismatch_time
from repro.eval.runner import ExperimentResult, ExperimentRunner
from repro.eval.table1 import Table1Config, Table1Row, format_table1, run_table1
from repro.eval.ablation import (
    AblationConfig,
    format_ablation,
    run_backend_ablation,
)

__all__ = [
    "AblationConfig",
    "run_backend_ablation",
    "format_ablation",
    "StimulusConfig",
    "random_pi_sources",
    "total_mismatch_time",
    "ExperimentRunner",
    "ExperimentResult",
    "Table1Config",
    "Table1Row",
    "run_table1",
    "format_table1",
]
