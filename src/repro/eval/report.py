"""Plain-text table rendering for experiment reports."""

from __future__ import annotations


def format_table(header: list[str], rows: list[list[str]]) -> str:
    """Fixed-width table with a separator line, ready for terminals/logs."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()
    out = [line(header), line(["-" * w for w in widths])]
    out += [line(row) for row in rows]
    return "\n".join(out)
