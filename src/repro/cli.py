"""Command-line entry points.

``python -m repro.cli table1 [--circuits c17] [--runs 3] [--scale fast]``
    Run the Table I harness and print the rendered table.  Runs go
    through the batched lock-step pipeline by default; ``--serial``
    selects the per-run reference path and ``--workers N`` dispatches
    circuits across a process pool.

``python -m repro.cli characterize [--scale fast]``
    Build (or rebuild) the trained model artifacts.

``python -m repro.cli info``
    Show circuit statistics for the shipped benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.characterization.artifacts import artifacts_dir, default_bundle
from repro.digital.characterize import characterize_delay_library
from repro.digital.delay import DelayLibrary
from repro.eval.stimuli import PAPER_CONFIGS
from repro.eval.table1 import (
    CIRCUIT_BUILDERS,
    Table1Config,
    format_table1,
    nor_mapped,
    run_table1,
)


def _load_delay_library() -> DelayLibrary:
    path = artifacts_dir() / "delay_library.json"
    if path.exists():
        return DelayLibrary.from_dict(json.loads(path.read_text()))
    library = characterize_delay_library()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(library.to_dict()))
    return library


def cmd_table1(args: argparse.Namespace) -> int:
    bundle = default_bundle(scale=args.scale, verbose=True)
    delay_library = _load_delay_library()
    config = Table1Config(
        circuits=tuple(args.circuits),
        n_runs=args.runs,
        seed=args.seed,
        include_same_stimulus_row=not args.no_same_stimulus,
        batched=not args.serial,
        n_workers=args.workers,
    )
    result = run_table1(bundle, delay_library, config)
    print(format_table1(result))
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    default_bundle(scale=args.scale, force=args.force, verbose=True)
    _load_delay_library()
    print(f"artifacts ready under {artifacts_dir()}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    for name in CIRCUIT_BUILDERS:
        core = nor_mapped(name)
        print(
            f"{name}: {len(core.primary_inputs)} PIs, "
            f"{core.n_gates} NOR gates, "
            f"{len(core.primary_outputs)} POs, depth {core.depth()}"
        )
    print("stimulus configs:", ", ".join(c.label for c in PAPER_CONFIGS))
    return 0


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}"
        )
    return number


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_table = sub.add_parser("table1", help="run the Table I harness")
    p_table.add_argument("--circuits", nargs="+",
                         default=list(CIRCUIT_BUILDERS),
                         choices=list(CIRCUIT_BUILDERS))
    p_table.add_argument("--runs", type=int, default=3)
    p_table.add_argument("--seed", type=int, default=0)
    p_table.add_argument("--scale", default="fast",
                         choices=("tiny", "fast", "standard", "paper"))
    p_table.add_argument("--no-same-stimulus", action="store_true")
    p_table.add_argument(
        "--serial", action="store_true",
        help="per-run reference path instead of the batched pipeline",
    )
    p_table.add_argument(
        "--workers", type=_positive_int, default=1,
        help="process pool size for dispatching circuits (1 = in-process)",
    )
    p_table.set_defaults(func=cmd_table1)

    p_char = sub.add_parser("characterize", help="build model artifacts")
    p_char.add_argument("--scale", default="fast",
                        choices=("tiny", "fast", "standard", "paper"))
    p_char.add_argument("--force", action="store_true")
    p_char.set_defaults(func=cmd_characterize)

    p_info = sub.add_parser("info", help="benchmark circuit statistics")
    p_info.set_defaults(func=cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
