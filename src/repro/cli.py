"""Command-line entry points.

``python -m repro.cli table1 [--circuits c17] [--runs 3] [--scale fast]
[--backend ann]``
    Run the Table I harness and print the rendered table.  Runs go
    through the batched lock-step pipeline by default; ``--serial``
    selects the per-run reference path, ``--workers N`` dispatches
    circuits across a process pool, ``--backend`` picks the
    transfer-model backend (``ann`` — the paper's networks — or the
    ``lut``/``spline``/``poly`` table alternatives of Sec. IV-A), and
    ``--interpreted`` swaps the compiled levelized simulator cores for
    the per-gate interpreted reference walks, and ``--chunk-size N``
    streams the digital and sigmoid runs through stateful sessions in
    N-transition chunks (bounded memory, identical results).
    ``--target`` (also on ``fuzz`` and ``serve-bench``) selects the
    execution target of the fused sigmoid kernels — ``numpy`` always,
    ``numba`` when that optional dependency is installed.

``python -m repro.cli ablate [--scale tiny] [--backends ann lut ...]``
    Run the backend-ablation harness: one Table I per backend.

``python -m repro.cli characterize [--scale fast] [--backend ann]
[--force]``
    Build (or, with ``--force``, rebuild) the trained model artifacts
    and the scale-keyed digital delay library.

``python -m repro.cli fuzz [--seed 0] [--count 25] [--scale tiny]
[--update-golden] [--report fuzz_report.json]``
    Differential verification: drive a seeded corpus of random circuits
    (plus optional named benchmarks) through the analog reference, the
    digital simulator and the sigmoid simulator, check cross-simulator
    invariants, shrink failures to minimal counterexamples, and
    compare/record golden snapshots under ``artifacts/golden/``.
    Exits non-zero when any invariant is violated.

``python -m repro.cli faults [--circuit c880_like] [--faults 32]
[--vectors 8] [--report campaign.json]``
    Fault-simulation campaign: sample a stuck-at fault universe on the
    NOR-mapped benchmark, grade a random launch/capture vector set in
    one lock-step pass (good machine + every faulty variant as extra
    run lanes), print the coverage summary, and exit non-zero when the
    digital and sigmoid engines disagree on any detection verdict
    (disagreements are shrunk to minimal circuits first).  A circuit
    with flip-flops (``--circuit s27_like``) runs the sequential
    campaign instead: ``--cycles`` clock cycles per machine through the
    clocked sessions, detection graded at every capture strobe, the
    compiled and event-driven digital cores cross-checked on every
    grading.  Invalid knob combinations (negative ``--t-launch``,
    non-finite strobes, ``--vectors 0``) are usage errors: exit 2.

``python -m repro.cli serve-bench [--clients 16] [--requests 6]
[--scale fast] [--window 0.005] [--max-batch 32]``
    Load-test the :class:`repro.serve.PredictionService`: a fleet of
    closed-loop clients drives the same request schedule against a
    naive (``max_batch=1``) and a coalescing service, every coalesced
    response is parity-checked against a serial reference, and the
    p50/p99 latencies, circuits-per-second and their ratio are appended
    to ``BENCH_serve.json``.

``python -m repro.cli info``
    Show circuit statistics for the shipped benchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.characterization.artifacts import (
    artifacts_dir,
    default_bundle,
    default_delay_library,
)
from repro.core.backends import available_backends
from repro.eval.ablation import (
    AblationConfig,
    format_ablation,
    run_backend_ablation,
)
from repro.eval.stimuli import PAPER_CONFIGS
from repro.eval.table1 import (
    CIRCUIT_BUILDERS,
    Table1Config,
    format_table1,
    nor_mapped,
    run_table1,
)
from repro.verify.fuzz import FUZZ_PRESETS, FuzzConfig, run_fuzz

SCALES = ("tiny", "fast", "standard", "paper")


def cmd_table1(args: argparse.Namespace) -> int:
    bundle = default_bundle(
        scale=args.scale, backend=args.backend, verbose=True
    )
    delay_library = default_delay_library(scale=args.scale)
    config = Table1Config(
        circuits=tuple(args.circuits),
        n_runs=args.runs,
        seed=args.seed,
        include_same_stimulus_row=not args.no_same_stimulus,
        batched=not args.serial,
        n_workers=args.workers,
        backend=args.backend,
        compiled=not args.interpreted,
        chunk_size=args.chunk_size,
        target=args.target,
    )
    result = run_table1(bundle, delay_library, config)
    if args.backend != "ann":
        print(f"[backend: {args.backend}]")
    print(format_table1(result))
    return 0


def cmd_ablate(args: argparse.Namespace) -> int:
    delay_library = default_delay_library(scale=args.scale)
    config = AblationConfig(
        backends=tuple(args.backends),
        scale=args.scale,
        table=Table1Config(
            circuits=tuple(args.circuits),
            n_runs=args.runs,
            seed=args.seed,
            include_same_stimulus_row=False,
        ),
    )
    results = run_backend_ablation(delay_library, config, verbose=True)
    print(format_ablation(results))
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    default_bundle(
        scale=args.scale,
        backend=args.backend,
        force=args.force,
        verbose=True,
    )
    default_delay_library(scale=args.scale, force=args.force)
    print(f"artifacts ready under {artifacts_dir()}")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    artifact_scale = FUZZ_PRESETS[args.scale].artifact_scale
    bundle = default_bundle(
        scale=artifact_scale, backend=args.backend, verbose=not args.quiet
    )
    delay_library = default_delay_library(scale=artifact_scale)
    config = FuzzConfig(
        count=args.count,
        seed=args.seed,
        scale=args.scale,
        backend=args.backend,
        reference=args.reference,
        benchmarks=tuple(args.benchmarks),
        shrink=not args.no_shrink,
        golden=(
            "update" if args.update_golden
            else "off" if args.no_golden
            else "check"
        ),
        compiled=not args.interpreted,
        chunk_size=args.chunk_size,
        target=args.target,
    )
    result = run_fuzz(
        config, bundle, delay_library, verbose=not args.quiet
    )
    print(result.summary())
    if args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result.to_dict(), indent=1))
        print(f"report written to {path}")
    if args.update_golden:
        print(f"golden snapshots updated under {artifacts_dir() / 'golden'}")
    return 0 if result.ok else 1


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.errors import SimulationError
    from repro.faults import CampaignConfig

    try:
        # Eager config validation (CampaignConfig.__post_init__): a bad
        # knob combination is a *usage* error — report it like argparse
        # would (message + exit 2), not as a mid-campaign traceback.
        kwargs = {}
        if args.t_launch is not None:
            kwargs["t_launch"] = args.t_launch
        if args.t_capture is not None:
            kwargs["t_capture"] = args.t_capture
        config = CampaignConfig(
            n_faults=args.faults,
            n_vectors=args.vectors,
            n_cycles=args.cycles,
            seed=args.seed,
            check_sigmoid=not args.no_sigmoid,
            shrink=not args.no_shrink,
            compiled=not args.interpreted,
            target=args.target,
            **kwargs,
        )
    except SimulationError as exc:
        print(f"repro faults: error: {exc}", file=sys.stderr)
        return 2

    delay_library = default_delay_library(scale=args.scale)
    netlist = nor_mapped(args.circuit)
    if netlist.is_sequential:
        from repro.faults import run_sequential_campaign

        result = run_sequential_campaign(
            netlist, delay_library, config=config
        )
    else:
        from repro.digital.characterize import build_instance_delays
        from repro.faults import run_campaign

        bundle = default_bundle(
            scale=args.scale, backend=args.backend,
            verbose=not args.quiet,
        )
        delay_models = build_instance_delays(netlist, delay_library)
        result = run_campaign(
            netlist,
            bundle,
            delay_models,
            config=config,
            delay_library=delay_library,
        )
    print(result.summary())
    if args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        result.write_report(path)
        print(f"report written to {path}")
    return 0 if result.ok else 1


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.bench import append_bench_record, run_serve_bench

    bundle = default_bundle(
        scale=args.scale, backend=args.backend, verbose=True
    )
    delay_library = (
        default_delay_library(scale=args.scale)
        if args.kind == "digital"
        else None
    )
    record = run_serve_bench(
        bundle,
        delay_library,
        circuits=tuple(args.circuits),
        kind=args.kind,
        n_clients=args.clients,
        requests_per_client=args.requests,
        seed=args.seed,
        n_workers=args.workers,
        batch_window=args.window,
        max_batch=args.max_batch,
        target=args.target,
    )
    path = Path(args.output)
    append_bench_record(path, record)
    naive, coalesced = record["naive"], record["coalesced"]
    print(
        f"[serve] {record['n_clients']} clients x "
        f"{record['requests_per_client']} requests ({record['kind']}): "
        f"naive {naive['circuits_per_s']:.1f} circuits/s "
        f"(p50 {naive['p50_ms']:.0f} ms, p99 {naive['p99_ms']:.0f} ms) "
        f"-> coalesced {coalesced['circuits_per_s']:.1f} circuits/s "
        f"(p50 {coalesced['p50_ms']:.0f} ms, p99 {coalesced['p99_ms']:.0f} "
        f"ms, mean batch {coalesced['mean_batch']:.2f})"
    )
    print(
        f"[serve] throughput ratio {record['throughput_ratio']:.2f}x, "
        f"{record['parity_checked']} responses parity-checked "
        f"(recorded in {path.name})"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    for name in CIRCUIT_BUILDERS:
        core = nor_mapped(name)
        print(
            f"{name}: {len(core.primary_inputs)} PIs, "
            f"{core.n_gates} NOR gates, "
            f"{len(core.primary_outputs)} POs, depth {core.depth()}"
        )
    print("stimulus configs:", ", ".join(c.label for c in PAPER_CONFIGS))
    print("transfer-model backends:", ", ".join(available_backends()))
    return 0


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value!r}"
        )
    return number


def main(argv: list[str] | None = None) -> int:
    from repro.core.targets import registered_targets, resolve_target

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    backends = available_backends()
    targets = registered_targets()

    def add_target_flag(subparser):
        subparser.add_argument(
            "--target", default="numpy", choices=targets,
            help="execution target of the fused sigmoid kernels "
                 "(optional targets error out cleanly when their "
                 "dependency is not installed)",
        )

    p_table = sub.add_parser("table1", help="run the Table I harness")
    p_table.add_argument("--circuits", nargs="+",
                         default=list(CIRCUIT_BUILDERS),
                         choices=list(CIRCUIT_BUILDERS))
    p_table.add_argument("--runs", type=int, default=3)
    p_table.add_argument("--seed", type=int, default=0)
    p_table.add_argument("--scale", default="fast", choices=SCALES)
    p_table.add_argument(
        "--backend", default="ann", choices=backends,
        help="transfer-model backend for the sigmoid simulator",
    )
    p_table.add_argument("--no-same-stimulus", action="store_true")
    p_table.add_argument(
        "--serial", action="store_true",
        help="per-run reference path instead of the batched pipeline",
    )
    p_table.add_argument(
        "--workers", type=_positive_int, default=1,
        help="process pool size for dispatching circuits (1 = in-process)",
    )
    p_table.add_argument(
        "--interpreted", action="store_true",
        help="per-gate interpreted simulators instead of the compiled "
             "levelized cores",
    )
    p_table.add_argument(
        "--chunk-size", type=_positive_int, default=None,
        help="stream digital/sigmoid runs through stateful sessions in "
             "chunks of this many stimulus transitions (bounded memory, "
             "parity-locked against the one-shot path)",
    )
    add_target_flag(p_table)
    p_table.set_defaults(func=cmd_table1)

    p_ablate = sub.add_parser(
        "ablate", help="run Table I once per transfer-model backend"
    )
    p_ablate.add_argument("--backends", nargs="+", default=list(backends),
                          choices=backends)
    p_ablate.add_argument("--circuits", nargs="+", default=["c17"],
                          choices=list(CIRCUIT_BUILDERS))
    p_ablate.add_argument("--runs", type=int, default=1)
    p_ablate.add_argument("--seed", type=int, default=0)
    p_ablate.add_argument("--scale", default="tiny", choices=SCALES)
    p_ablate.set_defaults(func=cmd_ablate)

    p_char = sub.add_parser("characterize", help="build model artifacts")
    p_char.add_argument("--scale", default="fast", choices=SCALES)
    p_char.add_argument(
        "--backend", default="ann", choices=backends,
        help="transfer-model backend to train",
    )
    p_char.add_argument("--force", action="store_true")
    p_char.set_defaults(func=cmd_characterize)

    p_fuzz = sub.add_parser(
        "fuzz", help="differential verification over a random corpus"
    )
    p_fuzz.add_argument("--count", type=int, default=25,
                        help="number of random circuits in the corpus")
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--scale", default="tiny",
                        choices=sorted(FUZZ_PRESETS),
                        help="corpus sizing and model-artifact scale")
    p_fuzz.add_argument("--backend", default="ann", choices=backends)
    p_fuzz.add_argument(
        "--reference", default="analog", choices=("analog", "digital"),
        help="analog = full three-simulator comparison; digital = "
             "event-driven vs sigmoid only (cheap, big circuits)",
    )
    p_fuzz.add_argument(
        "--benchmarks", nargs="*", default=[],
        choices=list(CIRCUIT_BUILDERS),
        help="named circuits appended to the corpus (digital reference)",
    )
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="skip counterexample minimization")
    p_fuzz.add_argument(
        "--interpreted", action="store_true",
        help="per-gate interpreted simulators instead of the compiled "
             "levelized cores",
    )
    p_fuzz.add_argument(
        "--chunk-size", type=_positive_int, default=None,
        help="replay the streaming check at exactly this chunk size "
             "instead of the preset's {1, small, full-trace} ladder",
    )
    add_target_flag(p_fuzz)
    golden_group = p_fuzz.add_mutually_exclusive_group()
    golden_group.add_argument(
        "--update-golden", action="store_true",
        help="rewrite golden snapshots instead of checking",
    )
    golden_group.add_argument(
        "--no-golden", action="store_true",
        help="skip the golden-snapshot comparison",
    )
    p_fuzz.add_argument("--report", default=None,
                        help="write the JSON fuzz report to this path")
    p_fuzz.add_argument("--quiet", action="store_true")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_faults = sub.add_parser(
        "faults",
        help="fault-simulation campaign over the compiled cores",
    )
    p_faults.add_argument("--circuit", default="c880_like",
                          choices=list(CIRCUIT_BUILDERS))
    # Plain ints on purpose: range/finiteness checking lives in
    # CampaignConfig's eager validation, which cmd_faults surfaces as
    # an exit-2 usage error with the config's own message.
    p_faults.add_argument("--faults", type=int, default=32,
                          help="stuck-at faults sampled from the universe")
    p_faults.add_argument("--vectors", type=int, default=8,
                          help="random launch/capture vectors to grade")
    p_faults.add_argument("--cycles", type=int, default=4,
                          help="clock cycles of a sequential campaign "
                               "(circuits with flip-flops, e.g. s27_like)")
    p_faults.add_argument("--t-launch", type=float, default=None,
                          help="launch-transition time in seconds")
    p_faults.add_argument("--t-capture", type=float, default=None,
                          help="capture-strobe time in seconds "
                               "(default: depth-derived settle window)")
    p_faults.add_argument("--seed", type=int, default=0)
    p_faults.add_argument("--scale", default="fast", choices=SCALES)
    p_faults.add_argument("--backend", default="ann", choices=backends)
    p_faults.add_argument(
        "--no-sigmoid", action="store_true",
        help="digital verdicts only (skip the sigmoid cross-check)",
    )
    p_faults.add_argument("--no-shrink", action="store_true",
                          help="skip disagreement minimization")
    p_faults.add_argument(
        "--interpreted", action="store_true",
        help="event-driven digital reference instead of the compiled core",
    )
    p_faults.add_argument("--report", default=None,
                          help="write the JSON coverage report to this path")
    p_faults.add_argument("--quiet", action="store_true")
    add_target_flag(p_faults)
    p_faults.set_defaults(func=cmd_faults)

    p_serve = sub.add_parser(
        "serve-bench",
        help="load-test the prediction service (coalesced vs naive)",
    )
    p_serve.add_argument("--clients", type=_positive_int, default=16,
                         help="closed-loop client threads")
    p_serve.add_argument("--requests", type=_positive_int, default=6,
                         help="requests per client")
    p_serve.add_argument("--circuits", nargs="+",
                         default=["c17", "c499_like"],
                         choices=list(CIRCUIT_BUILDERS))
    p_serve.add_argument("--kind", default="sigmoid",
                         choices=("sigmoid", "digital"))
    p_serve.add_argument("--scale", default="fast", choices=SCALES)
    p_serve.add_argument("--backend", default="ann", choices=backends)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--workers", type=_positive_int, default=4,
                         help="service worker threads")
    p_serve.add_argument("--window", type=float, default=0.005,
                         help="coalescing batch window in seconds")
    p_serve.add_argument("--max-batch", type=_positive_int, default=32,
                         help="largest coalesced group")
    p_serve.add_argument("--output", default="BENCH_serve.json",
                         help="JSON ledger the record is appended to")
    add_target_flag(p_serve)
    p_serve.set_defaults(func=cmd_serve_bench)

    p_info = sub.add_parser("info", help="benchmark circuit statistics")
    p_info.set_defaults(func=cmd_info)

    args = parser.parse_args(argv)
    if getattr(args, "target", None) is not None:
        # Eager validation: an optional target whose dependency is not
        # installed is a clean one-line error, not a traceback.
        from repro.errors import SimulationError

        try:
            resolve_target(args.target)
        except SimulationError as err:
            print(f"error: {err}", file=sys.stderr)
            return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
