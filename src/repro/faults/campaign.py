"""Fault-simulation campaigns batched through the compiled cores.

Test-vector grading is the production workload the compiled ``(level,
gate, run)`` array layout was built to absorb: a faulty circuit variant
is just one more run lane, so the good machine plus N faulty variants
simulate in **one lock-step pass** per engine instead of N+1 serial
simulations.  :func:`compile_campaign` lowers a netlist + trained bundle
+ :class:`~repro.faults.model.FaultList` into a :class:`CompiledCampaign`
(one compiled sigmoid circuit, one compiled digital twin, the lowered
fault axis); :func:`run_campaign` grades a launch/capture vector set on
it and reports per-vector × per-fault detection for both engines.

Verdict semantics: vector ``v`` detects fault ``f`` iff some primary
output's logic level at the capture strobe differs between the faulty
run and the good machine's run of the same vector.  The digital verdict
comes from the event-exact compiled digital core (bitwise-identical to
a serial per-fault loop — lanes never interact); the sigmoid verdict
digitizes the predicted output waveforms at VDD/2.  Any grading where
the two engines disagree is handed to
:func:`repro.verify.shrink.shrink_circuit` for minimization, mirroring
the fuzz driver's failure workflow.
"""

from __future__ import annotations

import json
from dataclasses import InitVar, dataclass, field
from pathlib import Path

import numpy as np

from repro.circuits.netlist import Netlist
from repro.constants import NOMINAL_SLOPE, NS
from repro.core.compile import compile_circuit
from repro.core.trace import SigmoidalTrace
from repro.digital.compiled import compile_digital
from repro.digital.session import EventDigitalSession, one_shot_digital_batch
from repro.digital.trace import DigitalTrace
from repro.errors import SimulationError
from repro.faults.model import Fault, FaultList
from repro.options import (
    _UNSET,
    ExecutionOptions,
    execution_aliases,
    normalize_execution,
)


@execution_aliases("compiled", "backend", "chunk_size", "target")
@dataclass
class CampaignConfig:
    """Campaign knobs (defaults are CI-scale).

    ``n_faults``/``n_vectors``/``seed`` size the sampled stuck-at
    universe and the random launch/capture vector set when the caller
    does not pass explicit faults.  ``t_launch`` places the launch
    transition; ``t_capture`` is the strobe (and digital ``t_stop``) —
    ``None`` derives a settle window from the circuit depth and its
    largest arc delay.  ``check_sigmoid`` grades the sigmoid engine
    alongside the digital verdicts; engine disagreements (up to
    ``max_disagreements``) are minimized through ``repro.verify.shrink``
    when ``shrink`` is on and a delay library is available.

    The shared execution knobs
    (:class:`~repro.options.ExecutionOptions`) follow the other
    harness configs: ``compiled=False`` grades against the event-driven
    reference loop instead of the compiled digital core (the sigmoid
    engine always runs fused — forced-lane masks exist only there);
    ``chunk_size`` is accepted for config uniformity but campaigns
    execute one-shot.
    """

    n_faults: int = 32
    n_vectors: int = 8
    seed: int = 0
    #: Clock cycles of a sequential campaign
    #: (:func:`run_sequential_campaign`); combinational campaigns
    #: ignore it.
    n_cycles: int = 4
    t_launch: float = 1.0 * NS
    t_capture: float | None = None
    slope: float = NOMINAL_SLOPE
    check_sigmoid: bool = True
    max_disagreements: int = 8
    shrink: bool = True
    shrink_max_evals: int = 48
    execution: ExecutionOptions | None = None
    backend: InitVar = _UNSET
    compiled: InitVar = _UNSET
    chunk_size: InitVar = _UNSET
    target: InitVar = _UNSET

    def __post_init__(self, backend, compiled, chunk_size, target) -> None:
        self.execution = normalize_execution(
            self.execution,
            compiled=compiled,
            backend=backend,
            chunk_size=chunk_size,
            target=target,
        )
        # Eager validation: every bad knob fails at construction with a
        # message naming the knob, instead of surfacing mid-campaign as
        # a simulator crash (negative launch) or a silent NaN strobe.
        if self.n_faults < 1:
            raise SimulationError("n_faults must be >= 1")
        if self.n_vectors < 1:
            raise SimulationError("n_vectors must be >= 1")
        if self.n_cycles < 1:
            raise SimulationError("n_cycles must be >= 1")
        if not np.isfinite(self.t_launch):
            raise SimulationError(
                f"t_launch must be finite, got {self.t_launch!r}"
            )
        if self.t_launch < 0.0:
            raise SimulationError(
                f"t_launch must be >= 0, got {self.t_launch!r}"
            )
        if self.t_capture is not None:
            if not np.isfinite(self.t_capture):
                raise SimulationError(
                    f"t_capture must be finite, got {self.t_capture!r}"
                )
            if self.t_capture <= self.t_launch:
                raise SimulationError("t_capture must be after t_launch")
        if not np.isfinite(self.slope) or self.slope <= 0.0:
            raise SimulationError(
                f"slope must be finite and positive, got {self.slope!r}"
            )


@dataclass(frozen=True)
class Vector:
    """One launch/capture pair over the netlist's primary inputs."""

    launch: tuple[bool, ...]
    capture: tuple[bool, ...]

    def to_dict(self) -> dict:
        return {
            "launch": [int(v) for v in self.launch],
            "capture": [int(v) for v in self.capture],
        }


def random_vectors(netlist: Netlist, n: int, seed: int = 0) -> list[Vector]:
    """``n`` random launch/capture vectors over the netlist's PIs."""
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=(n, 2, len(netlist.primary_inputs)))
    return [
        Vector(
            tuple(bool(b) for b in row[0]),
            tuple(bool(b) for b in row[1]),
        )
        for row in bits
    ]


def compile_campaign(
    netlist: Netlist,
    bundle,
    faults,
    delay_models: dict,
    config: CampaignConfig | None = None,
) -> "CompiledCampaign":
    """Lower good machine + N faulty variants into one campaign program."""
    return CompiledCampaign(netlist, bundle, faults, delay_models, config)


class CompiledCampaign:
    """One compiled sigmoid circuit + digital twin + lowered fault axis.

    Run layout is vector-major: run ``v * (1 + n_faults) + k`` carries
    vector ``v`` on the good machine (``k = 0``) or fault ``k - 1``.
    ``serial=True`` on the trace runners executes the same compiled
    machinery one fault column at a time — the per-fault reference loop
    the lock-step pass is benchmarked (and bitwise-checked) against.
    """

    def __init__(
        self,
        netlist: Netlist,
        bundle,
        faults,
        delay_models: dict,
        config: CampaignConfig | None = None,
    ) -> None:
        self.config = config or CampaignConfig()
        self.netlist = netlist
        self.bundle = bundle
        self.delay_models = delay_models
        if not isinstance(faults, FaultList):
            faults = FaultList(netlist, faults)
        self.faults = faults
        if len(faults) == 0:
            raise SimulationError("campaign needs at least one fault")
        execution = self.config.execution
        self.sigmoid = compile_circuit(netlist, bundle, target=execution.target)
        self.digital = (
            compile_digital(netlist, delay_models)
            if execution.compiled
            else None
        )
        self.pos = list(netlist.primary_outputs)
        self.t_capture = (
            self.config.t_capture
            if self.config.t_capture is not None
            else self._auto_capture()
        )

    # ------------------------------------------------------------------
    def _auto_capture(self) -> float:
        """Launch time + a settle window from depth × slowest arc."""
        worst = 0.0
        for model in self.delay_models.values():
            arc_array = getattr(model, "arc_array", None)
            if arc_array is None:
                raise SimulationError(
                    "t_capture=None needs arc-table delay models to "
                    "derive a settle window; pass an explicit t_capture"
                )
            arcs = arc_array(2)
            worst = max(worst, float(np.nanmax(arcs)))
        depth = max(len(self.netlist.levels()), 1)
        return self.config.t_launch + 4.0 * depth * worst + 1.0 * NS

    # ------------------------------------------------------------------
    @property
    def n_machines(self) -> int:
        """Good machine + one per fault (the width of one vector's slab)."""
        return 1 + len(self.faults)

    def _run_axes(self, vectors: list[Vector]):
        """Vector-major ``(fault, t_stop)`` per run of the full batch."""
        machines: list[Fault | None] = [None, *self.faults]
        fault_per_run = [f for _v in vectors for f in machines]
        t_stops = [self.t_capture] * (len(vectors) * len(machines))
        return fault_per_run, t_stops

    def _digital_stimulus(self, vector: Vector) -> dict[str, DigitalTrace]:
        pis = self.netlist.primary_inputs
        t_launch = self.config.t_launch
        return {
            pi: DigitalTrace(
                bool(lv), [t_launch] if bool(lv) != bool(cv) else []
            )
            for pi, lv, cv in zip(pis, vector.launch, vector.capture)
        }

    def _sigmoid_stimulus(self, vector: Vector) -> dict[str, SigmoidalTrace]:
        return {
            pi: SigmoidalTrace.from_digital(trace, slope=self.config.slope)
            for pi, trace in self._digital_stimulus(vector).items()
        }

    # ------------------------------------------------------------------
    def digital_traces(
        self, vectors: list[Vector], serial: bool = False
    ) -> "list[dict[str, DigitalTrace]]":
        """PO traces for every (vector, machine) run, vector-major.

        One lock-step batch by default; ``serial=True`` loops one
        machine column per batch (the per-fault reference).  Lanes
        never interact, so the two orders are bitwise-identical.
        """
        fault_per_run, t_stops = self._run_axes(vectors)
        stimuli = [self._digital_stimulus(v) for v in vectors]
        pi_runs = [stimuli[v] for v in range(len(vectors)) for _ in range(self.n_machines)]
        if not serial:
            return self._digital_batch(pi_runs, t_stops, fault_per_run)
        n_m = self.n_machines
        results: list = [None] * len(pi_runs)
        for k in range(n_m):
            fault = None if k == 0 else self.faults[k - 1]
            column = self._digital_batch(
                stimuli,
                [self.t_capture] * len(vectors),
                [fault] * len(vectors),
            )
            for v, traces in enumerate(column):
                results[v * n_m + k] = traces
        return results

    def _digital_batch(self, pi_runs, t_stops, fault_per_run):
        if self.digital is not None:
            def open_session():
                return self.digital.open_session(
                    t_stops, record_nets=self.pos, faults=fault_per_run
                )
        else:
            def open_session():
                return EventDigitalSession(
                    self.netlist,
                    self.delay_models,
                    t_stops,
                    record_nets=self.pos,
                    faults=fault_per_run,
                )
        return one_shot_digital_batch(
            open_session, self.netlist, pi_runs, t_stops
        )

    # ------------------------------------------------------------------
    def sigmoid_traces(
        self, vectors: list[Vector], serial: bool = False
    ) -> "list[dict[str, SigmoidalTrace]]":
        """Sigmoid PO traces for every (vector, machine) run, vector-major."""
        fault_per_run, _ = self._run_axes(vectors)
        stimuli = [self._sigmoid_stimulus(v) for v in vectors]
        target = self.config.execution.target
        program = self.sigmoid.fused_program()
        if not serial:
            jobs = [
                (0, stimuli[v], self.pos)
                for v in range(len(vectors))
                for _ in range(self.n_machines)
            ]
            return program.run_jobs(jobs, target=target, faults=fault_per_run)
        n_m = self.n_machines
        results: list = [None] * (len(vectors) * n_m)
        for k in range(n_m):
            fault = None if k == 0 else self.faults[k - 1]
            column = program.run_jobs(
                [(0, stim, self.pos) for stim in stimuli],
                target=target,
                faults=[fault] * len(vectors),
            )
            for v, traces in enumerate(column):
                results[v * n_m + k] = traces
        return results

    # ------------------------------------------------------------------
    def digital_strobes(self, traces_runs) -> np.ndarray:
        """(run, po) logic levels at the capture strobe."""
        return np.array(
            [
                [bool(traces[po].value_at(self.t_capture)) for po in self.pos]
                for traces in traces_runs
            ],
            dtype=bool,
        )

    def sigmoid_strobes(self, traces_runs) -> np.ndarray:
        return np.array(
            [
                [
                    bool(
                        traces[po].digitize().value_at(self.t_capture)
                    )
                    for po in self.pos
                ]
                for traces in traces_runs
            ],
            dtype=bool,
        )

    def detection_matrix(self, strobes: np.ndarray, n_vectors: int) -> np.ndarray:
        """(vector, fault) detection verdicts from strobe levels."""
        n_m = self.n_machines
        per_vector = strobes.reshape(n_vectors, n_m, len(self.pos))
        good = per_vector[:, :1, :]
        return (per_vector[:, 1:, :] != good).any(axis=2)


@dataclass
class CampaignResult:
    """Detection matrices, coverage and engine-disagreement report."""

    circuit: str
    fault_names: list[str]
    vectors: list[Vector]
    detection: np.ndarray  # (n_vectors, n_faults) digital verdicts
    sigmoid_detection: np.ndarray | None
    t_launch: float
    t_capture: float
    disagreements: list[dict] = field(default_factory=list)
    cpu_s: float = 0.0

    @property
    def n_faults(self) -> int:
        return len(self.fault_names)

    @property
    def n_vectors(self) -> int:
        return len(self.vectors)

    @property
    def detected(self) -> np.ndarray:
        """Per-fault: detected by at least one vector (digital verdict)."""
        return self.detection.any(axis=0)

    @property
    def coverage(self) -> float:
        return float(self.detected.mean())

    @property
    def ok(self) -> bool:
        """True when the engines agreed on every grading."""
        return not self.disagreements

    def to_dict(self) -> dict:
        return {
            "campaign": "stuck_at_delay",
            "circuit": self.circuit,
            "n_faults": self.n_faults,
            "n_vectors": self.n_vectors,
            "t_launch_s": self.t_launch,
            "t_capture_s": self.t_capture,
            "coverage": self.coverage,
            "n_detected": int(self.detected.sum()),
            "fault_names": list(self.fault_names),
            "vectors": [v.to_dict() for v in self.vectors],
            "detection": self.detection.astype(int).tolist(),
            "sigmoid_detection": (
                self.sigmoid_detection.astype(int).tolist()
                if self.sigmoid_detection is not None
                else None
            ),
            "n_disagreements": len(self.disagreements),
            "disagreements": self.disagreements,
            "cpu_s": self.cpu_s,
            "ok": self.ok,
        }

    def write_report(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    def summary(self) -> str:
        lines = [
            f"fault campaign on {self.circuit}: {self.n_faults} faults "
            f"x {self.n_vectors} vectors "
            f"({self.n_vectors * (self.n_faults + 1)} lock-step runs)",
            f"digital coverage {100.0 * self.coverage:.1f}% "
            f"({int(self.detected.sum())}/{self.n_faults} faults detected)",
        ]
        if self.sigmoid_detection is None:
            lines.append("sigmoid engine: not graded")
        elif self.ok:
            lines.append(
                "sigmoid verdicts agree on all "
                f"{self.detection.size} gradings"
            )
        else:
            lines.append(
                f"sigmoid verdicts DISAGREE on {len(self.disagreements)} "
                f"of {self.detection.size} gradings"
            )
            for item in self.disagreements:
                shrunk = item.get("shrunk_gates")
                note = (
                    f" (shrunk to {shrunk} gates)" if shrunk is not None else ""
                )
                lines.append(
                    f"  vector {item['vector']} x {item['fault']}: "
                    f"digital={'detected' if item['digital'] else 'missed'} "
                    f"sigmoid={'detected' if item['sigmoid'] else 'missed'}"
                    f"{note}"
                )
        return "\n".join(lines)


def run_campaign(
    netlist: Netlist,
    bundle,
    delay_models: dict,
    faults=None,
    config: CampaignConfig | None = None,
    delay_library=None,
    vectors: list[Vector] | None = None,
    serial: bool = False,
) -> CampaignResult:
    """Grade a vector set against a fault list on both engines.

    ``faults=None`` samples ``config.n_faults`` stuck-at faults from the
    netlist's universe; ``vectors=None`` draws ``config.n_vectors``
    random launch/capture pairs.  ``serial=True`` runs the per-fault
    reference loop instead of the lock-step pass (same verdicts, the
    benchmark's baseline).  ``delay_library`` enables shrink-based
    minimization of engine disagreements (candidate circuits need their
    instance delays re-resolved at their own fanouts).
    """
    import time

    config = config or CampaignConfig()
    if faults is None:
        faults = FaultList.sample_stuck_at(
            netlist, config.n_faults, seed=config.seed
        )
    campaign = compile_campaign(netlist, bundle, faults, delay_models, config)
    if vectors is None:
        vectors = random_vectors(netlist, config.n_vectors, seed=config.seed)

    start = time.process_time()
    digital_runs = campaign.digital_traces(vectors, serial=serial)
    detection = campaign.detection_matrix(
        campaign.digital_strobes(digital_runs), len(vectors)
    )
    sigmoid_detection = None
    if config.check_sigmoid:
        sigmoid_runs = campaign.sigmoid_traces(vectors, serial=serial)
        sigmoid_detection = campaign.detection_matrix(
            campaign.sigmoid_strobes(sigmoid_runs), len(vectors)
        )
    cpu_s = time.process_time() - start

    result = CampaignResult(
        circuit=netlist.name,
        fault_names=campaign.faults.names,
        vectors=list(vectors),
        detection=detection,
        sigmoid_detection=sigmoid_detection,
        t_launch=config.t_launch,
        t_capture=campaign.t_capture,
        cpu_s=cpu_s,
    )
    if sigmoid_detection is not None:
        _collect_disagreements(
            result, campaign, vectors, config, delay_library
        )
    return result


def _collect_disagreements(
    result: CampaignResult,
    campaign: CompiledCampaign,
    vectors: list[Vector],
    config: CampaignConfig,
    delay_library,
) -> None:
    """Record (and optionally shrink) engine verdict disagreements."""
    mismatch = np.nonzero(result.detection != result.sigmoid_detection)
    for v, f in zip(*mismatch):
        if len(result.disagreements) >= config.max_disagreements:
            result.disagreements.append(
                {"truncated": True, "note": "further disagreements omitted"}
            )
            break
        item = {
            "vector": int(v),
            "fault": campaign.faults.names[int(f)],
            "digital": bool(result.detection[v, f]),
            "sigmoid": bool(result.sigmoid_detection[v, f]),
            "shrunk_gates": None,
        }
        if config.shrink and delay_library is not None:
            shrunk = _shrink_disagreement(
                campaign, vectors[int(v)], campaign.faults[int(f)],
                config, delay_library,
            )
            if shrunk is not None:
                item["shrunk_gates"] = shrunk.n_gates
                item["shrunk_pos"] = list(shrunk.primary_outputs)
        result.disagreements.append(item)


def _shrink_disagreement(
    campaign: CompiledCampaign,
    vector: Vector,
    fault: Fault,
    config: CampaignConfig,
    delay_library,
):
    """Minimize a circuit on which the engines grade ``fault`` differently.

    The vector is projected onto each candidate's primary inputs via the
    full circuit's boolean states at launch and capture (cone extraction
    promotes internal nets to PIs), so shrunken reproductions stay
    faithful to the observed stimulus.  Any candidate that errors — or
    that lost the fault site — counts as not reproducing.
    """
    from repro.digital.characterize import build_instance_delays
    from repro.verify.shrink import shrink_circuit

    netlist = campaign.netlist
    pis = netlist.primary_inputs
    launch_vals = netlist.evaluate(dict(zip(pis, vector.launch)))
    capture_vals = netlist.evaluate(dict(zip(pis, vector.capture)))

    def disagrees(candidate: Netlist) -> bool:
        try:
            sub_faults = FaultList(candidate, [fault])
            if any(
                net not in candidate.nets
                for net in list(fault.stuck_nets()) + list(fault.arc_deltas())
            ):
                return False
            models = build_instance_delays(candidate, delay_library)
            sub_vector = Vector(
                tuple(bool(launch_vals[pi]) for pi in candidate.primary_inputs),
                tuple(bool(capture_vals[pi]) for pi in candidate.primary_inputs),
            )
            sub_config = CampaignConfig(
                n_faults=1,
                n_vectors=1,
                seed=config.seed,
                t_launch=config.t_launch,
                t_capture=campaign.t_capture,
                slope=config.slope,
                check_sigmoid=True,
                shrink=False,
                execution=config.execution,
            )
            sub = compile_campaign(
                candidate, campaign.bundle, sub_faults, models, sub_config
            )
            digital = sub.detection_matrix(
                sub.digital_strobes(sub.digital_traces([sub_vector])), 1
            )
            sigmoid = sub.detection_matrix(
                sub.sigmoid_strobes(sub.sigmoid_traces([sub_vector])), 1
            )
            return bool(digital[0, 0] != sigmoid[0, 0])
        except Exception:
            return False

    shrink = shrink_circuit(
        netlist, disagrees, max_evals=config.shrink_max_evals
    )
    return shrink.netlist if shrink.netlist.n_gates < netlist.n_gates else None


# ----------------------------------------------------------------------
# sequential campaigns: launch/capture over clock cycles
# ----------------------------------------------------------------------
@dataclass
class SequentialCampaignResult:
    """Per-cycle detection matrices of one sequential fault campaign.

    ``detection[f, c]`` is True when fault ``f``'s machine diverges from
    the good machine at capture strobe ``c`` — in a register *or* a
    primary output (registers are observable in a scan-style flow, so a
    state divergence counts as a detection even before it propagates to
    a PO).  ``disagreements`` lists every (fault, cycle) grading where
    the compiled lock-step core and the event-driven reference loop
    disagreed; a clean campaign has none.
    """

    circuit: str
    fault_names: list[str]
    n_cycles: int
    clock: dict
    detection: np.ndarray  # (n_faults, n_cycles) compiled-core verdicts
    stimulus: list[dict]
    disagreements: list[dict] = field(default_factory=list)
    cpu_s: float = 0.0

    @property
    def n_faults(self) -> int:
        return len(self.fault_names)

    @property
    def detected(self) -> np.ndarray:
        """Per-fault: detected at some capture strobe (compiled verdict)."""
        return self.detection.any(axis=1)

    @property
    def coverage(self) -> float:
        return float(self.detected.mean())

    @property
    def ok(self) -> bool:
        """True when the two digital engines agreed on every grading."""
        return not self.disagreements

    def to_dict(self) -> dict:
        return {
            "campaign": "sequential_stuck_at",
            "circuit": self.circuit,
            "n_faults": self.n_faults,
            "n_cycles": self.n_cycles,
            "clock": self.clock,
            "coverage": self.coverage,
            "n_detected": int(self.detected.sum()),
            "fault_names": list(self.fault_names),
            "stimulus": [
                {pi: int(v) for pi, v in vec.items()} for vec in self.stimulus
            ],
            "detection": self.detection.astype(int).tolist(),
            "n_disagreements": len(self.disagreements),
            "disagreements": self.disagreements,
            "cpu_s": self.cpu_s,
            "ok": self.ok,
        }

    def write_report(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    def summary(self) -> str:
        lines = [
            f"sequential fault campaign on {self.circuit}: "
            f"{self.n_faults} faults x {self.n_cycles} cycles",
            f"coverage {100.0 * self.coverage:.1f}% "
            f"({int(self.detected.sum())}/{self.n_faults} faults detected "
            "at some capture strobe)",
        ]
        if self.ok:
            lines.append(
                "compiled and event cores agree on all "
                f"{self.detection.size} gradings"
            )
        else:
            lines.append(
                f"compiled and event cores DISAGREE on "
                f"{len(self.disagreements)} gradings"
            )
            for item in self.disagreements:
                lines.append(
                    f"  fault {item['fault']} cycle {item['cycle']}: "
                    f"{item['field']} compiled={item['compiled']} "
                    f"event={item['event']}"
                )
        return "\n".join(lines)


def _sequential_stimulus(
    primary_inputs, n_cycles: int, seed: int
) -> "list[dict[str, bool]]":
    """One random PI assignment per clock cycle (the launch of that
    cycle, captured at its strobe)."""
    rng = np.random.default_rng(seed)
    return [
        {pi: bool(rng.integers(0, 2)) for pi in primary_inputs}
        for _ in range(n_cycles)
    ]


def run_sequential_campaign(
    netlist: Netlist,
    delay_library,
    faults=None,
    config: CampaignConfig | None = None,
    clock=None,
    vectors: "list[dict[str, bool]] | None" = None,
) -> SequentialCampaignResult:
    """Grade stuck-at faults on a sequential circuit over clock cycles.

    Every machine (good + one per fault) runs ``config.n_cycles`` clock
    cycles through a :class:`~repro.clocked.ClockedDigitalSession` on
    *both* digital engines: the compiled lock-step core produces the
    detection verdicts, the event-driven loop re-grades every machine,
    and any divergence between the two engines' strobe samples is
    reported as a ``disagreements`` entry (``ok`` turns False — the CI
    treats that as a campaign failure).  A fault is detected at cycle
    ``c`` when its registers or primary outputs differ from the good
    machine at that capture strobe.

    The sigmoid engine is not graded here: fault lanes exist only in
    the one-shot fused program, not in the streaming sessions the
    clocked wrapper drives (the combinational :func:`run_campaign`
    covers sigmoid grading).
    """
    import time

    from repro.clocked import (
        ClockedDigitalSession,
        default_clock_for,
        prepare_sequential,
        run_clocked,
    )

    config = config or CampaignConfig()
    core = prepare_sequential(netlist)
    if clock is None:
        clock = config.execution.clock or default_clock_for(core)
    if faults is None:
        faults = FaultList.sample_stuck_at(
            core, config.n_faults, seed=config.seed
        )
    elif not isinstance(faults, FaultList):
        faults = FaultList(core, faults)
    if len(faults) == 0:
        raise SimulationError("campaign needs at least one fault")
    if vectors is None:
        vectors = _sequential_stimulus(
            core.primary_inputs, config.n_cycles, config.seed
        )
    n_cycles = len(vectors)

    def grade(compiled: bool) -> "list[list[dict]]":
        machines = [None, *faults]
        histories = []
        for fault in machines:
            session = ClockedDigitalSession(
                core, delay_library, clock=clock, n_cycles=n_cycles,
                compiled=compiled, fault=fault,
            )
            histories.append(run_clocked(session, vectors))
        return histories

    start = time.process_time()
    compiled_runs = grade(compiled=True)
    event_runs = grade(compiled=False)
    cpu_s = time.process_time() - start

    good = compiled_runs[0]
    detection = np.zeros((len(faults), n_cycles), dtype=bool)
    for f in range(len(faults)):
        history = compiled_runs[f + 1]
        for c in range(n_cycles):
            detection[f, c] = (
                history[c]["registers"] != good[c]["registers"]
                or history[c]["outputs"] != good[c]["outputs"]
            )

    disagreements: list[dict] = []
    machine_names = ["good", *faults.names]
    for name, comp, ev in zip(machine_names, compiled_runs, event_runs):
        for c, (crec, erec) in enumerate(zip(comp, ev)):
            for fld in ("registers", "outputs"):
                if crec[fld] != erec[fld]:
                    disagreements.append(
                        {
                            "fault": name,
                            "cycle": c,
                            "field": fld,
                            "compiled": {
                                k: int(v) for k, v in crec[fld].items()
                            },
                            "event": {
                                k: int(v) for k, v in erec[fld].items()
                            },
                        }
                    )

    return SequentialCampaignResult(
        circuit=core.name,
        fault_names=list(faults.names),
        n_cycles=n_cycles,
        clock=clock.to_dict(),
        detection=detection,
        stimulus=list(vectors),
        disagreements=disagreements,
        cpu_s=cpu_s,
    )
