"""Fault models for test-vector grading campaigns.

A fault is a small, local perturbation of the good machine that every
execution engine can apply *per run*: stuck-at faults force one net to a
constant logic level, delay faults add a signed delta to a gate
instance's timing arcs.  The engines stay decoupled from this module —
they accept any object exposing the four lowering hooks of
:class:`Fault` (:meth:`~Fault.stuck_nets`, :meth:`~Fault.arc_deltas`,
:meth:`~Fault.b_shifts`, :meth:`~Fault.model_overrides`), and each
concrete fault implements only the hooks that concern it:

* the compiled digital core forces lanes and perturbs its dense
  ``(lane, pin, edge)`` arc-delay gathers,
* the event-driven reference loop skips forced nets and swaps the
  gate's :class:`~repro.digital.delay.InstanceDelayModel` for a
  :class:`PerturbedDelayModel` wrapper,
* the fused sigmoid executor masks forced slots to constant traces and
  shifts the faulted gate's output crossing times.

:class:`FaultList` binds faults to one netlist (validating every site
exists) and provides the stuck-at universe samplers campaigns start
from.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.constants import TIME_SCALE
from repro.digital.delay import InstanceDelayModel
from repro.errors import SimulationError


class Fault:
    """Lowering interface every execution engine programs against.

    The default hooks are all empty, so a concrete fault overrides only
    the aspects it perturbs.  One fault object is applied to one *run*
    (lane group) of a batch; campaigns pass ``None`` for the good
    machine's runs.
    """

    @property
    def name(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def stuck_nets(self) -> dict[str, bool]:
        """Nets forced to a constant level for the whole run."""
        return {}

    def arc_deltas(self) -> "dict[str, np.ndarray]":
        """Per-gate ``(pin, edge)`` delay deltas in seconds (edge 0 =
        fall, 1 = rise — the layout of
        :meth:`~repro.digital.delay.FixedDelayModel.arc_array`)."""
        return {}

    def b_shifts(self) -> dict[str, float]:
        """Per-gate output crossing-time shifts in *scaled* time.

        The sigmoid engine has no per-arc delays — a gate's timing is
        its transfer functions' ``delta_b`` — so a delay fault lowers to
        a uniform shift of the faulted gate's output ``b`` parameters.
        Pin/edge selectivity is a digital-only refinement; the sigmoid
        twin applies the mean delta of the selected arcs to every
        output transition.
        """
        return {}

    def model_overrides(self, delay_models: dict) -> dict:
        """Replacement :class:`InstanceDelayModel`\\ s for the event loop."""
        return {}


@dataclass(frozen=True)
class StuckAtFault(Fault):
    """Net ``net`` held at constant ``value`` (stuck-at-0 / stuck-at-1)."""

    net: str
    value: bool

    @property
    def name(self) -> str:
        return f"{self.net}/SA{int(bool(self.value))}"

    def stuck_nets(self) -> dict[str, bool]:
        return {self.net: bool(self.value)}


@dataclass(frozen=True)
class DelayFault(Fault):
    """Signed delta (seconds) added to a gate instance's timing arcs.

    ``pin``/``edge`` restrict the perturbation to one input pin and/or
    one output edge; ``None`` means all.  A perturbed delay that drops
    to zero or below swallows the transition pair in both digital
    engines (the DDM-style full-degradation rule), so gross negative
    deltas model transition faults collapsing into pulse deletion.
    """

    gate: str
    delta: float
    pin: int | None = None
    edge: str | None = None

    def __post_init__(self) -> None:
        if self.edge not in (None, "rise", "fall"):
            raise SimulationError("edge must be None, 'rise' or 'fall'")
        if self.pin not in (None, 0, 1):
            raise SimulationError("pin must be None, 0 or 1")
        if not np.isfinite(self.delta):
            raise SimulationError("delay delta must be finite")

    @property
    def name(self) -> str:
        scope = "" if self.pin is None else f"/p{self.pin}"
        scope += "" if self.edge is None else f"/{self.edge}"
        return f"{self.gate}{scope}/DELTA{self.delta / 1e-12:+.2f}ps"

    def arc_delta(self) -> np.ndarray:
        """The delta as a dense ``(2, 2)`` ``(pin, edge)`` array."""
        table = np.zeros((2, 2))
        pins = (self.pin,) if self.pin is not None else (0, 1)
        edges = (self.edge,) if self.edge is not None else ("fall", "rise")
        for pin in pins:
            for edge in edges:
                table[pin, 0 if edge == "fall" else 1] = self.delta
        return table

    def arc_deltas(self) -> "dict[str, np.ndarray]":
        return {self.gate: self.arc_delta()}

    def b_shifts(self) -> dict[str, float]:
        return {self.gate: self.delta * TIME_SCALE}

    def model_overrides(self, delay_models: dict) -> dict:
        base = delay_models.get(self.gate)
        if base is None:
            raise SimulationError(f"no delay model for gate {self.gate!r}")
        return {self.gate: PerturbedDelayModel(base, self.arc_delta())}


class PerturbedDelayModel(InstanceDelayModel):
    """A per-arc delta on top of an existing instance delay model.

    The event-driven engine's twin of the compiled core's perturbed
    arc-delay gather: every ``delay()`` answer of the wrapped model is
    offset by the matching ``(pin, edge)`` entry.  Non-positive results
    pass through unclamped — the simulators already interpret them as
    full pulse degradation.
    """

    def __init__(self, base: InstanceDelayModel, arc_delta) -> None:
        self.base = base
        self.arc_delta = np.asarray(arc_delta, dtype=float)
        if self.arc_delta.shape != (2, 2):
            raise SimulationError("arc_delta must have shape (2, 2)")

    def delay(self, pin: int, edge: str, now: float, last_output_time: float) -> float:
        d = self.base.delay(pin, edge, now, last_output_time)
        return d + float(self.arc_delta[pin, 0 if edge == "fall" else 1])


def _single_channel(netlist: Netlist, gate_name: str) -> bool:
    """INV and tied-input NOR2 gates expose one timing channel."""
    gate = netlist.gates[gate_name]
    if gate.gtype is GateType.INV:
        return True
    return len(gate.inputs) == 2 and gate.inputs[0] == gate.inputs[1]


class FaultList:
    """An ordered fault universe bound to (and validated against) a netlist."""

    def __init__(self, netlist: Netlist, faults) -> None:
        self.netlist = netlist
        nets = set(netlist.nets)
        normalized = []
        for fault in faults:
            for net in fault.stuck_nets():
                if net not in nets:
                    raise SimulationError(
                        f"stuck-at fault on unknown net {net!r}"
                    )
            for gate_name in fault.arc_deltas():
                if gate_name not in netlist.gates:
                    raise SimulationError(
                        f"delay fault on unknown gate {gate_name!r}"
                    )
            if isinstance(fault, DelayFault) and _single_channel(
                netlist, fault.gate
            ):
                # Single-channel gates resolve both pins to one arc at
                # characterization time and the compiled core only ever
                # gathers pin 0, so a pin-specific delta is normalized
                # to the whole channel (pin 1 alone cannot compile).
                if fault.pin == 1:
                    raise SimulationError(
                        f"gate {fault.gate!r} has a single timing channel; "
                        "use pin=None (or 0) for its delay faults"
                    )
                if fault.pin == 0:
                    fault = dataclasses.replace(fault, pin=None)
            normalized.append(fault)
        self.faults: list[Fault] = normalized

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __getitem__(self, index):
        return self.faults[index]

    @property
    def names(self) -> list[str]:
        return [fault.name for fault in self.faults]

    # ------------------------------------------------------------------
    @classmethod
    def all_stuck_at(cls, netlist: Netlist, include_pis: bool = True) -> "FaultList":
        """The full single-stuck-at universe (every net × SA0/SA1)."""
        nets = list(netlist.primary_inputs) if include_pis else []
        nets += [name for level in netlist.levels() for name in level]
        return cls(
            netlist,
            [
                StuckAtFault(net, bool(value))
                for net in nets
                for value in (0, 1)
            ],
        )

    @classmethod
    def sample_stuck_at(
        cls,
        netlist: Netlist,
        n: int,
        seed: int = 0,
        include_pis: bool = True,
    ) -> "FaultList":
        """``n`` distinct stuck-at faults drawn uniformly from the universe."""
        universe = cls.all_stuck_at(netlist, include_pis=include_pis)
        if n >= len(universe):
            return universe
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(universe), size=n, replace=False)
        return cls(netlist, [universe[int(i)] for i in sorted(picks)])
