"""Fault injection and fault-simulation campaigns.

Fault models (:mod:`repro.faults.model`) lower onto the compiled cores'
run axis — stuck-at faults become forced-lane masks, delay faults
perturb the dense arc-delay gathers — so a campaign's good machine plus
N faulty variants simulate in one lock-step pass
(:mod:`repro.faults.campaign`).
"""

from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    CompiledCampaign,
    SequentialCampaignResult,
    Vector,
    compile_campaign,
    random_vectors,
    run_campaign,
    run_sequential_campaign,
)
from repro.faults.model import (
    DelayFault,
    Fault,
    FaultList,
    PerturbedDelayModel,
    StuckAtFault,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "CompiledCampaign",
    "DelayFault",
    "Fault",
    "FaultList",
    "PerturbedDelayModel",
    "SequentialCampaignResult",
    "StuckAtFault",
    "Vector",
    "compile_campaign",
    "random_vectors",
    "run_campaign",
    "run_sequential_campaign",
]
