"""Global physical and numerical conventions shared by every subsystem.

The paper (Eq. 1) parameterizes sigmoids in *scaled time* ``tau = t * 1e10``
so that crossing times ``b`` and slopes ``a`` live in comfortable numeric
ranges for picosecond-scale circuits.  Everything that touches sigmoid
parameters uses scaled time; everything that touches waveforms uses seconds.
The two helpers below are the only sanctioned conversion points.
"""

from __future__ import annotations

import numpy as np

#: Scale factor between seconds and sigmoid-parameter time units (Eq. 1).
TIME_SCALE: float = 1e10

#: Supply voltage of the 15 nm-class technology the paper characterizes
#: (Nangate 15 nm FinFET at 0.8 V).
VDD: float = 0.8

#: Logic threshold used for digitization and the t_err metric (VDD / 2).
VTH: float = VDD / 2.0

#: Thermal voltage at room temperature, used by the EKV MOSFET model.
PHI_T: float = 0.02585

#: Default nominal sigmoid slope magnitude (scaled units) assigned to
#: digital-equivalent stimuli in "same stimulus" mode (Table I last row).
#: Corresponds to a 10-90% edge of roughly 10 ps.
NOMINAL_SLOPE: float = 60.0

#: Picosecond / nanosecond in seconds, for readability at call sites.
PS: float = 1e-12
NS: float = 1e-9


def to_scaled(t_seconds):
    """Convert time in seconds to the scaled units used by sigmoid params."""
    return np.asarray(t_seconds, dtype=float) * TIME_SCALE


def from_scaled(tau):
    """Convert scaled sigmoid-parameter time back to seconds."""
    return np.asarray(tau, dtype=float) / TIME_SCALE
