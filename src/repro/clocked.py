"""Clocked sessions: sequential netlists on every combinational engine.

A sequential netlist (DFF/LATCH state elements, see
:mod:`repro.circuits.netlist`) executes cycle by cycle: the registers
drive the *combinational frame* (:meth:`Netlist.combinational_frame`),
the frame settles, and each state element samples its data input at its
capture strobe.  The classes here run that loop on top of the existing
streaming sessions — one clock cycle per feed — so all four cores
(event-heap digital, compiled lock-step digital, interpreted sigmoid,
fused compiled sigmoid) share one clocking semantic, the
:class:`~repro.options.ClockSpec`:

* DFFs capture at the active edge — ``(k + 1) * period`` into the run
  for ``active_edge="rise"`` — and transparent LATCHes half a period
  earlier (the time-borrowing abstraction); ``"fall"`` swaps the two.
* A captured register drives its new value into the frame ``clk_to_q``
  after its strobe; primary-input stimulus for cycle ``k`` launches at
  ``k * period + clk_to_q`` (cycle 0 is the settled initial levels).
* Same-instant launches of distinct frame inputs are separated by the
  deterministic ``stagger`` offset, keeping the compiled and event
  digital cores bitwise-identical (they order same-time events on
  distinct nets differently — see :mod:`repro.digital.compiled`).

The sigmoid cores additionally trail their committed horizon behind the
fed horizon by ``depth * guard`` (scaled units, the streaming finality
guard of :mod:`repro.core.session`): each strobe feed advances to
``strobe + depth * guard`` so the deepest nets are committed at the
strobe, which requires ``clk_to_q`` to exceed that margin — enforced at
construction with the actual numbers in the error.

Checkpoints are ``repro.session/v2`` payloads wrapping the inner
session's state plus the clocked bookkeeping (cycle index, register
values, pending launch events, stream levels) and the full clock spec;
restore refuses a checkpoint whose clock or cycle budget differs.
Accumulated output traces and the replay stimulus are *not* part of a
checkpoint — a restored session reports only post-restore segments.
"""

from __future__ import annotations

import math

from repro.circuits.gates import GateType, STATE_TYPES
from repro.circuits.netlist import Netlist
from repro.constants import NOMINAL_SLOPE, TIME_SCALE, VDD
from repro.core.session import (
    STATE_FORMAT,
    SimulationSession,
    concat_sigmoid_traces,
    encode_nonfinite,
)
from repro.core.trace import SigmoidalTrace
from repro.digital.session import concat_digital_traces
from repro.digital.trace import DigitalTrace
from repro.errors import SimulationError
from repro.options import ClockSpec


def _is_core_mapped(netlist: Netlist) -> bool:
    """Whether every combinational gate is already INV or NOR2."""
    for gate in netlist.gates.values():
        if gate.gtype in STATE_TYPES:
            continue
        if gate.gtype is GateType.INV:
            continue
        if gate.gtype is GateType.NOR and len(gate.inputs) == 2:
            continue
        return False
    return True


def prepare_sequential(netlist: Netlist) -> Netlist:
    """NOR-map a sequential netlist, preserving register/net names.

    State elements pass through :func:`~repro.circuits.nor_map.nor_map`
    untouched, so register names, fault sites and recorded nets mean
    the same thing before and after.  Already-mapped netlists are
    returned as-is.
    """
    if not netlist.is_sequential:
        raise SimulationError(
            f"netlist {netlist.name!r} has no state elements; use the "
            "combinational sessions directly"
        )
    if _is_core_mapped(netlist):
        return netlist
    from repro.circuits.nor_map import nor_map

    return nor_map(netlist)


class _ClockedSessionBase(SimulationSession):
    """Cycle bookkeeping shared by the digital and sigmoid variants.

    Subclasses supply ``_open_inner`` (the streaming session over the
    combinational frame), ``_make_trace`` (one fed chunk segment) and
    ``_consume`` (fold a feed's committed segments into the sampled net
    values).
    """

    def __init__(self, netlist: Netlist, clock: ClockSpec | None,
                 n_cycles: int) -> None:
        super().__init__()
        from repro.core.compile import netlist_digest

        if clock is None:
            clock = ClockSpec()
        if not isinstance(clock, ClockSpec):
            raise SimulationError(
                f"clock must be a ClockSpec, got {type(clock).__name__}"
            )
        if n_cycles < 1:
            raise SimulationError("n_cycles must be >= 1")
        self.sequential = prepare_sequential(netlist)
        self.clock = clock
        self.n_cycles = int(n_cycles)
        self._digest = netlist_digest(self.sequential)
        self.frame = self.sequential.combinational_frame()
        self._orig_pis = list(netlist.primary_inputs)
        self._orig_pos = list(netlist.primary_outputs)
        self._frame_pis = list(self.frame.primary_inputs)
        self._pi_index = {pi: j for j, pi in enumerate(self._frame_pis)}
        self._d_net = {
            name: self.sequential.gates[name].inputs[0]
            for name in self.sequential.state_elements
        }
        # Capture plan: state elements grouped by strobe offset within
        # the cycle; the cycle-closing ``period`` strobe always exists
        # so PO values are sampled (and the horizon advanced) each
        # cycle even in an all-LATCH design.
        by_offset: dict[float, list[str]] = {}
        for name in self.sequential.state_elements:
            offset = clock.capture_offset(self.sequential.gates[name].gtype)
            by_offset.setdefault(offset, []).append(name)
        by_offset.setdefault(clock.period, [])
        self._strobes = sorted(by_offset.items())
        span = clock.clk_to_q + len(self._frame_pis) * clock.stagger
        if span >= clock.period / 2:
            raise SimulationError(
                "launch window overflows the strobe spacing: clk_to_q "
                f"+ {len(self._frame_pis)} staggered launches spans "
                f"{span:.3e} s >= period/2 = {clock.period / 2:.3e} s; "
                "increase the period or reduce clk_to_q/stagger"
            )
        self.t_stop = (self.n_cycles + 1) * clock.period
        self._registers = {
            name: clock.init_for(name)
            for name in self.sequential.state_elements
        }
        self._level = dict(self._registers)  # frame-PI stream levels
        self._value: dict[str, bool] = {}  # sampled recorded-net values
        self._pending: list[tuple[float, int, str]] = []
        self._seq = 0
        self._cycle = 0
        self._started = False
        self.history: list[dict] = []
        self._segments: dict[str, list] = {
            net: [] for net in self.frame.primary_outputs
        }
        self._fed: dict[str, list[float]] = {
            pi: [] for pi in self._frame_pis
        }
        self._initial_levels: dict[str, bool] = {}

    # ------------------------------------------------------------------
    @property
    def registers(self) -> dict[str, bool]:
        """Current register values (after the latest strobe)."""
        return dict(self._registers)

    @property
    def cycle_index(self) -> int:
        return self._cycle

    def _schedule(self, time: float, net: str) -> None:
        self._pending.append((time, self._seq, net))
        self._seq += 1

    def _due(self, t: float) -> dict[str, list[float]]:
        """Pop pending launch events at or before ``t``, grouped by net."""
        self._pending.sort()
        k = 0
        while k < len(self._pending) and self._pending[k][0] <= t:
            k += 1
        due = self._pending[:k]
        del self._pending[:k]
        events: dict[str, list[float]] = {}
        for time, _seq, net in due:
            events.setdefault(net, []).append(time)
        return events

    def _value_of(self, net: str) -> bool:
        if net in self._pi_index:
            return self._level[net]
        return self._value[net]

    # ------------------------------------------------------------------
    def cycle(self, pi_values: dict[str, bool] | None = None) -> list[dict]:
        """Run one clock cycle; returns this cycle's strobe records.

        ``pi_values`` assigns primary inputs for the cycle — all of
        them on cycle 0 (the settled initial levels), any subset later
        (missing inputs hold their value).  Each returned record holds
        the strobe time, the register values after that strobe's
        captures, and the sampled primary-output values.
        """
        self._require_active()
        if self._cycle >= self.n_cycles:
            raise SimulationError(
                f"all {self.n_cycles} cycles have run; call finish()"
            )
        pi_values = dict(pi_values or {})
        unknown = sorted(set(pi_values) - set(self._orig_pis))
        if unknown:
            raise SimulationError(
                f"cycle stimulus names unknown primary inputs: {unknown}"
            )
        k = self._cycle
        clock = self.clock
        if k == 0:
            missing = [pi for pi in self._orig_pis if pi not in pi_values]
            if missing:
                raise SimulationError(
                    f"cycle 0 must assign every primary input; "
                    f"missing {missing}"
                )
            for pi in self._orig_pis:
                self._level[pi] = bool(pi_values[pi])
        else:
            base = k * clock.period + clock.clk_to_q
            for pi in self._orig_pis:
                if pi in pi_values:
                    value = bool(pi_values[pi])
                    if value != self._level_after_pending(pi):
                        self._schedule(
                            base + self._pi_index[pi] * clock.stagger, pi
                        )
        records = []
        for offset, regs in self._strobes:
            t_strobe = k * clock.period + offset
            self._feed_window(self._due(t_strobe), t_strobe)
            for reg in regs:
                new = self._value_of(self._d_net[reg])
                if new != self._registers[reg]:
                    self._schedule(
                        t_strobe
                        + clock.clk_to_q
                        + self._pi_index[reg] * clock.stagger,
                        reg,
                    )
                self._registers[reg] = new
            record = {
                "cycle": k,
                "time": t_strobe,
                "registers": dict(self._registers),
                "outputs": {
                    po: self._value_of(po) for po in self._orig_pos
                },
            }
            records.append(record)
            self.history.append(record)
        self._cycle += 1
        return records

    def _level_after_pending(self, pi: str) -> bool:
        """Stream level of a PI once its pending launches have fed."""
        toggles = sum(1 for _t, _s, net in self._pending if net == pi)
        return self._level[pi] ^ (toggles % 2 == 1)

    # ------------------------------------------------------------------
    def _feed_window(self, events: dict[str, list[float]], t: float) -> None:
        first = not self._started
        chunk = {}
        if first:
            for pi in self._frame_pis:
                self._initial_levels[pi] = self._level[pi]
                chunk[pi] = self._make_trace(pi, events.get(pi, ()))
            self._started = True
        else:
            for net, times in events.items():
                chunk[net] = self._make_trace(net, times)
        for net, times in events.items():
            self._fed[net].extend(times)
        segments = self._inner.feed([chunk], advance_to=self._advance(t))
        self._consume(segments[0], t)

    def finish(self) -> list[dict]:
        """Flush the inner session and close; returns the full history.

        Launch events scheduled after the final strobe (the last
        captures' ``clk_to_q`` propagation) are dropped — output traces
        end in the settled post-strobe state.
        """
        self._require_active()
        if not self._started:
            raise SimulationError("cannot finish before the first cycle")
        self._pending.clear()
        segments = self._inner.finish()
        self._consume(segments[0], math.inf)
        self._finished = True
        return self.history

    def po_traces(self) -> dict:
        """Accumulated committed traces of the frame outputs so far."""
        return {
            net: self._concat(segs)
            for net, segs in self._segments.items()
            if segs
        }

    def frame_stimulus(self) -> dict:
        """Everything fed to the frame so far, one trace per frame PI.

        After ``finish()`` this is the one-shot replay stimulus: feeding
        it to a fresh combinational session over :attr:`frame` in a
        single chunk must reproduce :meth:`po_traces` bitwise (digital)
        — the chunked-per-cycle == one-shot invariant.
        """
        if not self._started:
            raise SimulationError("no stimulus before the first cycle")
        return {
            pi: DigitalTrace(self._initial_levels[pi], self._fed[pi])
            for pi in self._frame_pis
        }

    # ------------------------------------------------------------------
    def state(self) -> dict:
        self._require_active()
        if not self._started:
            raise SimulationError(
                "nothing to checkpoint before the first cycle"
            )
        return encode_nonfinite({
            "format": STATE_FORMAT,
            "kind": self.kind,
            "mode": self._inner.mode,
            "digest": self._digest,
            "clock": self.clock.to_dict(),
            "n_cycles": self.n_cycles,
            "cycle": self._cycle,
            "seq": self._seq,
            "registers": {n: bool(v) for n, v in self._registers.items()},
            "levels": {n: bool(v) for n, v in self._level.items()},
            "values": {n: bool(v) for n, v in self._value.items()},
            "pending": [
                [float(t), int(s), str(n)] for t, s, n in self._pending
            ],
            "extra": self._extra_state(),
            "inner": self._inner.state(),
        })

    def restore(self, state: dict) -> None:
        self._require_active()
        self._check_header(state, self._inner.mode, self._digest)
        mismatches = []
        clock = ClockSpec.from_dict(state["clock"])
        if clock != self.clock:
            mismatches.append(
                f"clock is {state['clock']!r}, session expects "
                f"{self.clock.to_dict()!r}"
            )
        if int(state["n_cycles"]) != self.n_cycles:
            mismatches.append(
                f"n_cycles is {state['n_cycles']!r}, session expects "
                f"{self.n_cycles!r}"
            )
        if mismatches:
            raise SimulationError(
                "checkpoint mismatch: " + "; ".join(mismatches)
            )
        self._cycle = int(state["cycle"])
        self._seq = int(state["seq"])
        self._registers = {
            n: bool(v) for n, v in state["registers"].items()
        }
        self._level = {n: bool(v) for n, v in state["levels"].items()}
        self._value = {n: bool(v) for n, v in state["values"].items()}
        self._pending = [
            (float(t), int(s), str(n)) for t, s, n in state["pending"]
        ]
        self._restore_extra(state["extra"])
        self._inner.restore(state["inner"])
        self._started = True
        self.history = []
        self._segments = {
            net: [] for net in self.frame.primary_outputs
        }
        self._fed = {pi: [] for pi in self._frame_pis}
        self._initial_levels = {}

    # -- subclass hooks -------------------------------------------------
    def _make_trace(self, net: str, times):
        raise NotImplementedError

    def _advance(self, t: float) -> float:
        raise NotImplementedError

    def _consume(self, segments: dict, t: float) -> None:
        raise NotImplementedError

    def _concat(self, segments: list):
        raise NotImplementedError

    def _extra_state(self) -> dict:
        return {}

    def _restore_extra(self, extra: dict) -> None:
        pass


class ClockedDigitalSession(_ClockedSessionBase):
    """Multi-cycle digital execution (event heap or compiled lock-step).

    Bitwise contract: for the same sequential netlist, clock and
    stimulus, the compiled and event engines produce identical register
    values at every strobe and identical committed output traces — the
    staggered launches keep every event time unique, which is exactly
    the regime where the two cores agree event for event.
    """

    kind = "clocked-digital"

    def __init__(
        self,
        netlist: Netlist,
        delay_library,
        clock: ClockSpec | None = None,
        n_cycles: int = 1,
        compiled: bool = True,
        fault=None,
        state: dict | None = None,
    ) -> None:
        super().__init__(netlist, clock, n_cycles)
        from repro.digital.characterize import build_instance_delays
        from repro.digital.simulator import DigitalSimulator

        delays = build_instance_delays(self.frame, delay_library)
        self.simulator = DigitalSimulator(
            self.frame, delays, compiled=compiled
        )
        self._inner = self.simulator.open_session(
            [self.t_stop],
            record_nets=list(self.frame.primary_outputs),
            faults=[fault] if fault is not None else None,
        )
        if state is not None:
            self.restore(state)

    def _make_trace(self, net: str, times) -> DigitalTrace:
        trace = DigitalTrace(self._level[net], times)
        self._level[net] = trace.final_value()
        return trace

    def _advance(self, t: float) -> float:
        return t

    def _consume(self, segments: dict, t: float) -> None:
        # The digital watermark is exact (no guard): every committed
        # transition is <= the advanced horizon, so the segment's final
        # value IS the sampled value at the strobe.
        for net, seg in segments.items():
            self._value[net] = bool(seg.final_value())
            self._segments[net].append(seg)

    def _concat(self, segments: list) -> DigitalTrace:
        return concat_digital_traces(segments)


class ClockedSigmoidSession(_ClockedSessionBase):
    """Multi-cycle sigmoid execution (interpreted or fused compiled).

    The streaming guard makes each gate's committed horizon trail the
    fed horizon by ``guard`` per level, so every strobe feed advances
    to ``strobe + depth * guard`` (scaled) and ``clk_to_q`` must exceed
    that margin — otherwise the next cycle's launches would land at or
    before the inflated horizon and be rejected as out of order.
    Register sampling digitizes the committed trace at the strobe: the
    boolean value is the initial level toggled once per committed
    sigmoid transition crossing at or before the strobe.
    """

    kind = "clocked-sigmoid"

    def __init__(
        self,
        netlist: Netlist,
        bundle,
        clock: ClockSpec | None = None,
        n_cycles: int = 1,
        compiled: bool = True,
        target: str | None = None,
        guard: float | None = None,
        state: dict | None = None,
    ) -> None:
        super().__init__(netlist, clock, n_cycles)
        from repro.core.simulator import SigmoidCircuitSimulator

        self.simulator = SigmoidCircuitSimulator(
            self.frame, bundle, compiled=compiled, target=target
        )
        self._inner = self.simulator.open_session(
            list(self.frame.primary_outputs), guard=guard
        )
        self._margin_scaled = self.frame.depth() * self._inner.guard
        margin_seconds = self._margin_scaled / TIME_SCALE
        if self.clock.clk_to_q <= margin_seconds:
            raise SimulationError(
                "clk_to_q is inside the sigmoid streaming guard margin: "
                f"the committed horizon trails the fed horizon by depth "
                f"* guard = {self.frame.depth()} * {self._inner.guard} "
                f"scaled units = {margin_seconds:.3e} s, but clk_to_q "
                f"is {self.clock.clk_to_q:.3e} s; increase clk_to_q "
                "(and period) or lower the session guard"
            )
        self._pending_b: dict[str, list[float]] = {}
        if state is not None:
            self.restore(state)

    def _make_trace(self, net: str, times) -> SigmoidalTrace:
        level = self._level[net]
        value = level
        params = []
        for t in times:
            slope = NOMINAL_SLOPE if not value else -NOMINAL_SLOPE
            params.append((slope, t * TIME_SCALE))
            value = not value
        self._level[net] = value
        return SigmoidalTrace(int(level), params, vdd=VDD)

    def _advance(self, t: float) -> float:
        return t * TIME_SCALE + self._margin_scaled

    def _consume(self, segments: dict, t: float) -> None:
        t_scaled = t * TIME_SCALE if math.isfinite(t) else math.inf
        for net, seg in segments.items():
            if net not in self._value:
                self._value[net] = bool(seg.initial_level)
            buf = self._pending_b.setdefault(net, [])
            buf.extend(float(b) for _a, b in seg.params)
            self._segments[net].append(seg)
        # Committed-but-future transitions (the shallow nets run ahead
        # of the strobe) stay buffered for later strobes.
        for net, buf in self._pending_b.items():
            k = 0
            while k < len(buf) and buf[k] <= t_scaled:
                k += 1
            if k % 2:
                self._value[net] = not self._value[net]
            del buf[:k]

    def _concat(self, segments: list) -> SigmoidalTrace:
        return concat_sigmoid_traces(segments)

    def _extra_state(self) -> dict:
        return {
            "pending_b": {
                net: [float(b) for b in buf]
                for net, buf in self._pending_b.items()
            }
        }

    def _restore_extra(self, extra: dict) -> None:
        self._pending_b = {
            net: [float(b) for b in buf]
            for net, buf in extra["pending_b"].items()
        }


def run_clocked(session: _ClockedSessionBase, vectors) -> list[dict]:
    """Drive a clocked session through ``vectors`` (one dict per cycle)
    and finish it; returns the full strobe history."""
    for vec in vectors:
        session.cycle(vec)
    return session.finish()


def default_clock_for(netlist: Netlist, guard: float | None = None) -> ClockSpec:
    """A :class:`ClockSpec` sized to the netlist's frame depth.

    The sigmoid sessions need ``clk_to_q`` to clear the streaming guard
    margin (``depth * guard`` scaled units); this picks ``clk_to_q``
    with 2x headroom over that margin (never below the 4 ns default)
    and a period of four ``clk_to_q``, so every engine accepts the same
    clock for any circuit the harness draws.
    """
    from repro.core.session import STREAM_GUARD

    if guard is None:
        guard = STREAM_GUARD
    depth = prepare_sequential(netlist).combinational_frame().depth()
    margin_seconds = depth * guard / TIME_SCALE
    clk_to_q = max(4e-9, 2.0 * margin_seconds)
    return ClockSpec(period=4.0 * clk_to_q, clk_to_q=clk_to_q)
