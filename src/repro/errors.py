"""Exception hierarchy for the repro package.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch domain failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NetlistError(ReproError):
    """A gate-level netlist is malformed (dangling nets, cycles, ...)."""


class AnalogCircuitError(ReproError):
    """An analog circuit description is malformed or unsolvable."""


class SimulationError(ReproError):
    """A transient / event-driven simulation failed to run."""


class FittingError(ReproError):
    """Sigmoid fitting could not converge or produced invalid parameters."""


class ConvergenceError(FittingError):
    """An iterative optimizer exhausted its iteration budget."""


class DatasetError(ReproError):
    """A characterization dataset is empty, inconsistent, or unreadable."""


class ModelError(ReproError):
    """A trained model bundle is missing, stale, or malformed."""


class RegionError(ReproError):
    """A valid-region construction received degenerate input."""


class ServiceError(ReproError):
    """A prediction-service request could not be served."""


class ServiceOverloaded(ServiceError):
    """The service's bounded request queue is full (backpressure)."""


class ServiceTimeout(ServiceError):
    """A request's deadline expired before a worker executed it."""


class ServiceClosed(ServiceError):
    """The service is draining or closed and accepts no new work."""
