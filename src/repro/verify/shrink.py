"""Counterexample minimizer for the differential harness.

When a cross-simulator invariant fails on a fuzzed circuit, reporting the
whole netlist is useless for debugging — the interesting physics usually
lives in a handful of gates.  :func:`shrink_circuit` reduces a failing
netlist to a (locally) minimal gate subgraph that still fails the given
predicate, delta-debugging style:

1. **cone extraction** — restrict to the transitive fanin of one failing
   output (the smallest failing single-PO cone wins);
2. **greedy bypass** — repeatedly try to delete a gate by rewiring its
   consumers to one of its input nets, keeping any deletion that
   preserves the failure, until a fixed point (or the eval budget) is
   reached.

Both steps only ever produce valid netlists: nets stay single-driver,
the graph stays acyclic, and INV/NOR2-only circuits stay INV/NOR2-only
(a NOR2 whose inputs become tied is the mapping's inverter cell, which
every simulator in the repo accepts).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.circuits.netlist import Netlist

#: Default budget of predicate evaluations (each one re-runs simulators).
DEFAULT_MAX_EVALS = 80


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    netlist: Netlist
    n_evals: int = 0
    history: list[str] = field(default_factory=list)

    @property
    def n_gates(self) -> int:
        return self.netlist.n_gates


def cone_of(
    netlist: Netlist, outputs: list[str], name: str | None = None
) -> Netlist:
    """The subcircuit feeding ``outputs``: transitive fanin only.

    Keeps exactly the gates (and primary inputs) reachable backwards from
    ``outputs``; the new netlist's POs are ``outputs`` in the given
    order.  Gate and net names are preserved.
    """
    keep: set[str] = set()
    stack = [net for net in outputs]
    while stack:
        net = stack.pop()
        if net in keep:
            continue
        keep.add(net)
        gate = netlist.gates.get(net)
        if gate is not None:
            stack.extend(gate.inputs)
    cone = Netlist(name if name is not None else netlist.name)
    for pi in netlist.primary_inputs:
        if pi in keep:
            cone.add_input(pi)
    for gate_name in netlist.topological_order():
        if gate_name in keep:
            gate = netlist.gates[gate_name]
            cone.add_gate(gate_name, gate.gtype, list(gate.inputs))
    for po in outputs:
        cone.add_output(po)
    cone.validate()
    return cone


def bypass_gate(
    netlist: Netlist, gate_name: str, replacement: str
) -> Netlist | None:
    """Delete ``gate_name``, rewiring its readers to ``replacement``.

    ``replacement`` must be one of the gate's input nets (guaranteeing
    acyclicity).  Dead logic left behind is pruned by re-taking the cone
    of the remaining POs.  Returns ``None`` when the deletion is not
    applicable (unknown gate, bad replacement, or it would leave no
    primary outputs).
    """
    gate = netlist.gates.get(gate_name)
    if gate is None or replacement not in gate.inputs:
        return None
    rewired = Netlist(netlist.name)
    for pi in netlist.primary_inputs:
        rewired.add_input(pi)
    for name in netlist.topological_order():
        if name == gate_name:
            continue
        other = netlist.gates[name]
        inputs = [
            replacement if net == gate_name else net for net in other.inputs
        ]
        rewired.add_gate(name, other.gtype, inputs)
    outputs: list[str] = []
    for po in netlist.primary_outputs:
        mapped = replacement if po == gate_name else po
        if mapped not in outputs:
            outputs.append(mapped)
    if not outputs:  # pragma: no cover - POs never vanish entirely
        return None
    return cone_of(rewired, outputs)


def shrink_circuit(
    netlist: Netlist,
    predicate: Callable[[Netlist], bool],
    max_evals: int = DEFAULT_MAX_EVALS,
) -> ShrinkResult:
    """Minimize ``netlist`` while ``predicate`` keeps returning True.

    ``predicate(candidate)`` must return True when the candidate still
    exhibits the failure being chased.  The input netlist itself is
    assumed failing (the caller just observed it fail); it is returned
    unchanged when no smaller failing circuit is found within
    ``max_evals`` predicate evaluations.
    """
    result = ShrinkResult(netlist)

    def still_fails(candidate: Netlist) -> bool:
        result.n_evals += 1
        return predicate(candidate)

    # Phase 1: smallest failing single-output cone.
    best = netlist
    cones = sorted(
        (cone_of(netlist, [po]) for po in netlist.primary_outputs),
        key=lambda cone: cone.n_gates,
    )
    for cone in cones:
        if cone.n_gates >= best.n_gates or result.n_evals >= max_evals:
            break
        if still_fails(cone):
            best = cone
            result.history.append(
                f"cone {cone.primary_outputs[0]}: {cone.n_gates} gates"
            )
            break

    # Phase 2: greedy gate bypass to a fixed point.
    improved = True
    while improved and result.n_evals < max_evals:
        improved = False
        for gate_name in reversed(best.topological_order()):
            gate = best.gates[gate_name]
            for replacement in dict.fromkeys(gate.inputs):
                candidate = bypass_gate(best, gate_name, replacement)
                if candidate is None or candidate.n_gates >= best.n_gates:
                    continue
                if result.n_evals >= max_evals:
                    break
                if still_fails(candidate):
                    best = candidate
                    result.history.append(
                        f"bypass {gate_name} -> {replacement}: "
                        f"{candidate.n_gates} gates"
                    )
                    improved = True
                    break
            if improved or result.n_evals >= max_evals:
                break

    result.netlist = best
    return result
