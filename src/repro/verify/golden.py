"""Golden-snapshot store for differential-verification runs.

Records, per circuit, the digitized waveforms and ``t_err`` scores a
differential run produced, as JSON under ``artifacts/golden/``.  A later
run of the same corpus compares against the stored snapshot and reports
drift — the safety net every refactor PR runs against: a change that
shifts a predicted transition by more than the comparison tolerance
shows up as a ``golden`` violation naming circuit, run seed, output and
stream.

Snapshots are intentionally *tolerance*-compared (not hash-compared):
transition times come out of floating-point integration, so bitwise
equality across platforms is not a meaningful contract, but agreement to
``TIME_ATOL`` (well under a gate delay) is.  ``--update-golden`` on the
fuzz CLI rewrites the snapshots after an intentional behavior change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.characterization.artifacts import artifacts_dir
from repro.verify.differential import DifferentialReport, InvariantViolation

#: Transition-time comparison tolerance (0.05 ps: far below any gate
#: delay, far above cross-platform float noise).
TIME_ATOL = 5e-14

#: Score comparison tolerance (t_err values are sums of time windows).
SCORE_ATOL = 1e-13

#: Snapshot format version; bump on incompatible payload changes.
GOLDEN_VERSION = 1


def default_golden_dir() -> Path:
    return artifacts_dir() / "golden"


@dataclass
class GoldenStore:
    """One directory of per-circuit golden snapshots."""

    directory: Path
    prefix: str = ""

    def path(self, circuit: str) -> Path:
        name = f"{self.prefix}{circuit}.json"
        return self.directory / name

    # ------------------------------------------------------------------
    def record(self, report: DifferentialReport) -> Path:
        """Write (or overwrite) the snapshot for ``report``'s circuit."""
        payload = {
            "version": GOLDEN_VERSION,
            "circuit": report.circuit,
            "n_gates": report.n_gates,
            "reference": report.reference,
            "runs": report.runs,
        }
        path = self.path(report.circuit)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True))
        return path

    def load(self, circuit: str) -> dict | None:
        path = self.path(circuit)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    # ------------------------------------------------------------------
    def compare(self, report: DifferentialReport) -> list[InvariantViolation]:
        """Diff ``report`` against the stored snapshot.

        Returns ``golden`` violations.  A missing or unreadable snapshot
        file is itself a violation naming the path — a checked campaign
        whose baseline is absent verifies nothing, so it must fail
        loudly (record the baseline with ``--update-golden``, or skip
        the layer with ``--no-golden``) instead of crashing with a
        traceback or silently passing.
        """
        violations: list[InvariantViolation] = []

        def drift(seed: int, output: str | None, message: str,
                  magnitude: float = 0.0) -> None:
            violations.append(
                InvariantViolation(
                    "golden", report.circuit, seed, output,
                    message, magnitude,
                )
            )

        try:
            golden = self.load(report.circuit)
            if golden is not None and not isinstance(golden, dict):
                raise json.JSONDecodeError(
                    f"expected a snapshot object, got {type(golden).__name__}",
                    "", 0,
                )
        except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
            drift(-1, None,
                  f"golden snapshot {self.path(report.circuit)} is "
                  f"unreadable ({exc}); re-record it with --update-golden")
            return violations
        if golden is None:
            drift(-1, None,
                  f"golden snapshot {self.path(report.circuit)} is "
                  "missing; record it with --update-golden or skip the "
                  "comparison with --no-golden")
            return violations

        if golden.get("version") != GOLDEN_VERSION:
            drift(-1, None,
                  f"snapshot version {golden.get('version')} != "
                  f"{GOLDEN_VERSION} (re-record with --update-golden)")
            return violations
        if golden["reference"] != report.reference:
            drift(-1, None,
                  f"snapshot was recorded with the {golden['reference']} "
                  f"reference, run used {report.reference}")
            return violations
        if len(golden["runs"]) != len(report.runs):
            drift(-1, None,
                  f"snapshot has {len(golden['runs'])} runs, "
                  f"run produced {len(report.runs)}")
            return violations

        for want, got in zip(golden["runs"], report.runs):
            seed = got["seed"]
            if want["seed"] != seed:
                drift(seed, None, f"run seed changed from {want['seed']}")
                continue
            for label in ("t_err_digital", "t_err_sigmoid"):
                delta = abs(want[label] - got[label])
                if delta > SCORE_ATOL:
                    drift(seed, None,
                          f"{label} drifted by {delta * 1e12:.4f} ps "
                          f"({want[label]:.3e} -> {got[label]:.3e})",
                          magnitude=delta)
            # Sequential runs additionally snapshot the per-strobe
            # register/PO samples; those are integers, so the diff is
            # exact (no tolerance).  Combinational snapshots have no
            # "registers" key and skip this block entirely.
            want_regs = want.get("registers")
            got_regs = got.get("registers")
            if (want_regs is None) != (got_regs is None):
                drift(seed, None,
                      "run gained/lost its sequential register history "
                      "(re-record with --update-golden)")
            elif want_regs is not None:
                if len(want_regs) != len(got_regs):
                    drift(seed, None,
                          f"capture-strobe count changed "
                          f"({len(want_regs)} -> {len(got_regs)})")
                else:
                    for want_rec, got_rec in zip(want_regs, got_regs):
                        for key in ("registers", "outputs"):
                            if want_rec[key] != got_rec[key]:
                                drift(seed, None,
                                      f"cycle {got_rec['cycle']} {key} "
                                      f"changed: {want_rec[key]} -> "
                                      f"{got_rec[key]}")
            if set(want["outputs"]) != set(got["outputs"]):
                drift(seed, None, "primary-output set changed")
                continue
            for po, want_streams in want["outputs"].items():
                got_streams = got["outputs"][po]
                for stream, want_trace in want_streams.items():
                    got_trace = got_streams.get(stream)
                    if got_trace is None:
                        drift(seed, po, f"stream {stream!r} disappeared")
                        continue
                    if want_trace["initial"] != got_trace["initial"]:
                        drift(seed, po,
                              f"{stream} initial level changed")
                        continue
                    want_times = np.asarray(want_trace["times"])
                    got_times = np.asarray(got_trace["times"])
                    if want_times.size != got_times.size:
                        drift(seed, po,
                              f"{stream} transition count changed "
                              f"({want_times.size} -> {got_times.size})")
                        continue
                    if want_times.size and not np.allclose(
                        want_times, got_times, rtol=0.0, atol=TIME_ATOL
                    ):
                        delta = float(
                            np.max(np.abs(want_times - got_times))
                        )
                        drift(seed, po,
                              f"{stream} transition times drifted by up "
                              f"to {delta * 1e12:.4f} ps",
                              magnitude=delta)
        return violations
