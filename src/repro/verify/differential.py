"""Differential cross-simulator verification harness.

Drives one circuit + one randomized stimulus set through the repo's
simulators and checks that they agree where the physics says they must:

* ``logic`` — at the end of every run (after the settling allowance) each
  simulator's primary outputs hold the boolean evaluation of the final
  primary-input values; with the analog reference enabled, the digital
  and sigmoid simulators must also match the *analog* settled value.
* ``delay`` — the paper's ``t_err`` score of each simulator against the
  reference stays under a per-transition budget; a delay-model bug (or a
  mis-trained transfer model) blows through it immediately.
* ``parity`` — the batched evaluation pipeline agrees with the serial
  per-run reference path (scores to sub-femtosecond, digitized traces to
  the same tolerance), guarding the lock-step batching machinery.
* ``streaming`` — chunked execution through the stateful sessions
  (:mod:`repro.core.session`, :mod:`repro.digital.session`) reproduces
  the one-shot runs at several chunk sizes (1 transition, small,
  full-trace): bitwise for both digital cores, within 0.05 ps per
  transition parameter for both sigmoid cores.
* ``sequential`` — sequential netlists (DFF/LATCH) take this dedicated
  multi-cycle path through the clocked sessions (:mod:`repro.clocked`)
  instead of the combinational checks: all four engines must agree on
  every register value and primary-output sample at every capture
  strobe, the two digital cores bitwise on the committed output traces,
  the two sigmoid kernels within the 0.05 ps parameter bound,
  chunked-per-cycle execution must equal a one-shot replay of the
  collected frame stimulus, and a mid-run checkpoint/restore must
  resume exactly.

Two reference modes share one report format: ``reference="analog"`` runs
the full three-simulator comparison through
:class:`~repro.eval.runner.ExperimentRunner` (the Table-I pipeline);
``reference="digital"`` skips the analog engine and cross-checks the
event-driven digital simulator against the sigmoid simulator, which is
cheap enough for c499/c1355-class circuits in CI.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Callable

import numpy as np

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.circuits.nor_map import nor_map
from repro.core.models import GateModelBundle
from repro.core.simulator import SigmoidCircuitSimulator
from repro.core.trace import SigmoidalTrace
from repro.digital.characterize import build_instance_delays
from repro.digital.delay import DelayLibrary
from repro.digital.simulator import DigitalSimulator
from repro.digital.trace import DigitalTrace
from repro.errors import SimulationError
from repro.eval.metrics import total_mismatch_time
from repro.eval.runner import ExperimentRunner, simulation_span
from repro.eval.stimuli import StimulusConfig, draw_pi_stimulus
from repro.options import (
    _UNSET,
    ExecutionOptions,
    execution_aliases,
    normalize_execution,
)

#: Checks the harness knows; ``DifferentialConfig.checks`` selects a
#: subset.  ``sequential`` is implied for sequential netlists (they
#: always run the multi-cycle path) and ignored for combinational ones.
ALL_CHECKS = ("logic", "delay", "parity", "streaming", "sequential")

#: Chunked-vs-one-shot sigmoid agreement bound in scaled time units:
#: 0.05 ps (the golden-snapshot tolerance) is 5e-4 scaled units.  The
#: digital simulators stream bitwise, so they get no tolerance at all.
STREAM_PARAM_ATOL = 5e-4

#: Delay-budget allowance for *extra* predicted transitions, in budget
#: units.  The slope-blind digital baseline legitimately emits a few
#: pulses the analog reference filters, so those earn budget — but the
#: allowance is capped: a simulator bug that oscillates cannot keep
#: financing its own mismatch with its own transition count.
SPURIOUS_TRANSITION_ALLOWANCE = 4


@execution_aliases("compiled", "target", readonly=True)
@dataclass(frozen=True)
class DifferentialConfig:
    """One differential-verification run.

    ``*_err_per_transition`` size the ``delay`` budgets: an output may
    accumulate that much mismatch time per reference transition, plus
    one settling-skew unit, plus a *capped* allowance for extra
    predicted transitions (the slope-blind digital baseline emits a few
    pulses the analog reference filters; the cap —
    :data:`SPURIOUS_TRANSITION_ALLOWANCE` — keeps an oscillating
    simulator bug from financing its own mismatch).
    ``*_transition_shift`` bound the per-transition time error whenever
    transition counts agree; the digital bound is looser because fixed
    per-arc delays accumulate honest slope-blindness error the paper
    quantifies.  All defaults carry >= 1.8x margin over the worst value
    observed on the committed seed-0 tiny corpus — they catch
    delay-model perturbations, not modeling noise.  ``parity_atol``
    bounds the batched-vs-serial score difference per output (the
    batching layer promises sub-femtosecond agreement).
    """

    stimulus: StimulusConfig = StimulusConfig(20e-12, 10e-12, 2)
    n_runs: int = 2
    seed: int = 0
    checks: tuple[str, ...] = ALL_CHECKS
    reference: str = "analog"
    #: Shared execution knobs (:class:`~repro.options.ExecutionOptions`).
    #: ``compiled`` — run the digital/sigmoid simulators on their
    #: compiled levelized cores (the production default); ``False``
    #: keeps the interpreted walks, which is how the harness
    #: cross-checks the two paths.  It stays accepted as a constructor
    #: kwarg and readable as ``config.compiled`` (a read-only alias —
    #: the config is frozen).
    execution: ExecutionOptions | None = None
    compiled: InitVar = _UNSET
    target: InitVar = _UNSET
    digital_err_per_transition: float = 60e-12
    sigmoid_err_per_transition: float = 60e-12
    digital_transition_shift: float = 100e-12
    sigmoid_transition_shift: float = 80e-12
    #: Depth-scaled floor of the shift bounds: per-level modeling drift
    #: accumulates linearly with logic depth, so each bound is applied
    #: as ``max(bound, depth * transition_shift_per_level)`` — the
    #: fixed bounds govern the shallow corpus, the per-level term the
    #: deep benchmark zoo (c3540-class carry chains run ~190 levels;
    #: the worst committed-zoo shift stays >= 1.8x under this floor).
    transition_shift_per_level: float = 1.8e-12
    parity_atol: float = 1e-15
    max_runs_per_batch: int = 64
    #: Clock cycles per run of the ``sequential`` multi-cycle path; the
    #: clock itself comes from ``execution.clock`` (default: sized to
    #: the frame depth by :func:`repro.clocked.default_clock_for`).
    n_cycles: int = 4
    #: Chunk sizes (merged PI transitions per feed) the ``streaming``
    #: check replays every stimulus at; a full-trace single chunk is
    #: always appended, so the default covers {1, small, full}.
    #: Size-1 chunks put a session boundary between every pair of
    #: transitions — including mid-transition of every multi-PI overlap.
    stream_chunk_sizes: tuple[int, ...] = (1, 7)

    def __post_init__(self, compiled, target) -> None:
        object.__setattr__(
            self,
            "execution",
            normalize_execution(
                self.execution, compiled=compiled, target=target
            ),
        )
        unknown = set(self.checks) - set(ALL_CHECKS)
        if unknown:
            raise SimulationError(f"unknown checks: {sorted(unknown)}")
        if self.reference not in ("analog", "digital"):
            raise SimulationError("reference must be 'analog' or 'digital'")
        if self.n_runs < 1:
            raise SimulationError("need at least one run")
        if any(cs < 1 for cs in self.stream_chunk_sizes):
            raise SimulationError("stream chunk sizes must be >= 1")
        if self.n_cycles < 1:
            raise SimulationError("n_cycles must be >= 1")


@dataclass
class InvariantViolation:
    """One broken cross-simulator invariant."""

    check: str
    circuit: str
    seed: int
    output: str | None
    message: str
    magnitude: float = 0.0

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "circuit": self.circuit,
            "seed": self.seed,
            "output": self.output,
            "message": self.message,
            "magnitude": self.magnitude,
        }


@dataclass
class DifferentialReport:
    """All findings of one circuit's differential run."""

    circuit: str
    n_gates: int
    reference: str
    checks: tuple[str, ...]
    violations: list[InvariantViolation] = field(default_factory=list)
    runs: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "n_gates": self.n_gates,
            "reference": self.reference,
            "checks": list(self.checks),
            "violations": [v.to_dict() for v in self.violations],
            "runs": self.runs,
        }


def _trace_payload(trace: DigitalTrace) -> dict:
    return {
        "initial": int(trace.initial),
        "times": [float(t) for t in trace.times],
    }


def ensure_nor_mapped(netlist: Netlist) -> Netlist:
    """NOR-map unless every combinational gate is already INV/NOR2.

    State elements (DFF/LATCH) pass through :func:`nor_map` verbatim,
    so a sequential netlist counts as mapped once its combinational
    frame is.
    """
    from repro.circuits.gates import STATE_TYPES

    for gate in netlist.gates.values():
        if gate.gtype in STATE_TYPES:
            continue
        if gate.gtype is GateType.INV:
            continue
        if gate.gtype is GateType.NOR and len(gate.inputs) == 2:
            continue
        return nor_map(netlist)
    return netlist


def _final_pi_values(pi_digital: dict[str, DigitalTrace]) -> dict[str, bool]:
    return {pi: trace.final_value() for pi, trace in pi_digital.items()}


def _digital_stimuli(
    primary_inputs: list[str], config: StimulusConfig, seed: int
) -> tuple[dict[str, DigitalTrace], float]:
    """The digital twin of :func:`repro.eval.stimuli.random_pi_sources`.

    Both run the exact per-PI draw of
    :func:`~repro.eval.stimuli.draw_pi_stimulus` on the same per-seed
    stream, so the two reference modes see the same abstract stimulus.
    """
    rng = np.random.default_rng(seed)
    traces: dict[str, DigitalTrace] = {}
    t_last = 0.0
    for pi in primary_inputs:
        times, level = draw_pi_stimulus(config, rng)
        traces[pi] = DigitalTrace(bool(level), [float(t) for t in times])
        t_last = max(t_last, float(times[-1]))
    return traces, t_last


class _LogicChecker:
    """Settled-value agreement bookkeeping shared by both modes."""

    def __init__(self, report: DifferentialReport, core: Netlist) -> None:
        self.report = report
        self.core = core

    def check(
        self,
        seed: int,
        pi_digital: dict[str, DigitalTrace],
        streams: dict[str, dict[str, DigitalTrace]],
        reference_stream: str,
    ) -> None:
        expected = self.core.evaluate_outputs(_final_pi_values(pi_digital))
        reference = streams[reference_stream]
        for po, want in expected.items():
            settled = reference[po].final_value()
            if settled != want:
                self.report.violations.append(
                    InvariantViolation(
                        "logic",
                        self.report.circuit,
                        seed,
                        po,
                        f"{reference_stream} reference settled to "
                        f"{int(settled)}, boolean evaluation expects "
                        f"{int(want)}",
                    )
                )
            for name, traces in streams.items():
                if name == reference_stream:
                    continue
                got = traces[po].final_value()
                if got != settled:
                    self.report.violations.append(
                        InvariantViolation(
                            "logic",
                            self.report.circuit,
                            seed,
                            po,
                            f"{name} settled to {int(got)}, "
                            f"{reference_stream} reference holds "
                            f"{int(settled)}",
                        )
                    )


def _check_delay(
    report: DifferentialReport,
    seed: int,
    label: str,
    per_transition: float,
    shift_bound: float,
    references: dict[str, DigitalTrace],
    predictions: dict[str, DigitalTrace],
    t_stop: float,
    depth: int = 0,
    shift_per_level: float = 0.0,
) -> None:
    """Per-output delay agreement against the reference stream.

    Two complementary bounds per output: the accumulated mismatch time
    stays under ``per_transition`` per reference transition (plus one
    settling allowance and a capped allowance for spurious predicted
    pulses), and — whenever reference and prediction carry the same
    transition count — every individual transition lands within
    ``shift_bound`` of its reference twin.  The first catches erased/extra pulses, the second catches
    uniform delay shifts that mismatch time alone under-weighs (a shift
    can never accumulate more mismatch than the signal's total pulse
    width).  The shift bound is floored at ``depth * shift_per_level``:
    per-level drift accumulates linearly, so deep circuits earn a
    proportionally larger (never smaller) allowance.
    """
    shift_bound = max(shift_bound, depth * shift_per_level)
    for po, reference in references.items():
        prediction = predictions[po]
        extra = min(
            max(prediction.n_transitions - reference.n_transitions, 0),
            SPURIOUS_TRANSITION_ALLOWANCE,
        )
        units = reference.n_transitions + extra + 1
        budget = per_transition * units
        t_err = reference.mismatch_time(prediction, 0.0, t_stop)
        if t_err > budget:
            report.violations.append(
                InvariantViolation(
                    "delay",
                    report.circuit,
                    seed,
                    po,
                    f"{label} mismatch on {po} is {t_err * 1e12:.2f} ps, "
                    f"budget {budget * 1e12:.2f} ps "
                    f"({reference.n_transitions} reference / "
                    f"{prediction.n_transitions} predicted transitions)",
                    magnitude=t_err - budget,
                )
            )
        if (
            reference.n_transitions
            and reference.n_transitions == prediction.n_transitions
            and reference.initial == prediction.initial
        ):
            shift = max(
                abs(a - b)
                for a, b in zip(prediction.times, reference.times)
            )
            if shift > shift_bound:
                report.violations.append(
                    InvariantViolation(
                        "delay",
                        report.circuit,
                        seed,
                        po,
                        f"{label} transition on {po} shifted by "
                        f"{shift * 1e12:.2f} ps (bound "
                        f"{shift_bound * 1e12:.0f} ps)",
                        magnitude=shift - shift_bound,
                    )
                )


def _check_streaming(
    report: DifferentialReport,
    config: DifferentialConfig,
    digital: DigitalSimulator,
    sigmoid: SigmoidCircuitSimulator,
    pi_digital_runs: "list[dict[str, DigitalTrace]]",
    t_stops: "list[float]",
    pos: "list[str]",
) -> None:
    """Chunked sessions reproduce one-shot runs at every chunk size.

    Replays the stimulus through streaming sessions at each configured
    chunk size plus a full-trace chunk.  Size-1 chunks place a session
    boundary between every pair of merged PI transitions, so boundaries
    land mid-transition of every overlapping input pair.  Digital
    streams must match **bitwise**; sigmoid streams must agree within
    :data:`STREAM_PARAM_ATOL` scaled units (0.05 ps) per transition
    parameter.
    """
    from repro.core.session import stream_sigmoid_batch
    from repro.digital.session import stream_digital_batch

    pi_set = set(digital.netlist.primary_inputs)
    sig_pos = [po for po in pos if po not in pi_set]
    pi_sigmoid_runs = [
        {
            pi: SigmoidalTrace.from_digital(trace)
            for pi, trace in pi_digital.items()
        }
        for pi_digital in pi_digital_runs
    ]
    ref_digital = digital.simulate_batch(pi_digital_runs, t_stops)
    ref_sigmoid = sigmoid.simulate_batch(pi_sigmoid_runs, record_nets=sig_pos)

    n_max = max(
        (
            trace.n_transitions
            for pi_digital in pi_digital_runs
            for trace in pi_digital.values()
        ),
        default=0,
    )
    sizes: list[int] = []
    for cs in tuple(config.stream_chunk_sizes) + (max(n_max, 1),):
        if cs not in sizes:
            sizes.append(cs)

    for cs in sizes:
        got_digital = stream_digital_batch(
            digital, pi_digital_runs, t_stops, cs, record_nets=pos
        )
        for run in range(len(pi_digital_runs)):
            for po in pos:
                ref = ref_digital[run][po]
                got = got_digital[run][po]
                if ref.initial != got.initial or ref.times != got.times:
                    report.violations.append(
                        InvariantViolation(
                            "streaming",
                            report.circuit,
                            config.seed + run,
                            po,
                            f"chunked digital trace (chunk_size={cs}) "
                            f"diverges from one-shot on {po}: "
                            f"{ref.n_transitions} vs {got.n_transitions} "
                            "transitions (bitwise contract)",
                        )
                    )
        got_sigmoid = stream_sigmoid_batch(
            sigmoid, pi_sigmoid_runs, cs, record_nets=sig_pos
        )
        for run in range(len(pi_sigmoid_runs)):
            for po in sig_pos:
                ref = ref_sigmoid[run][po]
                got = got_sigmoid[run][po]
                if (
                    ref.initial_level != got.initial_level
                    or ref.n_transitions != got.n_transitions
                ):
                    report.violations.append(
                        InvariantViolation(
                            "streaming",
                            report.circuit,
                            config.seed + run,
                            po,
                            f"chunked sigmoid trace (chunk_size={cs}) "
                            f"changes shape on {po}: "
                            f"{ref.n_transitions} vs {got.n_transitions} "
                            "transitions",
                        )
                    )
                    continue
                if ref.n_transitions:
                    drift = float(
                        np.max(np.abs(ref.params - got.params))
                    )
                    if drift > STREAM_PARAM_ATOL:
                        report.violations.append(
                            InvariantViolation(
                                "streaming",
                                report.circuit,
                                config.seed + run,
                                po,
                                f"chunked sigmoid trace (chunk_size={cs}) "
                                f"drifts by {drift:.2e} scaled units on "
                                f"{po} (bound {STREAM_PARAM_ATOL:.0e} = "
                                "0.05 ps)",
                                magnitude=drift - STREAM_PARAM_ATOL,
                            )
                        )


def run_differential(
    netlist: Netlist,
    bundle: GateModelBundle,
    delay_library: DelayLibrary,
    config: DifferentialConfig | None = None,
    mutate_runner: "Callable[[ExperimentRunner], None] | None" = None,
) -> DifferentialReport:
    """Run every configured invariant check on one circuit.

    ``netlist`` may use any supported gate type; it is NOR-mapped on the
    fly when needed.  ``mutate_runner`` is a test-only hook applied to
    the freshly built :class:`ExperimentRunner` (analog mode) — the fuzz
    suite uses it to inject delay-model perturbations that the harness
    must catch and shrink.
    """
    if config is None:
        config = DifferentialConfig()
    core = ensure_nor_mapped(netlist)
    if core.is_sequential:
        if mutate_runner is not None:
            raise SimulationError(
                "mutate_runner is only supported with the analog reference"
            )
        return _run_sequential(core, bundle, delay_library, config)
    if config.reference == "analog":
        return _run_analog(core, bundle, delay_library, config, mutate_runner)
    return _run_digital(core, bundle, delay_library, config, mutate_runner)


# ----------------------------------------------------------------------
# analog-reference mode: the full three-simulator comparison
# ----------------------------------------------------------------------
def _run_analog(
    core: Netlist,
    bundle: GateModelBundle,
    delay_library: DelayLibrary,
    config: DifferentialConfig,
    mutate_runner,
) -> DifferentialReport:
    report = DifferentialReport(
        core.name, core.n_gates, config.reference, config.checks
    )
    runner = ExperimentRunner(
        core,
        bundle,
        delay_library,
        compiled=config.compiled,
        target=config.target,
    )
    if mutate_runner is not None:
        mutate_runner(runner)
    seeds = [config.seed + k for k in range(config.n_runs)]
    results = runner.run_batch(
        config.stimulus,
        seeds,
        max_runs_per_batch=config.max_runs_per_batch,
        keep_traces=True,
    )
    logic = _LogicChecker(report, core)
    pos = core.primary_outputs
    depth = core.depth()
    for result in results:
        traces = result.po_traces
        references = traces["references"]
        streams = {
            "analog": references,
            "digital": traces["digital"],
            "sigmoid": {
                po: traces["sigmoid"][po].digitize() for po in pos
            },
        }
        if "logic" in config.checks:
            logic.check(result.seed, traces["pi_digital"], streams, "analog")
        if "delay" in config.checks:
            _check_delay(
                report, result.seed, "digital",
                config.digital_err_per_transition,
                config.digital_transition_shift,
                references, streams["digital"], result.t_stop,
                depth=depth,
                shift_per_level=config.transition_shift_per_level,
            )
            _check_delay(
                report, result.seed, "sigmoid",
                config.sigmoid_err_per_transition,
                config.sigmoid_transition_shift,
                references, streams["sigmoid"], result.t_stop,
                depth=depth,
                shift_per_level=config.transition_shift_per_level,
            )
        report.runs.append(
            {
                "seed": result.seed,
                "t_err_digital": result.t_err_digital,
                "t_err_sigmoid": result.t_err_sigmoid,
                "outputs": {
                    po: {
                        name: _trace_payload(stream[po])
                        for name, stream in streams.items()
                    }
                    for po in pos
                },
            }
        )
    if "parity" in config.checks:
        _check_parity(report, runner, config, results[0])
    if "streaming" in config.checks:
        _check_streaming(
            report,
            config,
            runner.digital,
            runner.sigmoid,
            [r.po_traces["pi_digital"] for r in results],
            [r.t_stop for r in results],
            pos,
        )
    return report


def _check_parity(
    report: DifferentialReport,
    runner: ExperimentRunner,
    config: DifferentialConfig,
    batched,
) -> None:
    """Serial reference path vs the batched pipeline, first seed."""
    serial = runner.run(config.stimulus, batched.seed, keep_traces=True)
    n_pos = max(1, len(runner.core.primary_outputs))
    tol = config.parity_atol * n_pos
    for label, a, b in (
        ("t_err_digital", serial.t_err_digital, batched.t_err_digital),
        ("t_err_sigmoid", serial.t_err_sigmoid, batched.t_err_sigmoid),
    ):
        if abs(a - b) > tol:
            report.violations.append(
                InvariantViolation(
                    "parity",
                    report.circuit,
                    batched.seed,
                    None,
                    f"{label} serial {a:.3e} vs batched {b:.3e} "
                    f"differs by {abs(a - b):.3e} s (tol {tol:.1e})",
                    magnitude=abs(a - b),
                )
            )
    for po in runner.core.primary_outputs:
        serial_trace = serial.po_traces["sigmoid"][po].digitize()
        batch_trace = batched.po_traces["sigmoid"][po].digitize()
        same = (
            serial_trace.initial == batch_trace.initial
            and serial_trace.n_transitions == batch_trace.n_transitions
            and np.allclose(
                serial_trace.times,
                batch_trace.times,
                rtol=0.0,
                atol=config.parity_atol,
            )
        )
        if not same:
            report.violations.append(
                InvariantViolation(
                    "parity",
                    report.circuit,
                    batched.seed,
                    po,
                    "batched sigmoid trace diverges from the serial path "
                    f"({serial_trace.n_transitions} vs "
                    f"{batch_trace.n_transitions} transitions)",
                )
            )


# ----------------------------------------------------------------------
# sequential mode: all four engines through the clocked sessions
# ----------------------------------------------------------------------
def _sequential_vectors(
    primary_inputs: "list[str]", n_cycles: int, seed: int
) -> "list[dict[str, bool]]":
    """One random PI assignment per cycle, seeded like the stimuli."""
    rng = np.random.default_rng(seed)
    return [
        {pi: bool(rng.integers(0, 2)) for pi in primary_inputs}
        for _ in range(n_cycles)
    ]


def _strobe_payload(history: "list[dict]") -> "list[dict]":
    """JSON-friendly per-strobe register/PO samples (golden layer)."""
    return [
        {
            "cycle": int(rec["cycle"]),
            "time": float(rec["time"]),
            "registers": {n: int(v) for n, v in rec["registers"].items()},
            "outputs": {n: int(v) for n, v in rec["outputs"].items()},
        }
        for rec in history
    ]


def _run_sequential(
    core: Netlist,
    bundle: GateModelBundle,
    delay_library: DelayLibrary,
    config: DifferentialConfig,
) -> DifferentialReport:
    """Multi-cycle agreement of all four engines on one sequential core.

    The compiled digital engine is the reference: the event engine must
    match it bitwise (strobe samples and committed output traces), the
    sigmoid kernels must match its strobe samples exactly and each
    other within :data:`STREAM_PARAM_ATOL`, the chunked-per-cycle run
    must equal a one-shot replay of its own frame stimulus, and a
    mid-run checkpoint/restore must resume it exactly.
    """
    import json as _json

    from repro.clocked import (
        ClockedDigitalSession,
        ClockedSigmoidSession,
        default_clock_for,
        run_clocked,
    )
    from repro.digital.session import merge_digital_batches

    report = DifferentialReport(
        core.name, core.n_gates, "sequential", ("sequential",)
    )
    clock = config.execution.clock
    if clock is None:
        clock = default_clock_for(core)
    n_cycles = config.n_cycles
    seeds = [config.seed + k for k in range(config.n_runs)]

    def violation(seed, output, message):
        report.violations.append(
            InvariantViolation(
                "sequential", report.circuit, seed, output, message
            )
        )

    for seed in seeds:
        vectors = _sequential_vectors(
            core.primary_inputs, n_cycles, seed
        )
        sessions = {
            "digital-event": ClockedDigitalSession(
                core, delay_library, clock=clock, n_cycles=n_cycles,
                compiled=False,
            ),
            "digital-compiled": ClockedDigitalSession(
                core, delay_library, clock=clock, n_cycles=n_cycles,
                compiled=True,
            ),
            "sigmoid-interpreted": ClockedSigmoidSession(
                core, bundle, clock=clock, n_cycles=n_cycles,
                compiled=False,
            ),
            "sigmoid-compiled": ClockedSigmoidSession(
                core, bundle, clock=clock, n_cycles=n_cycles,
                compiled=True, target=config.target,
            ),
        }
        histories = {
            label: run_clocked(session, vectors)
            for label, session in sessions.items()
        }
        reference = histories["digital-compiled"]
        for label, history in histories.items():
            if label == "digital-compiled":
                continue
            for ref_rec, got_rec in zip(reference, history):
                if ref_rec["registers"] != got_rec["registers"]:
                    violation(
                        seed, None,
                        f"{label} register state diverges at strobe "
                        f"t={got_rec['time']:.3e} (cycle "
                        f"{got_rec['cycle']}): {got_rec['registers']} vs "
                        f"reference {ref_rec['registers']}",
                    )
                if ref_rec["outputs"] != got_rec["outputs"]:
                    violation(
                        seed, None,
                        f"{label} output sample diverges at strobe "
                        f"t={got_rec['time']:.3e} (cycle "
                        f"{got_rec['cycle']}): {got_rec['outputs']} vs "
                        f"reference {ref_rec['outputs']}",
                    )

        # Committed output traces: digital engines bitwise.
        traces_ref = sessions["digital-compiled"].po_traces()
        traces_event = sessions["digital-event"].po_traces()
        for net, ref in traces_ref.items():
            got = traces_event.get(net)
            if (
                got is None
                or ref.initial != got.initial
                or ref.times != got.times
            ):
                violation(
                    seed, net,
                    "event-core trace diverges from the compiled core "
                    f"on {net} (bitwise contract)",
                )
        # Sigmoid kernels: same shape, bounded parameter drift.
        traces_sc = sessions["sigmoid-compiled"].po_traces()
        traces_si = sessions["sigmoid-interpreted"].po_traces()
        for net, ref in traces_sc.items():
            got = traces_si.get(net)
            if (
                got is None
                or ref.initial_level != got.initial_level
                or ref.n_transitions != got.n_transitions
            ):
                violation(
                    seed, net,
                    "sigmoid kernels disagree on trace shape on "
                    f"{net}",
                )
                continue
            if ref.n_transitions:
                drift = float(np.max(np.abs(ref.params - got.params)))
                if drift > STREAM_PARAM_ATOL:
                    violation(
                        seed, net,
                        f"sigmoid kernels drift by {drift:.2e} scaled "
                        f"units on {net} (bound "
                        f"{STREAM_PARAM_ATOL:.0e} = 0.05 ps)",
                    )

        # Chunked-per-cycle == one-shot replay of the frame stimulus.
        chunked = sessions["digital-compiled"]
        replay = chunked.simulator.open_session(
            [chunked.t_stop],
            record_nets=list(chunked.frame.primary_outputs),
        )
        batches = [
            replay.feed([chunked.frame_stimulus()]),
            replay.finish(),
        ]
        one_shot = merge_digital_batches(batches)[0]
        for net, ref in traces_ref.items():
            got = one_shot[net]
            if ref.initial != got.initial or ref.times != got.times:
                violation(
                    seed, net,
                    "chunked-per-cycle run diverges from the one-shot "
                    f"frame replay on {net} (bitwise contract)",
                )

        # Mid-run checkpoint/restore resumes exactly (strict JSON).
        half = ClockedDigitalSession(
            core, delay_library, clock=clock, n_cycles=n_cycles,
        )
        split = max(1, n_cycles // 2)
        for vec in vectors[:split]:
            half.cycle(vec)
        payload = _json.loads(
            _json.dumps(half.state(), allow_nan=False)
        )
        resumed = ClockedDigitalSession(
            core, delay_library, clock=clock, n_cycles=n_cycles,
            state=payload,
        )
        for vec in vectors[split:]:
            resumed.cycle(vec)
        tail = resumed.finish()
        expected_tail = [r for r in reference if r["cycle"] >= split]
        if tail != expected_tail:
            violation(
                seed, None,
                f"checkpoint/restore at cycle {split} does not resume "
                "the reference run exactly",
            )

        report.runs.append(
            {
                "seed": seed,
                "t_err_digital": 0.0,
                "t_err_sigmoid": 0.0,
                "registers": _strobe_payload(reference),
                "outputs": {
                    po: {"digital": _trace_payload(traces_ref[po])}
                    for po in core.primary_outputs
                },
            }
        )
    return report


# ----------------------------------------------------------------------
# digital-reference mode: event-driven vs sigmoid, no analog engine
# ----------------------------------------------------------------------
def _run_digital(
    core: Netlist,
    bundle: GateModelBundle,
    delay_library: DelayLibrary,
    config: DifferentialConfig,
    mutate_runner,
) -> DifferentialReport:
    report = DifferentialReport(
        core.name, core.n_gates, config.reference, config.checks
    )
    if mutate_runner is not None:
        raise SimulationError(
            "mutate_runner is only supported with the analog reference"
        )
    digital = DigitalSimulator(
        core,
        build_instance_delays(core, delay_library),
        compiled=config.compiled,
    )
    sigmoid = SigmoidCircuitSimulator(
        core, bundle, compiled=config.compiled, target=config.target
    )
    logic = _LogicChecker(report, core)
    pos = core.primary_outputs
    depth = core.depth()

    seeds = [config.seed + k for k in range(config.n_runs)]
    stimuli = [
        _digital_stimuli(core.primary_inputs, config.stimulus, seed)
        for seed in seeds
    ]
    pi_sigmoid_runs = [
        {
            pi: SigmoidalTrace.from_digital(trace)
            for pi, trace in pi_digital.items()
        }
        for pi_digital, _ in stimuli
    ]
    po_sigmoid_runs = sigmoid.simulate_batch(pi_sigmoid_runs, record_nets=pos)
    t_stops = [
        simulation_span(t_last, depth) for _pi_digital, t_last in stimuli
    ]
    po_digital_runs = digital.simulate_batch(
        [pi_digital for pi_digital, _ in stimuli], t_stops
    )

    for k, (seed, (pi_digital, _t_last)) in enumerate(zip(seeds, stimuli)):
        t_stop = t_stops[k]
        po_digital = {po: po_digital_runs[k][po] for po in pos}
        po_sigmoid = {po: po_sigmoid_runs[k][po].digitize() for po in pos}
        streams = {"digital": po_digital, "sigmoid": po_sigmoid}
        if "logic" in config.checks:
            logic.check(seed, pi_digital, streams, "digital")
        t_err = total_mismatch_time(po_digital, po_sigmoid, 0.0, t_stop)
        if "delay" in config.checks:
            _check_delay(
                report, seed, "sigmoid-vs-digital",
                config.sigmoid_err_per_transition,
                config.digital_transition_shift,
                po_digital, po_sigmoid, t_stop,
                depth=depth,
                shift_per_level=config.transition_shift_per_level,
            )
        if "parity" in config.checks and k == 0:
            solo = sigmoid.simulate(pi_sigmoid_runs[0], record_nets=pos)
            # The compiled core's lane grouping depends on the batch
            # size, so re-association noise up to parity_atol is
            # legitimate there; the interpreted path makes the same
            # scalar calls either way and must stay bitwise.
            atol = config.parity_atol if config.compiled else 0.0
            for po in pos:
                solo_trace = solo[po].digitize()
                batch_trace = po_sigmoid[po]
                same = (
                    solo_trace.initial == batch_trace.initial
                    and solo_trace.n_transitions == batch_trace.n_transitions
                    and np.allclose(
                        solo_trace.times,
                        batch_trace.times,
                        rtol=0.0,
                        atol=atol,
                    )
                )
                if not same:
                    report.violations.append(
                        InvariantViolation(
                            "parity",
                            report.circuit,
                            seed,
                            po,
                            "sigmoid simulate() and simulate_batch() "
                            "disagree",
                        )
                    )
        report.runs.append(
            {
                "seed": seed,
                "t_err_digital": 0.0,
                "t_err_sigmoid": t_err,
                "outputs": {
                    po: {
                        name: _trace_payload(stream[po])
                        for name, stream in streams.items()
                    }
                    for po in pos
                },
            }
        )
    if "streaming" in config.checks:
        _check_streaming(
            report,
            config,
            digital,
            sigmoid,
            [pi_digital for pi_digital, _ in stimuli],
            t_stops,
            pos,
        )
    return report
