"""Cross-simulator fuzzing: seeded corpora driven through the harness.

Glues the pieces of :mod:`repro.verify` together:

* draw a deterministic corpus of random circuits
  (:func:`repro.circuits.random_circuit.random_corpus`),
* run the differential harness on each
  (:func:`repro.verify.differential.run_differential`),
* compare/record golden snapshots (:mod:`repro.verify.golden`),
* shrink every failing circuit to a minimal counterexample
  (:func:`repro.verify.shrink.shrink_circuit`),
* and serialize everything into one report the CI can upload.

``python -m repro.cli fuzz`` is the command-line entry;
``tests/test_differential_fuzz.py`` pins the behavior.
"""

from __future__ import annotations

import time
from dataclasses import InitVar, dataclass, field, replace
from pathlib import Path

from repro.circuits.bench import format_bench
from repro.circuits.netlist import Netlist
from repro.circuits.random_circuit import RandomCircuitConfig, random_corpus
from repro.core.models import GateModelBundle
from repro.digital.delay import DelayLibrary
from repro.errors import SimulationError
from repro.eval.stimuli import StimulusConfig
from repro.options import (
    _UNSET,
    ExecutionOptions,
    execution_aliases,
    normalize_execution,
)
from repro.verify.differential import (
    DifferentialConfig,
    DifferentialReport,
    InvariantViolation,
    ensure_nor_mapped,
    run_differential,
)
from repro.verify.golden import GoldenStore, default_golden_dir
from repro.verify.shrink import ShrinkResult, shrink_circuit


@dataclass(frozen=True)
class FuzzScalePreset:
    """Corpus sizing of one fuzz scale.

    ``parity_every`` bounds the cost of the serial-vs-batched parity
    check (it re-runs the analog reference serially): circuit ``i`` runs
    it only when ``i % parity_every == 0``.  ``artifact_scale`` names
    the trained-model/delay-library scale the campaign loads — fuzz
    scales and artifact scales are different axes (``tiny_seq`` sizes a
    sequential corpus but runs on the ``tiny`` artifacts).
    """

    circuit: RandomCircuitConfig
    differential: DifferentialConfig
    parity_every: int = 5
    artifact_scale: str = "tiny"


FUZZ_PRESETS: dict[str, FuzzScalePreset] = {
    "tiny": FuzzScalePreset(
        circuit=RandomCircuitConfig(
            n_inputs=3, n_gates=5, window=3, name="rand"
        ),
        # Odd transition count: the settled PI vector differs from the
        # initial one, so the logic check exercises a real state change.
        differential=DifferentialConfig(
            stimulus=StimulusConfig(20e-12, 10e-12, 3),
            n_runs=2,
            checks=("logic", "delay", "streaming"),
        ),
        parity_every=5,
    ),
    "fast": FuzzScalePreset(
        circuit=RandomCircuitConfig(
            n_inputs=4, n_gates=8, window=4, name="rand"
        ),
        differential=DifferentialConfig(
            stimulus=StimulusConfig(100e-12, 50e-12, 3),
            n_runs=3,
            checks=("logic", "delay", "streaming"),
        ),
        parity_every=4,
        artifact_scale="fast",
    ),
    # Sequential corpus: every member carries D flip-flops, so each one
    # takes the multi-cycle ``sequential`` path of the differential
    # harness (all four clocked engines, chunked-vs-one-shot replay,
    # mid-run checkpoint/restore) instead of the combinational checks.
    "tiny_seq": FuzzScalePreset(
        circuit=RandomCircuitConfig(
            n_inputs=3, n_gates=6, window=3, n_flops=2, name="seq"
        ),
        differential=DifferentialConfig(
            stimulus=StimulusConfig(20e-12, 10e-12, 3),
            n_runs=2,
            n_cycles=4,
            checks=("sequential",),
        ),
        parity_every=0,
    ),
}


@execution_aliases("compiled", "backend", "chunk_size", "target",
                   readonly=True)
@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing campaign.

    The execution knobs share one
    :class:`~repro.options.ExecutionOptions` (``config.execution``):
    ``compiled`` selects the levelized simulator cores (``False`` runs
    the interpreted per-gate walks the compiled paths are parity-locked
    against) and ``chunk_size`` overrides the chunk sizes the
    ``streaming`` check replays at (``None`` keeps the preset's default
    ladder of {1, small, full-trace}).  All three remain accepted as
    constructor kwargs and alias onto ``execution`` as attributes.
    """

    count: int = 25
    seed: int = 0
    scale: str = "tiny"
    reference: str = "analog"
    benchmarks: tuple[str, ...] = ()
    shrink: bool = True
    max_shrink_evals: int = 60
    golden: str = "check"  # "check" | "update" | "off"
    golden_dir: Path | None = None
    execution: ExecutionOptions | None = None
    backend: InitVar = _UNSET
    compiled: InitVar = _UNSET
    chunk_size: InitVar = _UNSET
    target: InitVar = _UNSET

    def __post_init__(self, backend, compiled, chunk_size, target) -> None:
        object.__setattr__(
            self,
            "execution",
            normalize_execution(
                self.execution,
                compiled=compiled,
                backend=backend,
                chunk_size=chunk_size,
                target=target,
            ),
        )
        if self.scale not in FUZZ_PRESETS:
            raise SimulationError(
                f"unknown fuzz scale {self.scale!r}; "
                f"options: {sorted(FUZZ_PRESETS)}"
            )
        if self.golden not in ("check", "update", "off"):
            raise SimulationError("golden must be check, update or off")
        if self.count < 0:
            raise SimulationError("count must be non-negative")
        if self.count == 0 and not self.benchmarks:
            raise SimulationError(
                "an empty campaign verifies nothing: need count >= 1 "
                "or at least one benchmark"
            )

    def preset(self) -> FuzzScalePreset:
        return FUZZ_PRESETS[self.scale]

    def golden_store(self, reference: str) -> GoldenStore | None:
        """Store for circuits that ran with the given *effective*
        reference — benchmarks always run digitally, so their snapshots
        must not be filed (or looked up) under the campaign's mode."""
        if self.golden == "off":
            return None
        directory = self.golden_dir or default_golden_dir()
        prefix = (
            f"{self.scale}_{self.backend}_{reference}_"
            f"seed{self.seed}_"
        )
        return GoldenStore(directory, prefix)


@dataclass
class CircuitOutcome:
    """Everything the fuzzer learned about one corpus member."""

    circuit: str
    n_gates: int
    seconds: float
    violations: list[InvariantViolation] = field(default_factory=list)
    shrunk_bench: str | None = None
    shrunk_gates: int | None = None
    shrink_evals: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "circuit": self.circuit,
            "n_gates": self.n_gates,
            "seconds": self.seconds,
            "violations": [v.to_dict() for v in self.violations],
            "shrunk_bench": self.shrunk_bench,
            "shrunk_gates": self.shrunk_gates,
            "shrink_evals": self.shrink_evals,
        }


@dataclass
class FuzzResult:
    """One campaign's outcomes plus enough config echo to reproduce it."""

    config: FuzzConfig
    outcomes: list[CircuitOutcome] = field(default_factory=list)

    @property
    def violations(self) -> list[InvariantViolation]:
        return [v for o in self.outcomes for v in o.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "config": {
                "count": self.config.count,
                "seed": self.config.seed,
                "scale": self.config.scale,
                "backend": self.config.backend,
                "reference": self.config.reference,
                "benchmarks": list(self.config.benchmarks),
            },
            "ok": self.ok,
            "n_violations": len(self.violations),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }

    def summary(self) -> str:
        lines = [
            f"fuzz: {len(self.outcomes)} circuits, "
            f"{len(self.violations)} invariant violations"
        ]
        for outcome in self.outcomes:
            if outcome.ok:
                continue
            lines.append(
                f"  FAIL {outcome.circuit} ({outcome.n_gates} gates): "
                f"{len(outcome.violations)} violations"
            )
            for violation in outcome.violations[:4]:
                lines.append(f"    [{violation.check}] {violation.message}")
            if outcome.shrunk_gates is not None:
                lines.append(
                    f"    shrunk to {outcome.shrunk_gates} gates in "
                    f"{outcome.shrink_evals} evals"
                )
        return "\n".join(lines)


def _differential_config(
    config: FuzzConfig, index: int
) -> DifferentialConfig:
    """Per-circuit differential config: parity only every Nth circuit."""
    preset = config.preset()
    checks = preset.differential.checks
    if (
        config.reference == "analog"
        and preset.parity_every > 0
        and index % preset.parity_every == 0
        and "parity" not in checks
    ):
        checks = checks + ("parity",)
    overrides: dict = {}
    if config.chunk_size is not None:
        overrides["stream_chunk_sizes"] = (config.chunk_size,)
    return replace(
        preset.differential,
        checks=checks,
        reference=config.reference,
        seed=config.seed,
        compiled=config.compiled,
        target=config.target,
        **overrides,
    )


def _shrink_failure(
    netlist: Netlist,
    report: DifferentialReport,
    diff_config: DifferentialConfig,
    bundle: GateModelBundle,
    delay_library: DelayLibrary,
    config: FuzzConfig,
    mutate_runner,
) -> ShrinkResult:
    """Minimize a failing circuit, chasing the checks that fired."""
    failed_checks = tuple(sorted({v.check for v in report.violations}))
    failing_seeds = sorted({v.seed for v in report.violations})
    shrink_config = replace(
        diff_config,
        checks=failed_checks,
        seed=failing_seeds[0],
        n_runs=1,
    )

    def still_fails(candidate: Netlist) -> bool:
        try:
            candidate_report = run_differential(
                candidate, bundle, delay_library, shrink_config,
                mutate_runner=mutate_runner,
            )
        except Exception:
            # A candidate that crashes a simulator is not the failure we
            # are chasing; treat it as passing so the shrinker backs off.
            return False
        return any(
            v.check in failed_checks for v in candidate_report.violations
        )

    mapped = ensure_nor_mapped(netlist)
    return shrink_circuit(
        mapped, still_fails, max_evals=config.max_shrink_evals
    )


def run_fuzz(
    config: FuzzConfig,
    bundle: GateModelBundle,
    delay_library: DelayLibrary,
    verbose: bool = False,
    mutate_runner=None,
) -> FuzzResult:
    """Run one fuzzing campaign.

    The corpus is ``config.count`` random circuits (deterministic in
    ``config.seed``) followed by any named ``config.benchmarks`` (which
    always run with the cheap digital reference — the analog engine on a
    c1355-class circuit is a benchmark, not a CI check).  ``mutate_runner``
    is the test-only perturbation hook, threaded through shrinking so an
    injected bug stays injected while the counterexample shrinks.
    """
    preset = config.preset()
    result = FuzzResult(config)
    circuits: list[tuple[Netlist, str]] = [
        (netlist, config.reference)
        for netlist in random_corpus(
            config.count, seed=config.seed, config=preset.circuit
        )
    ]
    if config.benchmarks:
        from repro.eval.table1 import nor_mapped

        circuits.extend(
            (nor_mapped(name), "digital") for name in config.benchmarks
        )

    for index, (netlist, reference) in enumerate(circuits):
        t0 = time.perf_counter()
        diff_config = replace(
            _differential_config(config, index), reference=reference
        )
        if reference == "digital":
            checks = tuple(
                c for c in diff_config.checks if c != "parity"
            ) + ("parity",)
            if index >= config.count:
                # Benchmark zoo members additionally drop the chunk-size
                # streaming sweep: replaying a thousand-gate circuit at
                # chunk size 1 is a benchmark, not a CI check — the
                # random corpus sweeps every session boundary already.
                checks = tuple(c for c in checks if c != "streaming")
            diff_config = replace(diff_config, checks=checks)
        # Sequential corpus members bypass the analog reference (the
        # multi-cycle path cross-checks the four clocked engines), so
        # the perturbation hook never applies to them.
        sequential = netlist.is_sequential
        report = run_differential(
            netlist, bundle, delay_library, diff_config,
            mutate_runner=(
                mutate_runner
                if reference == "analog" and not sequential
                else None
            ),
        )
        outcome = CircuitOutcome(
            circuit=report.circuit,
            n_gates=report.n_gates,
            seconds=0.0,
            violations=list(report.violations),
        )
        # File snapshots under the *effective* reference the run used
        # ("sequential" for flop-carrying circuits, "digital" for
        # benchmarks) so they never collide across modes.
        store = config.golden_store(report.reference)
        if store is not None:
            if config.golden == "update":
                store.record(report)
            else:
                outcome.violations.extend(store.compare(report))
        if report.violations and config.shrink and not sequential:
            shrunk = _shrink_failure(
                netlist, report, diff_config, bundle, delay_library,
                config, mutate_runner if reference == "analog" else None,
            )
            outcome.shrunk_bench = format_bench(shrunk.netlist)
            outcome.shrunk_gates = shrunk.n_gates
            outcome.shrink_evals = shrunk.n_evals
        outcome.seconds = time.perf_counter() - t0
        result.outcomes.append(outcome)
        if verbose:
            status = "ok" if outcome.ok else "FAIL"
            print(
                f"[fuzz {index + 1}/{len(circuits)}] {outcome.circuit}: "
                f"{outcome.n_gates} gates, {outcome.seconds:.1f}s {status}"
            )
    return result
