"""Differential verification: random-circuit fuzzing across simulators.

The safety net every refactor PR runs against: seeded random netlists
(:mod:`repro.circuits.random_circuit`) are driven through the analog
reference, the event-driven digital simulator and the sigmoid simulator,
cross-simulator invariants are checked
(:mod:`repro.verify.differential`), failing circuits shrink to minimal
counterexamples (:mod:`repro.verify.shrink`), and waveform/score digests
are snapshotted under ``artifacts/golden/``
(:mod:`repro.verify.golden`).  :mod:`repro.verify.fuzz` ties it together
behind ``python -m repro.cli fuzz``.
"""

from repro.verify.differential import (
    ALL_CHECKS,
    DifferentialConfig,
    DifferentialReport,
    InvariantViolation,
    ensure_nor_mapped,
    run_differential,
)
from repro.verify.fuzz import (
    FUZZ_PRESETS,
    CircuitOutcome,
    FuzzConfig,
    FuzzResult,
    run_fuzz,
)
from repro.verify.golden import GoldenStore, default_golden_dir
from repro.verify.shrink import (
    ShrinkResult,
    bypass_gate,
    cone_of,
    shrink_circuit,
)

__all__ = [
    "ALL_CHECKS",
    "DifferentialConfig",
    "DifferentialReport",
    "InvariantViolation",
    "ensure_nor_mapped",
    "run_differential",
    "FUZZ_PRESETS",
    "CircuitOutcome",
    "FuzzConfig",
    "FuzzResult",
    "run_fuzz",
    "GoldenStore",
    "default_golden_dir",
    "ShrinkResult",
    "bypass_gate",
    "cone_of",
    "shrink_circuit",
]
