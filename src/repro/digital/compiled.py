"""Compiled levelized digital-simulator core.

The event-driven :class:`~repro.digital.simulator.DigitalSimulator` pays
a heap push/pop, dict churn and a delay-model method dispatch per event.
For the fixed per-arc delay models of the Table-I baseline
(:class:`~repro.digital.delay.FixedDelayModel`) a gate's output trace is
a pure function of its input traces, so the circuit compiles into the
same shape of array program as the sigmoid core
(:mod:`repro.core.compile`): per-topological-level index arrays plus a
dense per-level ``(gate, pin, edge)`` delay gather, executed for all
gates of a level × all runs of a batch in lock-step over the merged
input-event index with vectorized inertial-pending state.

Semantics replicate the event loop operation for operation — target
evaluation, inertial cancellation of invalidated pendings, non-positive
(DDM-style) delays swallowing the pulse pair, the ``t_stop`` commit
guard — so compiled and interpreted traces are **bitwise identical**
(pure float adds and comparisons, no re-association).  The one
undecidable corner is two *distinct* nets transitioning at exactly the
same float time into one gate: the heap orders those by global
scheduling sequence, the compiled core by pin index (and commits a
pending output before an input event carrying the same timestamp).
Random stimuli and characterized arc delays never produce such ties;
the parity suite checks the corpus and the benchmark zoo bitwise.

Time-dependent delay models (e.g. the DDM) and test-only wrappers do
not compile; :func:`compile_digital` returns ``None`` and the caller
falls back to the event loop.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.gates import GateType, eval_gate
from repro.circuits.netlist import Netlist
from repro.digital.delay import FixedDelayModel
from repro.digital.trace import DigitalTrace
from repro.errors import ModelError, SimulationError


def compile_digital(
    netlist: Netlist,
    delay_models: dict,
) -> "CompiledDigitalCircuit | None":
    """Lower the netlist + fixed delay models into an array program.

    Returns ``None`` when any instance model is not a plain
    :class:`FixedDelayModel` (subclass overrides of ``delay`` would be
    silently ignored by the dense gather, so only the exact class and
    its pure-alias subclasses compile).
    """
    for model in delay_models.values():
        if not isinstance(model, FixedDelayModel):
            return None
        if type(model).delay is not FixedDelayModel.delay:
            return None  # pragma: no cover - no such subclass in-repo
    return CompiledDigitalCircuit(netlist, delay_models)


class _DigitalLevel:
    """Static arrays of one topological level."""

    __slots__ = ("names", "single", "in0", "in1", "delays")

    def __init__(self, n: int) -> None:
        self.names: list[str] = [""] * n
        self.single = np.zeros(n, dtype=bool)
        self.in0: list[str] = [""] * n
        self.in1: list[str | None] = [None] * n
        self.delays = np.full((n, 2, 2), np.nan)  # (gate, pin, edge)


class CompiledDigitalCircuit:
    """A netlist + fixed arc delays lowered to levelized arrays."""

    def __init__(self, netlist: Netlist, delay_models: dict) -> None:
        self.netlist = netlist
        order = netlist.topological_order()
        self._eval_order = [
            (name, netlist.gates[name].gtype, netlist.gates[name].inputs)
            for name in order
        ]
        self.levels: list[_DigitalLevel] = []
        for level_names in netlist.levels():
            level = _DigitalLevel(len(level_names))
            for i, name in enumerate(level_names):
                gate = netlist.gates[name]
                level.names[i] = name
                level.in0[i] = gate.inputs[0]
                tied = len(gate.inputs) == 2 and gate.inputs[0] == gate.inputs[1]
                if gate.gtype is GateType.INV or tied:
                    level.single[i] = True
                elif gate.gtype is GateType.NOR and len(gate.inputs) == 2:
                    level.in1[i] = gate.inputs[1]
                else:
                    raise SimulationError(
                        "compiled digital core supports INV and NOR2 "
                        f"only; gate {name} is {gate.gtype.value}/"
                        f"{len(gate.inputs)}"
                    )
                level.delays[i] = delay_models[name].arc_array(2)
            self.levels.append(level)

    # ------------------------------------------------------------------
    def _evaluate(self, pi_values: dict[str, bool]) -> dict[str, bool]:
        values = dict(pi_values)
        for name, gtype, inputs in self._eval_order:
            values[name] = eval_gate(gtype, [values[n] for n in inputs])
        return values

    # ------------------------------------------------------------------
    def run_batch(
        self,
        pi_traces_runs: "list[dict[str, DigitalTrace]]",
        t_stops: "list[float]",
    ) -> "list[dict[str, DigitalTrace]]":
        """Simulate a batch of runs; returns every net's committed trace.

        The lock-step twin of
        :meth:`~repro.digital.simulator.DigitalSimulator.simulate` run
        once per batch: per run the result is the event loop's, per
        level all gates × all runs advance together.
        """
        netlist = self.netlist
        pis = netlist.primary_inputs
        if len(pi_traces_runs) != len(t_stops):
            raise SimulationError("need one t_stop per run")
        for pi_traces in pi_traces_runs:
            missing = [pi for pi in pis if pi not in pi_traces]
            if missing:
                raise SimulationError(f"missing PI traces: {missing}")
        n_runs = len(pi_traces_runs)

        initials = [
            self._evaluate({pi: pi_traces[pi].initial for pi in pis})
            for pi_traces in pi_traces_runs
        ]
        # Store: (run, net) -> (initial: bool, times: list).  PI events
        # beyond the run's t_stop are never scheduled, exactly like the
        # event loop's push guard.
        store: list[dict[str, tuple[bool, list]]] = []
        for run, pi_traces in enumerate(pi_traces_runs):
            t_stop = t_stops[run]
            entry = {}
            for pi, trace in pi_traces.items():
                entry[pi] = (
                    trace.initial,
                    [t for t in trace.times if t <= t_stop],
                )
            store.append(entry)

        t_stop_arr = np.asarray(t_stops, dtype=float)
        for level in self.levels:
            self._run_level(level, store, initials, n_runs, t_stop_arr)

        results = []
        for run in range(n_runs):
            results.append(
                {
                    net: DigitalTrace(initial, times)
                    for net, (initial, times) in store[run].items()
                }
            )
        return results

    # ------------------------------------------------------------------
    def _run_level(
        self,
        level: _DigitalLevel,
        store: list,
        initials: list,
        n_runs: int,
        t_stops: np.ndarray,
    ) -> None:
        n_gates = len(level.names)
        n_lanes = n_gates * n_runs
        if n_lanes == 0:
            return

        # Flat event assembly: plain-python merges per lane (events per
        # gate are few; small-list work beats numpy dispatch here), one
        # vectorized scatter into the padded lock-step layout after.
        flat_t: list[float] = []
        flat_p: list[int] = []
        flat_v: list[bool] = []
        counts = np.empty(n_lanes, dtype=int)
        v0 = np.zeros(n_lanes, dtype=bool)
        v1 = np.zeros(n_lanes, dtype=bool)
        out = np.zeros(n_lanes, dtype=bool)
        single = np.zeros(n_lanes, dtype=bool)
        delay_rows = np.empty(n_lanes, dtype=int)
        lane_stop = np.empty(n_lanes)

        lane = 0
        for run in range(n_runs):
            run_store = store[run]
            run_initials = initials[run]
            t_stop = float(t_stops[run])
            for i in range(n_gates):
                init0, times0 = run_store[level.in0[i]]
                m = len(times0)
                if level.single[i]:
                    flat_t += times0
                    flat_p += [0] * m
                    value = not init0
                    for _ in range(m):
                        flat_v.append(value)
                        value = not value
                    v0[lane] = init0
                    v1[lane] = init0
                else:
                    init1, times1 = run_store[level.in1[i]]
                    n1 = len(times1)
                    a = b = 0
                    val0, val1 = not init0, not init1
                    # Stable two-pointer merge: pin 0 first on a tie.
                    while a < m or b < n1:
                        if b >= n1 or (a < m and times0[a] <= times1[b]):
                            flat_t.append(times0[a])
                            flat_p.append(0)
                            flat_v.append(val0)
                            val0 = not val0
                            a += 1
                        else:
                            flat_t.append(times1[b])
                            flat_p.append(1)
                            flat_v.append(val1)
                            val1 = not val1
                            b += 1
                    m += n1
                    v0[lane] = init0
                    v1[lane] = init1
                counts[lane] = m
                single[lane] = level.single[i]
                out[lane] = run_initials[level.names[i]]
                delay_rows[lane] = i
                lane_stop[lane] = t_stop
                lane += 1

        max_events = int(counts.max()) if counts.size else 0
        n_out = np.zeros(n_lanes, dtype=int)
        out_times = np.empty((n_lanes, max_events)) if max_events else None

        if max_events:
            T = np.full((n_lanes, max_events), np.inf)
            P = np.zeros((n_lanes, max_events), dtype=int)
            V = np.zeros((n_lanes, max_events), dtype=bool)
            lane_ids = np.repeat(np.arange(n_lanes), counts)
            offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
            within = np.arange(lane_ids.size) - offsets[lane_ids]
            T[lane_ids, within] = flat_t
            P[lane_ids, within] = flat_p
            V[lane_ids, within] = flat_v
            self._lockstep(
                T, P, V, counts, single, level.delays[delay_rows],
                lane_stop, v0, v1, out, out_times, n_out,
            )

        lane = 0
        for run in range(n_runs):
            run_store = store[run]
            run_initials = initials[run]
            for i in range(n_gates):
                count = int(n_out[lane])
                times = out_times[lane, :count].tolist() if count else []
                name = level.names[i]
                run_store[name] = (bool(run_initials[name]), times)
                lane += 1

    # ------------------------------------------------------------------
    @staticmethod
    def _lockstep(
        T: np.ndarray,
        P: np.ndarray,
        V: np.ndarray,
        counts: np.ndarray,
        single: np.ndarray,
        delays: np.ndarray,
        lane_stop: np.ndarray,
        v0: np.ndarray,
        v1: np.ndarray,
        out: np.ndarray,
        out_times: np.ndarray,
        n_out: np.ndarray,
    ) -> None:
        """The inertial event recurrence, lock-step over event index."""
        n_lanes = T.shape[0]
        pend_t = np.full(n_lanes, np.inf)
        pend_v = np.zeros(n_lanes, dtype=bool)
        lanes = np.arange(n_lanes)

        for j in range(T.shape[1]):
            act = counts > j
            if not act.any():
                break
            t = T[:, j]
            # Commit pendings due at or before this event (pending
            # first on an exact tie; see module docstring).
            fire = act & (pend_t <= t)
            if fire.any():
                fi = lanes[fire]
                out_times[fi, n_out[fi]] = pend_t[fi]
                n_out[fi] += 1
                out[fi] = pend_v[fi]
                pend_t[fi] = np.inf

            ai = lanes[act]
            pin = P[ai, j]
            val = V[ai, j]
            is0 = pin == 0
            v0[ai[is0]] = val[is0]
            v1[ai[~is0]] = val[~is0]
            target = np.where(single[ai], ~v0[ai], ~(v0[ai] | v1[ai]))
            pending = np.isfinite(pend_t[ai])
            effective = np.where(pending, pend_v[ai], out[ai])
            change = target != effective
            ci = ai[change]
            tgt = target[change]
            if ci.size == 0:
                continue
            # The input change reverted before the output fired: the
            # pending pulse is swallowed (inertial cancellation).
            revert = tgt == out[ci]
            pend_t[ci[revert]] = np.inf
            sched = ci[~revert]
            if sched.size == 0:
                continue
            stgt = tgt[~revert]
            d = delays[sched, P[sched, j], stgt.astype(int)]
            if np.isnan(d).any():
                bad = int(np.nonzero(np.isnan(d))[0][0])
                raise ModelError(
                    f"no delay for pin {int(P[sched[bad], j])} edge "
                    f"{'rise' if bool(stgt[bad]) else 'fall'}"
                )
            # Full degradation (DDM-style): the transition disappears
            # together with the previous one it would pair with.
            positive = d > 0.0
            pend_t[sched[~positive]] = np.inf
            live = sched[positive]
            pend_t[live] = T[live, j] + d[positive]
            pend_v[live] = stgt[positive]

        flush = np.isfinite(pend_t) & (pend_t <= lane_stop)
        if flush.any():
            fi = lanes[flush]
            out_times[fi, n_out[fi]] = pend_t[fi]
            n_out[fi] += 1
            out[fi] = pend_v[fi]
