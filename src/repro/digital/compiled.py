"""Compiled levelized digital-simulator core.

The event-driven :class:`~repro.digital.simulator.DigitalSimulator` pays
a heap push/pop, dict churn and a delay-model method dispatch per event.
For the fixed per-arc delay models of the Table-I baseline
(:class:`~repro.digital.delay.FixedDelayModel`) a gate's output trace is
a pure function of its input traces, so the circuit compiles into the
same shape of array program as the sigmoid core
(:mod:`repro.core.compile`): per-topological-level index arrays plus a
dense per-level ``(gate, pin, edge)`` delay gather, executed for all
gates of a level × all runs of a batch in lock-step over the merged
input-event index with vectorized inertial-pending state.

Semantics replicate the event loop operation for operation — target
evaluation, inertial cancellation of invalidated pendings, non-positive
(DDM-style) delays swallowing the pulse pair, the ``t_stop`` commit
guard — so compiled and interpreted traces are **bitwise identical**
(pure float adds and comparisons, no re-association).  The one
undecidable corner is two *distinct* nets transitioning at exactly the
same float time into one gate: the heap orders those by global
scheduling sequence, the compiled core by pin index (and commits a
pending output before an input event carrying the same timestamp).
Random stimuli and characterized arc delays never produce such ties;
the parity suite checks the corpus and the benchmark zoo bitwise.

Time-dependent delay models (e.g. the DDM) and test-only wrappers do
not compile; :func:`compile_digital` returns ``None`` and the caller
falls back to the event loop.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.circuits.gates import GateType, eval_gate
from repro.circuits.netlist import Netlist
from repro.core.compile import register_cache_clearer
from repro.digital.delay import FixedDelayModel
from repro.digital.trace import DigitalTrace
from repro.errors import ModelError, SimulationError

# Generation counter behind the lazy per-simulator recompile memo
# (:meth:`DigitalSimulator._compiled_circuit`).  ``clear_compile_cache``
# bumps it through the clearer registry, so clearing the sigmoid compile
# cache also invalidates every cached compiled digital core — tests
# can't leak one across cases.
_GENERATION_LOCK = threading.RLock()
_GENERATION = 0


def digital_cache_generation() -> int:
    """Current generation of compiled digital cores (memo-key part)."""
    with _GENERATION_LOCK:
        return _GENERATION


def clear_digital_compile_cache() -> None:
    """Invalidate every lazily cached :class:`CompiledDigitalCircuit`."""
    global _GENERATION
    with _GENERATION_LOCK:
        _GENERATION += 1


register_cache_clearer(clear_digital_compile_cache)


def compile_digital(
    netlist: Netlist,
    delay_models: dict,
) -> "CompiledDigitalCircuit | None":
    """Lower the netlist + fixed delay models into an array program.

    Returns ``None`` when any instance model is not a plain
    :class:`FixedDelayModel` (subclass overrides of ``delay`` would be
    silently ignored by the dense gather, so only the exact class and
    its pure-alias subclasses compile).
    """
    for model in delay_models.values():
        if not isinstance(model, FixedDelayModel):
            return None
        if type(model).delay is not FixedDelayModel.delay:
            return None  # pragma: no cover - no such subclass in-repo
    return CompiledDigitalCircuit(netlist, delay_models)


class _DigitalLevel:
    """Static arrays of one topological level."""

    __slots__ = ("names", "single", "in0", "in1", "delays")

    def __init__(self, n: int) -> None:
        self.names: list[str] = [""] * n
        self.single = np.zeros(n, dtype=bool)
        self.in0: list[str] = [""] * n
        self.in1: list[str | None] = [None] * n
        self.delays = np.full((n, 2, 2), np.nan)  # (gate, pin, edge)


class CompiledDigitalCircuit:
    """A netlist + fixed arc delays lowered to levelized arrays."""

    def __init__(self, netlist: Netlist, delay_models: dict) -> None:
        self.netlist = netlist
        self._settle_plan = None
        order = netlist.topological_order()
        self._eval_order = [
            (name, netlist.gates[name].gtype, netlist.gates[name].inputs)
            for name in order
        ]
        self.levels: list[_DigitalLevel] = []
        for level_names in netlist.levels():
            level = _DigitalLevel(len(level_names))
            for i, name in enumerate(level_names):
                gate = netlist.gates[name]
                level.names[i] = name
                level.in0[i] = gate.inputs[0]
                tied = len(gate.inputs) == 2 and gate.inputs[0] == gate.inputs[1]
                if gate.gtype is GateType.INV or tied:
                    level.single[i] = True
                elif gate.gtype is GateType.NOR and len(gate.inputs) == 2:
                    level.in1[i] = gate.inputs[1]
                else:
                    raise SimulationError(
                        "compiled digital core supports INV and NOR2 "
                        f"only; gate {name} is {gate.gtype.value}/"
                        f"{len(gate.inputs)}"
                    )
                level.delays[i] = delay_models[name].arc_array(2)
            self.levels.append(level)

    # ------------------------------------------------------------------
    def _evaluate(
        self,
        pi_values: dict[str, bool],
        overrides: dict[str, bool] | None = None,
    ) -> dict[str, bool]:
        """Boolean settle; ``overrides`` force nets (stuck-at lowering)."""
        values = dict(pi_values)
        if overrides:
            for net, forced in overrides.items():
                if net in values:
                    values[net] = bool(forced)
        for name, gtype, inputs in self._eval_order:
            value = eval_gate(gtype, [values[n] for n in inputs])
            if overrides and name in overrides:
                value = bool(overrides[name])
            values[name] = value
        return values

    # ------------------------------------------------------------------
    def settle_plan(self):
        """Integer-indexed levels for the vectorized boolean settle.

        ``(nets, index, pi_idx, level_plans)`` where each level plan is
        ``(out_idx, in0_idx, in1_idx, forced_set)``-shaped arrays into
        the flat net order (``in1_idx`` aliases ``in0_idx`` for
        single-input gates, so every gate evaluates as ``~(a | b)``).
        Built lazily once per compiled circuit; wide sessions settle all
        runs level-vectorized instead of one python walk per run.
        """
        if self._settle_plan is None:
            nets = list(self.netlist.nets)
            index = {net: k for k, net in enumerate(nets)}
            pi_idx = np.array(
                [index[pi] for pi in self.netlist.primary_inputs],
                dtype=np.intp,
            )
            level_plans = []
            for level in self.levels:
                out_idx = np.array(
                    [index[n] for n in level.names], dtype=np.intp
                )
                in0_idx = np.array(
                    [index[n] for n in level.in0], dtype=np.intp
                )
                in1_idx = np.array(
                    [
                        index[in1] if in1 is not None else index[in0]
                        for in0, in1 in zip(level.in0, level.in1)
                    ],
                    dtype=np.intp,
                )
                level_plans.append(
                    (out_idx, in0_idx, in1_idx, set(level.names))
                )
            self._settle_plan = (nets, index, pi_idx, level_plans)
        return self._settle_plan

    def evaluate_batch(
        self,
        pi_bits: np.ndarray,
        forced: "list[dict[str, bool]] | None" = None,
    ) -> np.ndarray:
        """Boolean settle of many runs at once: ``(n_nets, n_runs)``.

        ``pi_bits`` is ``(n_pis, n_runs)`` in primary-input order.
        ``forced`` optionally gives one override map per run (stuck-at
        lowering); a forced net is pinned after its own level evaluates,
        so consumers see the forced value — run-for-run identical to
        :meth:`_evaluate` with ``overrides``.
        """
        nets, index, pi_idx, level_plans = self.settle_plan()
        n_runs = pi_bits.shape[1]
        vals = np.zeros((len(nets), n_runs), dtype=bool)
        vals[pi_idx] = pi_bits
        has_forced = forced is not None and any(forced)
        if has_forced:
            pi_set = set(self.netlist.primary_inputs)
            for run, fmap in enumerate(forced):
                for net, value in fmap.items():
                    if net in pi_set:
                        vals[index[net], run] = bool(value)
        for out_idx, in0_idx, in1_idx, names in level_plans:
            vals[out_idx] = ~(vals[in0_idx] | vals[in1_idx])
            if has_forced:
                for run, fmap in enumerate(forced):
                    for net, value in fmap.items():
                        if net in names:
                            vals[index[net], run] = bool(value)
        return vals

    # ------------------------------------------------------------------
    def open_session(
        self,
        t_stops: "list[float]",
        record_nets: "list[str] | None" = None,
        state: dict | None = None,
        faults: list | None = None,
    ):
        """Open a streaming session over this compiled core.

        The session carries the per-lane inertial pendings, applied pin
        values and unconsumed input events between chunks; chunked
        execution is bitwise-identical to :meth:`run_batch`.  ``faults``
        injects one fault (or ``None``) per run — see
        :mod:`repro.faults.model` for the lowering hooks.
        """
        from repro.digital.session import CompiledDigitalSession

        return CompiledDigitalSession(
            self, t_stops, record_nets=record_nets, state=state,
            faults=faults,
        )

    # ------------------------------------------------------------------
    def run_batch(
        self,
        pi_traces_runs: "list[dict[str, DigitalTrace]]",
        t_stops: "list[float]",
        faults: list | None = None,
    ) -> "list[dict[str, DigitalTrace]]":
        """Simulate a batch of runs; returns every net's committed trace.

        The lock-step twin of
        :meth:`~repro.digital.simulator.DigitalSimulator.simulate` run
        once per batch: per run the result is the event loop's, per
        level all gates × all runs advance together.  A thin one-shot
        wrapper over :meth:`open_session` (feed everything, finish).
        ``faults`` applies one fault (or ``None``) per run; because
        lanes never interact, a wide faulty batch is bitwise-identical
        to running each fault in its own batch.
        """
        from repro.digital.session import one_shot_digital_batch

        return one_shot_digital_batch(
            lambda: self.open_session(t_stops, faults=faults),
            self.netlist,
            pi_traces_runs,
            t_stops,
        )


def lockstep_digital(
    T: np.ndarray,
    P: np.ndarray,
    V: np.ndarray,
    counts: np.ndarray,
    single: np.ndarray,
    delays: np.ndarray,
    flush_to: np.ndarray,
    v0: np.ndarray,
    v1: np.ndarray,
    out: np.ndarray,
    out_times: np.ndarray,
    n_out: np.ndarray,
    pend_t: np.ndarray,
    pend_v: np.ndarray,
) -> None:
    """The inertial event recurrence, lock-step over event index.

    ``pend_t``/``pend_v`` are the per-lane in-flight scheduled events —
    owned by the caller so a streaming session can carry them between
    chunks.  Pendings due at or before ``flush_to`` (the lane's finality
    horizon capped at its ``t_stop``) commit on exit; later ones stay
    pending for the next call.  With ``flush_to = t_stop`` and fresh
    pending arrays this is exactly the legacy one-shot recurrence.
    """
    n_lanes = T.shape[0]
    lanes = np.arange(n_lanes)
    # Fused arc gather: flatten the (lane, pin, edge) delay cube so the
    # per-step lookup is one 2-d fancy index, and decide once — not per
    # event step — whether any arc is missing (NaN) at all.
    arc = np.ascontiguousarray(delays).reshape(n_lanes, 4)
    any_missing = bool(np.isnan(arc).any())

    for j in range(T.shape[1]):
        act = counts > j
        if not act.any():
            break
        t = T[:, j]
        # Commit pendings due at or before this event (pending
        # first on an exact tie; see module docstring).
        fire = act & (pend_t <= t)
        if fire.any():
            fi = lanes[fire]
            out_times[fi, n_out[fi]] = pend_t[fi]
            n_out[fi] += 1
            out[fi] = pend_v[fi]
            pend_t[fi] = np.inf

        ai = lanes[act]
        pin = P[ai, j]
        val = V[ai, j]
        is0 = pin == 0
        v0[ai[is0]] = val[is0]
        v1[ai[~is0]] = val[~is0]
        target = np.where(single[ai], ~v0[ai], ~(v0[ai] | v1[ai]))
        pending = np.isfinite(pend_t[ai])
        effective = np.where(pending, pend_v[ai], out[ai])
        change = target != effective
        ci = ai[change]
        tgt = target[change]
        if ci.size == 0:
            continue
        # The input change reverted before the output fired: the
        # pending pulse is swallowed (inertial cancellation).
        revert = tgt == out[ci]
        pend_t[ci[revert]] = np.inf
        sched = ci[~revert]
        if sched.size == 0:
            continue
        stgt = tgt[~revert]
        d = arc[sched, 2 * P[sched, j] + stgt.astype(int)]
        if any_missing and np.isnan(d).any():
            bad = int(np.nonzero(np.isnan(d))[0][0])
            raise ModelError(
                f"no delay for pin {int(P[sched[bad], j])} edge "
                f"{'rise' if bool(stgt[bad]) else 'fall'}"
            )
        # Full degradation (DDM-style): the transition disappears
        # together with the previous one it would pair with.
        positive = d > 0.0
        pend_t[sched[~positive]] = np.inf
        live = sched[positive]
        pend_t[live] = T[live, j] + d[positive]
        pend_v[live] = stgt[positive]

    flush = np.isfinite(pend_t) & (pend_t <= flush_to)
    if flush.any():
        fi = lanes[flush]
        out_times[fi, n_out[fi]] = pend_t[fi]
        n_out[fi] += 1
        out[fi] = pend_v[fi]
        pend_t[fi] = np.inf
