"""Event-driven digital simulation substrate (replaces ModelSim).

Provides the slope-blind baseline the paper compares against:

* :class:`~repro.digital.trace.DigitalTrace` — Heaviside transition traces
  and the mismatch-time measure underlying the paper's ``t_err`` metric,
* :mod:`~repro.digital.delay` — delay models: per-instance fixed arc
  delays (SDF-style Table-I baseline), load-interpolated tables, and the
  DDM exponential degradation model from the literature,
* :mod:`~repro.digital.hybrid` — a thresholded hybrid (involution-style)
  channel, the stronger digital baseline family the paper cites,
* :class:`~repro.digital.simulator.DigitalSimulator` — event queue with
  inertial cancellation (compiled by default onto the levelized array
  core of :mod:`~repro.digital.compiled` for fixed arc delays),
* :mod:`~repro.digital.characterize` — extracts the delay tables from the
  analog substrate (playing the role of Genus/Innovus extraction).
"""

from repro.digital.trace import DigitalTrace
from repro.digital.delay import (
    ArcKey,
    DelayLibrary,
    DDMDelayModel,
    FixedDelayModel,
    LoadTableDelayModel,
)
from repro.digital.hybrid import HybridExpChannel
from repro.digital.simulator import DigitalSimulator

__all__ = [
    "DigitalTrace",
    "ArcKey",
    "DelayLibrary",
    "FixedDelayModel",
    "LoadTableDelayModel",
    "DDMDelayModel",
    "HybridExpChannel",
    "DigitalSimulator",
]
