"""Event-driven gate-level digital simulator with inertial delays.

This is the ModelSim stand-in of the evaluation: gates switch after
per-instance arc delays, and pending output events that a newer input
change invalidates are cancelled (inertial semantics), which swallows
pulses shorter than the gate delay — precisely the slope-blind behaviour
the paper improves on.

Both execution paths run on streaming sessions
(:mod:`repro.digital.session`): the one-shot entry points feed the whole
stimulus as a single chunk and finish, which replicates the legacy
results bitwise, while :meth:`DigitalSimulator.open_session` exposes the
chunked bounded-memory path directly.
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.digital.delay import InstanceDelayModel
from repro.digital.trace import DigitalTrace
from repro.errors import SimulationError


class DigitalSimulator:
    """Event-driven simulator bound to one netlist and its delay models.

    With ``compiled=True`` (the default) and plain
    :class:`~repro.digital.delay.FixedDelayModel` instance delays, runs
    execute on the levelized array core of
    :mod:`repro.digital.compiled` — bitwise-identical traces, no heap.
    The compilation is lazy and keyed on the delay-model identities, so
    swapping a gate's model (e.g. a test-only perturbation wrapper)
    transparently recompiles or falls back to the event loop.
    """

    def __init__(
        self,
        netlist: Netlist,
        delay_models: dict[str, InstanceDelayModel],
        compiled: bool = True,
    ) -> None:
        netlist.validate()
        if netlist.is_sequential:
            raise SimulationError(
                f"netlist {netlist.name!r} has state elements; run it "
                "through a clocked session "
                "(repro.clocked.ClockedDigitalSession) instead"
            )
        missing = [g for g in netlist.gates if g not in delay_models]
        if missing:
            raise SimulationError(f"missing delay models for gates: {missing[:5]}")
        self.netlist = netlist
        self.delay_models = delay_models
        self.compiled = compiled
        self._consumers = netlist.fanout()
        self._compiled_core = None
        self._compiled_key = None

    # ------------------------------------------------------------------
    def _compiled_circuit(self):
        """The compiled core, rebuilt when the delay models changed.

        The key holds the model *objects* (identity-compared), not bare
        ids — a freed model's address could be recycled by a
        replacement, which would silently revive a stale compilation.
        It also holds the digital cache generation, so
        :func:`repro.core.compile.clear_compile_cache` drops this lazy
        recompile state too.
        """
        if not self.compiled:
            return None
        from repro.digital.compiled import (
            compile_digital,
            digital_cache_generation,
        )

        key = (
            digital_cache_generation(),
            tuple(self.delay_models[name] for name in self.netlist.gates),
        )
        if key != self._compiled_key:
            self._compiled_core = compile_digital(
                self.netlist, self.delay_models
            )
            self._compiled_key = key
        return self._compiled_core

    # ------------------------------------------------------------------
    def open_session(
        self,
        t_stops: "list[float]",
        record_nets: "list[str] | None" = None,
        state: dict | None = None,
        faults: list | None = None,
    ):
        """Open a streaming session (``feed``/``state``/``finish``).

        Compiled instances stream on the lock-step array core
        (:class:`~repro.digital.session.CompiledDigitalSession`); the
        interpreted/fallback path streams the paused event heap
        (:class:`~repro.digital.session.EventDigitalSession`).  Chunked
        execution is bitwise-identical to one-shot for both.  ``faults``
        injects one fault (or ``None``) per run on either path — see
        :mod:`repro.faults`.
        """
        core = self._compiled_circuit()
        if core is not None:
            return core.open_session(
                t_stops, record_nets=record_nets, state=state,
                faults=faults,
            )
        from repro.digital.session import EventDigitalSession

        return EventDigitalSession(
            self.netlist,
            self.delay_models,
            t_stops,
            record_nets=record_nets,
            state=state,
            faults=faults,
        )

    # ------------------------------------------------------------------
    def simulate_batch(
        self,
        pi_traces_runs: "list[dict[str, DigitalTrace]]",
        t_stops: "list[float]",
        faults: list | None = None,
    ) -> "list[dict[str, DigitalTrace]]":
        """Simulate many runs; one lock-step pass on the compiled core.

        Falls back to the event-loop session when the instance is
        interpreted or the delay models do not compile.  A thin
        one-shot wrapper over :meth:`open_session` (feed everything,
        finish) — bitwise-identical to the legacy in-place loops.
        """
        from repro.digital.session import one_shot_digital_batch

        return one_shot_digital_batch(
            lambda: self.open_session(t_stops, faults=faults),
            self.netlist,
            pi_traces_runs,
            t_stops,
        )

    def simulate(
        self,
        pi_traces: dict[str, DigitalTrace],
        t_stop: float,
    ) -> dict[str, DigitalTrace]:
        """Run one simulation until ``t_stop``.

        Returns the committed trace of every net (PIs included).
        """
        return self.simulate_batch([pi_traces], [t_stop])[0]

    # ------------------------------------------------------------------
    def simulate_outputs(
        self, pi_traces: dict[str, DigitalTrace], t_stop: float
    ) -> dict[str, DigitalTrace]:
        """Convenience: primary-output traces only."""
        traces = self.simulate(pi_traces, t_stop)
        return {po: traces[po] for po in self.netlist.primary_outputs}


def instance_cell_name(gtype: GateType) -> str:
    """Cell name used by delay libraries for a netlist gate type."""
    if gtype is GateType.INV:
        return "INV"
    if gtype is GateType.NOR:
        return "NOR2"
    raise SimulationError(f"no cell for gate type {gtype}")
