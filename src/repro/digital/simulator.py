"""Event-driven gate-level digital simulator with inertial delays.

This is the ModelSim stand-in of the evaluation: gates switch after
per-instance arc delays, and pending output events that a newer input
change invalidates are cancelled (inertial semantics), which swallows
pulses shorter than the gate delay — precisely the slope-blind behaviour
the paper improves on.
"""

from __future__ import annotations

import heapq
import itertools

from repro.circuits.gates import GateType, eval_gate
from repro.circuits.netlist import Netlist
from repro.digital.delay import InstanceDelayModel
from repro.digital.trace import DigitalTrace
from repro.errors import SimulationError


class DigitalSimulator:
    """Event-driven simulator bound to one netlist and its delay models.

    With ``compiled=True`` (the default) and plain
    :class:`~repro.digital.delay.FixedDelayModel` instance delays, runs
    execute on the levelized array core of
    :mod:`repro.digital.compiled` — bitwise-identical traces, no heap.
    The compilation is lazy and keyed on the delay-model identities, so
    swapping a gate's model (e.g. a test-only perturbation wrapper)
    transparently recompiles or falls back to the event loop below.
    """

    def __init__(
        self,
        netlist: Netlist,
        delay_models: dict[str, InstanceDelayModel],
        compiled: bool = True,
    ) -> None:
        netlist.validate()
        missing = [g for g in netlist.gates if g not in delay_models]
        if missing:
            raise SimulationError(f"missing delay models for gates: {missing[:5]}")
        self.netlist = netlist
        self.delay_models = delay_models
        self.compiled = compiled
        self._consumers = netlist.fanout()
        self._compiled_core = None
        self._compiled_key = None

    # ------------------------------------------------------------------
    def _compiled_circuit(self):
        """The compiled core, rebuilt when the delay models changed.

        The key holds the model *objects* (identity-compared), not bare
        ids — a freed model's address could be recycled by a
        replacement, which would silently revive a stale compilation.
        """
        if not self.compiled:
            return None
        key = tuple(
            self.delay_models[name] for name in self.netlist.gates
        )
        if key != self._compiled_key:
            from repro.digital.compiled import compile_digital

            self._compiled_core = compile_digital(
                self.netlist, self.delay_models
            )
            self._compiled_key = key
        return self._compiled_core

    # ------------------------------------------------------------------
    def simulate_batch(
        self,
        pi_traces_runs: "list[dict[str, DigitalTrace]]",
        t_stops: "list[float]",
    ) -> "list[dict[str, DigitalTrace]]":
        """Simulate many runs; one lock-step pass on the compiled core.

        Falls back to per-run event loops when the instance is
        interpreted or the delay models do not compile.
        """
        if len(pi_traces_runs) != len(t_stops):
            raise SimulationError("need one t_stop per run")
        core = self._compiled_circuit()
        if core is not None:
            return core.run_batch(pi_traces_runs, t_stops)
        return [
            self._simulate_events(pi_traces, t_stop)
            for pi_traces, t_stop in zip(pi_traces_runs, t_stops)
        ]

    def simulate(
        self,
        pi_traces: dict[str, DigitalTrace],
        t_stop: float,
    ) -> dict[str, DigitalTrace]:
        """Run one simulation until ``t_stop``.

        Returns the committed trace of every net (PIs included).
        """
        core = self._compiled_circuit()
        if core is not None:
            return core.run_batch([pi_traces], [t_stop])[0]
        return self._simulate_events(pi_traces, t_stop)

    def _simulate_events(
        self,
        pi_traces: dict[str, DigitalTrace],
        t_stop: float,
    ) -> dict[str, DigitalTrace]:
        """The event-driven reference loop (``compiled=False`` path)."""
        netlist = self.netlist
        missing = [pi for pi in netlist.primary_inputs if pi not in pi_traces]
        if missing:
            raise SimulationError(f"missing PI traces: {missing}")

        # Initial values from a topological evaluation at t = -inf.
        values = netlist.evaluate(
            {pi: pi_traces[pi].initial for pi in netlist.primary_inputs}
        )
        transitions: dict[str, list[float]] = {net: [] for net in netlist.nets}
        initials = dict(values)
        last_output_time: dict[str, float] = {
            g: float("-inf") for g in netlist.gates
        }
        pending: dict[str, tuple[float, bool, int]] = {}
        token_counter = itertools.count()
        seq_counter = itertools.count()
        heap: list[tuple[float, int, str, bool, int]] = []

        for pi in netlist.primary_inputs:
            value = pi_traces[pi].initial
            for time in pi_traces[pi].times:
                value = not value
                if time <= t_stop:
                    heapq.heappush(
                        heap, (time, next(seq_counter), pi, value, -1)
                    )

        def schedule(gate_name: str, time: float, value: bool) -> None:
            token = next(token_counter)
            pending[gate_name] = (time, value, token)
            heapq.heappush(
                heap, (time, next(seq_counter), gate_name, value, token)
            )

        def update_gate(gate_name: str, pin: int, now: float) -> None:
            gate = netlist.gates[gate_name]
            target = eval_gate(
                gate.gtype, [values[n] for n in gate.inputs]
            )
            entry = pending.get(gate_name)
            effective = entry[1] if entry is not None else values[gate_name]
            if target == effective:
                return
            if target == values[gate_name]:
                # The input change reverted before the output fired: the
                # pending pulse is swallowed (inertial cancellation).
                pending.pop(gate_name, None)
                return
            edge = "rise" if target else "fall"
            delay = self.delay_models[gate_name].delay(
                pin, edge, now, last_output_time[gate_name]
            )
            if delay <= 0.0:
                # Full degradation (DDM-style): the transition disappears
                # together with the previous one it would pair with.
                pending.pop(gate_name, None)
                return
            schedule(gate_name, now + delay, target)

        while heap:
            time, _seq, net, value, token = heapq.heappop(heap)
            if time > t_stop:
                break
            if token >= 0:
                entry = pending.get(net)
                if entry is None or entry[2] != token:
                    continue  # stale event
                pending.pop(net)
                last_output_time[net] = time
            if values[net] == value:
                continue
            values[net] = value
            transitions[net].append(time)
            for consumer, pin in self._consumers.get(net, ()):  # fanout gates
                update_gate(consumer, pin, time)

        return {
            net: DigitalTrace(initials[net], times)
            for net, times in transitions.items()
        }

    # ------------------------------------------------------------------
    def simulate_outputs(
        self, pi_traces: dict[str, DigitalTrace], t_stop: float
    ) -> dict[str, DigitalTrace]:
        """Convenience: primary-output traces only."""
        traces = self.simulate(pi_traces, t_stop)
        return {po: traces[po] for po in self.netlist.primary_outputs}


def instance_cell_name(gtype: GateType) -> str:
    """Cell name used by delay libraries for a netlist gate type."""
    if gtype is GateType.INV:
        return "INV"
    if gtype is GateType.NOR:
        return "NOR2"
    raise SimulationError(f"no cell for gate type {gtype}")
