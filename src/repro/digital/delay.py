"""Gate delay models for the digital simulator.

The Table-I digital baseline mirrors a ModelSim+SDF flow: every gate
instance carries fixed pin-to-output rise/fall delays, looked up from
tables characterized on the analog substrate at the instance's actual
load (the role Genus/Innovus extraction plays in the paper).

Model hierarchy:

* :class:`FixedDelayModel` — constant per-arc delays (resolved per
  instance from a :class:`DelayLibrary` at build time),
* :class:`LoadTableDelayModel` — 1-D load-interpolated tables,
* :class:`DDMDelayModel` — the Delay Degradation Model of Bellido-Diaz et
  al.: the effective delay shrinks exponentially when the previous output
  transition was recent, modeling pulse degradation in a purely digital
  simulator.

All delays are in seconds.  ``ArcKey`` identifies a timing arc by cell,
input pin and *output* edge direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True, order=True)
class ArcKey:
    """Identifies one timing arc: cell type, input pin, output edge."""

    cell: str  # "INV" | "NOR2"
    pin: int
    edge: str  # "rise" | "fall" of the output

    def __post_init__(self) -> None:
        if self.edge not in ("rise", "fall"):
            raise ModelError("edge must be 'rise' or 'fall'")


@dataclass
class ArcTable:
    """Delay and output slew of one arc, tabulated over output load."""

    loads: np.ndarray  # farads, ascending
    delays: np.ndarray  # seconds
    slews: np.ndarray  # seconds (10-90% edge time)

    def __post_init__(self) -> None:
        self.loads = np.asarray(self.loads, dtype=float)
        self.delays = np.asarray(self.delays, dtype=float)
        self.slews = np.asarray(self.slews, dtype=float)
        if self.loads.ndim != 1 or self.loads.size < 1:
            raise ModelError("need at least one load point")
        if self.delays.shape != self.loads.shape or self.slews.shape != self.loads.shape:
            raise ModelError("table arrays must share one shape")
        if self.loads.size > 1 and np.any(np.diff(self.loads) <= 0):
            raise ModelError("loads must be ascending")

    def delay_at(self, load: float) -> float:
        """Linearly interpolated (clamped) delay at ``load``."""
        return float(np.interp(load, self.loads, self.delays))

    def slew_at(self, load: float) -> float:
        return float(np.interp(load, self.loads, self.slews))

    def to_dict(self) -> dict:
        return {
            "loads": self.loads.tolist(),
            "delays": self.delays.tolist(),
            "slews": self.slews.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArcTable":
        return cls(
            np.asarray(data["loads"]),
            np.asarray(data["delays"]),
            np.asarray(data["slews"]),
        )


@dataclass
class DelayLibrary:
    """All characterized arcs of the cell set."""

    arcs: dict[ArcKey, ArcTable] = field(default_factory=dict)

    def add(self, key: ArcKey, table: ArcTable) -> None:
        self.arcs[key] = table

    def table(self, key: ArcKey) -> ArcTable:
        try:
            return self.arcs[key]
        except KeyError:
            raise ModelError(f"no characterized arc for {key}") from None

    def delay(self, key: ArcKey, load: float) -> float:
        return self.table(key).delay_at(load)

    def to_dict(self) -> dict:
        return {
            f"{k.cell}|{k.pin}|{k.edge}": v.to_dict() for k, v in self.arcs.items()
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DelayLibrary":
        lib = cls()
        for key_str, table in data.items():
            cell, pin, edge = key_str.split("|")
            lib.add(ArcKey(cell, int(pin), edge), ArcTable.from_dict(table))
        return lib


class InstanceDelayModel:
    """Per-gate-instance delay interface used by the simulator."""

    def delay(self, pin: int, edge: str, now: float, last_output_time: float) -> float:
        """Delay of an output ``edge`` caused by input ``pin`` at ``now``."""
        raise NotImplementedError  # pragma: no cover - abstract


class FixedDelayModel(InstanceDelayModel):
    """Constant per-arc delays (the SDF-style ModelSim baseline)."""

    def __init__(self, delays: dict[tuple[int, str], float]) -> None:
        if not delays:
            raise ModelError("need at least one arc delay")
        for (pin, edge), value in delays.items():
            if edge not in ("rise", "fall"):
                raise ModelError("edge must be 'rise' or 'fall'")
            if value <= 0:
                raise ModelError(f"delay for pin {pin} {edge} must be positive")
        self._delays = dict(delays)

    @classmethod
    def from_library(
        cls, library: DelayLibrary, cell: str, n_pins: int, load: float
    ) -> "FixedDelayModel":
        """Resolve instance delays from the library at the instance load."""
        delays = {}
        for pin in range(n_pins):
            for edge in ("rise", "fall"):
                delays[(pin, edge)] = library.delay(ArcKey(cell, pin, edge), load)
        return cls(delays)

    def delay(self, pin: int, edge: str, now: float, last_output_time: float) -> float:
        try:
            return self._delays[(pin, edge)]
        except KeyError:
            raise ModelError(f"no delay for pin {pin} edge {edge}") from None

    def arc_array(self, n_pins: int = 2) -> np.ndarray:
        """Arc delays as a dense ``(n_pins, 2)`` array (edge 0=fall, 1=rise).

        The compiled levelized digital core gathers per-event delays
        from these arrays instead of per-event method dispatch; missing
        arcs are NaN (a gather hitting one raises downstream, matching
        the interpreted path's :class:`~repro.errors.ModelError`).
        """
        table = np.full((n_pins, 2), np.nan)
        for (pin, edge), value in self._delays.items():
            if 0 <= pin < n_pins:
                table[pin, 0 if edge == "fall" else 1] = value
        return table


class LoadTableDelayModel(FixedDelayModel):
    """Alias constructor emphasizing table-based per-instance resolution."""


class DDMDelayModel(InstanceDelayModel):
    """Delay Degradation Model (Bellido-Diaz et al., 2000).

    The nominal arc delay ``d0`` degrades when the time ``T`` since the
    previous *output* transition is short::

        d_eff(T) = d0 * (1 - exp(-(T - t0) / tau))    for T > t0

    For ``T <= t0`` the new transition would be fully degraded; the model
    returns a non-positive delay which the simulator interprets as pulse
    cancellation.
    """

    def __init__(
        self,
        base: dict[tuple[int, str], float],
        tau: float,
        t0: float = 0.0,
    ) -> None:
        if tau <= 0:
            raise ModelError("tau must be positive")
        if t0 < 0:
            raise ModelError("t0 must be non-negative")
        self._base = FixedDelayModel(base)
        self.tau = tau
        self.t0 = t0

    def delay(self, pin: int, edge: str, now: float, last_output_time: float) -> float:
        d0 = self._base.delay(pin, edge, now, last_output_time)
        T = now - last_output_time
        if not np.isfinite(T):
            return d0
        if T <= self.t0:
            return 0.0
        return d0 * (1.0 - float(np.exp(-(T - self.t0) / self.tau)))
