"""Delay characterization from the analog substrate.

Plays the role of the Genus/Innovus extraction the paper used for its
ModelSim baseline: each timing arc (cell, input pin, output edge) is
measured on the staged analog engine for a range of output loads, with the
input driven through pulse-shaping inverters so the stimulus slew matches
what gates see inside a real circuit.

The result is a :class:`~repro.digital.delay.DelayLibrary`; the digital
simulator resolves per-instance fixed delays from it at each gate's actual
fanout load.
"""

from __future__ import annotations

import numpy as np

from repro.analog.cells import CellLibrary, DEFAULT_LIBRARY
from repro.analog.staged import StagedSimulator
from repro.analog.stimuli import SteppedSource
from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.constants import VTH
from repro.digital.delay import ArcKey, ArcTable, DelayLibrary
from repro.errors import SimulationError

#: Number of pulse-shaping inverters in front of every measured gate.
N_SHAPING = 2

#: Stimulus edges: one rising and one falling, far apart (no history effect).
_T_RISE = 40e-12
_T_FALL = 110e-12
_T_STOP = 170e-12


def _arc_configs(loads: tuple[int, ...]):
    """All (cell, pin, load) combinations to measure.

    ``NOR2T`` is the tied-input NOR (the pure-NOR mapping's inverter).
    """
    for cell, pins in (("INV", (0,)), ("NOR2", (0, 1)), ("NOR2T", (0,))):
        for pin in pins:
            for load in loads:
                yield cell, pin, load


def _build_bench_netlist(loads: tuple[int, ...]) -> tuple[Netlist, dict]:
    """One netlist holding every measurement structure in parallel.

    Returns the netlist and a map config -> (input net, output net).
    """
    netlist = Netlist("char")
    netlist.add_input("stim")
    netlist.add_input("lo")
    probes: dict[tuple[str, int, int], tuple[str, str]] = {}
    for cell, pin, load in _arc_configs(loads):
        tag = f"{cell.lower()}_p{pin}_l{load}"
        prev = "stim"
        for i in range(N_SHAPING):
            net = f"{tag}_s{i}"
            netlist.add_gate(net, GateType.INV, [prev])
            prev = net
        out = f"{tag}_out"
        if cell == "INV":
            netlist.add_gate(out, GateType.INV, [prev])
        elif cell == "NOR2T":
            netlist.add_gate(out, GateType.NOR, [prev, prev])
        else:
            inputs = [prev, "lo"] if pin == 0 else ["lo", prev]
            netlist.add_gate(out, GateType.NOR, inputs)
        for k in range(load):
            netlist.add_gate(f"{tag}_ld{k}", GateType.INV, [out])
        netlist.add_output(out)
        probes[(cell, pin, load)] = (prev, out)
    netlist.validate()
    return netlist, probes


def characterize_delay_library(
    library: CellLibrary = DEFAULT_LIBRARY,
    loads: tuple[int, ...] = (1, 2, 3, 4),
    dt: float = 0.1e-12,
) -> DelayLibrary:
    """Measure all arcs on the staged analog engine.

    ``loads`` are fanout counts (each load unit is one inverter input);
    the resulting tables are indexed by capacitive load in farads so the
    simulator can interpolate at arbitrary instance loads.
    """
    if not loads:
        raise SimulationError("need at least one load point")
    netlist, probes = _build_bench_netlist(tuple(loads))
    sim = StagedSimulator(netlist, library=library)
    record = sorted({net for pair in probes.values() for net in pair})
    stim = SteppedSource([np.array([_T_RISE, _T_FALL])], initial_levels=0)
    lo = SteppedSource.constant(0, 1)
    result = sim.simulate({"stim": stim, "lo": lo}, t_stop=_T_STOP,
                          record_nets=record)

    # Group measurements: arc -> load -> (delay, slew)
    measured: dict[tuple[str, int, str], dict[int, tuple[float, float]]] = {}
    for (cell, pin, load), (in_net, out_net) in probes.items():
        wf_in = result.waveform(in_net)
        wf_out = result.waveform(out_net)
        in_xs = wf_in.crossings(VTH)
        out_xs = wf_out.crossings(VTH)
        if len(in_xs) != 2 or len(out_xs) != 2:
            raise SimulationError(
                f"unexpected crossing counts for {cell} pin{pin} load{load}: "
                f"{len(in_xs)} in, {len(out_xs)} out"
            )
        for in_x, out_x in zip(in_xs, out_xs):
            edge = "rise" if out_x.direction > 0 else "fall"
            delay = out_x.time - in_x.time
            if delay <= 0:
                raise SimulationError("non-causal delay measured")
            slew = wf_out.edge_time(out_x)
            measured.setdefault((cell, pin, edge), {})[load] = (delay, slew)

    # Convert fanout counts to capacitive loads and build tables.
    delay_lib = DelayLibrary()
    for (cell, pin, edge), by_load in measured.items():
        fanouts = sorted(by_load)
        cap_loads = [
            library.wire_cap + n * library.input_capacitance("INV") for n in fanouts
        ]
        delays = [by_load[n][0] for n in fanouts]
        slews = [by_load[n][1] for n in fanouts]
        delay_lib.add(
            ArcKey(cell, pin, edge),
            ArcTable(np.asarray(cap_loads), np.asarray(delays), np.asarray(slews)),
        )
    return delay_lib


def instance_load(
    netlist: Netlist, net: str, library: CellLibrary = DEFAULT_LIBRARY
) -> float:
    """Capacitive load a gate output drives inside ``netlist`` (farads)."""
    consumers = netlist.fanout().get(net, [])
    load = library.wire_cap * max(len(consumers), 1)
    for consumer, pin in consumers:
        gtype = netlist.gates[consumer].gtype
        cell = "INV" if gtype is GateType.INV else "NOR2"
        load += library.input_capacitance(cell, pin)
    return load


def build_instance_delays(
    netlist: Netlist,
    delay_library: DelayLibrary,
    library: CellLibrary = DEFAULT_LIBRARY,
):
    """Fixed per-instance delay models for every gate of ``netlist``.

    This is the digital baseline configuration of Table I: individual
    delays per gate resolved at the gate's actual interconnect + fanout
    load, like an SDF annotation.
    """
    from repro.digital.delay import FixedDelayModel

    fanout = netlist.fanout()
    models = {}
    for name, gate in netlist.gates.items():
        if gate.gtype is GateType.INV:
            cell = "INV"
        elif gate.inputs[0] == gate.inputs[1]:
            cell = "NOR2T"
        else:
            cell = "NOR2"
        consumers = fanout.get(name, [])
        load = library.wire_cap * max(len(consumers), 1)
        for consumer, pin in consumers:
            ctype = netlist.gates[consumer].gtype
            ccell = "INV" if ctype is GateType.INV else "NOR2"
            load += library.input_capacitance(ccell, pin)
        if cell == "NOR2":
            models[name] = FixedDelayModel.from_library(
                delay_library, cell, 2, load
            )
        else:
            # Single-channel cells; tied gates may be poked on either pin
            # by the event loop, so both map to the same arc.
            delays = {}
            for edge in ("rise", "fall"):
                value = delay_library.delay(ArcKey(cell, 0, edge), load)
                delays[(0, edge)] = value
                delays[(1, edge)] = value
            models[name] = FixedDelayModel(delays)
    return models
