"""Streaming sessions for the digital simulators (bitwise-exact).

The digital twin of :mod:`repro.core.session`.  Unlike the sigmoid
cores, digital streaming needs no guard band: a committed transition is
never revised (inertial cancellation only ever swallows *pending*
events, which stay in carried state until they either fire or are
cancelled), so each net's watermark — ``min(input watermarks, t_stop)``
— is exact and chunked execution is **bitwise identical** to one-shot
for both cores.

:class:`CompiledDigitalSession` carries, per gate lane, the unconsumed
committed input events, the applied pin/output values and the in-flight
inertial pending ``(time, value)`` between chunks, running the same
lock-step kernel as the one-shot path over each consumed slice.
:class:`EventDigitalSession` carries the event heap itself (plus the
pending-token and net-value dicts) and drains it up to
``min(horizon, t_stop)`` per feed — the exact reference loop, paused.

The one cross-chunk ordering corner matches the documented compiled-
vs-event one: a *scheduled gate output* landing at exactly the same
float time as a primary-input event of a **later** chunk is processed
in a different heap-sequence order than the one-shot loop would use.
Characterized arc delays and random stimuli never produce such ties,
and the one-shot wrappers (single feed + finish) replicate the legacy
sequence numbering exactly, so the existing bitwise contracts are
untouched.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.circuits.gates import eval_gate
from repro.core.session import (
    STATE_FORMAT,
    SimulationSession,
    encode_nonfinite,
)
from repro.digital.trace import DigitalTrace
from repro.errors import SimulationError


class _DigitalSessionBase(SimulationSession):
    """Shared PI ingest / segment assembly of both digital sessions."""

    kind = "digital"

    def __init__(self, netlist, t_stops, record_nets, faults=None) -> None:
        super().__init__()
        from repro.core.compile import netlist_digest

        self.netlist = netlist
        self._digest = netlist_digest(netlist)
        self._pis = list(netlist.primary_inputs)
        if record_nets is None:
            record_nets = list(netlist.nets)
        known = set(netlist.nets)
        for net in record_nets:
            if net not in known:
                raise SimulationError(f"unknown record net: {net!r}")
        self._record = list(record_nets)
        self._t_stops = [float(t) for t in t_stops]
        self._n_runs = len(self._t_stops)
        if self._n_runs == 0:
            raise SimulationError("need at least one run (one t_stop)")
        if faults is None:
            faults = [None] * self._n_runs
        else:
            faults = list(faults)
            if len(faults) != self._n_runs:
                raise SimulationError(
                    f"need one fault (or None) per run ({self._n_runs}), "
                    f"got {len(faults)}"
                )
        self._faults = faults
        self._has_faults = any(fault is not None for fault in faults)
        # Per-run forced-net maps (the stuck-at lowering shared by both
        # session kinds): a forced net keeps its forced level for the
        # whole run — its fed/produced transitions never propagate.
        self._forced: list[dict[str, bool]] = []
        for fault in faults:
            stuck = {} if fault is None else dict(fault.stuck_nets())
            for net in stuck:
                if net not in known:
                    raise SimulationError(
                        f"stuck-at fault on unknown net {net!r}"
                    )
            self._forced.append({n: bool(v) for n, v in stuck.items()})
        self._started = False
        self._horizon = [-math.inf] * self._n_runs

    def _refuse_fault_checkpoint(self) -> None:
        if self._has_faults:
            raise SimulationError(
                "fault-injected sessions do not checkpoint: the state "
                "format carries no fault list, so a restore would "
                "silently resume the good machine"
            )

    # -- chunk validation ----------------------------------------------
    def _check_first_feed(self, chunks) -> None:
        if len(chunks) != self._n_runs:
            raise SimulationError(
                f"need one chunk dict per run ({self._n_runs}), "
                f"got {len(chunks)}"
            )
        if not self._started:
            for chunk in chunks:
                missing = [pi for pi in self._pis if pi not in chunk]
                if missing:
                    raise SimulationError(f"missing PI traces: {missing}")

    def _check_segment(self, run, pi, seg, stream_level) -> None:
        if bool(seg.initial) != bool(stream_level):
            raise SimulationError(
                f"chunk for {pi!r} breaks level continuity: segment "
                f"starts at {int(bool(seg.initial))}, stream level is "
                f"{int(bool(stream_level))}"
            )
        if seg.times and seg.times[0] <= self._horizon[run]:
            raise SimulationError(
                f"chunk for {pi!r} starts at {seg.times[0]!r} <= stream "
                f"horizon {self._horizon[run]!r}; transitions must "
                "arrive in time order"
            )

    def _check_chunk_keys(self, chunk) -> None:
        pis = set(self._pis)
        extra = [net for net in chunk if net not in pis]
        if extra:
            raise SimulationError(
                f"chunk nets must be primary inputs; got {sorted(extra)}"
            )

    # -- segment assembly ----------------------------------------------
    def _segments(self, emitted: list[dict]) -> list[dict]:
        """Per-run recorded segments; toggles ``self._seg_level``."""
        results = []
        for run in range(self._n_runs):
            emit_run = emitted[run]
            seg_level = self._seg_level[run]
            seg = {}
            for net in self._record:
                times = emit_run.get(net, [])
                initial = seg_level[net]
                if len(times) % 2:
                    seg_level[net] = not initial
                seg[net] = DigitalTrace(initial, times)
            results.append(seg)
        return results


class CompiledDigitalSession(_DigitalSessionBase):
    """Streaming twin of :class:`CompiledDigitalCircuit.run_batch`.

    Carried per-lane state between chunks: unconsumed committed input
    events, applied pin values (``v0``/``v1``), the committed output
    value, and the single in-flight inertial pending ``(time, value)``
    the lock-step kernel schedules, cancels or commits.
    """

    mode = "compiled"

    def __init__(
        self,
        circuit,
        t_stops: list[float],
        record_nets: list[str] | None = None,
        state: dict | None = None,
        faults: list | None = None,
    ) -> None:
        super().__init__(circuit.netlist, t_stops, record_nets, faults=faults)
        self.circuit = circuit
        if state is not None:
            self._refuse_fault_checkpoint()
            self.restore(state)

    # ------------------------------------------------------------------
    def _initialize(self, chunks) -> None:
        circuit = self.circuit
        nets, _index, _pi_idx, level_plans = circuit.settle_plan()
        # All runs settle in one level-vectorized pass (the per-run
        # python walk dominated wide-batch session startup).
        pi_bits = np.array(
            [[bool(chunk[pi].initial) for chunk in chunks]
             for pi in self._pis],
            dtype=bool,
        ).reshape(len(self._pis), self._n_runs)
        vals = circuit.evaluate_batch(
            pi_bits, self._forced if self._has_faults else None
        )
        columns = vals.T.tolist()
        self._initials = [dict(zip(nets, col)) for col in columns]
        self._seg_level = [dict(zip(nets, col)) for col in columns]
        self._stream = [
            {pi: bool(chunk[pi].initial) for pi in self._pis}
            for chunk in chunks
        ]
        self._wm = [
            dict.fromkeys(self.netlist.nets, -math.inf)
            for _ in range(self._n_runs)
        ]
        self._lanes = []
        for level, (out_idx, in0_idx, in1_idx, _names) in zip(
            circuit.levels, level_plans
        ):
            n_g = len(level.names)
            n = n_g * self._n_runs
            # Lane order is run-major (lane = run * n_g + i): transpose
            # the (gate, run) gathers before flattening.
            st = {
                "buf0": [[] for _ in range(n)],
                "buf1": [[] for _ in range(n)],
                "v0": np.ascontiguousarray(vals[in0_idx].T).reshape(n),
                "v1": np.ascontiguousarray(vals[in1_idx].T).reshape(n),
                "out": np.ascontiguousarray(vals[out_idx].T).reshape(n),
                "pend_t": np.full(n, np.inf),
                "pend_v": np.zeros(n, dtype=bool),
            }
            self._lanes.append(st)
        self._lane_const = self._build_lane_const()
        self._started = True

    # ------------------------------------------------------------------
    def _build_lane_const(self) -> list:
        """Per-level lane-expanded ``(single, delays)`` arrays.

        These gathers depend only on ``(level, n_runs)`` and the fault
        list, so they are hoisted out of the per-chunk step loop and
        shared by every
        :func:`~repro.digital.compiled.lockstep_digital` call.  Delay
        faults land here: the faulted run's lanes get the per-arc delta
        added to their slice of the dense delay cube, so the lock-step
        gather applies the perturbation with no per-event branching.
        """
        deltas = [
            fault.arc_deltas() if fault is not None else {}
            for fault in self._faults
        ]
        has_delta = any(deltas)
        const = []
        for level in self.circuit.levels:
            n_g = len(level.names)
            rows = np.tile(np.arange(n_g), self._n_runs)
            lane_delays = np.ascontiguousarray(level.delays[rows])
            if has_delta:
                for run, delta_map in enumerate(deltas):
                    for i, name in enumerate(level.names):
                        delta = delta_map.get(name)
                        if delta is not None:
                            lane_delays[run * n_g + i] += delta
            const.append((level.single[rows], lane_delays))
        return const

    # ------------------------------------------------------------------
    def feed(self, chunks, advance_to: float | None = None):
        """Ingest one :class:`DigitalTrace` chunk per run; return the
        committed segments (all four watermark rules are exact, so every
        returned transition is final and bitwise-stable)."""
        self._require_active()
        chunks = list(chunks)
        self._check_first_feed(chunks)
        if not self._started:
            self._initialize(chunks)
        emitted = self._ingest(chunks, advance_to)
        self._step(emitted, final=False)
        return self._segments(emitted)

    def finish(self):
        """Flush all carried pendings up to ``t_stop`` and close."""
        self._require_active()
        if not self._started:
            raise SimulationError("cannot finish before the first feed")
        emitted: list[dict] = [{} for _ in range(self._n_runs)]
        self._step(emitted, final=True)
        self._finished = True
        return self._segments(emitted)

    # ------------------------------------------------------------------
    def _ingest(self, chunks, advance_to) -> list[dict]:
        emitted: list[dict] = [{} for _ in range(self._n_runs)]
        for run, chunk in enumerate(chunks):
            self._check_chunk_keys(chunk)
            t_stop = self._t_stops[run]
            new_horizon = self._horizon[run]
            for pi in self._pis:
                seg = chunk.get(pi)
                if seg is None:
                    continue
                self._check_segment(run, pi, seg, self._stream[run][pi])
                if seg.times:
                    # The stream level tracks every fed transition; only
                    # the ones inside the run's window commit (the event
                    # loop's push guard).  A stuck PI swallows its
                    # stimulus: the level continuity bookkeeping still
                    # advances, but nothing propagates.
                    kept = [t for t in seg.times if t <= t_stop]
                    if kept and pi not in self._forced[run]:
                        emitted[run][pi] = kept
                    self._stream[run][pi] ^= len(seg.times) % 2 == 1
                    new_horizon = max(new_horizon, seg.times[-1])
            if advance_to is not None:
                new_horizon = max(new_horizon, float(advance_to))
            self._horizon[run] = new_horizon
            wm = self._wm[run]
            for pi in self._pis:
                wm[pi] = new_horizon
        return emitted

    # ------------------------------------------------------------------
    def _step(self, emitted: list[dict], final: bool) -> None:
        from repro.digital.compiled import lockstep_digital

        for li, (level, st) in enumerate(
            zip(self.circuit.levels, self._lanes)
        ):
            n_g = len(level.names)
            if n_g == 0:
                continue
            lane_single, lane_delays = self._lane_const[li]
            n_lanes = n_g * self._n_runs
            flat_t: list[float] = []
            flat_p: list[int] = []
            flat_v: list[bool] = []
            counts = np.zeros(n_lanes, dtype=int)
            flush_to = np.empty(n_lanes)

            for run in range(self._n_runs):
                emit_run = emitted[run]
                wm_run = self._wm[run]
                t_stop = self._t_stops[run]
                for i in range(n_g):
                    lane = run * n_g + i
                    in0 = level.in0[i]
                    buf0 = st["buf0"][lane]
                    new0 = emit_run.get(in0)
                    if new0:
                        buf0.extend(new0)
                    if level.single[i]:
                        horizon = math.inf if final else wm_run[in0]
                        k = 0
                        val0 = not st["v0"][lane]
                        while k < len(buf0) and buf0[k] <= horizon:
                            flat_t.append(buf0[k])
                            flat_p.append(0)
                            flat_v.append(val0)
                            val0 = not val0
                            k += 1
                        del buf0[:k]
                        counts[lane] = k
                    else:
                        in1 = level.in1[i]
                        buf1 = st["buf1"][lane]
                        new1 = emit_run.get(in1)
                        if new1:
                            buf1.extend(new1)
                        horizon = (
                            math.inf
                            if final
                            else min(wm_run[in0], wm_run[in1])
                        )
                        # Stable two-pointer merge up to the horizon:
                        # pin 0 first on a tie, values reconstructed by
                        # toggling the applied pin values.
                        a = b = 0
                        m, n1 = len(buf0), len(buf1)
                        val0 = not st["v0"][lane]
                        val1 = not st["v1"][lane]
                        k = 0
                        while a < m or b < n1:
                            if b >= n1 or (
                                a < m and buf0[a] <= buf1[b]
                            ):
                                t = buf0[a]
                                if t > horizon:
                                    break
                                flat_t.append(t)
                                flat_p.append(0)
                                flat_v.append(val0)
                                val0 = not val0
                                a += 1
                            else:
                                t = buf1[b]
                                if t > horizon:
                                    break
                                flat_t.append(t)
                                flat_p.append(1)
                                flat_v.append(val1)
                                val1 = not val1
                                b += 1
                            k += 1
                        del buf0[:a]
                        del buf1[:b]
                        counts[lane] = k
                    flush_to[lane] = min(horizon, t_stop)

            max_events = int(counts.max()) if counts.size else 0
            width = max_events + 1  # carried pending may commit too
            T = np.full((n_lanes, max_events), np.inf)
            P = np.zeros((n_lanes, max_events), dtype=int)
            V = np.zeros((n_lanes, max_events), dtype=bool)
            if max_events:
                lane_ids = np.repeat(np.arange(n_lanes), counts)
                offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
                within = np.arange(lane_ids.size) - offsets[lane_ids]
                T[lane_ids, within] = flat_t
                P[lane_ids, within] = flat_p
                V[lane_ids, within] = flat_v
            n_out = np.zeros(n_lanes, dtype=int)
            out_times = np.empty((n_lanes, width))
            # Always run: the advancing horizon can flush a carried
            # pending even when no new input events arrived.
            lockstep_digital(
                T, P, V, counts, lane_single, lane_delays, flush_to,
                st["v0"], st["v1"], st["out"], out_times, n_out,
                st["pend_t"], st["pend_v"],
            )

            for run in range(self._n_runs):
                emit_run = emitted[run]
                wm_run = self._wm[run]
                forced = self._forced[run]
                for i in range(n_g):
                    lane = run * n_g + i
                    count = int(n_out[lane])
                    # A forced gate's lane still runs (cheaper than
                    # masking inside the kernel), but its output events
                    # are dropped: the stuck net never transitions.
                    if count and level.names[i] not in forced:
                        emit_run[level.names[i]] = out_times[
                            lane, :count
                        ].tolist()
                    bound = float(flush_to[lane])
                    if bound > wm_run[level.names[i]]:
                        wm_run[level.names[i]] = bound

    # ------------------------------------------------------------------
    def state(self) -> dict:
        self._require_active()
        self._refuse_fault_checkpoint()
        if not self._started:
            raise SimulationError(
                "nothing to checkpoint before the first feed"
            )
        lanes = []
        for st in self._lanes:
            lanes.append(
                {
                    "buf0": [list(buf) for buf in st["buf0"]],
                    "buf1": [list(buf) for buf in st["buf1"]],
                    "v0": [bool(v) for v in st["v0"]],
                    "v1": [bool(v) for v in st["v1"]],
                    "out": [bool(v) for v in st["out"]],
                    "pend_t": [float(t) for t in st["pend_t"]],
                    "pend_v": [bool(v) for v in st["pend_v"]],
                }
            )
        return encode_nonfinite({
            "format": STATE_FORMAT,
            "kind": self.kind,
            "mode": self.mode,
            "digest": self._digest,
            "record_nets": list(self._record),
            "t_stops": list(self._t_stops),
            "n_runs": self._n_runs,
            "horizon": list(self._horizon),
            "watermark": [dict(wm) for wm in self._wm],
            "initials": [
                {n: bool(v) for n, v in init.items()}
                for init in self._initials
            ],
            "stream": [dict(s) for s in self._stream],
            "seg_level": [dict(s) for s in self._seg_level],
            "lanes": lanes,
        })

    def restore(self, state: dict) -> None:
        self._require_active()
        self._check_header(state, self.mode, self._digest)
        self._record = list(state["record_nets"])
        self._t_stops = [float(t) for t in state["t_stops"]]
        self._n_runs = int(state["n_runs"])
        self._horizon = [float(h) for h in state["horizon"]]
        self._wm = [
            {net: float(v) for net, v in wm.items()}
            for wm in state["watermark"]
        ]
        self._initials = [
            {n: bool(v) for n, v in init.items()}
            for init in state["initials"]
        ]
        self._stream = [
            {n: bool(v) for n, v in s.items()} for s in state["stream"]
        ]
        self._seg_level = [
            {n: bool(v) for n, v in s.items()} for s in state["seg_level"]
        ]
        if len(state["lanes"]) != len(self.circuit.levels):
            raise SimulationError("checkpoint level count mismatch")
        self._lanes = []
        for level, saved in zip(self.circuit.levels, state["lanes"]):
            n = len(level.names) * self._n_runs
            if len(saved["v0"]) != n:
                raise SimulationError("checkpoint lane count mismatch")
            self._lanes.append(
                {
                    "buf0": [
                        [float(t) for t in buf] for buf in saved["buf0"]
                    ],
                    "buf1": [
                        [float(t) for t in buf] for buf in saved["buf1"]
                    ],
                    "v0": np.array(saved["v0"], dtype=bool),
                    "v1": np.array(saved["v1"], dtype=bool),
                    "out": np.array(saved["out"], dtype=bool),
                    "pend_t": np.array(saved["pend_t"], dtype=float),
                    "pend_v": np.array(saved["pend_v"], dtype=bool),
                }
            )
        self._lane_const = self._build_lane_const()
        self._started = True


class EventDigitalSession(_DigitalSessionBase):
    """The event-driven reference loop, paused between chunks.

    Carries the run's heap, pending tokens, net values and counters;
    each feed pushes the chunk's PI events and drains the heap up to
    ``min(horizon, t_stop)``.  A one-shot run (single feed + finish)
    assigns exactly the legacy sequence numbers, so the wrapper is
    bitwise-identical to the pre-session event loop.
    """

    mode = "event"

    def __init__(
        self,
        netlist,
        delay_models: dict,
        t_stops: list[float],
        record_nets: list[str] | None = None,
        state: dict | None = None,
        faults: list | None = None,
    ) -> None:
        super().__init__(netlist, t_stops, record_nets, faults=faults)
        self.delay_models = delay_models
        self._consumers = netlist.fanout()
        # Per-run delay-model overrides (delay-fault lowering): the
        # faulted gate's model is swapped for a perturbed wrapper, the
        # rest of the run keeps the shared instance models.
        self._run_models = [
            fault.model_overrides(delay_models) if fault is not None else {}
            for fault in self._faults
        ]
        if state is not None:
            self._refuse_fault_checkpoint()
            self.restore(state)

    # ------------------------------------------------------------------
    def _initialize(self, chunks) -> None:
        self._runs = []
        self._stream = []
        self._seg_level = []
        for run, chunk in enumerate(chunks):
            values = self.netlist.evaluate(
                {pi: bool(chunk[pi].initial) for pi in self._pis},
                overrides=self._forced[run] or None,
            )
            values = {n: bool(v) for n, v in values.items()}
            self._runs.append(
                {
                    "values": dict(values),
                    "initials": dict(values),
                    "last_out": dict.fromkeys(
                        self.netlist.gates, -math.inf
                    ),
                    "pending": {},
                    "heap": [],
                    "seq": 0,
                    "token": 0,
                    "emitted": {},
                }
            )
            self._stream.append(
                {pi: bool(chunk[pi].initial) for pi in self._pis}
            )
            self._seg_level.append(dict(values))
        self._started = True

    # ------------------------------------------------------------------
    def feed(self, chunks, advance_to: float | None = None):
        """Push the chunk's PI events, drain the heap up to the new
        horizon, and return the committed segments."""
        self._require_active()
        chunks = list(chunks)
        self._check_first_feed(chunks)
        if not self._started:
            self._initialize(chunks)
        emitted: list[dict] = []
        for run, chunk in enumerate(chunks):
            self._check_chunk_keys(chunk)
            state = self._runs[run]
            t_stop = self._t_stops[run]
            forced = self._forced[run]
            new_horizon = self._horizon[run]
            for pi in self._pis:
                seg = chunk.get(pi)
                if seg is None:
                    continue
                self._check_segment(run, pi, seg, self._stream[run][pi])
                value = self._stream[run][pi]
                for time in seg.times:
                    value = not value
                    # A stuck PI's stimulus is swallowed at the push
                    # guard, mirroring the compiled session's ingest.
                    if time <= t_stop and pi not in forced:
                        heapq.heappush(
                            state["heap"],
                            (time, state["seq"], pi, value, -1),
                        )
                        state["seq"] += 1
                self._stream[run][pi] = value
                if seg.times:
                    new_horizon = max(new_horizon, seg.times[-1])
            if advance_to is not None:
                new_horizon = max(new_horizon, float(advance_to))
            self._horizon[run] = new_horizon
            emitted.append(self._drain(run, min(new_horizon, t_stop)))
        return self._segments(emitted)

    def finish(self):
        """Drain everything up to ``t_stop`` and close the session."""
        self._require_active()
        if not self._started:
            raise SimulationError("cannot finish before the first feed")
        emitted = [
            self._drain(run, self._t_stops[run])
            for run in range(self._n_runs)
        ]
        self._finished = True
        return self._segments(emitted)

    # ------------------------------------------------------------------
    def _drain(self, run: int, bound: float) -> dict:
        """The reference event loop, stopped once the heap trails
        ``bound`` (every event at or before it is final: future PI
        pushes are past the horizon and future gate schedules carry
        positive delays from later events)."""
        state = self._runs[run]
        netlist = self.netlist
        values = state["values"]
        last_output_time = state["last_out"]
        pending = state["pending"]
        heap = state["heap"]
        forced = self._forced[run]
        models = self._run_models[run]
        transitions: dict[str, list[float]] = {}

        def schedule(gate_name: str, time: float, value: bool) -> None:
            token = state["token"]
            state["token"] += 1
            pending[gate_name] = (time, value, token)
            heapq.heappush(
                heap, (time, state["seq"], gate_name, value, token)
            )
            state["seq"] += 1

        def update_gate(gate_name: str, pin: int, now: float) -> None:
            if gate_name in forced:
                # Stuck-at output: the gate never schedules events, its
                # net keeps the forced level for the whole run.
                return
            gate = netlist.gates[gate_name]
            target = eval_gate(
                gate.gtype, [values[n] for n in gate.inputs]
            )
            entry = pending.get(gate_name)
            effective = entry[1] if entry is not None else values[gate_name]
            if target == effective:
                return
            if target == values[gate_name]:
                # The input change reverted before the output fired: the
                # pending pulse is swallowed (inertial cancellation).
                pending.pop(gate_name, None)
                return
            edge = "rise" if target else "fall"
            model = models.get(gate_name) or self.delay_models[gate_name]
            delay = model.delay(
                pin, edge, now, last_output_time[gate_name]
            )
            if delay <= 0.0:
                # Full degradation (DDM-style): the transition disappears
                # together with the previous one it would pair with.
                pending.pop(gate_name, None)
                return
            schedule(gate_name, now + delay, target)

        while heap and heap[0][0] <= bound:
            time, _seq, net, value, token = heapq.heappop(heap)
            if token >= 0:
                entry = pending.get(net)
                if entry is None or entry[2] != token:
                    continue  # stale event
                pending.pop(net)
                last_output_time[net] = time
            if values[net] == value:
                continue
            values[net] = value
            transitions.setdefault(net, []).append(time)
            for consumer, pin in self._consumers.get(net, ()):
                update_gate(consumer, pin, time)
        return transitions

    # ------------------------------------------------------------------
    def state(self) -> dict:
        self._require_active()
        self._refuse_fault_checkpoint()
        if not self._started:
            raise SimulationError(
                "nothing to checkpoint before the first feed"
            )
        runs = []
        for st in self._runs:
            runs.append(
                {
                    "values": {n: bool(v) for n, v in st["values"].items()},
                    "initials": {
                        n: bool(v) for n, v in st["initials"].items()
                    },
                    "last_out": dict(st["last_out"]),
                    "pending": {
                        g: [t, bool(v), tok]
                        for g, (t, v, tok) in st["pending"].items()
                    },
                    "heap": [
                        [t, s, n, bool(v), tok]
                        for t, s, n, v, tok in st["heap"]
                    ],
                    "seq": st["seq"],
                    "token": st["token"],
                }
            )
        return encode_nonfinite({
            "format": STATE_FORMAT,
            "kind": self.kind,
            "mode": self.mode,
            "digest": self._digest,
            "record_nets": list(self._record),
            "t_stops": list(self._t_stops),
            "n_runs": self._n_runs,
            "horizon": list(self._horizon),
            "stream": [dict(s) for s in self._stream],
            "seg_level": [dict(s) for s in self._seg_level],
            "runs": runs,
        })

    def restore(self, state: dict) -> None:
        self._require_active()
        self._check_header(state, self.mode, self._digest)
        self._record = list(state["record_nets"])
        self._t_stops = [float(t) for t in state["t_stops"]]
        self._n_runs = int(state["n_runs"])
        self._horizon = [float(h) for h in state["horizon"]]
        self._stream = [
            {n: bool(v) for n, v in s.items()} for s in state["stream"]
        ]
        self._seg_level = [
            {n: bool(v) for n, v in s.items()} for s in state["seg_level"]
        ]
        self._runs = []
        for saved in state["runs"]:
            # The serialized heap list is the live heap's internal
            # order, which round-trips as a valid heap verbatim.
            self._runs.append(
                {
                    "values": {
                        n: bool(v) for n, v in saved["values"].items()
                    },
                    "initials": {
                        n: bool(v) for n, v in saved["initials"].items()
                    },
                    "last_out": {
                        g: float(t) for g, t in saved["last_out"].items()
                    },
                    "pending": {
                        g: (float(t), bool(v), int(tok))
                        for g, (t, v, tok) in saved["pending"].items()
                    },
                    "heap": [
                        (float(t), int(s), str(n), bool(v), int(tok))
                        for t, s, n, v, tok in saved["heap"]
                    ],
                    "seq": int(saved["seq"]),
                    "token": int(saved["token"]),
                }
            )
        self._started = True


# ----------------------------------------------------------------------
# Chunking, concatenation and the one-shot / streaming entry points.


def split_digital_trace(
    trace: DigitalTrace, boundaries: list[float]
) -> list[DigitalTrace]:
    """Split into ``len(boundaries) + 1`` contiguous segments (segment
    ``k`` keeps transitions at or before ``boundaries[k]``)."""
    times = trace.times
    n = len(times)
    level = bool(trace.initial)
    segments = []
    start = 0
    for bound in boundaries:
        k = start
        while k < n and times[k] <= bound:
            k += 1
        segments.append(DigitalTrace(level, times[start:k]))
        level ^= (k - start) % 2 == 1
        start = k
    segments.append(DigitalTrace(level, times[start:]))
    return segments


def digital_chunks(
    pi_traces: dict[str, DigitalTrace],
    chunk_size: int | None = None,
    boundaries: list[float] | None = None,
) -> list[dict[str, DigitalTrace]]:
    """Split a full stimulus into session-sized feed chunks (exactly
    one of ``chunk_size`` — merged transitions per chunk — or explicit
    sorted ``boundaries``; duplicates produce zero-length chunks)."""
    from repro.core.session import merged_boundaries

    if (chunk_size is None) == (boundaries is None):
        raise SimulationError("pass exactly one of chunk_size / boundaries")
    if boundaries is None:
        times = sorted(
            t for trace in pi_traces.values() for t in trace.times
        )
        boundaries = merged_boundaries(times, chunk_size)
    per_pi = {
        pi: split_digital_trace(trace, boundaries)
        for pi, trace in pi_traces.items()
    }
    return [
        {pi: segments[k] for pi, segments in per_pi.items()}
        for k in range(len(boundaries) + 1)
    ]


def concat_digital_traces(segments: list[DigitalTrace]) -> DigitalTrace:
    """Concatenate contiguous digital trace segments into one trace."""
    segments = list(segments)
    if not segments:
        raise SimulationError("nothing to concatenate")
    level = bool(segments[0].initial)
    expect = level
    times: list[float] = []
    for seg in segments:
        if bool(seg.initial) != expect:
            raise SimulationError("trace segments are not level-contiguous")
        times.extend(seg.times)
        expect = bool(seg.final_value())
    return DigitalTrace(level, times)


def merge_digital_batches(batches: list) -> list[dict]:
    """Fold per-feed segment batches into one trace dict per run."""
    if not batches:
        raise SimulationError("nothing to merge")
    results = []
    for run in range(len(batches[0])):
        nets = batches[0][run].keys()
        results.append(
            {
                net: concat_digital_traces(
                    [batch[run][net] for batch in batches]
                )
                for net in nets
            }
        )
    return results


def one_shot_digital_batch(
    open_session,
    netlist,
    pi_traces_runs: list[dict[str, DigitalTrace]],
    t_stops: list[float],
) -> list[dict[str, DigitalTrace]]:
    """One-shot ``simulate_batch`` semantics on top of a fresh session
    (single feed of the full stimulus, then finish)."""
    if len(pi_traces_runs) != len(t_stops):
        raise SimulationError("need one t_stop per run")
    pis = netlist.primary_inputs
    for pi_traces in pi_traces_runs:
        missing = [pi for pi in pis if pi not in pi_traces]
        if missing:
            raise SimulationError(f"missing PI traces: {missing}")
    if not pi_traces_runs:
        return []
    session = open_session()
    chunks = [
        {pi: pi_traces[pi] for pi in pis} for pi_traces in pi_traces_runs
    ]
    batches = [session.feed(chunks), session.finish()]
    return merge_digital_batches(batches)


def stream_digital_batch(
    simulator,
    pi_traces_runs: list[dict[str, DigitalTrace]],
    t_stops: list[float],
    chunk_size: int,
    record_nets: list[str] | None = None,
) -> list[dict[str, DigitalTrace]]:
    """Chunked-execution twin of ``simulate_batch`` (bitwise-equal).

    Splits each run's stimulus into ~``chunk_size``-transition chunks,
    feeds them through one streaming session and concatenates the
    committed segments — the bounded-memory path behind
    ``--chunk-size``.
    """
    if len(pi_traces_runs) != len(t_stops):
        raise SimulationError("need one t_stop per run")
    session = simulator.open_session(t_stops, record_nets=record_nets)
    per_run = [
        digital_chunks(pi_traces, chunk_size=chunk_size)
        for pi_traces in pi_traces_runs
    ]
    n_chunks = max(len(chunks) for chunks in per_run)
    batches = []
    for k in range(n_chunks):
        batches.append(
            session.feed(
                [
                    chunks[k] if k < len(chunks) else {}
                    for chunks in per_run
                ]
            )
        )
    batches.append(session.finish())
    return merge_digital_batches(batches)
