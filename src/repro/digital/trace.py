"""Digital (Heaviside) signal traces.

A :class:`DigitalTrace` is an initial logic value plus strictly increasing
transition times; the value alternates at every transition.  It is the
common currency of the evaluation pipeline: analog waveforms and sigmoid
traces are digitized at VDD/2 into this representation, and the paper's
``t_err`` — the total time two traces disagree about being above/below the
threshold — is :meth:`DigitalTrace.mismatch_time`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.constants import VTH
from repro.errors import SimulationError


class DigitalTrace:
    """An alternating boolean signal over time."""

    __slots__ = ("initial", "times")

    def __init__(self, initial: bool, times: Sequence[float] = ()) -> None:
        self.initial = bool(initial)
        times = [float(t) for t in times]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise SimulationError("transition times must be strictly increasing")
        self.times = times

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_waveform(cls, waveform, threshold: float = VTH) -> "DigitalTrace":
        """Digitize an analog :class:`~repro.analog.waveform.Waveform`."""
        crossings = waveform.crossings(threshold)
        initial = bool(waveform.v[0] > threshold)
        # Keep only consistent alternations (runt numerical double-crossings
        # are already separated by direction in Waveform.crossings).
        times = []
        value = initial
        for crossing in crossings:
            rising = crossing.direction > 0
            if rising == value:
                continue  # crossing in the direction we already hold
            times.append(crossing.time)
            value = not value
        return cls(initial, times)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_transitions(self) -> int:
        return len(self.times)

    def value_at(self, t: float) -> bool:
        """Logic value at time ``t`` (transitions take effect at their time)."""
        value = self.initial
        for time in self.times:
            if time > t:
                break
            value = not value
        return value

    def final_value(self) -> bool:
        return self.initial ^ (len(self.times) % 2 == 1)

    def segments(self, t_start: float, t_stop: float):
        """Yield ``(seg_start, seg_stop, value)`` covering ``[t_start, t_stop]``."""
        if t_stop <= t_start:
            raise SimulationError("t_stop must exceed t_start")
        value = self.initial
        prev = t_start
        for time in self.times:
            if time <= t_start:
                value = not value
                continue
            if time >= t_stop:
                break
            yield prev, time, value
            prev = time
            value = not value
        yield prev, t_stop, value

    def mismatch_time(
        self, other: "DigitalTrace", t_start: float, t_stop: float
    ) -> float:
        """Total duration in ``[t_start, t_stop]`` where the traces differ.

        This is the per-signal contribution to the paper's ``t_err``.
        """
        boundaries = sorted(
            {t_start, t_stop}
            | {t for t in self.times if t_start < t < t_stop}
            | {t for t in other.times if t_start < t < t_stop}
        )
        total = 0.0
        for a, b in zip(boundaries, boundaries[1:]):
            mid = 0.5 * (a + b)
            if self.value_at(mid) != other.value_at(mid):
                total += b - a
        return total

    def shifted(self, dt: float) -> "DigitalTrace":
        return DigitalTrace(self.initial, [t + dt for t in self.times])

    def restricted(self, t_start: float, t_stop: float) -> "DigitalTrace":
        """Trace restricted to a window (initial value re-evaluated)."""
        initial = self.value_at(t_start)
        times = [t for t in self.times if t_start < t < t_stop]
        return DigitalTrace(initial, times)

    def sample(self, t: np.ndarray, v_high: float = 1.0) -> np.ndarray:
        """Sample as a 0/v_high rectangular waveform on a time grid."""
        t = np.asarray(t, dtype=float)
        counts = np.searchsorted(np.asarray(self.times), t, side="right")
        values = (int(self.initial) + counts) % 2
        return values.astype(float) * v_high

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DigitalTrace):
            return NotImplemented
        return self.initial == other.initial and self.times == other.times

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DigitalTrace(initial={int(self.initial)}, n={len(self.times)})"
