"""Thresholded hybrid (involution-family) delay channel.

The strongest purely digital baselines the paper cites — the Involution
Delay Model [8] and its hybrid-model constructions [12]-[14] — derive
their delay functions from an internal analog state: the channel pastes
together exponential switching waveforms at input transitions and compares
against a threshold.  This module implements exactly that construction.

The channel keeps an internal value ``v in [0, 1]``.  A rising input makes
``v`` relax toward 1 with time constant ``tau_r`` (after a pure delay
``t_p``); a falling input toward 0 with ``tau_f``.  The digital output is
``v > theta``.  Because the internal value is continuous, short input
pulses automatically produce degraded or cancelled output pulses — the
involution property of the resulting delay functions is inherited from the
construction (and checked in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass
class HybridExpChannel:
    """Single-input thresholded hybrid channel with exponential waveforms.

    Parameters
    ----------
    tau_r, tau_f:
        Rise / fall time constants of the internal switching waveforms.
    theta:
        Comparator threshold in (0, 1).
    t_p:
        Pure input delay applied before the mode switch.
    """

    tau_r: float
    tau_f: float
    theta: float = 0.5
    t_p: float = 0.0

    def __post_init__(self) -> None:
        if self.tau_r <= 0 or self.tau_f <= 0:
            raise ModelError("time constants must be positive")
        if not 0.0 < self.theta < 1.0:
            raise ModelError("theta must be inside (0, 1)")
        if self.t_p < 0:
            raise ModelError("pure delay must be non-negative")

    # ------------------------------------------------------------------
    def output_times(
        self, input_times: list[float], initial_input: bool = False
    ) -> tuple[bool, list[float]]:
        """Run the channel over a full input trace.

        Returns ``(initial_output, output transition times)``.  The channel
        starts in steady state matching ``initial_input``.
        """
        value = 1.0 if initial_input else 0.0
        mode_up = initial_input
        mode_start = -np.inf
        out_value = value > self.theta
        initial_output = out_value
        out_times: list[float] = []

        for t_in in input_times:
            t_switch = t_in + self.t_p
            # Internal value when the mode changes.
            value = self._value_at(value, mode_up, mode_start, t_switch)
            mode_up = not mode_up
            mode_start = t_switch
            # Crossing of theta in the new mode, if any.
            t_cross = self._crossing_time(value, mode_up, mode_start)
            # Remove any not-yet-happened output transitions that the new
            # mode invalidates (the comparator output is a pure function of
            # the internal value, so recompute the tail).
            while out_times and out_times[-1] >= t_switch:
                out_times.pop()
                out_value = not out_value
            if t_cross is not None and (mode_up != out_value):
                out_times.append(t_cross)
                out_value = not out_value
        return initial_output, out_times

    # ------------------------------------------------------------------
    def delay_up(self, T: float) -> float:
        """Involution delay function for a rising input, history ``T``.

        ``T`` is the time from the previous (falling) output transition to
        the rising input.  Negative delays mean the output pulse would be
        cancelled.
        """
        # At the previous falling output transition the internal value
        # crossed theta going down; it kept decaying for T + t_p.
        value = self._decay(self.theta, T + self.t_p, self.tau_f, target=0.0)
        if value >= self.theta:
            return float("nan")  # pragma: no cover - cannot happen with decay
        remaining = np.log((1.0 - value) / (1.0 - self.theta)) * self.tau_r
        return self.t_p + float(remaining)

    def delay_down(self, T: float) -> float:
        """Involution delay function for a falling input, history ``T``."""
        value = self._decay(self.theta, T + self.t_p, self.tau_r, target=1.0)
        remaining = np.log(value / self.theta) * self.tau_f
        return self.t_p + float(remaining)

    # ------------------------------------------------------------------
    def _decay(self, v0: float, dt: float, tau: float, target: float) -> float:
        """Exponential relaxation; negative ``dt`` extrapolates backward
        (needed by the involution identity, whose domain includes negative
        history arguments)."""
        if not np.isfinite(dt):
            return target
        return target + (v0 - target) * float(np.exp(-dt / tau))

    def _value_at(self, v0: float, mode_up: bool, t0: float, t: float) -> float:
        target = 1.0 if mode_up else 0.0
        tau = self.tau_r if mode_up else self.tau_f
        if not np.isfinite(t0):
            return target
        return self._decay(v0, t - t0, tau, target)

    def _crossing_time(self, v0: float, mode_up: bool, t0: float) -> float | None:
        target = 1.0 if mode_up else 0.0
        tau = self.tau_r if mode_up else self.tau_f
        if mode_up and v0 >= self.theta:
            return None
        if not mode_up and v0 <= self.theta:
            return None
        dt = tau * np.log((v0 - target) / (self.theta - target))
        return t0 + float(dt)
