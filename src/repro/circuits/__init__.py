"""Gate-level netlists, ISCAS-85 benchmarks and NOR-only technology mapping.

The paper evaluates on ISCAS-85 c17/c499/c1355 with every gate replaced by
NOR-equivalent logic (Sec. V-B).  This package provides the netlist data
model, a ``.bench`` parser for genuine ISCAS files, the c17 netlist
verbatim, generators for c499/c1355-class circuits, and the NOR-only
rewriter with logic-equivalence checking.
"""

from repro.circuits.gates import GateType, eval_gate
from repro.circuits.netlist import Gate, Netlist
from repro.circuits.bench import (
    format_bench,
    normalize_net_names,
    parse_bench,
)
from repro.circuits.nor_map import nor_map
from repro.circuits.iscas85 import (
    c17,
    c499_like,
    c880_like,
    c1355_like,
    c3540_like,
    xor_to_nand2,
)
from repro.circuits.random_circuit import (
    RandomCircuitConfig,
    random_circuit,
    random_corpus,
)

__all__ = [
    "GateType",
    "eval_gate",
    "Gate",
    "Netlist",
    "parse_bench",
    "format_bench",
    "normalize_net_names",
    "nor_map",
    "c17",
    "c499_like",
    "c880_like",
    "c1355_like",
    "c3540_like",
    "xor_to_nand2",
    "RandomCircuitConfig",
    "random_circuit",
    "random_corpus",
]
