"""Gate types and boolean evaluation."""

from __future__ import annotations

from enum import Enum

from repro.errors import NetlistError


class GateType(str, Enum):
    """Combinational gate kinds supported by the netlist layer.

    The sigmoid simulator itself only accepts ``INV`` and ``NOR`` (the
    paper's prototype, Sec. V-A); everything else exists so arbitrary
    benchmarks can be read and then rewritten by
    :func:`repro.circuits.nor_map.nor_map`.
    """

    INV = "INV"
    BUF = "BUF"
    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"


#: Gate types whose input count is exactly one.
UNARY_TYPES = {GateType.INV, GateType.BUF}


def eval_gate(gtype: GateType, inputs: list[bool]) -> bool:
    """Evaluate one gate on boolean inputs.

    Multi-input AND/OR/NAND/NOR accept two or more inputs; XOR/XNOR are
    parity gates of two or more inputs.
    """
    n = len(inputs)
    if gtype in UNARY_TYPES:
        if n != 1:
            raise NetlistError(f"{gtype.value} needs exactly 1 input, got {n}")
        value = inputs[0]
        return not value if gtype is GateType.INV else value
    if n < 2:
        raise NetlistError(f"{gtype.value} needs at least 2 inputs, got {n}")
    if gtype is GateType.AND:
        return all(inputs)
    if gtype is GateType.OR:
        return any(inputs)
    if gtype is GateType.NAND:
        return not all(inputs)
    if gtype is GateType.NOR:
        return not any(inputs)
    parity = sum(inputs) % 2 == 1
    if gtype is GateType.XOR:
        return parity
    if gtype is GateType.XNOR:
        return not parity
    raise NetlistError(f"unknown gate type {gtype!r}")  # pragma: no cover
