"""Gate types and boolean evaluation."""

from __future__ import annotations

from enum import Enum

from repro.errors import NetlistError


class GateType(str, Enum):
    """Gate kinds supported by the netlist layer.

    The sigmoid simulator itself only accepts ``INV`` and ``NOR`` (the
    paper's prototype, Sec. V-A); the other combinational kinds exist so
    arbitrary benchmarks can be read and then rewritten by
    :func:`repro.circuits.nor_map.nor_map` (``BUF`` lowers to the
    INV·INV pair there — see :data:`UNARY_TYPES`).  ``DFF`` and
    ``LATCH`` are *state elements* (ISCAS-89 style): their output is a
    register, not a boolean function of their input, so they cut the
    combinational frame and are advanced per clock cycle by the clocked
    sessions (:mod:`repro.clocked`).
    """

    INV = "INV"
    BUF = "BUF"
    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    DFF = "DFF"
    LATCH = "LATCH"


#: Gate types whose input count is exactly one.
UNARY_TYPES = {GateType.INV, GateType.BUF}

#: Clocked state elements: output = registered value of the single data
#: input.  A ``DFF`` captures at the clock's active edge; a ``LATCH``
#: (transparent when the clock is in its passing phase) is modeled
#: cycle-accurately as capturing half a period *before* the flip-flop
#: edge — the time-borrowing abstraction every engine shares.
STATE_TYPES = {GateType.DFF, GateType.LATCH}


def eval_gate(gtype: GateType, inputs: list[bool]) -> bool:
    """Evaluate one gate on boolean inputs.

    Multi-input AND/OR/NAND/NOR accept two or more inputs; XOR/XNOR are
    parity gates of two or more inputs.  State elements (DFF/LATCH) are
    not boolean functions of their inputs and are rejected here — their
    value is the register, advanced only at clock edges.
    """
    n = len(inputs)
    if gtype in STATE_TYPES:
        raise NetlistError(
            f"{gtype.value} is a state element, not a combinational "
            "gate; evaluate the combinational frame with register "
            "values supplied (Netlist.evaluate) instead"
        )
    if gtype in UNARY_TYPES:
        if n != 1:
            raise NetlistError(f"{gtype.value} needs exactly 1 input, got {n}")
        value = inputs[0]
        return not value if gtype is GateType.INV else value
    if n < 2:
        raise NetlistError(f"{gtype.value} needs at least 2 inputs, got {n}")
    if gtype is GateType.AND:
        return all(inputs)
    if gtype is GateType.OR:
        return any(inputs)
    if gtype is GateType.NAND:
        return not all(inputs)
    if gtype is GateType.NOR:
        return not any(inputs)
    parity = sum(inputs) % 2 == 1
    if gtype is GateType.XOR:
        return parity
    if gtype is GateType.XNOR:
        return not parity
    raise NetlistError(f"unknown gate type {gtype!r}")  # pragma: no cover
