"""ISCAS-85 benchmark circuits.

* :func:`c17` — the genuine 6-gate benchmark, verbatim.
* :func:`c499_like` / :func:`c1355_like` — generated stand-ins for the two
  larger benchmarks the paper evaluates.  The genuine netlist files are not
  distributable inside this offline repo, but both originals are 32-bit
  single-error-correcting (SEC) circuits: c499 computes syndromes with XOR
  trees and corrects the data word, and c1355 is c499 with every XOR
  expanded into four NAND2 gates.  The generators build exactly that
  structure class — XOR syndrome trees over a 32-bit word, an AND-decoder
  selecting the bit to flip, and an XOR correction stage — yielding
  NOR-mapped gate counts in the same range as the paper's Table I
  (860 / 2068 NOR gates; measured counts are recorded in EXPERIMENTS.md).
  Genuine ``.bench`` files can be used instead via
  :func:`repro.circuits.bench.load_bench`.
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist

#: Number of data bits of the SEC generators (the originals are 32-bit).
_SEC_DATA_BITS = 32
#: Number of syndrome groups: 5 bits address all 32 positions.
_SEC_SYNDROMES = 5


def c17() -> Netlist:
    """The genuine ISCAS-85 c17: 5 PIs, 6 NAND2 gates, 2 POs."""
    netlist = Netlist("c17")
    for pi in ("1", "2", "3", "6", "7"):
        netlist.add_input(pi)
    netlist.add_gate("10", GateType.NAND, ["1", "3"])
    netlist.add_gate("11", GateType.NAND, ["3", "6"])
    netlist.add_gate("16", GateType.NAND, ["2", "11"])
    netlist.add_gate("19", GateType.NAND, ["11", "7"])
    netlist.add_gate("22", GateType.NAND, ["10", "16"])
    netlist.add_gate("23", GateType.NAND, ["16", "19"])
    netlist.add_output("22")
    netlist.add_output("23")
    netlist.validate()
    return netlist


def _xor_tree(netlist: Netlist, nets: list[str], prefix: str) -> str:
    """Balanced XOR2 tree over ``nets``; returns the root net name."""
    layer = list(nets)
    level = 0
    while len(layer) > 1:
        next_layer = []
        for i in range(0, len(layer) - 1, 2):
            out = f"{prefix}_x{level}_{i // 2}"
            netlist.add_gate(out, GateType.XOR, [layer[i], layer[i + 1]])
            next_layer.append(out)
        if len(layer) % 2 == 1:
            next_layer.append(layer[-1])
        layer = next_layer
        level += 1
    return layer[0]


def _and_tree(netlist: Netlist, nets: list[str], prefix: str) -> str:
    """Balanced AND2 tree over ``nets``; returns the root net name."""
    layer = list(nets)
    level = 0
    while len(layer) > 1:
        next_layer = []
        for i in range(0, len(layer) - 1, 2):
            out = f"{prefix}_a{level}_{i // 2}"
            netlist.add_gate(out, GateType.AND, [layer[i], layer[i + 1]])
            next_layer.append(out)
        if len(layer) % 2 == 1:
            next_layer.append(layer[-1])
        layer = next_layer
        level += 1
    return layer[0]


def _build_sec(name: str, expand_xor_to_nand: bool) -> Netlist:
    """32-bit SEC circuit: syndrome XOR trees + decoder + correction.

    Inputs: ``d0..d31`` (data), ``c0..c4`` (received check bits),
    ``r0..r3`` (spare control lines folded into an enable term, bringing
    the PI count to 41 like the original c499).  Outputs: the corrected
    data word ``o0..o31``.
    """
    netlist = Netlist(name)
    data = [netlist.add_input(f"d{i}") for i in range(_SEC_DATA_BITS)]
    checks = [netlist.add_input(f"c{j}") for j in range(_SEC_SYNDROMES)]
    controls = [netlist.add_input(f"r{k}") for k in range(4)]

    # Syndrome j = parity of all data bits whose index has bit j set,
    # XORed with the received check bit.
    syndromes = []
    for j in range(_SEC_SYNDROMES):
        members = [data[i] for i in range(_SEC_DATA_BITS) if (i >> j) & 1]
        tree = _xor_tree(netlist, members + [checks[j]], prefix=f"s{j}")
        syndromes.append(tree)

    # Enable: correction is applied only when the control lines allow it.
    enable = _and_tree(netlist, controls, prefix="en")

    # Inverted syndromes for decoder terms.
    syndrome_n = []
    for j, s in enumerate(syndromes):
        inv = f"sn{j}"
        netlist.add_gate(inv, GateType.INV, [s])
        syndrome_n.append(inv)

    # Decoder: flip_i = enable AND (s_j == bit j of i for all j).
    outputs = []
    for i in range(_SEC_DATA_BITS):
        terms = [
            syndromes[j] if (i >> j) & 1 else syndrome_n[j]
            for j in range(_SEC_SYNDROMES)
        ]
        flip = _and_tree(netlist, terms + [enable], prefix=f"f{i}")
        out = f"o{i}"
        netlist.add_gate(out, GateType.XOR, [data[i], flip])
        netlist.add_output(out)
        outputs.append(out)

    netlist.validate()
    if not expand_xor_to_nand:
        return netlist
    return xor_to_nand2(netlist, name)


def xor_to_nand2(netlist: Netlist, name: str | None = None) -> Netlist:
    """Replace every XOR2/XNOR2 by its four-NAND2 structure (the c1355 trick).

    Two-input XOR gates become the classic four-NAND2 network (XNOR adds
    a trailing inverter); every other gate — including XOR/XNOR of three
    or more inputs — is copied verbatim.  The rewrite preserves the truth
    table (checked exhaustively in the property suite) and keeps PI/PO
    names, so it composes with :func:`repro.circuits.nor_map.nor_map`.
    """
    if name is None:
        name = netlist.name
    expanded = Netlist(name)
    for pi in netlist.primary_inputs:
        expanded.add_input(pi)
    for gate_name in netlist.topological_order():
        gate = netlist.gates[gate_name]
        if gate.gtype in (GateType.XOR, GateType.XNOR) and len(gate.inputs) == 2:
            a, b = gate.inputs
            n1 = f"{gate_name}_n1"
            n2 = f"{gate_name}_n2"
            n3 = f"{gate_name}_n3"
            expanded.add_gate(n1, GateType.NAND, [a, b])
            expanded.add_gate(n2, GateType.NAND, [a, n1])
            expanded.add_gate(n3, GateType.NAND, [b, n1])
            if gate.gtype is GateType.XOR:
                expanded.add_gate(gate_name, GateType.NAND, [n2, n3])
            else:
                xor_net = f"{gate_name}_x"
                expanded.add_gate(xor_net, GateType.NAND, [n2, n3])
                expanded.add_gate(gate_name, GateType.INV, [xor_net])
        else:
            expanded.add_gate(gate_name, gate.gtype, list(gate.inputs))
    for po in netlist.primary_outputs:
        expanded.add_output(po)
    expanded.validate()
    return expanded


def c499_like(name: str = "c499_like") -> Netlist:
    """A 32-bit SEC circuit of the c499 structure class (XOR trees kept)."""
    return _build_sec(name, expand_xor_to_nand=False)


def c1355_like(name: str = "c1355_like") -> Netlist:
    """The c499-like circuit with XORs expanded to NAND2s, like real c1355."""
    return _build_sec(name, expand_xor_to_nand=True)


def s27_like(name: str = "s27_like") -> Netlist:
    """Sequential zoo member of the ISCAS-89 s27 structure class.

    A 3-stage scan shift register feeding a 2-bit synchronous counter
    (enable + synchronous clear), with a reconvergent output cone over
    both — the smallest circuit exercising every sequential mechanism:
    register-to-register paths, feedback through flip-flops
    (``cnt0 -> t0 -> d0 -> cnt0``), a register driven straight to a
    primary output, and multi-cycle state evolution.  Like real s27 it
    stays in the ten-gate class so differential campaigns over many
    cycles remain fast-tier material.
    """
    netlist = Netlist(name)
    si = netlist.add_input("si")
    en = netlist.add_input("en")
    rst = netlist.add_input("rst")

    # Scan shift register.
    netlist.add_gate("sr0", GateType.DFF, [si])
    netlist.add_gate("sr1", GateType.DFF, ["sr0"])
    netlist.add_gate("sr2", GateType.DFF, ["sr1"])

    # 2-bit counter: steps when the scan tap allows it, sync-cleared.
    rstn = netlist.add_gate("rstn", GateType.INV, [rst])
    step = netlist.add_gate("step", GateType.AND, [en, "sr2"])
    t0 = netlist.add_gate("t0", GateType.XOR, ["cnt0", step])
    netlist.add_gate("d0", GateType.AND, [t0, rstn])
    netlist.add_gate("cnt0", GateType.DFF, ["d0"])
    carry = netlist.add_gate("carry", GateType.AND, ["cnt0", step])
    t1 = netlist.add_gate("t1", GateType.XOR, ["cnt1", carry])
    netlist.add_gate("d1", GateType.AND, [t1, rstn])
    netlist.add_gate("cnt1", GateType.DFF, ["d1"])

    # Reconvergent output cone over counter and shift register.
    eq = netlist.add_gate("eq", GateType.XNOR, ["cnt1", "sr1"])
    netlist.add_gate("out", GateType.NOR, [eq, "sr0"])
    netlist.add_output("out")
    netlist.add_output("cnt1")
    netlist.validate()
    return netlist


def _build_alu(
    name: str,
    width: int,
    n_stages: int,
    expand_xor_to_nand: bool,
) -> Netlist:
    """ALU-class generator behind :func:`c880_like` / :func:`c3540_like`.

    The original c880 and c3540 are 8-bit ALUs; this builds the same
    structure class at a configurable width: per stage a ripple-carry
    adder, a bitwise logic unit (AND/OR/XOR) and a 4-way function mux
    under two select lines, plus zero/parity/carry flag cones.  Stages
    cascade (stage ``s+1`` adds the previous stage's result to the
    operand ``b`` rotated by one bit), which reproduces the deep
    reconvergent carry structure that makes the originals hard for
    slope-blind delay models.
    """
    netlist = Netlist(name)
    a = [netlist.add_input(f"a{i}") for i in range(width)]
    b = [netlist.add_input(f"b{i}") for i in range(width)]
    cin = netlist.add_input("cin")
    selects = [netlist.add_input(f"f{s}_{k}") for s in range(n_stages)
               for k in range(2)]
    enable = netlist.add_input("en")

    word = list(a)
    for stage in range(n_stages):
        tag = f"s{stage}"
        f0, f1 = selects[2 * stage], selects[2 * stage + 1]
        f0n = netlist.add_gate(f"{tag}_f0n", GateType.INV, [f0])
        f1n = netlist.add_gate(f"{tag}_f1n", GateType.INV, [f1])
        operand = b[stage % width:] + b[:stage % width]  # rotate per stage

        carry = cin if stage == 0 else f"{tag}_cin"
        if stage > 0:
            # Stage carry-in: the previous stage's carry gated by enable.
            netlist.add_gate(carry, GateType.AND,
                            [f"s{stage - 1}_cout", enable])
        outs = []
        for i in range(width):
            x, y = word[i], operand[i]
            axb = netlist.add_gate(f"{tag}_x{i}", GateType.XOR, [x, y])
            g = netlist.add_gate(f"{tag}_g{i}", GateType.AND, [x, y])
            total = netlist.add_gate(f"{tag}_sum{i}", GateType.XOR,
                                     [axb, carry])
            p = netlist.add_gate(f"{tag}_p{i}", GateType.AND, [axb, carry])
            carry = netlist.add_gate(f"{tag}_c{i}", GateType.OR, [g, p])

            and_i = netlist.add_gate(f"{tag}_and{i}", GateType.AND, [x, y])
            or_i = netlist.add_gate(f"{tag}_or{i}", GateType.OR, [x, y])
            xor_i = axb  # reuse the propagate term as the XOR function

            # 4:1 function mux: f1 picks (adder/AND) vs (OR/XOR).
            m0a = netlist.add_gate(f"{tag}_m0a{i}", GateType.AND,
                                   [total, f0n])
            m0b = netlist.add_gate(f"{tag}_m0b{i}", GateType.AND,
                                   [and_i, f0])
            m0 = netlist.add_gate(f"{tag}_m0{i}", GateType.OR, [m0a, m0b])
            m1a = netlist.add_gate(f"{tag}_m1a{i}", GateType.AND,
                                   [or_i, f0n])
            m1b = netlist.add_gate(f"{tag}_m1b{i}", GateType.AND,
                                   [xor_i, f0])
            m1 = netlist.add_gate(f"{tag}_m1{i}", GateType.OR, [m1a, m1b])
            ma = netlist.add_gate(f"{tag}_ma{i}", GateType.AND, [m0, f1n])
            mb = netlist.add_gate(f"{tag}_mb{i}", GateType.AND, [m1, f1])
            outs.append(
                netlist.add_gate(f"{tag}_r{i}", GateType.OR, [ma, mb])
            )
        netlist.add_gate(f"{tag}_cout", GateType.OR,
                         [f"{tag}_c{width - 1}", f"{tag}_g{width - 1}"])
        word = outs

    # Flag cones over the final word: zero, parity, gated carry-out.
    zero_any = _and_tree(
        netlist,
        [netlist.add_gate(f"z{i}", GateType.INV, [w])
         for i, w in enumerate(word)],
        prefix="zero",
    )
    parity = _xor_tree(netlist, list(word), prefix="par")
    last = f"s{n_stages - 1}_cout"
    cflag = netlist.add_gate("cflag", GateType.AND, [last, enable])

    for i, w in enumerate(word):
        netlist.add_output(w)
    netlist.add_output(zero_any)
    netlist.add_output(parity)
    netlist.add_output(cflag)
    netlist.validate()
    if not expand_xor_to_nand:
        return netlist
    return xor_to_nand2(netlist, name)


def c880_like(name: str = "c880_like") -> Netlist:
    """A single-stage ALU of the c880 structure class.

    Sized (18-bit datapath) so the NOR-mapped gate count lands in the
    range of the original c880's (measured counts are recorded by
    ``python -m repro.cli info``).
    """
    return _build_alu(name, width=18, n_stages=1, expand_xor_to_nand=False)


def c3540_like(name: str = "c3540_like") -> Netlist:
    """A three-stage cascaded ALU of the c3540 structure class.

    Like real c3540 (an 8-bit ALU with control logic roughly four times
    c880's size), this lands its NOR-mapped gate count a few times
    above :func:`c880_like` by cascading three 20-bit stages with the
    XOR cells expanded to NAND2s (the deep carry/mux reconvergence is
    what stresses the simulators).
    """
    return _build_alu(name, width=20, n_stages=3, expand_xor_to_nand=True)
