"""Seeded random-netlist generator for the differential fuzz harness.

Generates structurally diverse combinational DAGs over the supported cell
set (everything :mod:`repro.circuits.bench` can read and
:func:`repro.circuits.nor_map.nor_map` can rewrite).  The construction is
correct by design:

* **single driver** — every net is created exactly once (``add_input`` /
  ``add_gate`` enforce it);
* **acyclic** — a gate only ever consumes nets that already exist;
* **no dead logic** — every sink net (a net no gate reads) becomes a
  primary output, so each gate feeds at least one PO cone;
* **round-trippable** — net names are plain ``i<k>`` / ``g<k>`` tokens,
  safe for the ``.bench`` grammar.

Structure is shaped by three knobs: ``locality`` biases input selection
toward recently created nets (high locality -> deep chains, low ->
shallow, wide fanout), ``reconvergence`` re-draws duplicate input picks at
most once (high reconvergence keeps the duplicates' replacements close,
creating reconvergent fanout), and ``gate_mix`` weights the cell types.
Everything is drawn from one ``numpy`` Generator seeded per circuit, so a
``(seed, index)`` pair always reproduces the same netlist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.gates import GateType, UNARY_TYPES
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError

#: Default gate mix: the full parseable cell set, biased toward the
#: two-input cells the paper's benchmarks are made of.
DEFAULT_GATE_MIX: dict[GateType, float] = {
    GateType.INV: 1.5,
    GateType.BUF: 0.5,
    GateType.AND: 2.0,
    GateType.OR: 2.0,
    GateType.NAND: 3.0,
    GateType.NOR: 3.0,
    GateType.XOR: 1.5,
    GateType.XNOR: 1.0,
}


@dataclass(frozen=True)
class RandomCircuitConfig:
    """Knobs of one random circuit draw.

    ``n_gates`` counts gates *before* NOR mapping; the mapped circuit is
    typically 2-3x larger.  ``locality`` in [0, 1] is the probability an
    input pin is drawn from the ``window`` most recent nets instead of
    uniformly over all nets; ``reconvergence`` in [0, 1] is the chance a
    duplicate input pick is kept (tying pins together) rather than
    re-drawn.
    """

    n_inputs: int = 4
    n_gates: int = 8
    max_fanin: int = 2
    locality: float = 0.7
    window: int = 4
    reconvergence: float = 0.3
    gate_mix: dict[GateType, float] = field(
        default_factory=lambda: dict(DEFAULT_GATE_MIX)
    )
    name: str = "rand"
    #: Number of D flip-flops retrofitted onto the combinational draw
    #: (seeded pin cuts, see :func:`_insert_flops`); 0 keeps the draw
    #: purely combinational AND bit-identical to pre-sequential
    #: corpora — the flop stream is drawn only when ``n_flops > 0``.
    n_flops: int = 0

    def __post_init__(self) -> None:
        if self.n_inputs < 1:
            raise NetlistError("need at least one primary input")
        if self.n_gates < 1:
            raise NetlistError("need at least one gate")
        if self.n_flops < 0:
            raise NetlistError("n_flops must be >= 0")
        if self.max_fanin < 2:
            raise NetlistError("max_fanin must be at least 2")
        if not 0.0 <= self.locality <= 1.0:
            raise NetlistError("locality must be inside [0, 1]")
        if not 0.0 <= self.reconvergence <= 1.0:
            raise NetlistError("reconvergence must be inside [0, 1]")
        if self.window < 1:
            raise NetlistError("window must be positive")
        if not self.gate_mix:
            raise NetlistError("gate_mix must not be empty")
        for gtype, weight in self.gate_mix.items():
            if not isinstance(gtype, GateType):
                raise NetlistError(f"gate_mix key {gtype!r} is not a GateType")
            if weight < 0:
                raise NetlistError("gate_mix weights must be non-negative")
        if sum(self.gate_mix.values()) <= 0:
            raise NetlistError("gate_mix needs at least one positive weight")


def _pick_inputs(
    nets: list[str],
    arity: int,
    config: RandomCircuitConfig,
    rng: np.random.Generator,
) -> list[str]:
    """Draw ``arity`` input nets with the locality/reconvergence biases."""

    def draw() -> str:
        if rng.random() < config.locality:
            lo = max(0, len(nets) - config.window)
            return nets[int(rng.integers(lo, len(nets)))]
        return nets[int(rng.integers(0, len(nets)))]

    picks: list[str] = []
    for _ in range(arity):
        pick = draw()
        if pick in picks and rng.random() >= config.reconvergence:
            pick = draw()  # one re-draw; a repeat duplicate is kept
        picks.append(pick)
    return picks


def random_circuit(
    config: RandomCircuitConfig | None = None,
    seed: int | tuple[int, ...] = 0,
) -> Netlist:
    """Generate one random combinational netlist.

    ``seed`` may be an integer or a tuple (e.g. ``(corpus_seed, index)``)
    — any ``numpy.random.default_rng`` seed.  The same (config, seed)
    pair always yields the same netlist, bit for bit.
    """
    if config is None:
        config = RandomCircuitConfig()
    rng = np.random.default_rng(
        list(seed) if isinstance(seed, tuple) else seed
    )
    netlist = Netlist(config.name)
    nets = [netlist.add_input(f"i{k}") for k in range(config.n_inputs)]

    types = sorted(config.gate_mix, key=lambda g: g.value)
    weights = np.array([config.gate_mix[g] for g in types], dtype=float)
    weights /= weights.sum()

    for k in range(config.n_gates):
        gtype = types[int(rng.choice(len(types), p=weights))]
        if gtype in UNARY_TYPES:
            arity = 1
            inputs = [_pick_inputs(nets, 1, config, rng)[0]]
        else:
            arity = int(rng.integers(2, config.max_fanin + 1))
            inputs = _pick_inputs(nets, arity, config, rng)
        nets.append(netlist.add_gate(f"g{k}", gtype, inputs))

    # Every sink net (no consumers) becomes a PO, so no gate is dead.
    consumed = {net for gate in netlist.gates.values() for net in gate.inputs}
    sinks = [name for name in netlist.gates if name not in consumed]
    for sink in sinks:
        netlist.add_output(sink)
    if not netlist.primary_outputs:  # pragma: no cover - sinks always exist
        netlist.add_output(f"g{config.n_gates - 1}")
    netlist.validate()
    if config.n_flops > 0:
        # A fresh stream keyed off the same seed: the combinational
        # draw above never observes it, so ``n_flops=0`` corpora stay
        # bit-identical to historical ones.
        flop_rng = np.random.default_rng(
            (list(seed) if isinstance(seed, tuple) else [seed]) + [0xD1F0]
        )
        netlist = _insert_flops(netlist, config.n_flops, flop_rng)
    return netlist


def _insert_flops(
    netlist: Netlist, n_flops: int, rng: np.random.Generator
) -> Netlist:
    """Retrofit D flip-flops by cutting random gate input pins.

    Each drawn ``(gate, pin)`` site is rewired through a register:
    the pin's source net becomes the D input of a new ``ff<k>`` DFF
    and the pin reads the register instead.  Sites sharing a source
    net share one register (realistic fanout, fewer degenerate
    single-consumer flops).  Cutting an existing forward edge can
    never create a combinational cycle, so the result always
    validates; PI/PO names are untouched.
    """
    sites = [
        (name, pin)
        for name, gate in netlist.gates.items()
        for pin in range(len(gate.inputs))
    ]
    n_cuts = min(n_flops, len(sites))
    chosen_idx = rng.choice(len(sites), size=n_cuts, replace=False)
    chosen = {sites[int(i)] for i in chosen_idx}
    ff_of_net: dict[str, str] = {}
    sequential = Netlist(netlist.name)
    for pi in netlist.primary_inputs:
        sequential.add_input(pi)
    for name, gate in netlist.gates.items():
        inputs = list(gate.inputs)
        for pin, net in enumerate(inputs):
            if (name, pin) in chosen:
                ff = ff_of_net.get(net)
                if ff is None:
                    ff = f"ff{len(ff_of_net)}"
                    ff_of_net[net] = ff
                inputs[pin] = ff
        sequential.add_gate(name, gate.gtype, inputs)
    for net, ff in ff_of_net.items():
        sequential.add_gate(ff, GateType.DFF, [net])
    for po in netlist.primary_outputs:
        sequential.add_output(po)
    sequential.validate()
    return sequential


def random_corpus(
    count: int,
    seed: int = 0,
    config: RandomCircuitConfig | None = None,
) -> list[Netlist]:
    """A deterministic corpus: circuit ``i`` is drawn from ``(seed, i)``.

    Each circuit gets its own independent RNG stream, so inserting or
    dropping corpus members never perturbs the others.  Sizing knobs
    themselves are jittered per index (spawned from the same stream) to
    diversify the corpus shape.
    """
    if config is None:
        config = RandomCircuitConfig()
    circuits = []
    for index in range(count):
        shape_rng = np.random.default_rng([seed, index, 0xC1DC])
        jittered = RandomCircuitConfig(
            n_inputs=max(2, config.n_inputs + int(shape_rng.integers(-1, 2))),
            n_gates=max(2, config.n_gates + int(shape_rng.integers(-2, 3))),
            max_fanin=config.max_fanin,
            locality=float(
                np.clip(config.locality + shape_rng.uniform(-0.2, 0.2), 0, 1)
            ),
            window=config.window,
            reconvergence=config.reconvergence,
            gate_mix=dict(config.gate_mix),
            name=f"{config.name}{index:03d}",
            n_flops=config.n_flops,
        )
        circuits.append(random_circuit(jittered, seed=(seed, index)))
    return circuits
