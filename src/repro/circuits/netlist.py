"""Gate-level netlist data model.

A :class:`Netlist` is a named graph of gates: every gate drives exactly
the net of its own name (ISCAS ``.bench`` convention).  The class
provides the structural queries every simulator in this repo needs:
validation, topological levelization, fanout maps, boolean evaluation,
and stats.

State elements (``DFF``/``LATCH``, ISCAS-89 style) make a netlist
*sequential*: their outputs are registers, treated as cut points by
every structural query — topological order and levels cover the
*combinational frame* (state outputs are sources, like primary inputs),
so feedback through a flip-flop is legal while a purely combinational
cycle still raises.  :meth:`Netlist.combinational_frame` extracts the
frame as a plain combinational netlist the simulators execute per clock
cycle; :meth:`Netlist.next_state` advances the registers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.circuits.gates import GateType, STATE_TYPES, UNARY_TYPES, eval_gate
from repro.errors import NetlistError


@dataclass(frozen=True)
class Gate:
    """One gate instance: output net name, type, ordered input net names."""

    name: str
    gtype: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise NetlistError("gate needs a name")
        if self.gtype in STATE_TYPES:
            if len(self.inputs) != 1:
                raise NetlistError(
                    f"{self.gtype.value} gate {self.name} needs exactly "
                    "1 data input"
                )
        elif self.gtype in UNARY_TYPES and len(self.inputs) != 1:
            raise NetlistError(f"{self.gtype.value} gate {self.name} needs 1 input")
        elif self.gtype not in UNARY_TYPES and len(self.inputs) < 2:
            raise NetlistError(
                f"{self.gtype.value} gate {self.name} needs >= 2 inputs"
            )


@dataclass
class Netlist:
    """A gate-level circuit (combinational, or sequential via DFF/LATCH).

    Attributes
    ----------
    name:
        Identifier, e.g. ``"c17"``.
    primary_inputs:
        Ordered PI net names.
    gates:
        Mapping from output net name to :class:`Gate`.
    primary_outputs:
        Ordered PO net names (each must be a PI or a gate output).
    """

    name: str
    primary_inputs: list[str] = field(default_factory=list)
    gates: dict[str, Gate] = field(default_factory=dict)
    primary_outputs: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        if name in self.primary_inputs:
            raise NetlistError(f"duplicate primary input {name!r}")
        if name in self.gates:
            raise NetlistError(f"net {name!r} already driven by a gate")
        self.primary_inputs.append(name)
        return name

    def add_gate(self, name: str, gtype: GateType | str, inputs: list[str]) -> str:
        """Add a gate driving net ``name``; returns the net name."""
        if isinstance(gtype, str):
            gtype = GateType(gtype)
        if name in self.gates:
            raise NetlistError(f"net {name!r} already driven by a gate")
        if name in self.primary_inputs:
            raise NetlistError(f"net {name!r} is a primary input")
        self.gates[name] = Gate(name, gtype, tuple(inputs))
        return name

    def add_output(self, name: str) -> None:
        if name in self.primary_outputs:
            raise NetlistError(f"duplicate primary output {name!r}")
        self.primary_outputs.append(name)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def nets(self) -> list[str]:
        """All driven nets: primary inputs then gate outputs."""
        return list(self.primary_inputs) + list(self.gates)

    @property
    def state_elements(self) -> list[str]:
        """Output nets of the state elements (DFF/LATCH), insertion order."""
        return [
            name
            for name, gate in self.gates.items()
            if gate.gtype in STATE_TYPES
        ]

    @property
    def is_sequential(self) -> bool:
        return any(
            gate.gtype in STATE_TYPES for gate in self.gates.values()
        )

    def validate(self) -> None:
        """Raise :class:`NetlistError` on dangling nets, cycles or bad POs.

        Cycles *through state elements* are legal (that is what makes a
        sequential circuit useful); purely combinational cycles still
        raise.
        """
        driven = set(self.primary_inputs) | set(self.gates)
        for gate in self.gates.values():
            for net in gate.inputs:
                if net not in driven:
                    raise NetlistError(
                        f"gate {gate.name!r} reads undriven net {net!r}"
                    )
        for net in self.primary_outputs:
            if net not in driven:
                raise NetlistError(f"primary output {net!r} is undriven")
        if not self.primary_outputs:
            raise NetlistError("netlist has no primary outputs")
        self.topological_order()  # raises on combinational cycles

    def topological_order(self) -> list[str]:
        """Gate output nets in dependency order (Kahn's algorithm).

        The order is *canonical*: ties between simultaneously-ready gates
        are broken by gate name, so two netlists holding the same gates
        (regardless of the order they were added in) produce the same
        order.  Serializers and the differential-verification digests
        rely on this stability.

        State-element outputs are cut points: a DFF/LATCH holds last
        cycle's value, so it depends on nothing within the frame (it is
        ready immediately, like a primary input) and feeding it does not
        order its driver before its consumers.  Kahn completing is then
        exactly the absence of a *purely combinational* cycle.
        """
        cuts = {
            name
            for name, gate in self.gates.items()
            if gate.gtype in STATE_TYPES
        }
        indegree = {name: 0 for name in self.gates}
        consumers: dict[str, list[str]] = {}
        for gate in self.gates.values():
            if gate.name in cuts:
                continue
            for net in gate.inputs:
                if net in self.gates and net not in cuts:
                    indegree[gate.name] += 1
                    consumers.setdefault(net, []).append(gate.name)
        ready = [name for name, deg in indegree.items() if deg == 0]
        heapq.heapify(ready)
        order: list[str] = []
        while ready:
            name = heapq.heappop(ready)
            order.append(name)
            for consumer in consumers.get(name, ()):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    heapq.heappush(ready, consumer)
        if len(order) != len(self.gates):
            raise NetlistError("combinational cycle detected")
        return order

    def levels(self) -> list[list[str]]:
        """Combinational gates grouped into topological levels.

        State-element outputs sit at level 0 (sources, like primary
        inputs); the state elements themselves are not listed — the
        levels describe the combinational frame the simulators execute.
        """
        level_of: dict[str, int] = {net: 0 for net in self.primary_inputs}
        result: list[list[str]] = []
        for name in self.topological_order():
            gate = self.gates[name]
            if gate.gtype in STATE_TYPES:
                level_of[name] = 0
                continue
            lvl = max((level_of.get(net, 0) for net in gate.inputs), default=0)
            level_of[name] = lvl + 1
            while len(result) < lvl + 1:
                result.append([])
            result[lvl].append(name)
        return result

    def fanout(self) -> dict[str, list[tuple[str, int]]]:
        """Map net -> list of (consumer gate, pin index)."""
        result: dict[str, list[tuple[str, int]]] = {net: [] for net in self.nets}
        for gate in self.gates.values():
            for pin, net in enumerate(gate.inputs):
                result.setdefault(net, []).append((gate.name, pin))
        return result

    def fanout_count(self, net: str) -> int:
        """Number of gate pins the net drives (POs not counted)."""
        count = 0
        for gate in self.gates.values():
            count += sum(1 for inp in gate.inputs if inp == net)
        return count

    def depth(self) -> int:
        """Logic depth in gate levels."""
        return len(self.levels())

    def count_by_type(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for gate in self.gates.values():
            counts[gate.gtype.value] = counts.get(gate.gtype.value, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    # ------------------------------------------------------------------
    # sequential structure
    # ------------------------------------------------------------------
    def combinational_frame(self) -> "Netlist":
        """The combinational frame as a plain netlist.

        Each state element is removed and cut in two: its output becomes
        a pseudo primary input (the register value driven into the
        frame) and its data input becomes a pseudo primary output (the
        next-state value sampled at the capture edge).  All net names
        are preserved, so register names, fault sites and recorded nets
        mean the same thing on the frame and on the sequential netlist.
        A combinational netlist is returned as a same-structure copy.
        """
        frame = Netlist(f"{self.name}_frame")
        for pi in self.primary_inputs:
            frame.add_input(pi)
        state = self.state_elements
        for name in state:
            frame.add_input(name)
        for name, gate in self.gates.items():
            if gate.gtype in STATE_TYPES:
                continue
            frame.add_gate(name, gate.gtype, list(gate.inputs))
        seen: set[str] = set()
        for po in self.primary_outputs:
            frame.add_output(po)
            seen.add(po)
        for name in state:
            d_net = self.gates[name].inputs[0]
            if d_net not in seen:
                frame.add_output(d_net)
                seen.add(d_net)
        frame.validate()
        return frame

    def next_state(self, values: dict[str, bool]) -> dict[str, bool]:
        """Register values after one capture, given settled net values.

        ``values`` is a full net evaluation (:meth:`evaluate`); each
        state element samples its data input.
        """
        return {
            name: bool(values[self.gates[name].inputs[0]])
            for name in self.state_elements
        }

    # ------------------------------------------------------------------
    # boolean evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        assignment: dict[str, bool],
        overrides: dict[str, bool] | None = None,
    ) -> dict[str, bool]:
        """Evaluate all nets given PI values; returns every net's value.

        ``overrides`` force nets to fixed levels regardless of their
        drivers (the boolean settle of a stuck-at fault): a forced net's
        own value is replaced after its gate evaluates, and every
        consumer sees the forced level.

        On a sequential netlist ``assignment`` must also carry the
        current register value of every state element; the frame settles
        around those (use :meth:`next_state` on the result to advance
        the registers).
        """
        sources = list(self.primary_inputs) + self.state_elements
        missing = [net for net in sources if net not in assignment]
        if missing:
            raise NetlistError(f"missing PI values: {missing}")
        values = {net: bool(assignment[net]) for net in sources}
        if overrides:
            for net, forced in overrides.items():
                if net in values:
                    values[net] = bool(forced)
        for name in self.topological_order():
            gate = self.gates[name]
            if gate.gtype in STATE_TYPES:
                continue  # registers hold the supplied value
            value = eval_gate(gate.gtype, [values[n] for n in gate.inputs])
            if overrides and name in overrides:
                value = bool(overrides[name])
            values[name] = value
        return values

    def evaluate_outputs(self, assignment: dict[str, bool]) -> dict[str, bool]:
        """PO values only."""
        values = self.evaluate(assignment)
        return {po: values[po] for po in self.primary_outputs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}: {len(self.primary_inputs)} PI, "
            f"{self.n_gates} gates, {len(self.primary_outputs)} PO)"
        )
