"""Technology mapping to the prototype simulator's cell set: INV + NOR2.

The paper replaces every non-NOR gate of the ISCAS-85 circuits by an
equivalent NOR-only structure (NOR is functionally complete, Sec. V-B).
:func:`nor_map` does exactly that:

* multi-input gates are first decomposed into balanced trees of two-input
  base operations,
* each two-input operation is rewritten into NOR2/INV primitives,
* inverters of the same net are shared (common-subexpression reuse), which
  keeps the inflation factor realistic.

:func:`verify_equivalence` checks the rewrite against the original netlist
on random input vectors; the test-suite runs it for every benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.gates import STATE_TYPES, GateType
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError


class _Mapper:
    """Stateful helper building the NOR-only netlist gate by gate."""

    def __init__(self, source: Netlist) -> None:
        self.source = source
        self.result = Netlist(f"{source.name}_nor")
        self._inv_cache: dict[str, str] = {}
        self._counter = 0

    def run(self) -> Netlist:
        for pi in self.source.primary_inputs:
            self.result.add_input(pi)
        for name in self.source.topological_order():
            gate = self.source.gates[name]
            if gate.gtype in STATE_TYPES:
                # State elements pass through untouched: gate output
                # names are preserved by the mapping, so the data input
                # still names the same net in the mapped netlist.
                self.result.add_gate(name, gate.gtype, list(gate.inputs))
                continue
            self._map_gate(name, gate.gtype, list(gate.inputs))
        for po in self.source.primary_outputs:
            self.result.add_output(po)
        self.result.validate()
        return self.result

    # ------------------------------------------------------------------
    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}_m{self._counter}"

    def _nor(self, a: str, b: str, out: str | None = None) -> str:
        name = out if out is not None else self._fresh(a)
        self.result.add_gate(name, GateType.NOR, [a, b])
        return name

    def _inv(self, net: str, out: str | None = None) -> str:
        """Inversion as a tied-input NOR, with sharing.

        The paper's circuits consist "of just NOR gates": an inverter is a
        NOR with both inputs tied (the simulator treats tied NOR gates as
        its inverter-class elementary gate).  One inverter per inverted net
        is shared unless a specific output name must be preserved.
        """
        if out is None:
            cached = self._inv_cache.get(net)
            if cached is not None:
                return cached
            name = self._nor(net, net, out=self._fresh(net))
            self._inv_cache[net] = name
            return name
        self._nor(net, net, out=out)
        self._inv_cache.setdefault(net, out)
        return out

    # ------------------------------------------------------------------
    def _map_gate(self, out: str, gtype: GateType, inputs: list[str]) -> None:
        if gtype is GateType.INV:
            self._inv(inputs[0], out=out)
        elif gtype is GateType.BUF:
            self._inv(self._inv(inputs[0]), out=out)
        elif gtype in (GateType.AND, GateType.NAND):
            and_net = self._tree(inputs, self._and2, out if gtype is GateType.AND else None)
            if gtype is GateType.NAND:
                self._inv(and_net, out=out)
        elif gtype in (GateType.OR, GateType.NOR):
            if gtype is GateType.NOR and len(inputs) == 2:
                self._nor(inputs[0], inputs[1], out=out)
                return
            if gtype is GateType.OR:
                or_net = self._tree(inputs, self._or2, out)
            else:
                # Multi-input NOR: OR-tree over all but the final pair,
                # finishing with one NOR2 on the original output name.
                or_net = self._tree(inputs[:-1], self._or2, None)
                self._nor(or_net, inputs[-1], out=out)
        elif gtype in (GateType.XOR, GateType.XNOR):
            parity_net = self._tree(inputs, self._xor2, out if gtype is GateType.XOR else None)
            if gtype is GateType.XNOR:
                self._inv(parity_net, out=out)
        else:  # pragma: no cover - enum is exhaustive
            raise NetlistError(f"unmappable gate type {gtype!r}")

    def _tree(self, nets: list[str], op2, final_name: str | None) -> str:
        """Balanced binary tree of ``op2``; the root takes ``final_name``."""
        layer = list(nets)
        if len(layer) == 1:
            if final_name is not None:
                return self._inv(self._inv(layer[0]), out=final_name)
            return layer[0]
        while len(layer) > 2:
            next_layer = []
            for i in range(0, len(layer) - 1, 2):
                next_layer.append(op2(layer[i], layer[i + 1], None))
            if len(layer) % 2 == 1:
                next_layer.append(layer[-1])
            layer = next_layer
        return op2(layer[0], layer[1], final_name)

    # two-input operations in NOR/INV primitives ------------------------
    def _or2(self, a: str, b: str, out: str | None) -> str:
        return self._inv_into(self._nor(a, b), out)

    def _and2(self, a: str, b: str, out: str | None) -> str:
        name = out if out is not None else self._fresh(a)
        self.result.add_gate(name, GateType.NOR, [self._inv(a), self._inv(b)])
        return name

    def _xor2(self, a: str, b: str, out: str | None) -> str:
        n = self._nor(a, b)
        p = self._nor(a, n)
        q = self._nor(b, n)
        xnor = self._nor(p, q)
        return self._inv_into(xnor, out)

    def _inv_into(self, net: str, out: str | None) -> str:
        if out is None:
            return self._inv(net)
        return self._inv(net, out=out)


def nor_map(netlist: Netlist) -> Netlist:
    """Rewrite ``netlist`` using two-input NOR gates only.

    Inverters become tied-input NOR gates (``NOR(a, a)``), so the result
    consists "of just NOR gates" exactly like the paper's benchmark
    preparation (Sec. V-B).  ``BUF`` is *wired*, not rejected: it lowers
    to the INV·INV pair (two tied-input NOR gates back to back), sharing
    the inner inverter with any other consumer of the buffered net —
    the contract the sigmoid path relies on and the test suite pins.
    State elements (DFF/LATCH) pass through unchanged; only the
    combinational gates around them are rewritten.
    """
    mapped = _Mapper(netlist).run()
    for gate in mapped.gates.values():
        if gate.gtype in STATE_TYPES:
            continue
        if gate.gtype is not GateType.NOR or len(gate.inputs) != 2:
            raise NetlistError(f"mapper leaked gate {gate.gtype}")
    return mapped


def is_tied_nor(gate) -> bool:
    """Whether a NOR gate has both inputs tied (the inverter cell)."""
    return (
        gate.gtype is GateType.NOR
        and len(gate.inputs) == 2
        and gate.inputs[0] == gate.inputs[1]
    )


def verify_equivalence(
    original: Netlist,
    mapped: Netlist,
    n_vectors: int = 64,
    seed: int = 0,
) -> None:
    """Check logic equivalence on random input vectors.

    Raises :class:`NetlistError` on the first mismatching vector.  For the
    circuit sizes used here, 64 random vectors give high confidence (the
    rewrite is also locally correct by construction).
    """
    if original.primary_inputs != mapped.primary_inputs:
        raise NetlistError("primary input lists differ")
    if original.primary_outputs != mapped.primary_outputs:
        raise NetlistError("primary output lists differ")
    rng = np.random.default_rng(seed)
    sources = list(original.primary_inputs) + original.state_elements
    for _ in range(n_vectors):
        assignment = {net: bool(rng.integers(0, 2)) for net in sources}
        expected_all = original.evaluate(assignment)
        actual_all = mapped.evaluate(assignment)
        expected = {po: expected_all[po] for po in original.primary_outputs}
        actual = {po: actual_all[po] for po in mapped.primary_outputs}
        if expected != actual:
            diff = [po for po in expected if expected[po] != actual[po]]
            raise NetlistError(f"mapping mismatch on outputs {diff}")
        if original.next_state(expected_all) != mapped.next_state(actual_all):
            raise NetlistError("mapping mismatch on register next-state")
