"""Reader/writer for the ISCAS-85 ``.bench`` netlist format.

Example::

    # c17
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

With this parser the genuine ISCAS-85 files (c432, c499, c1355, ...) can be
dropped into the flow unchanged; the repo itself ships c17 plus generated
c499/c1355-class circuits (see ``iscas85.py``).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^)]*)\s*\)$")

#: .bench mnemonic -> GateType (NOT is the historical alias of INV;
#: DFF/LATCH are the ISCAS-89 state elements).
_TYPE_ALIASES = {
    "NOT": GateType.INV,
    "INV": GateType.INV,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "DFF": GateType.DFF,
    "LATCH": GateType.LATCH,
}


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` source text into a validated :class:`Netlist`.

    Every parse error names its source: ``<name>:<lineno>: <reason>``
    for line-attributable failures (unknown mnemonic, malformed line,
    duplicate/redefined nets), ``<name>: <reason>`` for whole-netlist
    validation failures — a 3000-line netlist with one bad line points
    at the line.
    """
    netlist = Netlist(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            io_match = _IO_RE.match(line)
            if io_match:
                kind = io_match.group(1).upper()
                net = io_match.group(2).strip()
                if kind == "INPUT":
                    netlist.add_input(net)
                else:
                    netlist.add_output(net)
                continue
            gate_match = _GATE_RE.match(line)
            if gate_match:
                out = gate_match.group(1).strip()
                mnemonic = gate_match.group(2).upper()
                args = [
                    a.strip()
                    for a in gate_match.group(3).split(",")
                    if a.strip()
                ]
                gtype = _TYPE_ALIASES.get(mnemonic)
                if gtype is None:
                    raise NetlistError(f"unknown gate type {mnemonic!r}")
                netlist.add_gate(out, gtype, args)
                continue
            raise NetlistError(f"cannot parse {raw!r}")
        except NetlistError as exc:
            raise NetlistError(f"{name}:{lineno}: {exc}") from None
    try:
        netlist.validate()
    except NetlistError as exc:
        raise NetlistError(f"{name}: {exc}") from None
    return netlist


def load_bench(path: str | Path) -> Netlist:
    """Parse a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


#: Characters the ``.bench`` grammar reserves: they delimit names, start
#: comments, or separate arguments, so a net name containing one is either
#: rejected or silently split/renamed by :func:`parse_bench`.
_UNSAFE_RE = re.compile(r"[\s#(),=]+")


def _sanitize_name(name: str) -> str:
    """One net name made grammar-safe (unsafe character runs -> ``_``).

    Grammar-safe characters are never touched — in particular leading or
    trailing underscores stay, so a clean name can never be rewritten
    into (and steal the identity of) another clean name.
    """
    return _UNSAFE_RE.sub("_", name) or "n"


def normalize_net_names(netlist: Netlist) -> Netlist:
    """Rewrite net names so the netlist survives a ``.bench`` round trip.

    Grammar-reserved characters (whitespace, ``#``, ``(``, ``)``, ``,``,
    ``=``) are replaced by underscores, and names that collide
    *case-insensitively* after sanitization get deterministic ``_2``,
    ``_3``, ... suffixes (``.bench`` consumers and case-insensitive
    filesystems treat ``N1``/``n1`` as one net, so the writer never emits
    such a pair).  Drivers and references are renamed coherently; a
    netlist whose names are already safe is returned unchanged in
    structure (PIs, gates and POs keep their identity).
    """
    names = list(netlist.primary_inputs) + list(netlist.gates)
    mapping: dict[str, str] = {}
    taken: set[str] = set()
    # Already-safe names reserve their identity first, so a sanitized
    # unsafe name ("a b" -> "a_b") can never steal a clean net's name;
    # among clean names colliding case-insensitively the earlier wins.
    for name in names:
        if _sanitize_name(name) == name and name.casefold() not in taken:
            mapping[name] = name
            taken.add(name.casefold())
    for name in names:
        if name in mapping:
            continue
        candidate = _sanitize_name(name)
        unique = candidate
        suffix = 2
        while unique.casefold() in taken:
            unique = f"{candidate}_{suffix}"
            suffix += 1
        taken.add(unique.casefold())
        mapping[name] = unique
    if all(new == old for old, new in mapping.items()):
        return netlist
    renamed = Netlist(netlist.name)
    for pi in netlist.primary_inputs:
        renamed.add_input(mapping[pi])
    for gate in netlist.gates.values():
        renamed.add_gate(
            mapping[gate.name],
            gate.gtype,
            [mapping[net] for net in gate.inputs],
        )
    for po in netlist.primary_outputs:
        renamed.add_output(mapping[po])
    renamed.validate()
    return renamed


def format_bench(netlist: Netlist) -> str:
    """Render a netlist back to ``.bench`` text (INV emitted as NOT).

    Net names are passed through :func:`normalize_net_names` first, so
    the emitted text always parses back to a structurally identical
    netlist — names containing grammar-reserved characters (or colliding
    case-insensitively) are renamed deterministically instead of being
    dropped or split by the reader.
    """
    netlist = normalize_net_names(netlist)
    lines = [f"# {netlist.name}"]
    lines += [f"INPUT({net})" for net in netlist.primary_inputs]
    lines += [f"OUTPUT({net})" for net in netlist.primary_outputs]
    lines.append("")
    for name in netlist.topological_order():
        gate = netlist.gates[name]
        mnemonic = "NOT" if gate.gtype is GateType.INV else gate.gtype.value
        lines.append(f"{name} = {mnemonic}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"


def save_bench(netlist: Netlist, path: str | Path) -> None:
    """Write a netlist as a ``.bench`` file."""
    Path(path).write_text(format_bench(netlist))
