"""Reader/writer for the ISCAS-85 ``.bench`` netlist format.

Example::

    # c17
    INPUT(1)
    INPUT(2)
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

With this parser the genuine ISCAS-85 files (c432, c499, c1355, ...) can be
dropped into the flow unchanged; the repo itself ships c17 plus generated
c499/c1355-class circuits (see ``iscas85.py``).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^)]*)\s*\)$")

#: .bench mnemonic -> GateType (NOT is the historical alias of INV).
_TYPE_ALIASES = {
    "NOT": GateType.INV,
    "INV": GateType.INV,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
}


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` source text into a validated :class:`Netlist`."""
    netlist = Netlist(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind, net = io_match.group(1).upper(), io_match.group(2).strip()
            if kind == "INPUT":
                netlist.add_input(net)
            else:
                netlist.add_output(net)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            out = gate_match.group(1).strip()
            mnemonic = gate_match.group(2).upper()
            args = [a.strip() for a in gate_match.group(3).split(",") if a.strip()]
            gtype = _TYPE_ALIASES.get(mnemonic)
            if gtype is None:
                raise NetlistError(f"line {lineno}: unknown gate type {mnemonic!r}")
            netlist.add_gate(out, gtype, args)
            continue
        raise NetlistError(f"line {lineno}: cannot parse {raw!r}")
    netlist.validate()
    return netlist


def load_bench(path: str | Path) -> Netlist:
    """Parse a ``.bench`` file from disk."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def format_bench(netlist: Netlist) -> str:
    """Render a netlist back to ``.bench`` text (INV emitted as NOT)."""
    lines = [f"# {netlist.name}"]
    lines += [f"INPUT({net})" for net in netlist.primary_inputs]
    lines += [f"OUTPUT({net})" for net in netlist.primary_outputs]
    lines.append("")
    for name in netlist.topological_order():
        gate = netlist.gates[name]
        mnemonic = "NOT" if gate.gtype is GateType.INV else gate.gtype.value
        lines.append(f"{name} = {mnemonic}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"


def save_bench(netlist: Netlist, path: str | Path) -> None:
    """Write a netlist as a ``.bench`` file."""
    Path(path).write_text(format_bench(netlist))
