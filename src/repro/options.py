"""Shared execution knobs: one :class:`ExecutionOptions` for every layer.

``compiled`` / ``backend`` / ``chunk_size`` grew independently on
:class:`~repro.eval.table1.Table1Config`,
:class:`~repro.verify.differential.DifferentialConfig` and
:class:`~repro.verify.fuzz.FuzzConfig` — three copies of the same three
knobs, which the serving layer would have had to duplicate a fourth
time for its request schema.  This module extracts them into one
dataclass; the configs now *hold* an :class:`ExecutionOptions` and
alias the historical attribute names onto it via properties
(:func:`execution_aliases`), so every existing construction
(``Table1Config(compiled=False)``) and attribute read
(``config.backend``) keeps working with no deprecation shims — and
:class:`repro.serve.PredictionService` requests reuse the dataclass
verbatim.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field, replace

from repro.errors import SimulationError

#: Sentinel distinguishing "kwarg not passed" from an explicit ``None``
#: (``chunk_size=None`` is a meaningful value: one-shot execution).
_UNSET = object()


@dataclass(frozen=True)
class ClockSpec:
    """The clock every state element of a sequential run shares.

    ``period`` spaces the capture strobes; with the ``"rise"`` active
    edge a DFF captures at the end of each cycle (``(k+1) * period``)
    and a transparent LATCH half a period earlier (the time-borrowing
    abstraction); ``"fall"`` swaps the two offsets.  ``clk_to_q`` is the
    clock-to-output delay: a captured register drives its new value into
    the frame that long after its strobe (it must leave room for the
    other phase's strobe, hence ``clk_to_q < period / 2``).  ``init``
    maps state-element names to their power-on values (missing names
    default to 0); pass a plain ``bool`` to initialize every register
    alike.  ``stagger`` separates same-instant launches of distinct
    frame inputs by a deterministic femtosecond-scale offset — the
    compiled and event-driven digital cores order same-time events on
    *distinct* nets differently, so the clocked sessions keep launch
    times unique to preserve the bitwise parity contract.
    """

    period: float = 10e-9
    active_edge: str = "rise"
    clk_to_q: float = 4e-9
    init: "Mapping[str, bool] | bool | tuple" = ()
    stagger: float = 1e-15

    def __post_init__(self) -> None:
        if not (math.isfinite(self.period) and self.period > 0.0):
            raise SimulationError("clock period must be finite and > 0")
        if self.active_edge not in ("rise", "fall"):
            raise SimulationError("active_edge must be 'rise' or 'fall'")
        if not (math.isfinite(self.clk_to_q) and self.clk_to_q > 0.0):
            raise SimulationError("clk_to_q must be finite and > 0")
        if self.clk_to_q >= self.period / 2:
            raise SimulationError(
                "clk_to_q must be < period / 2 (a captured register "
                "must drive the frame before the opposite phase's "
                "strobe)"
            )
        if not (math.isfinite(self.stagger) and self.stagger >= 0.0):
            raise SimulationError("stagger must be finite and >= 0")
        init = self.init
        if isinstance(init, bool):
            canonical: tuple = (bool(init),)
        elif isinstance(init, Mapping):
            canonical = tuple(
                (str(k), bool(v)) for k, v in sorted(init.items())
            )
        else:
            canonical = tuple(
                (str(k), bool(v)) for k, v in init
            ) if init else ()
        object.__setattr__(self, "init", canonical)

    # ------------------------------------------------------------------
    def init_for(self, name: str) -> bool:
        """Power-on value of the named register (default 0)."""
        if self.init and not isinstance(self.init[0], tuple):
            return bool(self.init[0])
        for key, value in self.init:
            if key == name:
                return bool(value)
        return False

    def capture_offset(self, gtype) -> float:
        """Strobe offset within a cycle for one state-element kind."""
        from repro.circuits.gates import GateType

        dff_late = self.active_edge == "rise"
        late = gtype is GateType.DFF if dff_late else gtype is GateType.LATCH
        return self.period if late else self.period / 2

    def to_dict(self) -> dict:
        return {
            "period": float(self.period),
            "active_edge": self.active_edge,
            "clk_to_q": float(self.clk_to_q),
            "init": [list(pair) for pair in self.init]
            if self.init and isinstance(self.init[0], tuple)
            else list(self.init),
            "stagger": float(self.stagger),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ClockSpec":
        init = payload.get("init", ())
        if init and not isinstance(init[0], (list, tuple)):
            init = bool(init[0])
        else:
            init = tuple((str(k), bool(v)) for k, v in init)
        return cls(
            period=float(payload["period"]),
            active_edge=str(payload["active_edge"]),
            clk_to_q=float(payload["clk_to_q"]),
            init=init,
            stagger=float(payload.get("stagger", 1e-15)),
        )


@dataclass
class ExecutionOptions:
    """How the digital/sigmoid simulators execute a workload.

    ``compiled`` selects the levelized array cores
    (:mod:`repro.core.compile` / :mod:`repro.digital.compiled`) over
    the per-gate interpreted walks; ``backend`` names the
    transfer-model backend the sigmoid bundle must have been trained
    with; ``chunk_size`` streams runs through stateful sessions in
    chunks of that many merged stimulus transitions (``None`` =
    one-shot); ``target`` names the execution target the fused kernels
    run on (see :mod:`repro.core.targets` — ``"numpy"`` always,
    ``"numba"`` when the optional dependency is installed).  The
    evaluation configs and the serving request schema share this one
    definition.
    """

    compiled: bool = True
    backend: str = "ann"
    chunk_size: int | None = None
    target: str = "numpy"
    #: Clock for sequential (DFF/LATCH) netlists; ``None`` keeps the
    #: clocked sessions' default :class:`ClockSpec` and is ignored by
    #: purely combinational runs.
    clock: ClockSpec | None = field(default=None)

    def __post_init__(self) -> None:
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SimulationError("chunk_size must be >= 1")
        if self.clock is not None and not isinstance(self.clock, ClockSpec):
            raise SimulationError(
                f"clock must be a ClockSpec, got {type(self.clock).__name__}"
            )

    def merged(self, compiled=_UNSET, backend=_UNSET, chunk_size=_UNSET,
               target=_UNSET, clock=_UNSET):
        """A copy with the explicitly passed knobs overriding this one."""
        overrides = {}
        if compiled is not _UNSET:
            overrides["compiled"] = bool(compiled)
        if backend is not _UNSET:
            overrides["backend"] = str(backend)
        if chunk_size is not _UNSET:
            overrides["chunk_size"] = chunk_size
        if target is not _UNSET:
            overrides["target"] = str(target)
        if clock is not _UNSET:
            overrides["clock"] = clock
        return replace(self, **overrides) if overrides else replace(self)


def normalize_execution(execution, compiled=_UNSET, backend=_UNSET,
                        chunk_size=_UNSET, target=_UNSET,
                        clock=_UNSET) -> ExecutionOptions:
    """Merge an optional ``execution`` base with legacy scalar kwargs.

    The scalar kwargs win when both are given (``dataclasses.replace``
    on a config re-passes the *current* property values alongside
    ``execution``, and those must round-trip).  Always returns a fresh
    instance, so configs never alias a caller-owned options object.
    """
    base = execution if execution is not None else ExecutionOptions()
    if not isinstance(base, ExecutionOptions):
        raise SimulationError(
            f"execution must be an ExecutionOptions, got {type(base).__name__}"
        )
    return base.merged(compiled=compiled, backend=backend,
                       chunk_size=chunk_size, target=target, clock=clock)


def _alias(name: str, readonly: bool) -> property:
    def _get(self):
        return getattr(self.execution, name)

    def _set(self, value):
        setattr(self.execution, name, value)

    _get.__name__ = name
    return property(
        _get,
        None if readonly else _set,
        doc=f"Alias of ``execution.{name}`` (see ExecutionOptions).",
    )


def execution_aliases(*names: str, readonly: bool = False):
    """Class decorator attaching read/write aliases onto ``execution``.

    Applied *above* ``@dataclass`` (so it runs after field processing):
    the class declares ``compiled``/``backend``/``chunk_size`` as
    ``InitVar``s with :data:`_UNSET` defaults and folds them into its
    ``execution`` field in ``__post_init__`` (via
    :func:`normalize_execution`); this decorator then replaces the
    leftover ``_UNSET`` class attributes with live properties, so
    instance reads and writes go through the shared options object.
    ``readonly=True`` omits the setters — for frozen configs, whose
    aliases must not mutate the options object they froze around.
    """
    def wrap(cls):
        for name in names:
            setattr(cls, name, _alias(name, readonly))
        return cls

    return wrap
