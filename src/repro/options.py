"""Shared execution knobs: one :class:`ExecutionOptions` for every layer.

``compiled`` / ``backend`` / ``chunk_size`` grew independently on
:class:`~repro.eval.table1.Table1Config`,
:class:`~repro.verify.differential.DifferentialConfig` and
:class:`~repro.verify.fuzz.FuzzConfig` — three copies of the same three
knobs, which the serving layer would have had to duplicate a fourth
time for its request schema.  This module extracts them into one
dataclass; the configs now *hold* an :class:`ExecutionOptions` and
alias the historical attribute names onto it via properties
(:func:`execution_aliases`), so every existing construction
(``Table1Config(compiled=False)``) and attribute read
(``config.backend``) keeps working with no deprecation shims — and
:class:`repro.serve.PredictionService` requests reuse the dataclass
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SimulationError

#: Sentinel distinguishing "kwarg not passed" from an explicit ``None``
#: (``chunk_size=None`` is a meaningful value: one-shot execution).
_UNSET = object()


@dataclass
class ExecutionOptions:
    """How the digital/sigmoid simulators execute a workload.

    ``compiled`` selects the levelized array cores
    (:mod:`repro.core.compile` / :mod:`repro.digital.compiled`) over
    the per-gate interpreted walks; ``backend`` names the
    transfer-model backend the sigmoid bundle must have been trained
    with; ``chunk_size`` streams runs through stateful sessions in
    chunks of that many merged stimulus transitions (``None`` =
    one-shot); ``target`` names the execution target the fused kernels
    run on (see :mod:`repro.core.targets` — ``"numpy"`` always,
    ``"numba"`` when the optional dependency is installed).  The
    evaluation configs and the serving request schema share this one
    definition.
    """

    compiled: bool = True
    backend: str = "ann"
    chunk_size: int | None = None
    target: str = "numpy"

    def __post_init__(self) -> None:
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SimulationError("chunk_size must be >= 1")

    def merged(self, compiled=_UNSET, backend=_UNSET, chunk_size=_UNSET,
               target=_UNSET):
        """A copy with the explicitly passed knobs overriding this one."""
        overrides = {}
        if compiled is not _UNSET:
            overrides["compiled"] = bool(compiled)
        if backend is not _UNSET:
            overrides["backend"] = str(backend)
        if chunk_size is not _UNSET:
            overrides["chunk_size"] = chunk_size
        if target is not _UNSET:
            overrides["target"] = str(target)
        return replace(self, **overrides) if overrides else replace(self)


def normalize_execution(execution, compiled=_UNSET, backend=_UNSET,
                        chunk_size=_UNSET, target=_UNSET) -> ExecutionOptions:
    """Merge an optional ``execution`` base with legacy scalar kwargs.

    The scalar kwargs win when both are given (``dataclasses.replace``
    on a config re-passes the *current* property values alongside
    ``execution``, and those must round-trip).  Always returns a fresh
    instance, so configs never alias a caller-owned options object.
    """
    base = execution if execution is not None else ExecutionOptions()
    if not isinstance(base, ExecutionOptions):
        raise SimulationError(
            f"execution must be an ExecutionOptions, got {type(base).__name__}"
        )
    return base.merged(compiled=compiled, backend=backend,
                       chunk_size=chunk_size, target=target)


def _alias(name: str, readonly: bool) -> property:
    def _get(self):
        return getattr(self.execution, name)

    def _set(self, value):
        setattr(self.execution, name, value)

    _get.__name__ = name
    return property(
        _get,
        None if readonly else _set,
        doc=f"Alias of ``execution.{name}`` (see ExecutionOptions).",
    )


def execution_aliases(*names: str, readonly: bool = False):
    """Class decorator attaching read/write aliases onto ``execution``.

    Applied *above* ``@dataclass`` (so it runs after field processing):
    the class declares ``compiled``/``backend``/``chunk_size`` as
    ``InitVar``s with :data:`_UNSET` defaults and folds them into its
    ``execution`` field in ``__post_init__`` (via
    :func:`normalize_execution`); this decorator then replaces the
    leftover ``_UNSET`` class attributes with live properties, so
    instance reads and writes go through the shared options object.
    ``readonly=True`` omits the setters — for frozen configs, whose
    aliases must not mutate the options object they froze around.
    """
    def wrap(cls):
        for name in names:
            setattr(cls, name, _alias(name, readonly))
        return cls

    return wrap
