"""Append-only JSON benchmark ledgers (``BENCH_*.json``).

Every perf benchmark appends one record per run to a JSON ledger at the
repo root so the performance trajectory is reviewable in-tree.  The
append semantics live here once: missing files start a fresh ledger,
corrupt or non-list contents are recovered rather than crashing a
benchmark run (a truncated ledger from an interrupted run must never
fail the suite), and only the most recent ``keep`` records are kept —
the trajectory matters, not every local run.
"""

from __future__ import annotations

import json
from pathlib import Path

DEFAULT_KEEP = 50


def append_bench_record(path, record: dict, keep: int = DEFAULT_KEEP) -> list:
    """Append ``record`` to the JSON ledger at ``path``; return the history.

    Missing file → a new one-record ledger.  Unparseable JSON → start
    fresh (the corrupt content is discarded, never propagated).  A bare
    object (pre-ledger format) is wrapped into a list.  The written
    history is truncated to the last ``keep`` records.
    """
    path = Path(path)
    history = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    history = history[-keep:]
    path.write_text(json.dumps(history, indent=2) + "\n")
    return history
