"""Characterization chain circuits (Fig. 3 of the paper), pure-NOR edition.

The benchmark circuits consist of NOR2 gates only (inversion = tied-input
NOR), so the characterization chains are built from three stage kinds:

* ``P0`` — ``NOR(x, GND)``: signal on pin 0, pin 1 grounded,
* ``P1`` — ``NOR(GND, x)``: signal on pin 1,
* ``T``  — ``NOR(x, x)``: tied inputs (the inverter-class gate).

A chain is: pulse-shaping stages, then target stages following a repeating
*pattern* of stage kinds, then termination stages.  Heterogeneous patterns
(e.g. ``("T", "P0", "P0")``) make targets see input slopes from the other
stage families — the circuits mix tied and single-pin NOR gates, so the
training clouds must too.  Optional dummy consumers put targets into the
fanout-2 class (the paper trains dedicated fanout-2 ANNs).

Each target stage is tagged with the *channel* its records belong to:
``(cell, pin, fanout_class)`` with cell ``"NOR2"`` (single-pin) or
``"NOR2T"`` (tied).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.errors import NetlistError

#: Name of the stimulus primary input.
STIM = "stim"
#: Name of the constant-low primary input for inactive NOR pins.
LOW = "lo"

#: Stage kinds and the pins their signal input occupies.
STAGE_KINDS = ("P0", "P1", "T")

#: Pins of gate input capacitance one stage presents to its driver.
_PINS_CONSUMED = {"P0": 1, "P1": 1, "T": 2}


@dataclass(frozen=True)
class ChainSpec:
    """Configuration of one characterization chain.

    Attributes
    ----------
    pattern:
        Repeating sequence of stage kinds for the target section.
    extra_fanout:
        Dummy single-pin consumers attached to every target output.
    n_periods:
        Number of pattern repetitions in the target section.
    n_shaping / n_termination:
        Stage counts of the shaping (same kind as the last pattern
        element) and termination sections.
    """

    pattern: tuple[str, ...] = ("P0",)
    extra_fanout: int = 0
    n_periods: int = 5
    n_shaping: int = 3
    n_termination: int = 2

    def __post_init__(self) -> None:
        if not self.pattern:
            raise NetlistError("pattern must not be empty")
        for kind in self.pattern:
            if kind not in STAGE_KINDS:
                raise NetlistError(f"unknown stage kind {kind!r}")
        if self.extra_fanout < 0:
            raise NetlistError("extra_fanout must be >= 0")
        if self.n_periods < 1 or self.n_shaping < 1:
            raise NetlistError("need at least one period and shaping stage")

    @property
    def tag(self) -> str:
        pat = "-".join(self.pattern).lower()
        return f"{pat}_x{self.extra_fanout}"

    @property
    def uses_low(self) -> bool:
        return any(k in ("P0", "P1") for k in self.pattern) or self.extra_fanout


@dataclass(frozen=True)
class StageProbe:
    """One target stage: nets to record plus its channel identity."""

    in_net: str
    out_net: str
    kind: str  # P0 / P1 / T
    fanout_pins: int

    @property
    def cell(self) -> str:
        return "NOR2T" if self.kind == "T" else "NOR2"

    @property
    def pin(self) -> int:
        return 1 if self.kind == "P1" else 0

    @property
    def fanout_class(self) -> str:
        return "fo1" if self.fanout_pins <= 1 else "fo2"

    @property
    def channel(self) -> tuple[str, int, str]:
        return (self.cell, self.pin, self.fanout_class)


@dataclass
class ChainProbes:
    """All target stages of one chain."""

    stages: list[StageProbe] = field(default_factory=list)

    @property
    def record_nets(self) -> list[str]:
        nets: list[str] = []
        for stage in self.stages:
            for net in (stage.in_net, stage.out_net):
                if net not in nets:
                    nets.append(net)
        return nets


def _add_stage(netlist: Netlist, kind: str, name: str, inp: str) -> str:
    if kind == "P0":
        netlist.add_gate(name, GateType.NOR, [inp, LOW])
    elif kind == "P1":
        netlist.add_gate(name, GateType.NOR, [LOW, inp])
    elif kind == "T":
        netlist.add_gate(name, GateType.NOR, [inp, inp])
    else:  # pragma: no cover - guarded by ChainSpec
        raise NetlistError(f"unknown stage kind {kind!r}")
    return name


def _build_chain_into(
    netlist: Netlist, spec: ChainSpec, prefix: str
) -> ChainProbes:
    """Instantiate one chain's stages (gate names under ``prefix``)."""
    kinds = list(spec.pattern) * spec.n_periods
    shaping_kind = spec.pattern[-1]

    prev = STIM
    for i in range(spec.n_shaping):
        prev = _add_stage(netlist, shaping_kind, f"{prefix}shape{i}", prev)

    probes = ChainProbes()
    for i, kind in enumerate(kinds):
        out = _add_stage(netlist, kind, f"{prefix}target{i}", prev)
        next_kind = kinds[i + 1] if i + 1 < len(kinds) else spec.pattern[0]
        fanout_pins = _PINS_CONSUMED[next_kind] + spec.extra_fanout
        for k in range(spec.extra_fanout):
            _add_stage(netlist, "P0", f"{prefix}dummy{i}_{k}", out)
        probes.stages.append(
            StageProbe(in_net=prev, out_net=out, kind=kind,
                       fanout_pins=fanout_pins)
        )
        prev = out

    for i in range(spec.n_termination):
        prev = _add_stage(netlist, spec.pattern[0], f"{prefix}term{i}", prev)
    netlist.add_output(prev)
    if not spec.uses_low:
        # LOW was declared but never consumed: attach a sink gate so the
        # netlist stays clean (it is fixed at GND either way).
        netlist.add_gate(f"{prefix}losink", GateType.NOR, [LOW, LOW])
    return probes


def build_chain_netlist(spec: ChainSpec) -> tuple[Netlist, ChainProbes]:
    """Construct the chain netlist and its per-stage probe map."""
    netlist = Netlist(f"chain_{spec.tag}")
    netlist.add_input(STIM)
    netlist.add_input(LOW)
    probes = _build_chain_into(netlist, spec, prefix="")
    netlist.validate()
    return netlist, probes


def build_merged_chain_netlist(
    specs: Sequence[ChainSpec],
) -> tuple[Netlist, dict[str, ChainProbes]]:
    """One netlist holding every chain side by side, sharing STIM/LOW.

    The chains are structurally independent, so the staged engine
    integrates the k-th stage of *every* chain as one lock-step batch —
    the characterization sweep's main vectorization axis beyond stimulus
    runs.  Gate names are prefixed with ``{tag}~``; each returned
    :class:`ChainProbes` carries the prefixed nets of its chain.
    """
    specs = list(specs)
    if not specs:
        raise NetlistError("need at least one chain spec")
    tags = [spec.tag for spec in specs]
    if len(set(tags)) != len(tags):
        raise NetlistError(f"chain specs must have unique tags: {tags}")
    netlist = Netlist("chains_" + "+".join(tags))
    netlist.add_input(STIM)
    netlist.add_input(LOW)
    probes = {
        spec.tag: _build_chain_into(netlist, spec, prefix=f"{spec.tag}~")
        for spec in specs
    }
    netlist.validate()
    return netlist, probes


#: The default chain set: homogeneous chains per channel plus alternating
#: chains that cross slope families and cover tied-gate fanout-1.
DEFAULT_CHAIN_SPECS: tuple[ChainSpec, ...] = (
    ChainSpec(pattern=("P0",), extra_fanout=0),
    ChainSpec(pattern=("P1",), extra_fanout=0),
    ChainSpec(pattern=("P0",), extra_fanout=1),
    ChainSpec(pattern=("P1",), extra_fanout=1),
    ChainSpec(pattern=("T",), extra_fanout=0),
    ChainSpec(pattern=("T", "P0", "P0"), extra_fanout=0),
    ChainSpec(pattern=("T", "P1", "P1"), extra_fanout=0),
)
