"""Characterization stimulus sweeps (Fig. 4 of the paper).

The chain input is stimulated by four Heaviside transitions governed by
the three intervals TA, TB, TC.  The paper sweeps each interval over
[5 ps, 20 ps] at 1 ps granularity (~15^3 runs); the granularity here is a
parameter so CI-scale runs stay cheap.

Execution model: all requested chains are instantiated side by side in
one merged netlist (:func:`run_chain_sweeps`), so the staged engine
integrates the k-th stage of every chain as a single lock-step batch —
vectorizing across chains × runs instead of looping chains in Python.
Each logical batch (main grid + degradation set, then the sparse
long-gap set) is further *sharded* into groups of at most
``SweepConfig.max_runs_per_shard`` stimulus runs.  The staged engine
tabulates device terms over ``(chains · runs) × fine-grid`` arrays, so
the shard bound keeps peak memory flat regardless of grid granularity,
and shards are independent units of work: with ``n_workers > 1`` they
are dispatched across processes (the paper-scale 15³ grid parallelizes
trivially).

Beyond the paper's grid, a small set of *long-gap* combinations is added
so the ANNs also see history values between the short-pulse regime and the
steady-state cap (the paper relies on valid-region projection for that
range; including a few samples makes the projection less lossy and is
documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.analog.batching import dispatch_jobs, shard_slices
from repro.analog.cells import CellLibrary, DEFAULT_LIBRARY
from repro.analog.staged import StagedResult, StagedSimulator
from repro.analog.stimuli import SteppedSource, pulse_train_times
from repro.characterization.chains import (
    LOW,
    STIM,
    ChainProbes,
    ChainSpec,
    build_merged_chain_netlist,
)
from repro.errors import SimulationError

#: Per-stage propagation allowance when sizing the simulation span.
_STAGE_DELAY_ALLOWANCE = 12e-12


@dataclass
class SweepConfig:
    """Grid definition for one chain sweep.

    ``max_runs_per_shard`` bounds the lock-step batch handed to the
    staged engine (memory ∝ runs × grid points); ``n_workers > 1``
    dispatches shards over a process pool.
    """

    t_min: float = 5e-12
    t_max: float = 20e-12
    step: float = 3e-12
    t_first: float = 30e-12
    long_gaps: tuple[float, ...] = (60e-12, 200e-12)
    degradation_set: bool = True
    degradation_step: float = 1e-12
    include_falling_start: bool = True
    dt: float = 0.1e-12
    max_runs_per_shard: int = 256
    n_workers: int = 1

    def grid_values(self) -> np.ndarray:
        if self.t_min <= 0 or self.t_max < self.t_min or self.step <= 0:
            raise SimulationError("invalid sweep grid bounds")
        n = int(np.floor((self.t_max - self.t_min) / self.step + 1e-9)) + 1
        return self.t_min + self.step * np.arange(n)

    def combinations(self) -> list[tuple[float, float, float]]:
        """The paper's full (TA, TB, TC) grid."""
        values = self.grid_values()
        return list(itertools.product(values, values, values))

    def long_gap_combinations(self) -> list[tuple[float, float, float]]:
        """Sparse long-history combinations (see module docstring)."""
        if not self.long_gaps:
            return []
        combos = []
        short = [self.t_min, self.t_max]
        for gap in self.long_gaps:
            for width in short:
                combos.append((gap, width, gap))
                combos.append((width, gap, width))
        return combos

    def degradation_combinations(self) -> list[tuple[float, float, float]]:
        """Fine sweep of near-marginal pulse widths.

        Pulse degradation is a cliff: below a critical width an output
        pulse vanishes within a stage or two.  The paper's 1 ps master
        grid samples this band automatically; coarser grids would miss it,
        so this dedicated set sweeps one interval at ``degradation_step``
        granularity across [t_min, ~t_min+8ps] while the others stay wide.
        """
        if not self.degradation_set:
            return []
        start = max(self.t_min - 2e-12, 2e-12)
        widths = start + self.degradation_step * np.arange(
            int(np.ceil((self.t_min + 8e-12 - start) / self.degradation_step)) + 1
        )
        rest = self.t_max
        combos = []
        for width in widths:
            combos.append((float(width), rest, rest))
            combos.append((rest, float(width), rest))
        return combos


@dataclass
class SweepBatch:
    """One staged-engine shard: stimulus combos sharing a time grid."""

    combos: list[tuple[float, float, float]]
    result: StagedResult
    t_stop: float


@dataclass
class SweepResult:
    """All batches of one chain sweep plus the probe map."""

    spec: ChainSpec
    probes: ChainProbes
    batches: list[SweepBatch] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return sum(len(b.combos) for b in self.batches)


@dataclass(frozen=True)
class _ShardJob:
    """One picklable unit of staged-engine work (all chains, some runs)."""

    specs: tuple[ChainSpec, ...]
    combos: tuple[tuple[float, float, float], ...]
    initial_levels: tuple[int, ...]
    t_first: float
    t_stop: float
    dt: float


def _chain_span(spec: ChainSpec, combos, t_first: float) -> float:
    longest = max(sum(c) for c in combos)
    stages = (
        spec.n_shaping
        + len(spec.pattern) * spec.n_periods
        + spec.n_termination
    )
    return t_first + longest + stages * _STAGE_DELAY_ALLOWANCE + 40e-12


def _shard_runs(
    combos: list[tuple[float, float, float]],
    levels: list[int],
    max_runs: int,
) -> list[tuple[list, list]]:
    """Split aligned (combos, initial levels) into bounded lock-step groups."""
    return [
        (combos[s], levels[s])
        for s in shard_slices(len(combos), max_runs)
    ]


def _record_nets(specs, probes_map) -> list[str]:
    nets: list[str] = []
    for spec in specs:
        nets.extend(probes_map[spec.tag].record_nets)
    return nets


def _run_shard_on(sim: StagedSimulator, record_nets: list[str],
                  job: _ShardJob) -> StagedResult:
    """Run one shard on an already-built simulator."""
    runs = [pulse_train_times(job.t_first, combo) for combo in job.combos]
    stim = SteppedSource(runs, initial_levels=list(job.initial_levels))
    sources = {STIM: stim, LOW: SteppedSource.constant(0, stim.n_runs)}
    return sim.simulate(sources, t_stop=job.t_stop, record_nets=record_nets)


def _simulate_shard(job: _ShardJob, library: CellLibrary) -> StagedResult:
    """Build and run one shard; top-level so process pools can pickle it."""
    netlist, probes_map = build_merged_chain_netlist(job.specs)
    sim = StagedSimulator(netlist, library=library, dt=job.dt)
    return _run_shard_on(sim, _record_nets(job.specs, probes_map), job)


def run_chain_sweeps(
    specs: "list[ChainSpec] | tuple[ChainSpec, ...]",
    config: SweepConfig | None = None,
    library: CellLibrary = DEFAULT_LIBRARY,
) -> dict[str, SweepResult]:
    """Simulate the full stimulus grid over several chains at once.

    All chains share the stimulus and the time grid, so the staged engine
    integrates the k-th stage of every chain as one lock-step batch —
    this cross-chain vectorization is what makes the characterization hot
    path cheap, on top of the run batching.  Returns one
    :class:`SweepResult` per spec, keyed by ``spec.tag``; each is
    self-consistent (its probes name the merged-netlist nets its batches
    recorded) and feeds
    :func:`repro.characterization.extract.extract_transfer_records`
    unchanged.
    """
    if config is None:
        config = SweepConfig()
    specs = list(specs)
    netlist, probes_map = build_merged_chain_netlist(specs)
    sweeps = {
        spec.tag: SweepResult(spec=spec, probes=probes_map[spec.tag])
        for spec in specs
    }

    batches = [config.combinations() + config.degradation_combinations()]
    long_combos = config.long_gap_combinations()
    if long_combos:
        batches.append(long_combos)

    jobs: list[_ShardJob] = []
    for combos in batches:
        if not combos:
            continue
        if config.include_falling_start:
            # Complementary trains double polarity coverage per stage.
            combos_all = combos + combos
            levels = [0] * len(combos) + [1] * len(combos)
        else:
            combos_all = list(combos)
            levels = [0] * len(combos)
        # The span covers the longest chain and the batch's longest combo
        # so every shard of one batch shares an identical time grid.
        t_stop = max(
            _chain_span(spec, combos, config.t_first) for spec in specs
        )
        for shard_combos, shard_levels in _shard_runs(
            combos_all, levels, config.max_runs_per_shard
        ):
            jobs.append(
                _ShardJob(
                    specs=tuple(specs),
                    combos=tuple(shard_combos),
                    initial_levels=tuple(shard_levels),
                    t_first=config.t_first,
                    t_stop=t_stop,
                    dt=config.dt,
                )
            )

    if config.n_workers > 1 and len(jobs) > 1:
        results = dispatch_jobs(
            partial(_simulate_shard, library=library),
            jobs,
            n_workers=config.n_workers,
        )
    else:
        # In-process: reuse the merged netlist built above and one
        # simulator for every shard (pool workers must rebuild — jobs
        # are pickled).
        sim = StagedSimulator(netlist, library=library, dt=config.dt)
        nets = _record_nets(specs, probes_map)
        results = [_run_shard_on(sim, nets, job) for job in jobs]

    for job, result in zip(jobs, results):
        for spec in specs:
            sweeps[spec.tag].batches.append(
                SweepBatch(combos=list(job.combos), result=result,
                           t_stop=job.t_stop)
            )
    return sweeps


def run_chain_sweep(
    spec: ChainSpec,
    config: SweepConfig | None = None,
    library: CellLibrary = DEFAULT_LIBRARY,
) -> SweepResult:
    """Simulate the full stimulus grid over one chain.

    Returns recorded waveform batches for the target-stage nets; pass the
    result to :func:`repro.characterization.extract.extract_transfer_records`.
    """
    return run_chain_sweeps([spec], config=config, library=library)[spec.tag]
