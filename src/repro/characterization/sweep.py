"""Characterization stimulus sweeps (Fig. 4 of the paper).

The chain input is stimulated by four Heaviside transitions governed by
the three intervals TA, TB, TC.  The paper sweeps each interval over
[5 ps, 20 ps] at 1 ps granularity (~15^3 runs); the granularity here is a
parameter so CI-scale runs stay cheap, and the full grid is one vectorized
batch of the staged engine.

Beyond the paper's grid, a small set of *long-gap* combinations is added
so the ANNs also see history values between the short-pulse regime and the
steady-state cap (the paper relies on valid-region projection for that
range; including a few samples makes the projection less lossy and is
documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.analog.cells import CellLibrary, DEFAULT_LIBRARY
from repro.analog.staged import StagedResult, StagedSimulator
from repro.analog.stimuli import SteppedSource, pulse_train_times
from repro.characterization.chains import (
    LOW,
    STIM,
    ChainProbes,
    ChainSpec,
    build_chain_netlist,
)
from repro.errors import SimulationError

#: Per-stage propagation allowance when sizing the simulation span.
_STAGE_DELAY_ALLOWANCE = 12e-12


@dataclass
class SweepConfig:
    """Grid definition for one chain sweep."""

    t_min: float = 5e-12
    t_max: float = 20e-12
    step: float = 3e-12
    t_first: float = 30e-12
    long_gaps: tuple[float, ...] = (60e-12, 200e-12)
    degradation_set: bool = True
    degradation_step: float = 1e-12
    include_falling_start: bool = True
    dt: float = 0.1e-12

    def grid_values(self) -> np.ndarray:
        if self.t_min <= 0 or self.t_max < self.t_min or self.step <= 0:
            raise SimulationError("invalid sweep grid bounds")
        n = int(np.floor((self.t_max - self.t_min) / self.step + 1e-9)) + 1
        return self.t_min + self.step * np.arange(n)

    def combinations(self) -> list[tuple[float, float, float]]:
        """The paper's full (TA, TB, TC) grid."""
        values = self.grid_values()
        return list(itertools.product(values, values, values))

    def long_gap_combinations(self) -> list[tuple[float, float, float]]:
        """Sparse long-history combinations (see module docstring)."""
        if not self.long_gaps:
            return []
        combos = []
        short = [self.t_min, self.t_max]
        for gap in self.long_gaps:
            for width in short:
                combos.append((gap, width, gap))
                combos.append((width, gap, width))
        return combos

    def degradation_combinations(self) -> list[tuple[float, float, float]]:
        """Fine sweep of near-marginal pulse widths.

        Pulse degradation is a cliff: below a critical width an output
        pulse vanishes within a stage or two.  The paper's 1 ps master
        grid samples this band automatically; coarser grids would miss it,
        so this dedicated set sweeps one interval at ``degradation_step``
        granularity across [t_min, ~t_min+8ps] while the others stay wide.
        """
        if not self.degradation_set:
            return []
        start = max(self.t_min - 2e-12, 2e-12)
        widths = start + self.degradation_step * np.arange(
            int(np.ceil((self.t_min + 8e-12 - start) / self.degradation_step)) + 1
        )
        rest = self.t_max
        combos = []
        for width in widths:
            combos.append((float(width), rest, rest))
            combos.append((rest, float(width), rest))
        return combos


@dataclass
class SweepBatch:
    """One staged-engine batch: stimulus combos sharing a time grid."""

    combos: list[tuple[float, float, float]]
    result: StagedResult
    t_stop: float


@dataclass
class SweepResult:
    """All batches of one chain sweep plus the probe map."""

    spec: ChainSpec
    probes: ChainProbes
    batches: list[SweepBatch] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return sum(len(b.combos) for b in self.batches)


def _chain_span(spec: ChainSpec, combos, t_first: float) -> float:
    longest = max(sum(c) for c in combos)
    stages = (
        spec.n_shaping
        + len(spec.pattern) * spec.n_periods
        + spec.n_termination
    )
    return t_first + longest + stages * _STAGE_DELAY_ALLOWANCE + 40e-12


def run_chain_sweep(
    spec: ChainSpec,
    config: SweepConfig | None = None,
    library: CellLibrary = DEFAULT_LIBRARY,
) -> SweepResult:
    """Simulate the full stimulus grid over one chain.

    Returns recorded waveform batches for the target-stage nets; pass the
    result to :func:`repro.characterization.extract.extract_transfer_records`.
    """
    if config is None:
        config = SweepConfig()
    netlist, probes = build_chain_netlist(spec)
    sim = StagedSimulator(netlist, library=library, dt=config.dt)
    sweep = SweepResult(spec=spec, probes=probes)

    batches = [config.combinations() + config.degradation_combinations()]
    long_combos = config.long_gap_combinations()
    if long_combos:
        batches.append(long_combos)

    for combos in batches:
        if not combos:
            continue
        runs = [
            pulse_train_times(config.t_first, combo) for combo in combos
        ]
        if config.include_falling_start:
            # Complementary trains double polarity coverage per stage.
            runs = runs + runs
            levels = [0] * len(combos) + [1] * len(combos)
            combos_all = combos + combos
        else:
            levels = [0] * len(combos)
            combos_all = list(combos)
        stim = SteppedSource(runs, initial_levels=levels)
        sources = {STIM: stim, LOW: SteppedSource.constant(0, stim.n_runs)}
        t_stop = _chain_span(spec, combos, config.t_first)
        result = sim.simulate(sources, t_stop=t_stop,
                              record_nets=probes.record_nets)
        sweep.batches.append(
            SweepBatch(combos=list(combos_all), result=result, t_stop=t_stop)
        )
    return sweep
