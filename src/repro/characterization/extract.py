"""Waveform fitting and transition pairing: sweep results -> TOM records.

For every target stage of every sweep run, the stage's input and output
waveforms are fitted to sigmoidal traces (Sec. II) and the transitions are
paired causally: each output transition is matched with the earliest
unconsumed input transition of opposite polarity that precedes it.  The
pair plus the previous output transition yields one Eq. 3 record.

The first output transition of a run has no real predecessor; its history
is the dummy of Algorithm 1 — history clamped to ``T_CAP`` and previous
slope set to the nominal dummy value with the polarity of the initial
conditions — so the networks learn the steady-state case under exactly
the convention used at inference time.

Runs whose fits are poor or whose pairing is inconsistent are dropped and
counted in the extraction report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.characterization.dataset import TransferDataset, TransferRecord
from repro.characterization.sweep import SweepResult
from repro.constants import NOMINAL_SLOPE
from repro.core.fitting import fit_waveform
from repro.core.tom import T_CAP
from repro.core.trace import SigmoidalTrace

#: Maximum RMS fit error (volts) before a waveform is rejected.  Loose
#: enough to keep marginal (barely-crossing) pulses — they carry the
#: degradation information the transfer functions must learn.
MAX_FIT_RMS = 0.07

#: Maximum causal delay (scaled units, = 60 ps) when pairing transitions.
MAX_PAIR_DELAY = 0.6


@dataclass
class ExtractionReport:
    """Bookkeeping of what the extraction kept and dropped."""

    n_records: int = 0
    n_stages_processed: int = 0
    n_bad_fits: int = 0
    n_unpaired_outputs: int = 0
    n_empty_stages: int = 0
    notes: list[str] = field(default_factory=list)


def pair_transitions(
    input_trace: SigmoidalTrace,
    output_trace: SigmoidalTrace,
    max_delay: float = MAX_PAIR_DELAY,
) -> list[tuple[int, int]]:
    """Causal pairing: output transition k -> index of its input cause.

    Returns (input_index, output_index) pairs.  An output transition of
    polarity p is caused by an input transition of polarity -p (the chain
    stages invert) that happened before it, within ``max_delay``.
    """
    pairs: list[tuple[int, int]] = []
    used = np.zeros(input_trace.n_transitions, dtype=bool)
    for k, (a_out, b_out) in enumerate(output_trace.params):
        best = None
        for j, (a_in, b_in) in enumerate(input_trace.params):
            if used[j]:
                continue
            if np.sign(a_in) == np.sign(a_out):
                continue
            if b_in > b_out:
                break
            if b_out - b_in > max_delay:
                continue
            best = j  # keep the latest admissible cause
        if best is None:
            return []  # inconsistent stage: caller drops it
        used[best] = True
        pairs.append((best, k))
    return pairs


def extract_transfer_records(
    sweep: SweepResult,
    max_fit_rms: float = MAX_FIT_RMS,
    dummy_slope: float = NOMINAL_SLOPE,
) -> tuple[dict[tuple[str, int, str], TransferDataset], ExtractionReport]:
    """Fit all stage waveforms of a sweep and build per-channel datasets.

    Returns a mapping ``(cell, pin, fanout_class) -> TransferDataset``; a
    heterogeneous chain contributes records to several channels.
    """
    datasets: dict[tuple[str, int, str], TransferDataset] = {}
    report = ExtractionReport()

    run_offset = 0
    for batch in sweep.batches:
        result = batch.result
        for run in range(result.n_runs):
            # Fit each probe net once per run (stage inputs are the
            # previous stage's outputs).
            fitted: dict[str, SigmoidalTrace | None] = {}
            for net in sweep.probes.record_nets:
                fit = fit_waveform(result.waveform(net, run))
                if fit.rms_error > max_fit_rms:
                    fitted[net] = None
                    report.n_bad_fits += 1
                else:
                    fitted[net] = fit.trace

            for stage_idx, stage in enumerate(sweep.probes.stages):
                report.n_stages_processed += 1
                in_trace = fitted.get(stage.in_net)
                out_trace = fitted.get(stage.out_net)
                if in_trace is None or out_trace is None:
                    continue
                if out_trace.n_transitions == 0:
                    report.n_empty_stages += 1
                    continue
                pairs = pair_transitions(in_trace, out_trace)
                if not pairs:
                    report.n_unpaired_outputs += out_trace.n_transitions
                    continue

                channel = stage.channel
                if channel not in datasets:
                    datasets[channel] = TransferDataset(
                        stage.cell, stage.pin, stage.fanout_class
                    )
                dataset = datasets[channel]

                initial_out = out_trace.initial_level
                s_sign = 1.0 if initial_out == 1 else -1.0
                prev_a = s_sign * abs(dummy_slope)
                prev_b = None  # steady state marker
                for j, k in pairs:
                    a_in, b_in = in_trace.params[j]
                    a_out, b_out = out_trace.params[k]
                    if prev_b is None:
                        T = T_CAP
                    else:
                        T = min(float(b_in - prev_b), T_CAP)
                    dataset.add(
                        TransferRecord(
                            T=float(T),
                            a_prev=float(prev_a),
                            a_in=float(a_in),
                            a_out=float(a_out),
                            delta_b=float(b_out - b_in),
                            stage=stage_idx,
                            run=run_offset + run,
                        )
                    )
                    report.n_records += 1
                    prev_a, prev_b = float(a_out), float(b_out)
        run_offset += result.n_runs
    return datasets, report
