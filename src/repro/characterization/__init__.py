"""Training-data generation and model training (Sec. IV-A of the paper).

The pipeline mirrors the paper's characterization exactly, with the staged
analog engine playing SPICE's role:

1. :mod:`~repro.characterization.chains` builds Fig. 3-style chains:
   pulse-shaping stages, N identical target gates, termination stages
   (plus fanout-2 variants).
2. :mod:`~repro.characterization.sweep` stimulates them with four
   Heaviside transitions governed by TA/TB/TC swept over a grid
   (Fig. 4), all combinations integrated as one vectorized batch.
3. :mod:`~repro.characterization.extract` fits every stage waveform to
   sigmoids and pairs input/output transitions into TOM training records.
4. :mod:`~repro.characterization.train_gate` trains the transfer models
   of every channel — the whole ANN zoo in one vectorized ensemble
   sweep, or any registered table backend — and builds the valid region.
5. :mod:`~repro.characterization.artifacts` caches datasets, trained
   bundles (per scale x backend) and the digital delay library (per
   scale) under ``artifacts/`` so benches and tests reuse them.
"""

from repro.characterization.chains import (
    ChainSpec,
    build_chain_netlist,
    build_merged_chain_netlist,
)
from repro.characterization.sweep import (
    SweepConfig,
    run_chain_sweep,
    run_chain_sweeps,
)
from repro.characterization.extract import extract_transfer_records
from repro.characterization.dataset import TransferDataset, TransferRecord
from repro.characterization.train_gate import (
    collect_training_jobs,
    train_gate_model,
    train_gate_models,
    train_zoo,
)
from repro.characterization.artifacts import (
    build_bundle,
    default_bundle,
    default_delay_library,
)

__all__ = [
    "ChainSpec",
    "build_chain_netlist",
    "build_merged_chain_netlist",
    "SweepConfig",
    "run_chain_sweep",
    "run_chain_sweeps",
    "extract_transfer_records",
    "TransferDataset",
    "TransferRecord",
    "train_gate_model",
    "train_gate_models",
    "collect_training_jobs",
    "train_zoo",
    "default_bundle",
    "build_bundle",
    "default_delay_library",
]
