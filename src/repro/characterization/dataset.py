"""TOM training datasets.

One :class:`TransferRecord` is a single Eq. 3 sample: features
``(T, a_out_prev, a_in)`` and targets ``(a_out, delta_b)``, all in scaled
time units.  A :class:`TransferDataset` collects records for one channel
(cell, pin, fanout class), offers the polarity split the paper trains on
(rising vs falling input transitions), and round-trips through JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import DatasetError


@dataclass(frozen=True)
class TransferRecord:
    """One training sample of the TOM transfer function."""

    T: float
    a_prev: float
    a_in: float
    a_out: float
    delta_b: float
    stage: int = -1
    run: int = -1

    def features(self) -> tuple[float, float, float]:
        return (self.T, self.a_prev, self.a_in)

    def targets(self) -> tuple[float, float]:
        return (self.a_out, self.delta_b)


class TransferDataset:
    """A bag of transfer records for one gate channel."""

    def __init__(
        self,
        cell: str,
        pin: int,
        fanout_class: str,
        records: list[TransferRecord] | None = None,
    ) -> None:
        self.cell = cell
        self.pin = pin
        self.fanout_class = fanout_class
        self.records: list[TransferRecord] = list(records or [])

    # ------------------------------------------------------------------
    def add(self, record: TransferRecord) -> None:
        self.records.append(record)

    def extend(self, records) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    def features(self) -> np.ndarray:
        """(n, 3) feature matrix ``(T, a_prev, a_in)``."""
        return np.array([r.features() for r in self.records], dtype=float).reshape(
            -1, 3
        )

    def targets(self) -> np.ndarray:
        """(n, 2) target matrix ``(a_out, delta_b)``."""
        return np.array([r.targets() for r in self.records], dtype=float).reshape(
            -1, 2
        )

    def split_polarity(self) -> tuple["TransferDataset", "TransferDataset"]:
        """(rising-input records, falling-input records)."""
        rising = [r for r in self.records if r.a_in > 0]
        falling = [r for r in self.records if r.a_in < 0]
        make = lambda rs: TransferDataset(  # noqa: E731 - local helper
            self.cell, self.pin, self.fanout_class, rs
        )
        return make(rising), make(falling)

    def drop_outliers(self, quantile: float = 0.995) -> "TransferDataset":
        """Drop records with extreme delay targets (fit glitches)."""
        if not self.records:
            return self
        deltas = np.array([abs(r.delta_b) for r in self.records])
        cutoff = np.quantile(deltas, quantile)
        kept = [r for r in self.records if abs(r.delta_b) <= cutoff]
        return TransferDataset(self.cell, self.pin, self.fanout_class, kept)

    def summary(self) -> dict:
        """Human-readable stats used in logs and EXPERIMENTS.md."""
        if not self.records:
            return {"n": 0}
        feats = self.features()
        targs = self.targets()
        return {
            "n": len(self.records),
            "n_rising": int(np.sum(feats[:, 2] > 0)),
            "n_falling": int(np.sum(feats[:, 2] < 0)),
            "T_range": [float(feats[:, 0].min()), float(feats[:, 0].max())],
            "a_in_range": [float(feats[:, 2].min()), float(feats[:, 2].max())],
            "delay_ps_range": [
                float(targs[:, 1].min() * 100),
                float(targs[:, 1].max() * 100),
            ],
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "cell": self.cell,
            "pin": self.pin,
            "fanout_class": self.fanout_class,
            "records": [
                [r.T, r.a_prev, r.a_in, r.a_out, r.delta_b, r.stage, r.run]
                for r in self.records
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TransferDataset":
        records = [
            TransferRecord(
                T=row[0],
                a_prev=row[1],
                a_in=row[2],
                a_out=row[3],
                delta_b=row[4],
                stage=int(row[5]),
                run=int(row[6]),
            )
            for row in data["records"]
        ]
        return cls(data["cell"], int(data["pin"]), data["fanout_class"], records)

    def save(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "TransferDataset":
        path = Path(path)
        if not path.exists():
            raise DatasetError(f"no dataset at {path}")
        return cls.from_dict(json.loads(path.read_text()))
