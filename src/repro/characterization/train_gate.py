"""Training the TOM transfer-function ANNs (Sec. IV).

Each channel (cell, pin, fanout class) gets four networks: rising and
falling input polarity, each with a slope net and a delay net, all using
the paper's 3-10-10-5-1 ReLU architecture.  The valid region of Sec. IV-B
is built from the same polarity-split features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.characterization.dataset import TransferDataset
from repro.core.ann_transfer import ANNTransferFunction, GateModel
from repro.core.valid_region import ConvexHullRegion, KNNRegion
from repro.errors import DatasetError
from repro.nn.losses import mae_loss
from repro.nn.mlp import paper_architecture
from repro.nn.scaling import StandardScaler
from repro.nn.training import TrainingConfig, train_mlp


@dataclass
class ChannelTrainingReport:
    """Validation-quality metrics of one trained channel."""

    cell: str
    pin: int
    fanout_class: str
    n_rising: int
    n_falling: int
    slope_mae_rising: float
    delay_mae_rising_ps: float
    slope_mae_falling: float
    delay_mae_falling_ps: float
    histories: dict = field(default_factory=dict)


def train_transfer_function(
    features: np.ndarray,
    slopes: np.ndarray,
    delays: np.ndarray,
    region_kind: str = "knn",
    config: TrainingConfig | None = None,
    seed: int = 0,
) -> tuple[ANNTransferFunction, dict]:
    """Train one polarity's slope+delay networks on raw (unscaled) data."""
    features = np.atleast_2d(np.asarray(features, dtype=float))
    slopes = np.asarray(slopes, dtype=float).reshape(-1, 1)
    delays = np.asarray(delays, dtype=float).reshape(-1, 1)
    if features.shape[0] < 10:
        raise DatasetError(
            f"too few samples to train a transfer function ({features.shape[0]})"
        )
    if config is None:
        config = TrainingConfig(seed=seed)

    x_scaler = StandardScaler().fit(features)
    y_slope_scaler = StandardScaler().fit(slopes)
    y_delay_scaler = StandardScaler().fit(delays)
    x = x_scaler.transform(features)

    slope_net = paper_architecture(rng=np.random.default_rng(seed))
    slope_history = train_mlp(
        slope_net, x, y_slope_scaler.transform(slopes), config
    )
    delay_net = paper_architecture(rng=np.random.default_rng(seed + 1))
    delay_history = train_mlp(
        delay_net, x, y_delay_scaler.transform(delays), config
    )

    if region_kind == "knn":
        region = KNNRegion(features)
    elif region_kind == "convex":
        region = ConvexHullRegion(features)
    elif region_kind == "none":
        region = None
    else:
        raise DatasetError(f"unknown region kind {region_kind!r}")

    tf = ANNTransferFunction(
        slope_net=slope_net,
        delay_net=delay_net,
        x_scaler=x_scaler,
        y_slope_scaler=y_slope_scaler,
        y_delay_scaler=y_delay_scaler,
        region=region,
    )
    # Native-unit training-set MAE for reporting.
    pred_slope, pred_delay = tf.predict_batch(features)
    metrics = {
        "slope_mae": mae_loss(pred_slope.reshape(-1, 1), slopes),
        "delay_mae": mae_loss(pred_delay.reshape(-1, 1), delays),
        "slope_epochs": slope_history.epochs_run,
        "delay_epochs": delay_history.epochs_run,
    }
    return tf, metrics


def train_gate_model(
    dataset: TransferDataset,
    region_kind: str = "knn",
    config: TrainingConfig | None = None,
    seed: int = 0,
) -> tuple[GateModel, ChannelTrainingReport]:
    """Train the four ANNs of one channel from its dataset."""
    clean = dataset.drop_outliers()
    rising, falling = clean.split_polarity()
    if len(rising) < 10 or len(falling) < 10:
        raise DatasetError(
            f"channel {dataset.cell}/p{dataset.pin}/{dataset.fanout_class}: "
            f"not enough samples (rising={len(rising)}, falling={len(falling)})"
        )

    tf_rise, rise_metrics = train_transfer_function(
        rising.features(),
        rising.targets()[:, 0],
        rising.targets()[:, 1],
        region_kind=region_kind,
        config=config,
        seed=seed,
    )
    tf_fall, fall_metrics = train_transfer_function(
        falling.features(),
        falling.targets()[:, 0],
        falling.targets()[:, 1],
        region_kind=region_kind,
        config=config,
        seed=seed + 100,
    )
    model = GateModel(
        cell=dataset.cell,
        pin=dataset.pin,
        fanout_class=dataset.fanout_class,
        tf_rise=tf_rise,
        tf_fall=tf_fall,
    )
    report = ChannelTrainingReport(
        cell=dataset.cell,
        pin=dataset.pin,
        fanout_class=dataset.fanout_class,
        n_rising=len(rising),
        n_falling=len(falling),
        slope_mae_rising=rise_metrics["slope_mae"],
        delay_mae_rising_ps=rise_metrics["delay_mae"] * 100.0,
        slope_mae_falling=fall_metrics["slope_mae"],
        delay_mae_falling_ps=fall_metrics["delay_mae"] * 100.0,
        histories={"rising": rise_metrics, "falling": fall_metrics},
    )
    return model, report
