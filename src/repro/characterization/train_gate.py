"""Training the TOM transfer-function models (Sec. IV).

Each channel (cell, pin, fanout class) gets a rising and a falling
transfer function.  With the default ``ann`` backend those are the
paper's four 3-10-10-5-1 ReLU networks per channel; with the ``lut`` /
``spline`` / ``poly`` backends they are the table alternatives the paper
generated "for comparison purposes" (Sec. IV-A).  The valid region of
Sec. IV-B is built from the same polarity-split features for every
backend.

The ANN path is fully vectorized: :func:`train_gate_models` stacks every
network of every requested channel (channel x polarity x {slope, delay})
into one :class:`~repro.nn.ensemble.MLPEnsemble` and trains the whole
zoo in a single :func:`~repro.nn.ensemble.train_ensemble` sweep —
bitwise-identical, per network, to the serial
:func:`~repro.nn.training.train_mlp` loop it replaces (see
``benchmarks/test_bench_training_speed.py`` for the recorded speedup).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.characterization.dataset import TransferDataset
from repro.core.ann_transfer import (
    ANNTransferFunction,
    GateModel,
    ann_init_seeds,
    prepare_channel_arrays,
)
from repro.core.backends import build_region, get_backend
from repro.errors import DatasetError
from repro.nn.ensemble import MLPEnsemble, train_ensemble
from repro.nn.losses import mae_loss
from repro.nn.mlp import PAPER_LAYER_SIZES
from repro.nn.training import TrainingConfig


@dataclass
class ChannelTrainingReport:
    """Validation-quality metrics of one trained channel."""

    cell: str
    pin: int
    fanout_class: str
    n_rising: int
    n_falling: int
    slope_mae_rising: float
    delay_mae_rising_ps: float
    slope_mae_falling: float
    delay_mae_falling_ps: float
    histories: dict = field(default_factory=dict)


@dataclass
class TrainingJob:
    """One network of the characterization zoo (ANN backend).

    ``x`` / ``y`` are the standardized features and one standardized
    target column; ``init_seed`` seeds the weight initialization and
    ``config.seed`` the split/batch shuffles — exactly the values a
    serial :func:`~repro.nn.training.train_mlp` loop would use.
    """

    channel: tuple[str, int, str]
    polarity: str  # "rising" | "falling"
    target: str  # "slope" | "delay"
    x: np.ndarray
    y: np.ndarray
    init_seed: int
    config: TrainingConfig


def _polarity_data(dataset: TransferDataset):
    """Clean, polarity-split training arrays of one channel's dataset."""
    clean = dataset.drop_outliers()
    rising, falling = clean.split_polarity()
    if len(rising) < 10 or len(falling) < 10:
        raise DatasetError(
            f"channel {dataset.cell}/p{dataset.pin}/{dataset.fanout_class}: "
            f"not enough samples (rising={len(rising)}, falling={len(falling)})"
        )
    return rising, falling


def collect_training_jobs(
    datasets: dict[tuple[str, int, str], TransferDataset],
    config: TrainingConfig | None = None,
    seed: int = 0,
) -> tuple[list[TrainingJob], dict]:
    """The ANN zoo of a characterization run as one flat job list.

    Per channel, the rising polarity trains with init seeds
    ``(seed, seed + 1)`` and the falling polarity with
    ``(seed + 100, seed + 101)`` — the seeds the serial per-channel path
    has always used — and every job shares ``config`` (hence split and
    batch order, for equal dataset sizes).  Also returns the per-channel
    context (scalers, regions, split data) needed to assemble the
    trained networks into :class:`~repro.core.ann_transfer.GateModel`
    objects.
    """
    jobs: list[TrainingJob] = []
    context: dict = {}
    for channel in sorted(datasets):
        dataset = datasets[channel]
        rising, falling = _polarity_data(dataset)
        context[channel] = {"n_rising": len(rising), "n_falling": len(falling)}
        for polarity, split, base_seed in (
            ("rising", rising, seed),
            ("falling", falling, seed + 100),
        ):
            # Matching the serial path: a shared config (the preset's)
            # applies to every network; without one, each polarity seeds
            # its own split/batch stream from its base seed.
            job_config = (
                config if config is not None else TrainingConfig(seed=base_seed)
            )
            targets = split.targets()
            prep = prepare_channel_arrays(
                split.features(), targets[:, 0], targets[:, 1]
            )
            context[channel][polarity] = {
                "features": prep["features"],
                "targets": targets,
                "x_scaler": prep["x_scaler"],
                "y_slope_scaler": prep["y_slope_scaler"],
                "y_delay_scaler": prep["y_delay_scaler"],
            }
            slope_seed, delay_seed = ann_init_seeds(base_seed)
            jobs.append(
                TrainingJob(
                    channel, polarity, "slope", prep["x"], prep["y_slope"],
                    slope_seed, job_config,
                )
            )
            jobs.append(
                TrainingJob(
                    channel, polarity, "delay", prep["x"], prep["y_delay"],
                    delay_seed, job_config,
                )
            )
    return jobs, context


def train_zoo(jobs: list[TrainingJob]) -> tuple[MLPEnsemble, list]:
    """Train every job of the zoo in one vectorized ensemble sweep."""
    ensemble = MLPEnsemble(
        PAPER_LAYER_SIZES,
        len(jobs),
        rngs=[np.random.default_rng(job.init_seed) for job in jobs],
    )
    histories = train_ensemble(
        ensemble,
        [job.x for job in jobs],
        [job.y for job in jobs],
        [job.config for job in jobs],
    )
    return ensemble, histories


def _channel_report(
    channel: tuple[str, int, str],
    context: dict,
    tf_rise,
    tf_fall,
    histories: dict,
) -> ChannelTrainingReport:
    """Native-unit training-set MAE per polarity, for logs and stats."""
    metrics = {}
    for polarity, tf in (("rising", tf_rise), ("falling", tf_fall)):
        info = context[polarity]
        pred_slope, pred_delay = tf.predict_batch(info["features"])
        metrics[polarity] = {
            "slope_mae": mae_loss(
                pred_slope.reshape(-1, 1), info["targets"][:, 0].reshape(-1, 1)
            ),
            "delay_mae": mae_loss(
                pred_delay.reshape(-1, 1), info["targets"][:, 1].reshape(-1, 1)
            ),
            **histories.get(polarity, {}),
        }
    cell, pin, fanout_class = channel
    return ChannelTrainingReport(
        cell=cell,
        pin=pin,
        fanout_class=fanout_class,
        n_rising=context["n_rising"],
        n_falling=context["n_falling"],
        slope_mae_rising=metrics["rising"]["slope_mae"],
        delay_mae_rising_ps=metrics["rising"]["delay_mae"] * 100.0,
        slope_mae_falling=metrics["falling"]["slope_mae"],
        delay_mae_falling_ps=metrics["falling"]["delay_mae"] * 100.0,
        histories=metrics,
    )


def train_gate_models(
    datasets: dict[tuple[str, int, str], TransferDataset],
    backend: str = "ann",
    region_kind: str = "knn",
    config: TrainingConfig | None = None,
    seed: int = 0,
) -> dict[tuple[str, int, str], tuple[GateModel, ChannelTrainingReport]]:
    """Train every requested channel with one backend.

    With ``backend="ann"`` all networks of all channels train in one
    vectorized ensemble sweep; table backends construct per polarity
    from the same split datasets.
    """
    results: dict = {}
    if backend == "ann":
        jobs, context = collect_training_jobs(datasets, config=config, seed=seed)
        ensemble, histories = train_zoo(jobs)
        by_channel: dict = {}
        for index, job in enumerate(jobs):
            by_channel.setdefault(job.channel, {}).setdefault(job.polarity, {})[
                job.target
            ] = index
        for channel, slots in by_channel.items():
            tfs = {}
            epoch_stats: dict = {}
            for polarity in ("rising", "falling"):
                info = context[channel][polarity]
                slope_idx = slots[polarity]["slope"]
                delay_idx = slots[polarity]["delay"]
                tfs[polarity] = ANNTransferFunction(
                    slope_net=ensemble.member(slope_idx),
                    delay_net=ensemble.member(delay_idx),
                    x_scaler=info["x_scaler"],
                    y_slope_scaler=info["y_slope_scaler"],
                    y_delay_scaler=info["y_delay_scaler"],
                    region=build_region(info["features"], region_kind),
                )
                epoch_stats[polarity] = {
                    "slope_epochs": histories[slope_idx].epochs_run,
                    "delay_epochs": histories[delay_idx].epochs_run,
                }
            cell, pin, fanout_class = channel
            model = GateModel(
                cell, pin, fanout_class, tfs["rising"], tfs["falling"]
            )
            report = _channel_report(
                channel,
                context[channel],
                tfs["rising"],
                tfs["falling"],
                epoch_stats,
            )
            results[channel] = (model, report)
        return results

    backend_cls = get_backend(backend)
    for channel in sorted(datasets):
        dataset = datasets[channel]
        rising, falling = _polarity_data(dataset)
        context = {"n_rising": len(rising), "n_falling": len(falling)}
        tfs = {}
        for polarity, split in (("rising", rising), ("falling", falling)):
            features = split.features()
            targets = split.targets()
            context[polarity] = {"features": features, "targets": targets}
            tfs[polarity] = backend_cls.from_training_data(
                features,
                targets[:, 0],
                targets[:, 1],
                region_kind=region_kind,
                config=config,
                seed=seed,
            )
        cell, pin, fanout_class = channel
        model = GateModel(cell, pin, fanout_class, tfs["rising"], tfs["falling"])
        report = _channel_report(
            channel, context, tfs["rising"], tfs["falling"], {}
        )
        results[channel] = (model, report)
    return results


def train_transfer_function(
    features: np.ndarray,
    slopes: np.ndarray,
    delays: np.ndarray,
    region_kind: str = "knn",
    config: TrainingConfig | None = None,
    seed: int = 0,
    backend: str = "ann",
):
    """Train one polarity's transfer function on raw (unscaled) data."""
    features = np.atleast_2d(np.asarray(features, dtype=float))
    slopes = np.asarray(slopes, dtype=float).reshape(-1, 1)
    delays = np.asarray(delays, dtype=float).reshape(-1, 1)
    if features.shape[0] < 10:
        raise DatasetError(
            f"too few samples to train a transfer function ({features.shape[0]})"
        )
    backend_cls = get_backend(backend)
    if backend == "ann":
        tf, histories = backend_cls.fit(
            features,
            slopes,
            delays,
            region_kind=region_kind,
            config=config,
            seed=seed,
        )
        extra = {
            "slope_epochs": histories["slope"].epochs_run,
            "delay_epochs": histories["delay"].epochs_run,
        }
    else:
        tf = backend_cls.from_training_data(
            features,
            slopes,
            delays,
            region_kind=region_kind,
            config=config,
            seed=seed,
        )
        extra = {}
    pred_slope, pred_delay = tf.predict_batch(features)
    metrics = {
        "slope_mae": mae_loss(pred_slope.reshape(-1, 1), slopes),
        "delay_mae": mae_loss(pred_delay.reshape(-1, 1), delays),
        **extra,
    }
    return tf, metrics


def train_gate_model(
    dataset: TransferDataset,
    region_kind: str = "knn",
    config: TrainingConfig | None = None,
    seed: int = 0,
    backend: str = "ann",
) -> tuple[GateModel, ChannelTrainingReport]:
    """Train one channel's transfer functions from its dataset."""
    results = train_gate_models(
        {(dataset.cell, dataset.pin, dataset.fanout_class): dataset},
        backend=backend,
        region_kind=region_kind,
        config=config,
        seed=seed,
    )
    return results[(dataset.cell, dataset.pin, dataset.fanout_class)]
