"""Artifact cache: characterized datasets and trained model bundles.

The characterize+train pipeline is deterministic but takes minutes at
paper scale, so its outputs are cached as JSON under ``artifacts/`` at the
repository root (override with the ``REPRO_ARTIFACTS`` environment
variable).  Scales:

* ``tiny`` — smallest grid/chains; seconds per chain, used by tests.
* ``fast`` — coarse TA/TB/TC grid; a few minutes to build.
* ``standard`` — the default for benches.
* ``paper`` — the paper's 1 ps granularity (~15^3 combos per chain);
  included for completeness, expect a long build.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.characterization.chains import DEFAULT_CHAIN_SPECS, ChainSpec
from repro.characterization.dataset import TransferDataset
from repro.characterization.extract import extract_transfer_records
from repro.characterization.sweep import SweepConfig, run_chain_sweeps
from repro.characterization.train_gate import train_gate_model
from repro.core.models import GateModelBundle
from repro.errors import DatasetError
from repro.nn.training import TrainingConfig


def artifacts_dir() -> Path:
    """Artifact directory: ``$REPRO_ARTIFACTS`` or ``<repo>/artifacts``."""
    env = os.environ.get("REPRO_ARTIFACTS")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "artifacts"


@dataclass(frozen=True)
class ScalePreset:
    """Grid/chain sizing of one characterization scale."""

    name: str
    sweep_step: float
    n_periods: int
    nn_epochs: int

    def sweep_config(self) -> SweepConfig:
        if self.name == "tiny":
            return SweepConfig(
                step=self.sweep_step,
                long_gaps=(60e-12,),
                include_falling_start=False,
            )
        return SweepConfig(step=self.sweep_step)

    def chain_specs(self) -> tuple[ChainSpec, ...]:
        return tuple(
            ChainSpec(
                pattern=spec.pattern,
                extra_fanout=spec.extra_fanout,
                n_periods=max(1, self.n_periods // len(spec.pattern)),
            )
            for spec in DEFAULT_CHAIN_SPECS
        )

    def training_config(self, seed: int = 0) -> TrainingConfig:
        return TrainingConfig(epochs=self.nn_epochs, seed=seed)


PRESETS = {
    "tiny": ScalePreset(name="tiny", sweep_step=7.5e-12, n_periods=3,
                        nn_epochs=120),
    "fast": ScalePreset(name="fast", sweep_step=5e-12, n_periods=5,
                        nn_epochs=250),
    "standard": ScalePreset(name="standard", sweep_step=3e-12, n_periods=6,
                            nn_epochs=400),
    "paper": ScalePreset(name="paper", sweep_step=1e-12, n_periods=6,
                         nn_epochs=400),
}

#: Channels the pure-NOR prototype needs: single-pin NOR on either pin and
#: the tied (inverter-class) NOR, each in fanout-1 and fanout->=2 flavours.
CHANNELS: tuple[tuple[str, int, str], ...] = (
    ("NOR2", 0, "fo1"),
    ("NOR2", 0, "fo2"),
    ("NOR2", 1, "fo1"),
    ("NOR2", 1, "fo2"),
    ("NOR2T", 0, "fo1"),
    ("NOR2T", 0, "fo2"),
)


def _preset(scale: str) -> ScalePreset:
    try:
        return PRESETS[scale]
    except KeyError:
        raise DatasetError(
            f"unknown scale {scale!r}; options: {sorted(PRESETS)}"
        ) from None


def characterize_all(
    scale: str = "fast", verbose: bool = False
) -> tuple[dict[tuple[str, int, str], TransferDataset], dict]:
    """Sweep every chain of the preset and merge records per channel."""
    preset = _preset(scale)
    merged: dict[tuple[str, int, str], TransferDataset] = {}
    stats: dict[str, dict] = {}
    specs = preset.chain_specs()
    t0 = time.perf_counter()
    # All chains integrate side by side in one merged lock-step sweep.
    sweeps = run_chain_sweeps(specs, preset.sweep_config())
    t_sweep = time.perf_counter() - t0
    # One merged lock-step sweep covers every chain; its wall clock is
    # recorded once rather than misattributed per chain.
    stats["_sweep"] = {
        "chains": len(specs),
        "runs_per_chain": sweeps[specs[0].tag].n_runs,
        "seconds": t_sweep,
    }
    if verbose:
        total_runs = sweeps[specs[0].tag].n_runs
        print(f"[sweep] {len(specs)} chains x {total_runs} runs "
              f"in {t_sweep:.1f}s")
    for spec in specs:
        sweep = sweeps[spec.tag]
        t0 = time.perf_counter()
        datasets, report = extract_transfer_records(sweep)
        t_extract = time.perf_counter() - t0
        for channel, dataset in datasets.items():
            if channel in merged:
                merged[channel].extend(dataset.records)
            else:
                merged[channel] = dataset
        stats[spec.tag] = {
            "sweep_runs": sweep.n_runs,
            "extract_seconds": t_extract,
            "records": report.n_records,
            "bad_fits": report.n_bad_fits,
            "empty_stages": report.n_empty_stages,
            "unpaired": report.n_unpaired_outputs,
        }
        if verbose:
            print(
                f"[chain {spec.tag}] runs={sweep.n_runs} "
                f"records={report.n_records} ({t_extract:.1f}s extract)"
            )
    return merged, stats


def _datasets_path(scale: str) -> Path:
    return artifacts_dir() / f"datasets_{scale}.json"


def save_datasets(
    datasets: dict[tuple[str, int, str], TransferDataset], scale: str
) -> None:
    path = _datasets_path(scale)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "_".join(str(p) for p in key): ds.to_dict()
        for key, ds in datasets.items()
    }
    path.write_text(json.dumps(payload))


def load_datasets(scale: str) -> dict[tuple[str, int, str], TransferDataset]:
    path = _datasets_path(scale)
    if not path.exists():
        raise DatasetError(f"no cached datasets at {path}")
    payload = json.loads(path.read_text())
    result = {}
    for key_str, data in payload.items():
        cell, pin, fo = key_str.rsplit("_", 2)
        result[(cell, int(pin), fo)] = TransferDataset.from_dict(data)
    return result


def default_datasets(
    scale: str = "fast", force: bool = False, verbose: bool = False
) -> dict[tuple[str, int, str], TransferDataset]:
    """Cached characterization datasets for ``scale`` (built if missing)."""
    if not force and _datasets_path(scale).exists():
        return load_datasets(scale)
    datasets, _stats = characterize_all(scale=scale, verbose=verbose)
    save_datasets(datasets, scale)
    return datasets


def build_bundle(
    scale: str = "fast", seed: int = 0, verbose: bool = False
) -> tuple[GateModelBundle, dict]:
    """Characterize and train every channel from scratch."""
    preset = _preset(scale)
    datasets, stats = characterize_all(scale=scale, verbose=verbose)
    save_datasets(datasets, scale)
    missing = [c for c in CHANNELS if c not in datasets]
    if missing:
        raise DatasetError(f"characterization produced no data for {missing}")

    bundle = GateModelBundle(
        metadata={"scale": scale, "seed": seed, "built_at": time.time()}
    )
    for channel in CHANNELS:
        dataset = datasets[channel]
        t0 = time.perf_counter()
        model, report = train_gate_model(
            dataset, config=preset.training_config(seed), seed=seed
        )
        bundle.add(model)
        key = "_".join(str(part) for part in channel)
        stats[key] = {
            "records": len(dataset),
            "train_seconds": time.perf_counter() - t0,
            "delay_mae_rising_ps": report.delay_mae_rising_ps,
            "delay_mae_falling_ps": report.delay_mae_falling_ps,
            "slope_mae_rising": report.slope_mae_rising,
            "slope_mae_falling": report.slope_mae_falling,
        }
        if verbose:
            print(
                f"[train {key}] n={len(dataset)} delay_mae="
                f"{report.delay_mae_rising_ps:.2f}/"
                f"{report.delay_mae_falling_ps:.2f} ps"
            )
    bundle.metadata["build_stats"] = stats
    return bundle, stats


def default_bundle(
    scale: str = "standard", force: bool = False, verbose: bool = False
) -> GateModelBundle:
    """Load the cached bundle for ``scale``, building it if missing."""
    path = artifacts_dir() / f"bundle_{scale}.json"
    if path.exists() and not force:
        return GateModelBundle.load(path)
    bundle, stats = build_bundle(scale=scale, verbose=verbose)
    bundle.save(path)
    stats_path = artifacts_dir() / f"bundle_{scale}_stats.json"
    stats_path.write_text(json.dumps(stats, indent=2))
    return bundle
