"""Artifact cache: characterized datasets and trained model bundles.

The characterize+train pipeline is deterministic but takes minutes at
paper scale, so its outputs are cached as JSON under ``artifacts/`` at the
repository root (override with the ``REPRO_ARTIFACTS`` environment
variable).  Scales:

* ``tiny`` — smallest grid/chains; seconds per chain, used by tests.
* ``fast`` — coarse TA/TB/TC grid; a few minutes to build.
* ``standard`` — the default for benches.
* ``paper`` — the paper's 1 ps granularity (~15^3 combos per chain);
  included for completeness, expect a long build.

Bundles are keyed by scale **and** transfer-model backend: the default
``ann`` bundle keeps its legacy ``bundle_<scale>.json`` name, while the
``lut`` / ``spline`` / ``poly`` ablation bundles cache side by side as
``bundle_<scale>_<backend>.json``.  The digital delay library is cached
by its characterization step (all default-step scales share the
pre-existing ``delay_library.json``; the paper preset's finer step gets
its own file), and ``--force`` rebuilds it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.characterization.chains import DEFAULT_CHAIN_SPECS, ChainSpec
from repro.characterization.dataset import TransferDataset
from repro.characterization.extract import extract_transfer_records
from repro.characterization.sweep import SweepConfig, run_chain_sweeps
from repro.characterization.train_gate import train_gate_models
from repro.core.models import GateModelBundle
from repro.digital.delay import DelayLibrary
from repro.errors import DatasetError
from repro.nn.training import TrainingConfig

#: The delay-characterization integrator step shared by the CI scales.
DEFAULT_DELAY_DT = 0.1e-12


def artifacts_dir() -> Path:
    """Artifact directory: ``$REPRO_ARTIFACTS`` or ``<repo>/artifacts``."""
    env = os.environ.get("REPRO_ARTIFACTS")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "artifacts"


@dataclass(frozen=True)
class ScalePreset:
    """Grid/chain sizing of one characterization scale."""

    name: str
    sweep_step: float
    n_periods: int
    nn_epochs: int
    delay_dt: float = DEFAULT_DELAY_DT

    def sweep_config(self) -> SweepConfig:
        if self.name == "tiny":
            return SweepConfig(
                step=self.sweep_step,
                long_gaps=(60e-12,),
                include_falling_start=False,
            )
        return SweepConfig(step=self.sweep_step)

    def chain_specs(self) -> tuple[ChainSpec, ...]:
        return tuple(
            ChainSpec(
                pattern=spec.pattern,
                extra_fanout=spec.extra_fanout,
                n_periods=max(1, self.n_periods // len(spec.pattern)),
            )
            for spec in DEFAULT_CHAIN_SPECS
        )

    def training_config(self, seed: int = 0) -> TrainingConfig:
        # batch_size 32: the per-polarity channel datasets hold a few
        # hundred samples, so 32 gives the optimizer a usable number of
        # steps per epoch (and the vectorized zoo trainer more lock-step
        # batches to amortize).
        return TrainingConfig(epochs=self.nn_epochs, batch_size=32, seed=seed)


PRESETS = {
    "tiny": ScalePreset(name="tiny", sweep_step=7.5e-12, n_periods=3,
                        nn_epochs=120),
    "fast": ScalePreset(name="fast", sweep_step=5e-12, n_periods=5,
                        nn_epochs=250),
    "standard": ScalePreset(name="standard", sweep_step=3e-12, n_periods=6,
                            nn_epochs=400),
    "paper": ScalePreset(name="paper", sweep_step=1e-12, n_periods=6,
                         nn_epochs=400, delay_dt=0.05e-12),
}

#: Channels the pure-NOR prototype needs: single-pin NOR on either pin and
#: the tied (inverter-class) NOR, each in fanout-1 and fanout->=2 flavours.
CHANNELS: tuple[tuple[str, int, str], ...] = (
    ("NOR2", 0, "fo1"),
    ("NOR2", 0, "fo2"),
    ("NOR2", 1, "fo1"),
    ("NOR2", 1, "fo2"),
    ("NOR2T", 0, "fo1"),
    ("NOR2T", 0, "fo2"),
)


def _preset(scale: str) -> ScalePreset:
    try:
        return PRESETS[scale]
    except KeyError:
        raise DatasetError(
            f"unknown scale {scale!r}; options: {sorted(PRESETS)}"
        ) from None


def characterize_all(
    scale: str = "fast", verbose: bool = False
) -> tuple[dict[tuple[str, int, str], TransferDataset], dict]:
    """Sweep every chain of the preset and merge records per channel."""
    preset = _preset(scale)
    merged: dict[tuple[str, int, str], TransferDataset] = {}
    stats: dict[str, dict] = {}
    specs = preset.chain_specs()
    t0 = time.perf_counter()
    # All chains integrate side by side in one merged lock-step sweep.
    sweeps = run_chain_sweeps(specs, preset.sweep_config())
    t_sweep = time.perf_counter() - t0
    # One merged lock-step sweep covers every chain; its wall clock is
    # recorded once rather than misattributed per chain.
    stats["_sweep"] = {
        "chains": len(specs),
        "runs_per_chain": sweeps[specs[0].tag].n_runs,
        "seconds": t_sweep,
    }
    if verbose:
        total_runs = sweeps[specs[0].tag].n_runs
        print(f"[sweep] {len(specs)} chains x {total_runs} runs "
              f"in {t_sweep:.1f}s")
    for spec in specs:
        sweep = sweeps[spec.tag]
        t0 = time.perf_counter()
        datasets, report = extract_transfer_records(sweep)
        t_extract = time.perf_counter() - t0
        for channel, dataset in datasets.items():
            if channel in merged:
                merged[channel].extend(dataset.records)
            else:
                merged[channel] = dataset
        stats[spec.tag] = {
            "sweep_runs": sweep.n_runs,
            "extract_seconds": t_extract,
            "records": report.n_records,
            "bad_fits": report.n_bad_fits,
            "empty_stages": report.n_empty_stages,
            "unpaired": report.n_unpaired_outputs,
        }
        if verbose:
            print(
                f"[chain {spec.tag}] runs={sweep.n_runs} "
                f"records={report.n_records} ({t_extract:.1f}s extract)"
            )
    return merged, stats


def _datasets_path(scale: str) -> Path:
    return artifacts_dir() / f"datasets_{scale}.json"


def save_datasets(
    datasets: dict[tuple[str, int, str], TransferDataset], scale: str
) -> None:
    path = _datasets_path(scale)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "_".join(str(p) for p in key): ds.to_dict()
        for key, ds in datasets.items()
    }
    path.write_text(json.dumps(payload))


def load_datasets(scale: str) -> dict[tuple[str, int, str], TransferDataset]:
    path = _datasets_path(scale)
    if not path.exists():
        raise DatasetError(f"no cached datasets at {path}")
    payload = json.loads(path.read_text())
    result = {}
    for key_str, data in payload.items():
        cell, pin, fo = key_str.rsplit("_", 2)
        result[(cell, int(pin), fo)] = TransferDataset.from_dict(data)
    return result


def default_datasets(
    scale: str = "fast", force: bool = False, verbose: bool = False
) -> dict[tuple[str, int, str], TransferDataset]:
    """Cached characterization datasets for ``scale`` (built if missing)."""
    if not force and _datasets_path(scale).exists():
        return load_datasets(scale)
    datasets, _stats = characterize_all(scale=scale, verbose=verbose)
    save_datasets(datasets, scale)
    return datasets


def bundle_path(scale: str, backend: str = "ann") -> Path:
    """Cache path of one scale x backend bundle (ann keeps legacy names)."""
    if backend == "ann":
        return artifacts_dir() / f"bundle_{scale}.json"
    return artifacts_dir() / f"bundle_{scale}_{backend}.json"


def build_bundle(
    scale: str = "fast",
    backend: str = "ann",
    seed: int = 0,
    force: bool = False,
    verbose: bool = False,
) -> tuple[GateModelBundle, dict]:
    """Characterize (cached) and train every channel from scratch.

    With the default ``ann`` backend the entire model zoo — every
    channel x polarity x {slope, delay} network — trains in one
    vectorized ensemble sweep; table backends construct per channel from
    the same datasets.  ``force`` re-runs the characterization sweep
    even when cached datasets exist.
    """
    preset = _preset(scale)
    datasets = default_datasets(scale=scale, force=force, verbose=verbose)
    stats: dict = {}
    missing = [c for c in CHANNELS if c not in datasets]
    if missing:
        raise DatasetError(f"characterization produced no data for {missing}")

    bundle = GateModelBundle(
        metadata={
            "scale": scale,
            "backend": backend,
            "seed": seed,
            "built_at": time.time(),
        }
    )
    t0 = time.perf_counter()
    trained = train_gate_models(
        {channel: datasets[channel] for channel in CHANNELS},
        backend=backend,
        config=preset.training_config(seed),
        seed=seed,
    )
    stats["_train"] = {
        "backend": backend,
        "networks": 4 * len(CHANNELS) if backend == "ann" else None,
        "seconds": time.perf_counter() - t0,
    }
    for channel in CHANNELS:
        model, report = trained[channel]
        bundle.add(model)
        key = "_".join(str(part) for part in channel)
        stats[key] = {
            "records": len(datasets[channel]),
            "delay_mae_rising_ps": report.delay_mae_rising_ps,
            "delay_mae_falling_ps": report.delay_mae_falling_ps,
            "slope_mae_rising": report.slope_mae_rising,
            "slope_mae_falling": report.slope_mae_falling,
        }
        if verbose:
            print(
                f"[train {key}] n={len(datasets[channel])} delay_mae="
                f"{report.delay_mae_rising_ps:.2f}/"
                f"{report.delay_mae_falling_ps:.2f} ps"
            )
    if verbose:
        print(
            f"[train] backend={backend} zoo trained in "
            f"{stats['_train']['seconds']:.1f}s"
        )
    bundle.metadata["build_stats"] = stats
    return bundle, stats


def default_bundle(
    scale: str = "standard",
    backend: str = "ann",
    force: bool = False,
    verbose: bool = False,
) -> GateModelBundle:
    """Load the cached bundle for ``scale``/``backend``, building if missing."""
    path = bundle_path(scale, backend)
    if path.exists() and not force:
        return GateModelBundle.load(path)
    bundle, stats = build_bundle(
        scale=scale, backend=backend, force=force, verbose=verbose
    )
    bundle.save(path)
    stats_path = path.with_name(path.stem + "_stats.json")
    stats_path.write_text(json.dumps(stats, indent=2))
    return bundle


def delay_library_path(scale: str) -> Path:
    """Cache path of the delay library a scale resolves to.

    The library's content depends only on the characterization step, so
    the cache is keyed by ``delay_dt`` rather than by scale name — all
    default-step scales share one file (the pre-existing
    ``delay_library.json``), and the paper preset's finer step gets its
    own.  Switching ``--scale`` therefore never reuses a library built
    at a different step, and never rebuilds an identical one.
    """
    dt = _preset(scale).delay_dt
    if dt == DEFAULT_DELAY_DT:
        return artifacts_dir() / "delay_library.json"
    return artifacts_dir() / f"delay_library_dt{dt * 1e15:g}fs.json"


def default_delay_library(
    scale: str = "fast", force: bool = False
) -> DelayLibrary:
    """Cached digital delay library for ``scale`` (built if missing).

    See :func:`delay_library_path` for the cache key; ``force`` rebuilds
    and rewrites the cache.
    """
    from repro.digital.characterize import characterize_delay_library

    preset = _preset(scale)
    path = delay_library_path(scale)
    if not force and path.exists():
        return DelayLibrary.from_dict(json.loads(path.read_text()))
    library = characterize_delay_library(dt=preset.delay_dt)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(library.to_dict()))
    return library
