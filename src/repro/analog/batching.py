"""Shared run-batching machinery for lock-step analog workloads.

PR 1 taught the characterization sweeps to merge every chain and every
stimulus run into one lock-step netlist, to *shard* those runs into
bounded groups (peak staged-engine memory is proportional to
``batch_rows x fine-grid points``), and to dispatch shards across a
process pool.  The Table-I evaluation pipeline needs exactly the same
three moves — merge many single-run stimuli into one batched
:class:`~repro.analog.stimuli.SteppedSource` per input, bound the batch,
fan shards out over workers — so the machinery lives here and both
:mod:`repro.characterization.sweep` and :mod:`repro.eval.runner` build
on it instead of growing private copies.

The helpers are deliberately engine-agnostic: they know about
:class:`SteppedSource` batching and about "a list of picklable jobs",
nothing else.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

import numpy as np

from repro.analog.stimuli import SteppedSource
from repro.errors import SimulationError

JobT = TypeVar("JobT")
ResultT = TypeVar("ResultT")


def shard_slices(n_items: int, max_per_shard: int) -> list[slice]:
    """Split ``range(n_items)`` into contiguous slices of bounded length.

    The characterization sweeps use this to bound staged-engine table
    memory; the eval runner uses it to bound run batches.  Returns an
    empty list for ``n_items == 0``.
    """
    if max_per_shard < 1:
        raise SimulationError("max_per_shard must be >= 1")
    if n_items < 0:
        raise SimulationError("n_items must be non-negative")
    return [
        slice(lo, min(lo + max_per_shard, n_items))
        for lo in range(0, n_items, max_per_shard)
    ]


def merge_run_sources(
    per_run_sources: Sequence[dict[str, SteppedSource]],
) -> dict[str, SteppedSource]:
    """Merge per-run stimulus dicts into one batched source per input.

    Every dict describes one run (each of its sources may itself hold
    several runs); the merged dict drives all runs side by side so one
    staged-engine call integrates them in lock-step.  All runs of one
    input must agree on ``v_high`` and ``edge_time`` — merging must not
    silently change the stimulus physics.
    """
    if not per_run_sources:
        raise SimulationError("need at least one run to merge")
    keys = set(per_run_sources[0])
    for sources in per_run_sources[1:]:
        if set(sources) != keys:
            raise SimulationError(
                "all runs must drive the same inputs; got "
                f"{sorted(keys)} vs {sorted(sources)}"
            )
    merged: dict[str, SteppedSource] = {}
    for key in keys:
        runs: list[np.ndarray] = []
        levels: list[int] = []
        v_high = per_run_sources[0][key].v_high
        edge_time = per_run_sources[0][key].edge_time
        for sources in per_run_sources:
            source = sources[key]
            if source.v_high != v_high or source.edge_time != edge_time:
                raise SimulationError(
                    f"runs disagree on stimulus physics for input {key!r}"
                )
            runs.extend(source.run_transitions)
            levels.extend(int(level) for level in source.initial_levels)
        merged[key] = SteppedSource(
            runs, initial_levels=levels, v_high=v_high, edge_time=edge_time
        )
    return merged


def dispatch_jobs(
    fn: Callable[[JobT], ResultT],
    jobs: Sequence[JobT],
    n_workers: int = 1,
) -> list[ResultT]:
    """Run independent jobs, optionally across a process pool.

    With ``n_workers <= 1`` (or a single job) the jobs run in-process in
    order — no pickling, no spawn overhead, the right choice at CI
    scale.  Otherwise ``fn`` and every job must be picklable and results
    come back in job order, exactly as the in-process path returns them.
    """
    if n_workers < 1:
        raise SimulationError("n_workers must be >= 1")
    jobs = list(jobs)
    if n_workers == 1 or len(jobs) <= 1:
        return [fn(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, jobs))
