"""Topologically staged transient engine — the repo's analog reference.

The monolithic engine in ``engine.py`` solves the fully coupled transistor
network — exact, but quadratic bookkeeping makes it impractical beyond a
few dozen nodes.  For *combinational* netlists the gates can instead be
integrated level by level: when a level is processed every input waveform
is already known, so each gate reduces to a one-state ODE (inverter output
node) or two-state ODE (NOR2 output plus PMOS stack node) driven by known
inputs.  All gates of a level integrate in lock-step, vectorized both
across gates and across stimulus runs, which makes this engine fast enough
to serve as the "SPICE" reference for characterization sweeps *and* for
c1355-scale Table-I circuits.

Physics shared with the monolithic engine (same :class:`CellLibrary`):

* identical EKV device currents,
* identical node capacitances (self drain caps + interconnect + fanout
  gate capacitance),
* Miller coupling from each input injected as ``c_gd * dv_in/dt``,
  reproducing over/undershoot.

Approximation versus the full network: the Miller current's back-action
onto the driving stage is lumped into the driver's grounded load (with a
receiver-type-specific correction factor calibrated against the full
engine; see :class:`CellLibrary`).  Tests bound the residual crossing-time
discrepancy on INV and NOR chains.  Using the *same* staged engine for
both training-data generation and evaluation keeps the pipeline unbiased,
exactly as the paper uses one SPICE setup for both.

Long idle spans (the paper's (500 ps, 250 ps) stimuli) are skipped in
chunks: a chunk integrates only if its inputs move or the state is off the
DC point, otherwise the state is held.
"""

from __future__ import annotations

import numpy as np

from repro.analog.cells import CellLibrary, DEFAULT_LIBRARY
from repro.analog.mosfet import mosfet_current
from repro.analog.netlist import DEFAULT_NODE_CAP
from repro.analog.stimuli import SteppedSource
from repro.analog.waveform import Waveform
from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.constants import VDD
from repro.errors import SimulationError

#: Default integration step of the staged engine (seconds).
DEFAULT_DT = 0.1e-12

#: Number of grid steps per skip-test chunk.
CHUNK_STEPS = 400

#: A chunk is considered active if any input deviates from flat by this
#: many volts, or the state would drift more than this over the chunk.
EPS_V = 1e-4


class StagedResult:
    """Waveform store of one staged run batch."""

    def __init__(self, t: np.ndarray, samples: dict[str, np.ndarray], n_runs: int):
        self.t = t
        self._samples = samples
        self.n_runs = n_runs

    @property
    def recorded_nets(self) -> list[str]:
        return list(self._samples)

    def samples(self, net: str) -> np.ndarray:
        """Raw recorded samples: shape ``(n_runs, n_times)``."""
        try:
            return self._samples[net]
        except KeyError:
            raise KeyError(
                f"net {net!r} was not recorded; recorded: {self.recorded_nets}"
            ) from None

    def waveform(self, net: str, run: int = 0) -> Waveform:
        if not 0 <= run < self.n_runs:
            raise IndexError(f"run {run} out of range (n_runs={self.n_runs})")
        return Waveform(self.t, self.samples(net)[run].astype(float))


class StagedSimulator:
    """Level-by-level analog reference simulator for INV/NOR2 netlists."""

    def __init__(
        self,
        netlist: Netlist,
        library: CellLibrary = DEFAULT_LIBRARY,
        vdd: float = VDD,
        dt: float = DEFAULT_DT,
    ) -> None:
        netlist.validate()
        for gate in netlist.gates.values():
            if gate.gtype is GateType.INV:
                continue
            if gate.gtype is GateType.NOR and len(gate.inputs) == 2:
                continue
            raise SimulationError(
                f"staged engine supports INV and NOR2 only; gate {gate.name} "
                f"is {gate.gtype.value}/{len(gate.inputs)}"
            )
        self.netlist = netlist
        self.library = library
        self.vdd = vdd
        self.dt = dt
        self.levels = netlist.levels()
        self._load_caps = self._compute_load_caps()

    # ------------------------------------------------------------------
    def _compute_load_caps(self) -> dict[str, float]:
        """Total grounded capacitance at each gate output node."""
        lib = self.library
        fanout = self.netlist.fanout()
        caps: dict[str, float] = {}
        for name, gate in self.netlist.gates.items():
            cell = "INV" if gate.gtype is GateType.INV else "NOR2"
            consumers = fanout.get(name, [])
            c = lib.output_self_capacitance(cell)
            c += lib.wire_cap * max(len(consumers), 1)
            for consumer_name, pin in consumers:
                ctype = self.netlist.gates[consumer_name].gtype
                rcell = "INV" if ctype is GateType.INV else "NOR2"
                c += lib.input_capacitance(rcell, pin)
                factor = (
                    lib.staged_miller_factor if rcell == "INV" else 0.0
                )
                c += factor * lib.input_miller_capacitance(rcell, pin)
            caps[name] = c + DEFAULT_NODE_CAP
        return caps

    # ------------------------------------------------------------------
    def simulate(
        self,
        pi_sources: dict[str, SteppedSource],
        t_stop: float,
        record_nets: list[str] | None = None,
    ) -> StagedResult:
        """Run the staged transient analysis for a batch of stimulus runs.

        Parameters
        ----------
        pi_sources:
            One :class:`SteppedSource` per primary input; all sources must
            agree on the run count (1 for a single trace, hundreds for a
            characterization sweep).
        record_nets:
            Nets whose waveforms to keep; default: primary outputs plus
            primary inputs.  Intermediate nets are freed as soon as all
            their consumers are processed.
        """
        missing = [pi for pi in self.netlist.primary_inputs if pi not in pi_sources]
        if missing:
            raise SimulationError(f"missing sources for primary inputs: {missing}")
        run_counts = {src.n_runs for src in pi_sources.values()}
        if len(run_counts) != 1:
            raise SimulationError(f"sources disagree on run count: {run_counts}")
        n_runs = run_counts.pop()

        if record_nets is None:
            record_nets = list(self.netlist.primary_outputs) + list(
                self.netlist.primary_inputs
            )
        record_set = set(record_nets)
        unknown = record_set - set(self.netlist.nets)
        if unknown:
            raise SimulationError(f"cannot record unknown nets: {sorted(unknown)}")

        n_steps = int(np.ceil(t_stop / self.dt))
        t_grid = np.arange(n_steps + 1) * self.dt

        # Gates whose dynamics influence a recorded net.  Everything else
        # (termination stages, dummy fanout loads) only matters as static
        # capacitance — already captured in the load maps — and is skipped.
        needed = self._needed_gates(record_set)

        pending: dict[str, int] = {}
        for name in needed:
            for net in self.netlist.gates[name].inputs:
                pending[net] = pending.get(net, 0) + 1

        net_v: dict[str, np.ndarray] = {}
        for name in self.netlist.primary_inputs:
            # (n_runs, n_grid) per net
            net_v[name] = pi_sources[name].value(t_grid).T.astype(np.float32)

        for level in self.levels:
            level = [g for g in level if g in needed]
            inv_gates = [
                g for g in level if self.netlist.gates[g].gtype is GateType.INV
            ]
            nor_gates = [
                g for g in level if self.netlist.gates[g].gtype is GateType.NOR
            ]
            if inv_gates:
                self._integrate_inv_batch(inv_gates, net_v, t_grid, n_runs)
            if nor_gates:
                self._integrate_nor_batch(nor_gates, net_v, t_grid, n_runs)
            for name in level:
                for net in self.netlist.gates[name].inputs:
                    pending[net] -= 1
                    if pending[net] == 0 and net not in record_set:
                        net_v.pop(net, None)

        samples = {net: net_v[net] for net in record_nets}
        return StagedResult(t_grid, samples, n_runs)

    def _needed_gates(self, record_set: set[str]) -> set[str]:
        """Gates that transitively drive a recorded net."""
        needed: set[str] = set()
        stack = [net for net in record_set if net in self.netlist.gates]
        while stack:
            name = stack.pop()
            if name in needed:
                continue
            needed.add(name)
            for net in self.netlist.gates[name].inputs:
                if net in self.netlist.gates and net not in needed:
                    stack.append(net)
        return needed

    # ------------------------------------------------------------------
    # per-type batched integration (batch axis: gate-major × runs)
    # ------------------------------------------------------------------
    def _integrate_inv_batch(
        self,
        names: list[str],
        net_v: dict[str, np.ndarray],
        t_grid: np.ndarray,
        n_runs: int,
    ) -> None:
        lib = self.library
        vin = np.concatenate(
            [net_v[self.netlist.gates[g].inputs[0]] for g in names], axis=0
        ).astype(float)
        c_out = np.repeat([self._load_caps[g] for g in names], n_runs)
        c_miller = lib.nmos.c_gd * lib.inv_wn + lib.pmos.c_gd * lib.inv_wp

        dvin = np.gradient(vin, self.dt, axis=1)

        def rhs(v_in_t, dv_in_t, y):
            i_p = mosfet_current(
                lib.pmos, v_in_t, y, self.vdd, width=lib.inv_wp, vdd=self.vdd
            )
            i_n = mosfet_current(
                lib.nmos, v_in_t, y, 0.0, width=lib.inv_wn, vdd=self.vdd
            )
            return (i_p + i_n + c_miller * dv_in_t) / c_out

        y0 = np.where(vin[:, 0] > self.vdd / 2, 0.0, self.vdd)
        out = self._march(rhs, y0, (vin,), (dvin,), t_grid)
        for row, g in enumerate(names):
            net_v[g] = out[row * n_runs : (row + 1) * n_runs].astype(np.float32)

    def _integrate_nor_batch(
        self,
        names: list[str],
        net_v: dict[str, np.ndarray],
        t_grid: np.ndarray,
        n_runs: int,
    ) -> None:
        lib = self.library
        gates = [self.netlist.gates[g] for g in names]
        va = np.concatenate([net_v[g.inputs[0]] for g in gates], axis=0).astype(float)
        vb = np.concatenate([net_v[g.inputs[1]] for g in gates], axis=0).astype(float)
        c_out = np.repeat([self._load_caps[g] for g in names], n_runs)
        c_mid = (
            (lib.pmos.c_gd + lib.pmos.c_db) * lib.nor_wp
            + lib.pmos.c_gs * lib.nor_wp
            + DEFAULT_NODE_CAP
        )
        c_mil_a_out = lib.nmos.c_gd * lib.nor_wn
        c_mil_b_out = lib.pmos.c_gd * lib.nor_wp + lib.nmos.c_gd * lib.nor_wn
        c_mil_a_mid = lib.pmos.c_gd * lib.nor_wp
        c_mil_b_mid = lib.pmos.c_gs * lib.nor_wp

        dva = np.gradient(va, self.dt, axis=1)
        dvb = np.gradient(vb, self.dt, axis=1)
        n = va.shape[0]

        def rhs(v_in_t, dv_in_t, y):
            va_t, vb_t = v_in_t
            dva_t, dvb_t = dv_in_t
            mid = y[:n]
            out = y[n:]
            i_ptop = mosfet_current(
                lib.pmos, va_t, mid, self.vdd, width=lib.nor_wp, vdd=self.vdd
            )
            i_pbot = mosfet_current(
                lib.pmos, vb_t, out, mid, width=lib.nor_wp, vdd=self.vdd
            )
            i_na = mosfet_current(
                lib.nmos, va_t, out, 0.0, width=lib.nor_wn, vdd=self.vdd
            )
            i_nb = mosfet_current(
                lib.nmos, vb_t, out, 0.0, width=lib.nor_wn, vdd=self.vdd
            )
            d_mid = (
                i_ptop - i_pbot + c_mil_a_mid * dva_t + c_mil_b_mid * dvb_t
            ) / c_mid
            d_out = (
                i_pbot + i_na + i_nb + c_mil_a_out * dva_t + c_mil_b_out * dvb_t
            ) / c_out
            return np.concatenate([d_mid, d_out])

        a0 = va[:, 0] > self.vdd / 2
        b0 = vb[:, 0] > self.vdd / 2
        out0 = np.where(~(a0 | b0), self.vdd, 0.0)
        # Stack node: at VDD while P_top conducts, otherwise near the output.
        mid0 = np.where(~a0, self.vdd, out0)
        y0 = np.concatenate([mid0, out0])
        y = self._march_multi(rhs, y0, (va, vb), (dva, dvb), t_grid, n_out=n)
        for row, g in enumerate(names):
            net_v[g] = y[row * n_runs : (row + 1) * n_runs].astype(np.float32)

    # ------------------------------------------------------------------
    # time marching with quiescent-chunk skipping
    # ------------------------------------------------------------------
    def _march(self, rhs, y0, v_ins, dv_ins, t_grid) -> np.ndarray:
        """March a single-state-per-gate batch; returns (n_batch, n_grid)."""
        (vin,) = v_ins
        (dvin,) = dv_ins
        n_grid = t_grid.size
        out = np.empty((y0.size, n_grid))
        out[:, 0] = y0
        y = y0.astype(float).copy()
        dt = self.dt
        k = 0
        while k < n_grid - 1:
            end = min(k + CHUNK_STEPS, n_grid - 1)
            seg = vin[:, k : end + 1]
            if np.ptp(seg, axis=1).max() < EPS_V:
                drift = np.abs(rhs(vin[:, k], dvin[:, k], y)).max() * (end - k) * dt
                if drift < EPS_V:
                    out[:, k + 1 : end + 1] = y[:, None]
                    k = end
                    continue
            for step in range(k, end):
                v0 = vin[:, step]
                v1 = vin[:, step + 1]
                vh = 0.5 * (v0 + v1)
                d0 = dvin[:, step]
                d1 = dvin[:, step + 1]
                dh = 0.5 * (d0 + d1)
                k1 = rhs(v0, d0, y)
                k2 = rhs(vh, dh, y + dt / 2 * k1)
                k3 = rhs(vh, dh, y + dt / 2 * k2)
                k4 = rhs(v1, d1, y + dt * k3)
                y = y + dt / 6 * (k1 + 2 * k2 + 2 * k3 + k4)
                out[:, step + 1] = y
            k = end
        if not np.all(np.isfinite(y)):
            raise SimulationError("staged integration diverged")
        return out

    def _march_multi(self, rhs, y0, v_ins, dv_ins, t_grid, n_out: int) -> np.ndarray:
        """March a two-state-per-gate batch; returns output-node rows only."""
        va, vb = v_ins
        dva, dvb = dv_ins
        n_grid = t_grid.size
        out = np.empty((n_out, n_grid))
        out[:, 0] = y0[n_out:]
        y = y0.astype(float).copy()
        dt = self.dt
        k = 0
        while k < n_grid - 1:
            end = min(k + CHUNK_STEPS, n_grid - 1)
            flat_a = np.ptp(va[:, k : end + 1], axis=1).max() < EPS_V
            flat_b = np.ptp(vb[:, k : end + 1], axis=1).max() < EPS_V
            if flat_a and flat_b:
                drift = np.abs(
                    rhs((va[:, k], vb[:, k]), (dva[:, k], dvb[:, k]), y)
                ).max() * (end - k) * dt
                if drift < EPS_V:
                    out[:, k + 1 : end + 1] = y[n_out:, None]
                    k = end
                    continue
            for step in range(k, end):
                ins0 = (va[:, step], vb[:, step])
                ins1 = (va[:, step + 1], vb[:, step + 1])
                insh = (0.5 * (ins0[0] + ins1[0]), 0.5 * (ins0[1] + ins1[1]))
                d0 = (dva[:, step], dvb[:, step])
                d1 = (dva[:, step + 1], dvb[:, step + 1])
                dh = (0.5 * (d0[0] + d1[0]), 0.5 * (d0[1] + d1[1]))
                k1 = rhs(ins0, d0, y)
                k2 = rhs(insh, dh, y + dt / 2 * k1)
                k3 = rhs(insh, dh, y + dt / 2 * k2)
                k4 = rhs(ins1, d1, y + dt * k3)
                y = y + dt / 6 * (k1 + 2 * k2 + 2 * k3 + k4)
                out[:, step + 1] = y[n_out:]
            k = end
        if not np.all(np.isfinite(y)):
            raise SimulationError("staged integration diverged")
        return out
