"""Topologically staged transient engine — the repo's analog reference.

The monolithic engine in ``engine.py`` solves the fully coupled transistor
network — exact, but quadratic bookkeeping makes it impractical beyond a
few dozen nodes.  For *combinational* netlists the gates can instead be
integrated level by level: when a level is processed every input waveform
is already known, so each gate reduces to a one-state ODE (inverter output
node) or two-state ODE (NOR2 output plus PMOS stack node) driven by known
inputs.  All gates of a level integrate in lock-step, vectorized both
across gates and across stimulus runs, which makes this engine fast enough
to serve as the "SPICE" reference for characterization sweeps *and* for
c1355-scale Table-I circuits.

Physics shared with the monolithic engine (same :class:`CellLibrary`):

* identical EKV device currents,
* identical node capacitances (self drain caps + interconnect + fanout
  gate capacitance),
* Miller coupling from each input injected as ``c_gd * dv_in/dt``,
  reproducing over/undershoot.

Approximation versus the full network: the Miller current's back-action
onto the driving stage is lumped into the driver's grounded load (with a
receiver-type-specific correction factor calibrated against the full
engine; see :class:`CellLibrary`).  Tests bound the residual crossing-time
discrepancy on INV and NOR chains.  Using the *same* staged engine for
both training-data generation and evaluation keeps the pipeline unbiased,
exactly as the paper uses one SPICE setup for both.

Hot-path layout (``hotpath=True``, the default): because every input
waveform of a level is known up front, all input-dependent EKV terms —
the pinch-off arguments, the rail-referenced forward interpolation
``F((v_p - v_rail)/phi_t)`` of each device, and the Miller injections —
are tabulated once per batch on the RK4 *fine* grid (grid points plus the
midpoints RK4 stages 2/3 sample).  The per-step RHS then evaluates only
the state-dependent halves of the device equations — one batched softplus
block over preallocated workspace buffers instead of four full
compact-model evaluations.  The
seed-equivalent closure-based path is kept as ``hotpath=False``; tests
assert both paths agree and the hot-path microbenchmark measures the
speedup between them.

Both gate types march through one shared kernel with *quiescence chunk
skipping*: a chunk of the grid integrates only if some input moves inside
it or the state would drift off its rest point, otherwise the state is
held.  This generalizes the seed behaviour (separate one- and two-state
loops) to any state/input count, with the chunk size exposed as a knob —
long idle spans such as the paper's (500 ps, 250 ps) stimuli cost one RHS
evaluation per chunk.
"""

from __future__ import annotations

import numpy as np

from repro.analog.cells import CellLibrary, DEFAULT_LIBRARY
from repro.analog.mosfet import mosfet_current, softplus_exact
from repro.analog.netlist import DEFAULT_NODE_CAP
from repro.analog.stimuli import SteppedSource
from repro.analog.waveform import Waveform
from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.constants import PHI_T, VDD
from repro.errors import SimulationError

#: Default integration step of the staged engine (seconds).
DEFAULT_DT = 0.1e-12

#: Default number of grid steps per skip-test chunk.
CHUNK_STEPS = 400

#: A chunk is considered active if any input deviates from flat by this
#: many volts, or the state would drift more than this over the chunk.
EPS_V = 1e-4


def _squared_softplus(x: np.ndarray) -> np.ndarray:
    """EKV interpolation ``ln(1 + exp(x))^2`` for half-scaled arguments,
    built on the compact model's one softplus kernel."""
    out = softplus_exact(x)
    out *= out
    return out


def _softplus_block(u: np.ndarray, sp: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """Batched softplus ``sp = ln(1 + exp(u))`` into preallocated buffers.

    Allocation-free unrolling of :func:`repro.analog.mosfet.softplus_exact`
    (same decomposition, same results) for the per-step RHS."""
    np.abs(u, out=tmp)
    np.negative(tmp, out=tmp)
    np.exp(tmp, out=tmp)
    np.log1p(tmp, out=tmp)
    np.maximum(u, 0.0, out=sp)
    sp += tmp
    return sp


def _interleave(arr: np.ndarray) -> np.ndarray:
    """Fine-grid series along the last axis: values plus step midpoints.

    Shape ``(..., n)`` becomes ``(..., 2n - 1)`` with even entries the
    original samples and odd entries the linear midpoints — exactly the
    ``(v0 + v1) / 2`` the RK4 inner stages use.
    """
    n = arr.shape[-1]
    out = np.empty(arr.shape[:-1] + (2 * n - 1,))
    out[..., 0::2] = arr
    out[..., 1::2] = 0.5 * (arr[..., :-1] + arr[..., 1:])
    return out


class StagedResult:
    """Waveform store of one staged run batch."""

    def __init__(self, t: np.ndarray, samples: dict[str, np.ndarray], n_runs: int):
        self.t = t
        self._samples = samples
        self.n_runs = n_runs

    @property
    def recorded_nets(self) -> list[str]:
        return list(self._samples)

    def samples(self, net: str) -> np.ndarray:
        """Raw recorded samples: shape ``(n_runs, n_times)``."""
        try:
            return self._samples[net]
        except KeyError:
            raise KeyError(
                f"net {net!r} was not recorded; recorded: {self.recorded_nets}"
            ) from None

    def waveform(self, net: str, run: int = 0) -> Waveform:
        if not 0 <= run < self.n_runs:
            raise IndexError(f"run {run} out of range (n_runs={self.n_runs})")
        return Waveform(self.t, self.samples(net)[run].astype(float))


class StagedSimulator:
    """Level-by-level analog reference simulator for INV/NOR2 netlists.

    Parameters
    ----------
    hotpath:
        Use the table-driven fused RHS (default).  ``False`` selects the
        seed-equivalent closure path — slower, kept for equivalence tests
        and as the perf-regression baseline.
    chunk_steps:
        Grid steps per quiescence skip-test chunk.
    """

    def __init__(
        self,
        netlist: Netlist,
        library: CellLibrary = DEFAULT_LIBRARY,
        vdd: float = VDD,
        dt: float = DEFAULT_DT,
        hotpath: bool = True,
        chunk_steps: int = CHUNK_STEPS,
    ) -> None:
        netlist.validate()
        for gate in netlist.gates.values():
            if gate.gtype is GateType.INV:
                continue
            if gate.gtype is GateType.NOR and len(gate.inputs) == 2:
                continue
            raise SimulationError(
                f"staged engine supports INV and NOR2 only; gate {gate.name} "
                f"is {gate.gtype.value}/{len(gate.inputs)}"
            )
        if chunk_steps < 1:
            raise SimulationError("chunk_steps must be >= 1")
        self.netlist = netlist
        self.library = library
        self.vdd = vdd
        self.dt = dt
        self.hotpath = hotpath
        self.chunk_steps = chunk_steps
        self.levels = netlist.levels()
        self._load_caps = self._compute_load_caps()

    # ------------------------------------------------------------------
    def _compute_load_caps(self) -> dict[str, float]:
        """Total grounded capacitance at each gate output node."""
        lib = self.library
        fanout = self.netlist.fanout()
        caps: dict[str, float] = {}
        for name, gate in self.netlist.gates.items():
            cell = "INV" if gate.gtype is GateType.INV else "NOR2"
            consumers = fanout.get(name, [])
            c = lib.output_self_capacitance(cell)
            c += lib.wire_cap * max(len(consumers), 1)
            for consumer_name, pin in consumers:
                ctype = self.netlist.gates[consumer_name].gtype
                rcell = "INV" if ctype is GateType.INV else "NOR2"
                c += lib.input_capacitance(rcell, pin)
                factor = (
                    lib.staged_miller_factor if rcell == "INV" else 0.0
                )
                c += factor * lib.input_miller_capacitance(rcell, pin)
            caps[name] = c + DEFAULT_NODE_CAP
        return caps

    # ------------------------------------------------------------------
    def simulate(
        self,
        pi_sources: dict[str, SteppedSource],
        t_stop: float,
        record_nets: list[str] | None = None,
    ) -> StagedResult:
        """Run the staged transient analysis for a batch of stimulus runs.

        Parameters
        ----------
        pi_sources:
            One :class:`SteppedSource` per primary input; all sources must
            agree on the run count (1 for a single trace, hundreds for a
            characterization sweep).
        record_nets:
            Nets whose waveforms to keep; default: primary outputs plus
            primary inputs.  Intermediate nets are freed as soon as all
            their consumers are processed.
        """
        missing = [pi for pi in self.netlist.primary_inputs if pi not in pi_sources]
        if missing:
            raise SimulationError(f"missing sources for primary inputs: {missing}")
        run_counts = {src.n_runs for src in pi_sources.values()}
        if len(run_counts) != 1:
            raise SimulationError(f"sources disagree on run count: {run_counts}")
        n_runs = run_counts.pop()

        if record_nets is None:
            record_nets = list(self.netlist.primary_outputs) + list(
                self.netlist.primary_inputs
            )
        record_set = set(record_nets)
        unknown = record_set - set(self.netlist.nets)
        if unknown:
            raise SimulationError(f"cannot record unknown nets: {sorted(unknown)}")

        n_steps = int(np.ceil(t_stop / self.dt))
        t_grid = np.arange(n_steps + 1) * self.dt

        # Gates whose dynamics influence a recorded net.  Everything else
        # (termination stages, dummy fanout loads) only matters as static
        # capacitance — already captured in the load maps — and is skipped.
        needed = self._needed_gates(record_set)

        pending: dict[str, int] = {}
        for name in needed:
            for net in self.netlist.gates[name].inputs:
                pending[net] = pending.get(net, 0) + 1

        net_v: dict[str, np.ndarray] = {}
        for name in self.netlist.primary_inputs:
            # (n_runs, n_grid) per net
            net_v[name] = pi_sources[name].value(t_grid).T.astype(np.float32)

        for level in self.levels:
            level = [g for g in level if g in needed]
            inv_gates = [
                g for g in level if self.netlist.gates[g].gtype is GateType.INV
            ]
            nor_gates = [
                g for g in level if self.netlist.gates[g].gtype is GateType.NOR
            ]
            if inv_gates:
                self._integrate_inv_batch(inv_gates, net_v, t_grid, n_runs)
            if nor_gates:
                self._integrate_nor_batch(nor_gates, net_v, t_grid, n_runs)
            for name in level:
                for net in self.netlist.gates[name].inputs:
                    pending[net] -= 1
                    if pending[net] == 0 and net not in record_set:
                        net_v.pop(net, None)

        samples = {net: net_v[net] for net in record_nets}
        return StagedResult(t_grid, samples, n_runs)

    def _needed_gates(self, record_set: set[str]) -> set[str]:
        """Gates that transitively drive a recorded net."""
        needed: set[str] = set()
        stack = [net for net in record_set if net in self.netlist.gates]
        while stack:
            name = stack.pop()
            if name in needed:
                continue
            needed.add(name)
            for net in self.netlist.gates[name].inputs:
                if net in self.netlist.gates and net not in needed:
                    stack.append(net)
        return needed

    # ------------------------------------------------------------------
    # per-type batched integration (batch axis: gate-major × runs)
    # ------------------------------------------------------------------
    def _integrate_inv_batch(
        self,
        names: list[str],
        net_v: dict[str, np.ndarray],
        t_grid: np.ndarray,
        n_runs: int,
    ) -> None:
        lib = self.library
        vin = np.concatenate(
            [net_v[self.netlist.gates[g].inputs[0]] for g in names], axis=0
        ).astype(float)
        c_out = np.repeat([self._load_caps[g] for g in names], n_runs)
        c_miller = lib.nmos.c_gd * lib.inv_wn + lib.pmos.c_gd * lib.inv_wp

        dvin = np.gradient(vin, self.dt, axis=1)
        # Fine-grid tables in time-major (n_fine, n_batch) layout so the
        # per-stage row lookups are contiguous.
        vin_f = np.ascontiguousarray(_interleave(vin).T)
        dvin_f = np.ascontiguousarray(_interleave(dvin).T)

        y0 = np.where(vin[:, 0] > self.vdd / 2, 0.0, self.vdd)[None, :]
        if self.hotpath:
            rhs = self._inv_rhs_tabulated(vin_f, dvin_f, c_out, c_miller)
        else:
            rhs = self._inv_rhs_naive(vin_f, dvin_f, c_out, c_miller)
        out = self._march(rhs, y0, vin[None, :, :], out_row=0)
        for row, g in enumerate(names):
            net_v[g] = out[row * n_runs : (row + 1) * n_runs].astype(np.float32)

    def _inv_rhs_naive(self, vin_f, dvin_f, c_out, c_miller):
        """Seed-equivalent inverter RHS: full compact-model calls."""
        lib = self.library
        vdd = self.vdd

        def rhs(i: int, y: np.ndarray) -> np.ndarray:
            v_in_t = vin_f[i]
            i_p = mosfet_current(
                lib.pmos, v_in_t, y[0], vdd, width=lib.inv_wp, vdd=vdd
            )
            i_n = mosfet_current(
                lib.nmos, v_in_t, y[0], 0.0, width=lib.inv_wn, vdd=vdd
            )
            return ((i_p + i_n + c_miller * dvin_f[i]) / c_out)[None, :]

        return rhs

    def _inv_rhs_tabulated(self, vin_f, dvin_f, c_out, c_miller):
        """Fused inverter RHS over precomputed input tables.

        Per call: two state-dependent EKV halves (reverse interpolation +
        channel-length modulation) per device; the input-dependent halves
        live in the tables.  All temporaries use preallocated workspace
        buffers — the RHS runs ~100k times per characterization shard, so
        per-call allocations and slow ufuncs dominate everything else.
        """
        lib = self.library
        nm, pm = lib.nmos, lib.pmos
        vdd = self.vdd
        inv2phi = 1.0 / (2.0 * PHI_T)
        # Pinch-off arguments pre-scaled for the half-argument softplus form.
        a_n = (vin_f - nm.v_th) * (inv2phi / nm.n_slope)
        fwd_n = _squared_softplus(a_n)
        a_p = ((vdd - vin_f) - pm.v_th) * (inv2phi / pm.n_slope)
        fwd_p = _squared_softplus(a_p)
        inv_cout = 1.0 / c_out
        mil = dvin_f * (c_miller * inv_cout)[None, :]
        coef_n = -nm.i_spec * lib.inv_wn * inv_cout
        coef_p = pm.i_spec * lib.inv_wp * inv_cout
        lamphi_n = nm.lam * PHI_T
        lamphi_p = pm.lam * PHI_T

        n = vin_f.shape[1]
        u = np.empty((4, n))
        sp = np.empty((4, n))
        tmp = np.empty((4, n))
        b = np.empty((2, n))
        dy_pool = [np.empty((1, n)) for _ in range(4)]
        state = {"k": 0}

        def rhs(i: int, y: np.ndarray) -> np.ndarray:
            v = y[0]
            np.multiply(v, inv2phi, out=b[0])            # v / 2phi_t
            np.subtract(vdd, v, out=b[1])
            b[1] *= inv2phi                              # (vdd - v) / 2phi_t
            # u rows: NMOS reverse, PMOS reverse, NMOS clm, PMOS clm args.
            np.subtract(a_n[i], b[0], out=u[0])
            np.subtract(a_p[i], b[1], out=u[1])
            np.multiply(b[0], 2.0, out=u[2])
            np.multiply(b[1], 2.0, out=u[3])
            _softplus_block(u, sp, tmp)
            rev = sp[:2]
            rev *= rev
            # Reuse u rows as scratch for the current assembly.
            np.subtract(fwd_n[i], sp[0], out=u[0])
            np.subtract(fwd_p[i], sp[1], out=u[1])
            np.multiply(sp[2], lamphi_n, out=u[2])
            u[2] += 1.0
            np.multiply(sp[3], lamphi_p, out=u[3])
            u[3] += 1.0
            u[0] *= u[2]
            u[1] *= u[3]
            u[0] *= coef_n
            u[1] *= coef_p
            dy = dy_pool[state["k"]]
            state["k"] = (state["k"] + 1) % len(dy_pool)
            np.add(u[0], u[1], out=dy[0])
            dy[0] += mil[i]
            return dy

        return rhs

    def _integrate_nor_batch(
        self,
        names: list[str],
        net_v: dict[str, np.ndarray],
        t_grid: np.ndarray,
        n_runs: int,
    ) -> None:
        lib = self.library
        gates = [self.netlist.gates[g] for g in names]
        va = np.concatenate([net_v[g.inputs[0]] for g in gates], axis=0).astype(float)
        vb = np.concatenate([net_v[g.inputs[1]] for g in gates], axis=0).astype(float)
        c_out = np.repeat([self._load_caps[g] for g in names], n_runs)
        c_mid = (
            (lib.pmos.c_gd + lib.pmos.c_db) * lib.nor_wp
            + lib.pmos.c_gs * lib.nor_wp
            + DEFAULT_NODE_CAP
        )
        c_mil_a_out = lib.nmos.c_gd * lib.nor_wn
        c_mil_b_out = lib.pmos.c_gd * lib.nor_wp + lib.nmos.c_gd * lib.nor_wn
        c_mil_a_mid = lib.pmos.c_gd * lib.nor_wp
        c_mil_b_mid = lib.pmos.c_gs * lib.nor_wp

        dva = np.gradient(va, self.dt, axis=1)
        dvb = np.gradient(vb, self.dt, axis=1)
        va_f = np.ascontiguousarray(_interleave(va).T)
        vb_f = np.ascontiguousarray(_interleave(vb).T)
        dva_f = np.ascontiguousarray(_interleave(dva).T)
        dvb_f = np.ascontiguousarray(_interleave(dvb).T)

        a0 = va[:, 0] > self.vdd / 2
        b0 = vb[:, 0] > self.vdd / 2
        out0 = np.where(~(a0 | b0), self.vdd, 0.0)
        # Stack node: at VDD while P_top conducts, otherwise near the output.
        mid0 = np.where(~a0, self.vdd, out0)
        y0 = np.stack([mid0, out0])
        mil_mid = (c_mil_a_mid * dva_f + c_mil_b_mid * dvb_f) / c_mid
        mil_out = (c_mil_a_out * dva_f + c_mil_b_out * dvb_f) / c_out[None, :]
        if self.hotpath:
            rhs = self._nor_rhs_tabulated(va_f, vb_f, mil_mid, mil_out,
                                          c_mid, c_out)
        else:
            rhs = self._nor_rhs_naive(va_f, vb_f, mil_mid, mil_out,
                                      c_mid, c_out)
        vin_stack = np.stack([va, vb])
        y = self._march(rhs, y0, vin_stack, out_row=1)
        for row, g in enumerate(names):
            net_v[g] = y[row * n_runs : (row + 1) * n_runs].astype(np.float32)

    def _nor_rhs_naive(self, va_f, vb_f, mil_mid, mil_out, c_mid, c_out):
        """Seed-equivalent NOR2 RHS: four full compact-model calls."""
        lib = self.library
        vdd = self.vdd

        def rhs(i: int, y: np.ndarray) -> np.ndarray:
            va_t = va_f[i]
            vb_t = vb_f[i]
            mid = y[0]
            out = y[1]
            i_ptop = mosfet_current(
                lib.pmos, va_t, mid, vdd, width=lib.nor_wp, vdd=vdd
            )
            i_pbot = mosfet_current(
                lib.pmos, vb_t, out, mid, width=lib.nor_wp, vdd=vdd
            )
            i_na = mosfet_current(
                lib.nmos, va_t, out, 0.0, width=lib.nor_wn, vdd=vdd
            )
            i_nb = mosfet_current(
                lib.nmos, vb_t, out, 0.0, width=lib.nor_wn, vdd=vdd
            )
            dy = np.empty_like(y)
            dy[0] = (i_ptop - i_pbot) / c_mid + mil_mid[i]
            dy[1] = (i_pbot + i_na + i_nb) / c_out + mil_out[i]
            return dy

        return rhs

    def _nor_rhs_tabulated(self, va_f, vb_f, mil_mid, mil_out, c_mid, c_out):
        """Fused NOR2 RHS over precomputed input tables.

        Device topology (pin convention of :class:`CellLibrary`):
        P_top (gate A, VDD→mid), P_bot (gate B, mid→out), N_a and N_b
        (out→GND).  Rail-referenced forward terms of P_top, N_a and N_b
        are input-only and tabulated; P_bot's terms and every reverse
        interpolation depend on the state and are evaluated per call.
        """
        lib = self.library
        nm, pm = lib.nmos, lib.pmos
        vdd = self.vdd
        inv2phi = 1.0 / (2.0 * PHI_T)
        a_pt = ((vdd - va_f) - pm.v_th) * (inv2phi / pm.n_slope)
        fwd_pt = _squared_softplus(a_pt)
        a_pb = ((vdd - vb_f) - pm.v_th) * (inv2phi / pm.n_slope)
        a_na = (va_f - nm.v_th) * (inv2phi / nm.n_slope)
        fwd_na = _squared_softplus(a_na)
        a_nb = (vb_f - nm.v_th) * (inv2phi / nm.n_slope)
        fwd_nb = _squared_softplus(a_nb)
        i_p = pm.i_spec * lib.nor_wp
        i_n = nm.i_spec * lib.nor_wn
        lamphi_n = nm.lam * PHI_T
        lamphi_p = pm.lam * PHI_T
        k_mid = i_p / c_mid
        inv_cout = 1.0 / c_out

        n = va_f.shape[1]
        u = np.empty((8, n))
        sp = np.empty((8, n))
        tmp = np.empty((8, n))
        b = np.empty((3, n))
        dy_pool = [np.empty((2, n)) for _ in range(4)]
        state = {"k": 0}

        def rhs(i: int, y: np.ndarray) -> np.ndarray:
            mid = y[0]
            out = y[1]
            np.multiply(out, inv2phi, out=b[0])          # out / 2phi_t
            np.subtract(vdd, mid, out=b[1])
            b[1] *= inv2phi                              # (vdd - mid) / 2phi_t
            np.subtract(vdd, out, out=b[2])
            b[2] *= inv2phi                              # (vdd - out) / 2phi_t
            # u rows 0-4: interpolation args (P_top rev, P_bot fwd/rev,
            # N_a rev, N_b rev); rows 5-7: clm args (P_top, P_bot, NMOS).
            np.subtract(a_pt[i], b[1], out=u[0])
            np.subtract(a_pb[i], b[1], out=u[1])
            np.subtract(a_pb[i], b[2], out=u[2])
            np.subtract(a_na[i], b[0], out=u[3])
            np.subtract(a_nb[i], b[0], out=u[4])
            np.multiply(b[1], 2.0, out=u[5])
            np.subtract(b[2], b[1], out=u[6])
            u[6] *= 2.0                                  # (mid - out) / phi_t
            np.multiply(b[0], 2.0, out=u[7])
            _softplus_block(u, sp, tmp)
            interp = sp[:5]
            interp *= interp
            # Reuse u rows as scratch for the current assembly.
            np.multiply(sp[5], lamphi_p, out=u[5])
            u[5] += 1.0                                  # clm P_top
            np.multiply(sp[6], lamphi_p, out=u[6])
            u[6] += 1.0                                  # clm P_bot
            np.multiply(sp[7], lamphi_n, out=u[7])
            u[7] += 1.0                                  # clm NMOS pair
            np.subtract(fwd_pt[i], sp[0], out=u[0])
            u[0] *= u[5]                                 # i_ptop / i_p
            np.subtract(sp[1], sp[2], out=u[1])
            u[1] *= u[6]                                 # i_pbot / i_p
            np.subtract(fwd_na[i], sp[3], out=u[3])
            u[3] += fwd_nb[i]
            u[3] -= sp[4]
            u[3] *= u[7]                                 # (i_na + i_nb) / -i_n
            dy = dy_pool[state["k"]]
            state["k"] = (state["k"] + 1) % len(dy_pool)
            np.subtract(u[0], u[1], out=dy[0])
            dy[0] *= k_mid
            dy[0] += mil_mid[i]
            np.multiply(u[1], i_p, out=b[0])
            np.multiply(u[3], i_n, out=b[1])
            b[0] -= b[1]
            b[0] *= inv_cout
            np.add(b[0], mil_out[i], out=dy[1])
            return dy

        return rhs

    # ------------------------------------------------------------------
    # shared time marching with quiescent-chunk skipping
    # ------------------------------------------------------------------
    def _march(
        self,
        rhs,
        y0: np.ndarray,
        vin: np.ndarray,
        out_row: int,
    ) -> np.ndarray:
        """March one gate batch through the whole grid.

        Parameters
        ----------
        rhs:
            ``rhs(i, y) -> dy`` with ``i`` a fine-grid index and ``y`` of
            shape ``(n_state, n_batch)``.
        vin:
            Input waveforms ``(n_in, n_batch, n_grid)`` — used only for
            quiescence detection; the RHS reads its own tables.
        out_row:
            State row recorded into the returned ``(n_batch, n_grid)``
            array.
        """
        n_grid = vin.shape[-1]
        n_batch = y0.shape[1]
        out = np.empty((n_batch, n_grid))
        out[:, 0] = y0[out_row]
        y = y0.astype(float, copy=True)
        ytmp = np.empty_like(y)
        yacc = np.empty_like(y)
        dt = self.dt
        half = dt / 2.0
        sixth = dt / 6.0
        k = 0
        while k < n_grid - 1:
            end = min(k + self.chunk_steps, n_grid - 1)
            if np.ptp(vin[:, :, k : end + 1], axis=2).max() < EPS_V:
                drift = np.abs(rhs(2 * k, y)).max() * (end - k) * dt
                if drift < EPS_V:
                    out[:, k + 1 : end + 1] = y[out_row][:, None]
                    k = end
                    continue
            for step in range(k, end):
                # Classical RK4, written with preallocated buffers; the
                # RHS returns views into its own rotating pool, so every
                # stage value stays alive across the step.
                i0 = 2 * step
                k1 = rhs(i0, y)
                np.multiply(k1, half, out=ytmp)
                ytmp += y
                k2 = rhs(i0 + 1, ytmp)
                np.multiply(k2, half, out=ytmp)
                ytmp += y
                k3 = rhs(i0 + 1, ytmp)
                np.multiply(k3, dt, out=ytmp)
                ytmp += y
                k4 = rhs(i0 + 2, ytmp)
                np.add(k2, k3, out=yacc)
                yacc *= 2.0
                yacc += k1
                yacc += k4
                yacc *= sixth
                y += yacc
                out[:, step + 1] = y[out_row]
            k = end
        if not np.all(np.isfinite(y)):
            raise SimulationError("staged integration diverged")
        return out
