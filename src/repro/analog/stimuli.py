"""Stimulus sources: near-Heaviside transition trains.

The paper's characterization stimulates chains with "traces of Heaviside
transitions in a carefully controlled way" (Fig. 4).  A physical pulse
generator still has a finite rise time, and an ideal zero-time step would
put an infinite derivative into the Miller-coupling term of the engine, so
the source uses a smoothstep edge of configurable (sub-picosecond) rise
time.  Pulse-shaping stages then convert these into realistic waveforms.

A :class:`SteppedSource` is *batched*: it describes one stimulus node for
``n_runs`` simultaneous runs, each with its own transition times.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.constants import VDD
from repro.errors import SimulationError

#: Default generator edge time (0-100%), in seconds.
DEFAULT_EDGE_TIME = 0.5e-12


def _smoothstep(x: np.ndarray) -> np.ndarray:
    """C1 smoothstep: 0 below 0, 1 above 1, ``3x^2 - 2x^3`` between."""
    x = np.clip(x, 0.0, 1.0)
    return x * x * (3.0 - 2.0 * x)


def _smoothstep_deriv(x: np.ndarray) -> np.ndarray:
    """Derivative of :func:`_smoothstep` w.r.t. its argument."""
    inside = (x > 0.0) & (x < 1.0)
    return np.where(inside, 6.0 * x * (1.0 - x), 0.0)


class SteppedSource:
    """A batch of step-train stimuli sharing one node.

    Parameters
    ----------
    transition_times:
        Sequence of per-run transition time arrays (seconds).  Runs may
        have different transition counts; each run's times must be
        non-decreasing.
    initial_levels:
        Per-run starting logic level (0 or 1), or a single level for all.
    v_high:
        Rail voltage of the high level.
    edge_time:
        0-100% edge duration of each generated transition.
    """

    def __init__(
        self,
        transition_times: Sequence[np.ndarray],
        initial_levels: Sequence[int] | int = 0,
        v_high: float = VDD,
        edge_time: float = DEFAULT_EDGE_TIME,
    ) -> None:
        if edge_time <= 0:
            raise SimulationError("edge_time must be positive")
        runs = [np.asarray(times, dtype=float).ravel() for times in transition_times]
        if not runs:
            raise SimulationError("need at least one run")
        for times in runs:
            if times.size and np.any(np.diff(times) < 0):
                raise SimulationError("transition times must be non-decreasing")
        self.n_runs = len(runs)
        if isinstance(initial_levels, (int, np.integer)):
            levels = np.full(self.n_runs, int(initial_levels))
        else:
            levels = np.asarray(list(initial_levels), dtype=int)
        if levels.shape != (self.n_runs,):
            raise SimulationError("initial_levels length must match run count")
        if not np.all((levels == 0) | (levels == 1)):
            raise SimulationError("initial levels must be 0 or 1")

        self.v_high = v_high
        self.edge_time = edge_time
        self.initial_levels = levels
        max_tr = max((times.size for times in runs), default=0)
        # Pad with +inf so vectorized evaluation ignores missing transitions.
        padded = np.full((self.n_runs, max(max_tr, 1)), np.inf)
        for i, times in enumerate(runs):
            padded[i, : times.size] = times
        self.times = padded
        # Transition k flips the level: direction alternates from the start.
        ks = np.arange(self.times.shape[1])
        start_dir = np.where(levels == 0, 1.0, -1.0)[:, None]
        self.directions = start_dir * np.where(ks[None, :] % 2 == 0, 1.0, -1.0)
        self.run_transitions = [times.copy() for times in runs]

    @classmethod
    def constant(cls, level: int, n_runs: int, v_high: float = VDD) -> "SteppedSource":
        """A source pinned at a logic level for every run."""
        return cls([np.array([])] * n_runs, initial_levels=level, v_high=v_high)

    def value(self, t: float | np.ndarray) -> np.ndarray:
        """Source voltage at time(s) ``t``.

        Scalar ``t`` returns shape ``(n_runs,)``; an array of shape ``(m,)``
        returns ``(m, n_runs)``.
        """
        t_arr = np.asarray(t, dtype=float)
        scalar = t_arr.ndim == 0
        t_arr = np.atleast_1d(t_arr)
        # x shape: (m, n_runs, n_transitions)
        x = (t_arr[:, None, None] - self.times[None, :, :]) / self.edge_time
        steps = _smoothstep(x) * self.directions[None, :, :]
        v = (self.initial_levels[None, :] + steps.sum(axis=2)) * self.v_high
        return v[0] if scalar else v

    def derivative(self, t: float | np.ndarray) -> np.ndarray:
        """Time derivative of the source voltage (V/s), same shapes as value."""
        t_arr = np.asarray(t, dtype=float)
        scalar = t_arr.ndim == 0
        t_arr = np.atleast_1d(t_arr)
        x = (t_arr[:, None, None] - self.times[None, :, :]) / self.edge_time
        slopes = _smoothstep_deriv(x) * self.directions[None, :, :] / self.edge_time
        dv = slopes.sum(axis=2) * self.v_high
        return dv[0] if scalar else dv


class StimulusTable:
    """Precomputed per-run stimulus values/derivatives on a fixed time grid.

    The transient engines evaluate every RK4 stage on a known grid (see
    :func:`repro.analog.integrator.fine_stage_times`), so each source's
    ``(m, n_runs, n_transitions)`` smoothstep broadcast can be built once
    per ``simulate()`` call instead of four times per step.  ``value_at``
    and ``derivative_at`` are then O(1) row lookups.

    The tables are exact: entry ``i`` equals ``source.value(times[i])``
    (respectively ``derivative``) bit-for-bit, because they are produced
    by the same vectorized evaluation.
    """

    def __init__(self, source: SteppedSource, times: np.ndarray) -> None:
        times = np.asarray(times, dtype=float)
        if times.ndim != 1:
            raise SimulationError("stimulus table grid must be 1-D")
        self.source = source
        self.times = times
        self.n_runs = source.n_runs
        #: shape (n_times, n_runs)
        self.values = source.value(times)
        #: shape (n_times, n_runs)
        self.derivatives = source.derivative(times)

    def value_at(self, i: int) -> np.ndarray:
        """Source voltages at grid index ``i``: shape ``(n_runs,)``."""
        return self.values[i]

    def derivative_at(self, i: int) -> np.ndarray:
        """Source slopes (V/s) at grid index ``i``: shape ``(n_runs,)``."""
        return self.derivatives[i]


def pulse_train_times(
    t_first: float, intervals: Sequence[float]
) -> np.ndarray:
    """Cumulative transition times from a first time plus gap list.

    ``pulse_train_times(10e-12, [TA, TB, TC])`` reproduces the paper's
    four-transition stimulus of Fig. 4.
    """
    gaps = np.asarray(intervals, dtype=float)
    if np.any(gaps <= 0):
        raise SimulationError("intervals must be positive")
    return t_first + np.concatenate(([0.0], np.cumsum(gaps)))
