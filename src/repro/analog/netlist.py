"""Analog circuit graph: nodes, devices and compilation for the engine.

An :class:`AnalogCircuit` collects transistors, capacitors and resistors
between named nodes.  ``gnd`` and ``vdd`` are built-in fixed rails; nodes
driven by stimulus sources are declared with :meth:`AnalogCircuit.declare_input`.
:meth:`AnalogCircuit.compile` lowers the circuit to flat index arrays and a
prefactorized capacitance matrix for the transient engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import lu_factor

from repro.analog.mosfet import MosfetParams
from repro.errors import AnalogCircuitError

#: Name of the ground rail node (fixed at 0 V).
GND = "gnd"
#: Name of the supply rail node (fixed at VDD).
VDD_NODE = "vdd"

#: Small default capacitance added from every free node to ground so the
#: capacitance matrix is never singular (models minimal node parasitics).
DEFAULT_NODE_CAP = 0.01e-15


@dataclass
class MosfetInstance:
    """One transistor instance: model parameters plus terminal node names."""

    params: MosfetParams
    drain: str
    gate: str
    source: str
    width: float = 1.0


@dataclass
class CapacitorInstance:
    node_a: str
    node_b: str
    value: float


@dataclass
class ResistorInstance:
    node_a: str
    node_b: str
    value: float


@dataclass
class CompiledCircuit:
    """Flat arrays the transient engine consumes (see ``engine.py``)."""

    node_names: list[str]
    node_index: dict[str, int]
    free_idx: np.ndarray
    fixed_idx: np.ndarray
    fixed_names: list[str]
    # MOSFET arrays (one entry per device)
    m_vth: np.ndarray
    m_nslope: np.ndarray
    m_ispec: np.ndarray
    m_lam: np.ndarray
    m_pmos: np.ndarray
    m_width: np.ndarray
    m_d: np.ndarray
    m_g: np.ndarray
    m_s: np.ndarray
    # resistor arrays
    r_a: np.ndarray
    r_b: np.ndarray
    r_g: np.ndarray  # conductances
    # capacitance matrix partitions, prefactorized
    c_ff_lu: tuple
    c_fx: np.ndarray
    # scatter map from free-node row to global node index
    free_pos: dict[int, int] = field(default_factory=dict)

    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    @property
    def n_free(self) -> int:
        return int(self.free_idx.size)


class AnalogCircuit:
    """A transistor-level circuit under construction.

    Nodes are referenced by name and created on first use.  The rails
    ``gnd`` and ``vdd`` always exist and are fixed.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, int] = {}
        self.mosfets: list[MosfetInstance] = []
        self.capacitors: list[CapacitorInstance] = []
        self.resistors: list[ResistorInstance] = []
        self.inputs: list[str] = []
        self.node(GND)
        self.node(VDD_NODE)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def node(self, name: str) -> int:
        """Index of node ``name``, creating it if new."""
        if name not in self._nodes:
            self._nodes[name] = len(self._nodes)
        return self._nodes[name]

    @property
    def node_names(self) -> list[str]:
        return list(self._nodes)

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def declare_input(self, name: str) -> None:
        """Mark ``name`` as a stimulus-driven (fixed) node."""
        self.node(name)
        if name in (GND, VDD_NODE):
            raise AnalogCircuitError(f"{name} is a rail, not a stimulus node")
        if name not in self.inputs:
            self.inputs.append(name)

    def add_mosfet(
        self,
        params: MosfetParams,
        drain: str,
        gate: str,
        source: str,
        width: float = 1.0,
    ) -> None:
        if width <= 0:
            raise AnalogCircuitError("mosfet width must be positive")
        for name in (drain, gate, source):
            self.node(name)
        self.mosfets.append(MosfetInstance(params, drain, gate, source, width))

    def add_capacitor(self, node_a: str, node_b: str, value: float) -> None:
        if value <= 0:
            raise AnalogCircuitError("capacitance must be positive")
        self.node(node_a)
        self.node(node_b)
        self.capacitors.append(CapacitorInstance(node_a, node_b, value))

    def add_resistor(self, node_a: str, node_b: str, value: float) -> None:
        if value <= 0:
            raise AnalogCircuitError("resistance must be positive")
        self.node(node_a)
        self.node(node_b)
        self.resistors.append(ResistorInstance(node_a, node_b, value))

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile(self, default_node_cap: float = DEFAULT_NODE_CAP) -> CompiledCircuit:
        """Lower to flat arrays and prefactorize the capacitance matrix.

        Raises :class:`AnalogCircuitError` when the circuit has no free
        nodes or a free node has no devices at all.
        """
        n = self.n_nodes
        index = dict(self._nodes)
        fixed_names = [GND, VDD_NODE] + [i for i in self.inputs]
        fixed_set = set(fixed_names)
        free_names = [name for name in self._nodes if name not in fixed_set]
        if not free_names:
            raise AnalogCircuitError("circuit has no free nodes to integrate")

        free_idx = np.array([index[name] for name in free_names], dtype=int)
        fixed_idx = np.array([index[name] for name in fixed_names], dtype=int)

        # --- capacitance matrix over all nodes -------------------------
        c_full = np.zeros((n, n))
        for cap in self.capacitors:
            a, b = index[cap.node_a], index[cap.node_b]
            c_full[a, a] += cap.value
            c_full[b, b] += cap.value
            c_full[a, b] -= cap.value
            c_full[b, a] -= cap.value
        for inst in self.mosfets:
            d = index[inst.drain]
            g = index[inst.gate]
            s = index[inst.source]
            p = inst.params
            w = inst.width
            for na, nb, c in (
                (g, s, p.c_gs * w),
                (g, d, p.c_gd * w),
                (d, index[GND], p.c_db * w),
            ):
                c_full[na, na] += c
                c_full[nb, nb] += c
                c_full[na, nb] -= c
                c_full[nb, na] -= c
        for i in free_idx:
            c_full[i, i] += default_node_cap

        c_ff = c_full[np.ix_(free_idx, free_idx)]
        c_fx = c_full[np.ix_(free_idx, fixed_idx)]
        try:
            c_ff_lu = lu_factor(c_ff)
        except Exception as exc:  # pragma: no cover - defensive
            raise AnalogCircuitError(f"singular capacitance matrix: {exc}") from exc

        # --- device arrays ---------------------------------------------
        n_m = len(self.mosfets)
        m_vth = np.empty(n_m)
        m_nslope = np.empty(n_m)
        m_ispec = np.empty(n_m)
        m_lam = np.empty(n_m)
        m_pmos = np.empty(n_m, dtype=bool)
        m_width = np.empty(n_m)
        m_d = np.empty(n_m, dtype=int)
        m_g = np.empty(n_m, dtype=int)
        m_s = np.empty(n_m, dtype=int)
        for k, inst in enumerate(self.mosfets):
            m_vth[k] = inst.params.v_th
            m_nslope[k] = inst.params.n_slope
            m_ispec[k] = inst.params.i_spec
            m_lam[k] = inst.params.lam
            m_pmos[k] = inst.params.polarity == "pmos"
            m_width[k] = inst.width
            m_d[k] = index[inst.drain]
            m_g[k] = index[inst.gate]
            m_s[k] = index[inst.source]

        r_a = np.array([index[r.node_a] for r in self.resistors], dtype=int)
        r_b = np.array([index[r.node_b] for r in self.resistors], dtype=int)
        r_g = np.array([1.0 / r.value for r in self.resistors])

        free_pos = {int(node): row for row, node in enumerate(free_idx)}
        return CompiledCircuit(
            node_names=list(self._nodes),
            node_index=index,
            free_idx=free_idx,
            fixed_idx=fixed_idx,
            fixed_names=fixed_names,
            m_vth=m_vth,
            m_nslope=m_nslope,
            m_ispec=m_ispec,
            m_lam=m_lam,
            m_pmos=m_pmos,
            m_width=m_width,
            m_d=m_d,
            m_g=m_g,
            m_s=m_s,
            r_a=r_a,
            r_b=r_b,
            r_g=r_g,
            c_ff_lu=c_ff_lu,
            c_fx=c_fx,
            free_pos=free_pos,
        )
