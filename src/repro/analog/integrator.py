"""Fixed-step RK4 integration with selective recording.

The transient engines integrate stiff-ish but picosecond-fast node
dynamics.  The classical fourth-order Runge-Kutta method at a step well
below the fastest edge (default 0.05 ps against ~3 ps edges) is accurate
and — crucially — keeps every batched run in lock-step so the whole sweep
vectorizes.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import SimulationError

RHS = Callable[[float, np.ndarray], np.ndarray]


def rk4_step(f: RHS, t: float, y: np.ndarray, dt: float) -> np.ndarray:
    """One classical RK4 step from ``(t, y)`` to ``t + dt``."""
    k1 = f(t, y)
    k2 = f(t + dt / 2.0, y + dt / 2.0 * k1)
    k3 = f(t + dt / 2.0, y + dt / 2.0 * k2)
    k4 = f(t + dt, y + dt * k3)
    return y + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def integrate_fixed(
    f: RHS,
    y0: np.ndarray,
    t_start: float,
    t_stop: float,
    dt: float,
    record_every: int = 1,
    record_transform: Callable[[np.ndarray], np.ndarray] | None = None,
    record_dtype=np.float32,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Integrate ``y' = f(t, y)`` on a fixed grid, recording periodically.

    Parameters
    ----------
    record_every:
        Record every k-th grid point (the initial and final points are
        always recorded).
    record_transform:
        Maps the full state to the recorded quantity (e.g. a row subset);
        identity when omitted.
    record_dtype:
        Recorded samples are stored in this dtype (float32 by default to
        halve memory in large sweeps).

    Returns
    -------
    (t_rec, y_rec, y_final):
        Recorded times, recorded samples stacked on axis 0, and the full
        final state in float64.
    """
    if dt <= 0:
        raise SimulationError("dt must be positive")
    if t_stop <= t_start:
        raise SimulationError("t_stop must exceed t_start")
    if record_every < 1:
        raise SimulationError("record_every must be >= 1")
    n_steps = int(np.ceil((t_stop - t_start) / dt))
    if record_transform is None:
        record_transform = lambda y: y  # noqa: E731 - trivial identity

    y = np.array(y0, dtype=float)
    t = t_start
    times = [t]
    records = [np.asarray(record_transform(y), dtype=record_dtype)]
    for step in range(1, n_steps + 1):
        step_dt = min(dt, t_stop - t)
        y = rk4_step(f, t, y, step_dt)
        t = t_start + step * dt if step < n_steps else t_stop
        if step % record_every == 0 or step == n_steps:
            times.append(t)
            records.append(np.asarray(record_transform(y), dtype=record_dtype))
        if not np.all(np.isfinite(y)):
            raise SimulationError(f"integration diverged at t = {t:.3e}s")
    return np.asarray(times), np.stack(records, axis=0), y
