"""Fixed-step RK4 integration with selective recording.

The transient engines integrate stiff-ish but picosecond-fast node
dynamics.  The classical fourth-order Runge-Kutta method at a step well
below the fastest edge (default 0.05 ps against ~3 ps edges) is accurate
and — crucially — keeps every batched run in lock-step so the whole sweep
vectorizes.

Two RHS flavours share one marching kernel:

* the classic ``f(t, y)`` callback (:func:`integrate_fixed`), and
* an *indexed* callback ``f(i, t, y)`` where ``i`` addresses the RK4
  stage time on the fine half-step grid of :func:`fine_stage_times`
  (:func:`integrate_fixed_indexed`).  Engines use the indexed form to
  look up precomputed stimulus/device tables instead of re-evaluating
  time-dependent terms four times per step.

Recording buffers are preallocated (the record count is known up front)
and divergence is checked only at record points, keeping the per-step
Python overhead at the minimum the explicit method allows.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import SimulationError

RHS = Callable[[float, np.ndarray], np.ndarray]
IndexedRHS = Callable[[int, float, np.ndarray], np.ndarray]


def rk4_step(f: RHS, t: float, y: np.ndarray, dt: float) -> np.ndarray:
    """One classical RK4 step from ``(t, y)`` to ``t + dt``."""
    k1 = f(t, y)
    k2 = f(t + dt / 2.0, y + dt / 2.0 * k1)
    k3 = f(t + dt / 2.0, y + dt / 2.0 * k2)
    k4 = f(t + dt, y + dt * k3)
    return y + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def plan_steps(t_start: float, t_stop: float, dt: float) -> int:
    """Number of RK4 steps covering ``[t_start, t_stop]`` at step ``dt``.

    The last step is shortened to land exactly on ``t_stop``.  When the
    span is an exact multiple of ``dt`` up to float rounding,
    ``ceil(span / dt)`` can overshoot by one, which would produce a final
    step of length zero (and a duplicated final record); such zero-length
    steps are clamped away here.
    """
    if dt <= 0:
        raise SimulationError("dt must be positive")
    if t_stop <= t_start:
        raise SimulationError("t_stop must exceed t_start")
    span = t_stop - t_start
    n_steps = int(np.ceil(span / dt))
    while n_steps > 1 and (n_steps - 1) * dt >= span:
        n_steps -= 1
    return n_steps


def fine_stage_times(t_start: float, t_stop: float, dt: float) -> np.ndarray:
    """All distinct RK4 stage times, on the half-step ("fine") grid.

    Step ``k`` of the march evaluates its RHS at fine indices ``2k``
    (stage 1), ``2k + 1`` (stages 2 and 3) and ``2k + 2`` (stage 4), so a
    table built on this grid serves every stage without interpolation.
    Length is ``2 * plan_steps(...) + 1``; the final step may be shorter
    than ``dt`` so the last midpoint is not necessarily on the uniform
    half grid.
    """
    n_steps = plan_steps(t_start, t_stop, dt)
    times = np.empty(2 * n_steps + 1)
    starts = t_start + dt * np.arange(n_steps)
    ends = np.minimum(starts + dt, t_stop)
    ends[-1] = t_stop
    times[0::2] = np.concatenate((starts[:1], ends))
    times[1::2] = 0.5 * (starts + ends)
    return times


#: Upper bound on steps between divergence checks when recording sparsely.
_MAX_CHECK_GAP = 512


def _record_steps(n_steps: int, record_every: int) -> np.ndarray:
    """Step indices recorded by the kernel (initial step 0 excluded)."""
    steps = np.arange(record_every, n_steps + 1, record_every)
    if steps.size == 0 or steps[-1] != n_steps:
        steps = np.append(steps, n_steps)
    return steps


def _march(
    f: IndexedRHS,
    y0: np.ndarray,
    t_start: float,
    t_stop: float,
    dt: float,
    record_every: int,
    record_transform: Callable[[np.ndarray], np.ndarray] | None,
    record_dtype,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shared RK4 kernel; ``f`` takes ``(fine_index, t, y)``."""
    if record_every < 1:
        raise SimulationError("record_every must be >= 1")
    n_steps = plan_steps(t_start, t_stop, dt)
    if record_transform is None:
        record_transform = lambda y: y  # noqa: E731 - trivial identity

    y = np.array(y0, dtype=float)
    rec_steps = _record_steps(n_steps, record_every)
    first = np.asarray(record_transform(y), dtype=record_dtype)
    times = np.empty(1 + rec_steps.size)
    records = np.empty((1 + rec_steps.size,) + first.shape, dtype=record_dtype)
    times[0] = t_start
    records[0] = first

    t = t_start
    rec_row = 1
    next_rec = rec_steps[0]
    last_check = 0
    for step in range(1, n_steps + 1):
        h = min(dt, t_stop - t)
        i = 2 * (step - 1)
        k1 = f(i, t, y)
        k2 = f(i + 1, t + h / 2.0, y + h / 2.0 * k1)
        k3 = f(i + 1, t + h / 2.0, y + h / 2.0 * k2)
        k4 = f(i + 2, t + h, y + h * k3)
        y = y + (h / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        t = t_start + step * dt if step < n_steps else t_stop
        # Divergence is checked at record points, but never more than
        # _MAX_CHECK_GAP steps apart — sparse recording (e.g. a settle
        # phase) must not march a diverged state to the end and report a
        # misleading time.
        if step == next_rec or step - last_check >= _MAX_CHECK_GAP:
            if not np.all(np.isfinite(y)):
                raise SimulationError(f"integration diverged at t = {t:.3e}s")
            last_check = step
        if step == next_rec:
            times[rec_row] = t
            records[rec_row] = record_transform(y)
            if rec_row < rec_steps.size:
                next_rec = rec_steps[rec_row]
            rec_row += 1
    if not np.all(np.isfinite(y)):
        raise SimulationError(f"integration diverged at t = {t:.3e}s")
    return times, records, y


def integrate_fixed(
    f: RHS,
    y0: np.ndarray,
    t_start: float,
    t_stop: float,
    dt: float,
    record_every: int = 1,
    record_transform: Callable[[np.ndarray], np.ndarray] | None = None,
    record_dtype=np.float32,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Integrate ``y' = f(t, y)`` on a fixed grid, recording periodically.

    Parameters
    ----------
    record_every:
        Record every k-th grid point (the initial and final points are
        always recorded).
    record_transform:
        Maps the full state to the recorded quantity (e.g. a row subset);
        identity when omitted.
    record_dtype:
        Recorded samples are stored in this dtype (float32 by default to
        halve memory in large sweeps).

    Returns
    -------
    (t_rec, y_rec, y_final):
        Recorded times, recorded samples stacked on axis 0, and the full
        final state in float64.
    """
    return _march(
        lambda i, t, y: f(t, y),
        y0, t_start, t_stop, dt,
        record_every, record_transform, record_dtype,
    )


def integrate_fixed_indexed(
    f: IndexedRHS,
    y0: np.ndarray,
    t_start: float,
    t_stop: float,
    dt: float,
    record_every: int = 1,
    record_transform: Callable[[np.ndarray], np.ndarray] | None = None,
    record_dtype=np.float32,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Like :func:`integrate_fixed` but ``f(i, t, y)`` also receives the
    fine-grid index ``i`` matching :func:`fine_stage_times`, so the RHS
    can index precomputed per-stage tables instead of recomputing
    time-dependent terms."""
    return _march(
        f, y0, t_start, t_stop, dt,
        record_every, record_transform, record_dtype,
    )
