"""Analog transient simulation substrate (replaces SPICE/Spectre).

The paper trains and evaluates against SPICE waveforms of a 15 nm FinFET
library.  This package provides the equivalent reference in pure numpy:

* :mod:`~repro.analog.mosfet` — a smooth EKV-style MOSFET compact model
  calibrated to 15 nm-class numbers (VDD = 0.8 V, ~50 µA on-current),
* :mod:`~repro.analog.netlist` / :mod:`~repro.analog.engine` — a batch
  transient engine integrating ``C dv/dt = i(v, t)`` for full transistor
  networks, vectorized across many stimulus runs at once,
* :mod:`~repro.analog.cells` — transistor-level INV / NOR2 / NOR3 / NAND2
  cells shared by every engine,
* :mod:`~repro.analog.staged` — a topological-staged engine that makes
  c1355-scale combinational circuits tractable as the "SPICE" reference,
* :mod:`~repro.analog.waveform` — waveform containers and measurements.

The engines reproduce the analog phenomena the paper's approach feeds on:
finite slopes, pulse degradation, sub-threshold runt pulses, and Miller
over/undershoot.
"""

from repro.analog.waveform import Waveform
from repro.analog.mosfet import MosfetParams, NMOS_15NM, PMOS_15NM, mosfet_current
from repro.analog.netlist import AnalogCircuit
from repro.analog.stimuli import SteppedSource
from repro.analog.engine import TransientEngine, TransientResult
from repro.analog.cells import CellLibrary, DEFAULT_LIBRARY
from repro.analog.staged import StagedSimulator

__all__ = [
    "Waveform",
    "MosfetParams",
    "NMOS_15NM",
    "PMOS_15NM",
    "mosfet_current",
    "AnalogCircuit",
    "SteppedSource",
    "TransientEngine",
    "TransientResult",
    "CellLibrary",
    "DEFAULT_LIBRARY",
    "StagedSimulator",
]
