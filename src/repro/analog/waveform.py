"""Waveform container and measurement helpers.

A :class:`Waveform` is a sampled analog signal: strictly increasing times
in seconds and voltages in volts.  It provides the measurements the rest of
the system needs: threshold crossings (with direction), slew extraction,
clipping (Sec. II-B of the paper clips SPICE waveforms to ``[0, VDD]``
before fitting), resampling, and digitization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import VDD, VTH
from repro.errors import SimulationError


@dataclass(frozen=True)
class Crossing:
    """A threshold crossing: time in seconds and direction (+1 rise, -1 fall)."""

    time: float
    direction: int


class Waveform:
    """A sampled voltage waveform ``v(t)``.

    Parameters
    ----------
    t:
        Sample times in seconds, strictly increasing, at least two samples.
    v:
        Voltages in volts, same length as ``t``.
    """

    __slots__ = ("t", "v")

    def __init__(self, t: np.ndarray, v: np.ndarray) -> None:
        t = np.asarray(t, dtype=float)
        v = np.asarray(v, dtype=float)
        if t.ndim != 1 or v.ndim != 1 or t.shape != v.shape:
            raise ValueError("t and v must be 1-D arrays of equal length")
        if t.size < 2:
            raise ValueError("waveform needs at least two samples")
        if not np.all(np.diff(t) > 0):
            raise ValueError("times must be strictly increasing")
        self.t = t
        self.v = v

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def t_start(self) -> float:
        return float(self.t[0])

    @property
    def t_stop(self) -> float:
        return float(self.t[-1])

    @property
    def duration(self) -> float:
        return self.t_stop - self.t_start

    def __len__(self) -> int:
        return self.t.size

    def value_at(self, times) -> np.ndarray:
        """Linear interpolation; clamps outside the sampled span."""
        return np.interp(np.asarray(times, dtype=float), self.t, self.v)

    def derivative(self) -> "Waveform":
        """Centered finite-difference derivative dv/dt (V/s)."""
        dv = np.gradient(self.v, self.t)
        return Waveform(self.t, dv)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def clipped(self, lo: float = 0.0, hi: float = VDD) -> "Waveform":
        """Clip voltages to ``[lo, hi]`` (removes over/undershoot, Sec. II-B)."""
        if lo >= hi:
            raise ValueError("lo must be below hi")
        return Waveform(self.t, np.clip(self.v, lo, hi))

    def resampled(self, t_new: np.ndarray) -> "Waveform":
        """Linear-interpolated resampling onto a new time grid."""
        t_new = np.asarray(t_new, dtype=float)
        return Waveform(t_new, self.value_at(t_new))

    def restricted(self, t0: float, t1: float) -> "Waveform":
        """Sub-waveform covering ``[t0, t1]`` (endpoints interpolated in)."""
        if t1 <= t0:
            raise ValueError("t1 must exceed t0")
        inside = (self.t > t0) & (self.t < t1)
        t = np.concatenate(([t0], self.t[inside], [t1]))
        return Waveform(t, self.value_at(t))

    def shifted(self, dt: float) -> "Waveform":
        """Time-shift the waveform by ``dt`` seconds."""
        return Waveform(self.t + dt, self.v.copy())

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------
    def crossings(self, threshold: float = VTH) -> list[Crossing]:
        """All threshold crossings, linearly interpolated, in time order.

        Samples exactly on the threshold are resolved by the sign of the
        surrounding segment; flat segments on the threshold produce no
        crossing.
        """
        above = self.v > threshold
        change = np.nonzero(above[1:] != above[:-1])[0]
        result = []
        for i in change:
            v0, v1 = self.v[i], self.v[i + 1]
            if v1 == v0:
                continue
            frac = (threshold - v0) / (v1 - v0)
            time = self.t[i] + frac * (self.t[i + 1] - self.t[i])
            direction = 1 if v1 > v0 else -1
            result.append(Crossing(float(time), direction))
        return result

    def crossing_times(self, threshold: float = VTH) -> np.ndarray:
        """Crossing times only, as a float array."""
        return np.array([c.time for c in self.crossings(threshold)])

    def slew_at_crossing(self, crossing: Crossing, window: float = 2e-12) -> float:
        """Signal derivative (V/s) averaged over a small window at a crossing."""
        t0 = max(crossing.time - window / 2, self.t_start)
        t1 = min(crossing.time + window / 2, self.t_stop)
        if t1 <= t0:
            raise SimulationError("crossing window outside waveform span")
        v0 = float(self.value_at(t0))
        v1 = float(self.value_at(t1))
        return (v1 - v0) / (t1 - t0)

    def edge_time(
        self,
        crossing: Crossing,
        lo_frac: float = 0.1,
        hi_frac: float = 0.9,
        vdd: float = VDD,
    ) -> float:
        """10-90% (by default) transition time of the edge at ``crossing``.

        Searches outward from the crossing for the first samples beyond the
        fractional levels.  Returns a positive duration in seconds.
        """
        lo_v = lo_frac * vdd
        hi_v = hi_frac * vdd
        idx = int(np.searchsorted(self.t, crossing.time))
        idx = min(max(idx, 1), len(self) - 1)
        if crossing.direction > 0:
            start_level, end_level = lo_v, hi_v
        else:
            start_level, end_level = hi_v, lo_v
        t_lo = self._search_level_backward(idx, start_level)
        t_hi = self._search_level_forward(idx, end_level)
        return abs(t_hi - t_lo)

    def _search_level_backward(self, idx: int, level: float) -> float:
        for i in range(idx, 0, -1):
            v0, v1 = self.v[i - 1], self.v[i]
            if (v0 - level) * (v1 - level) <= 0 and v0 != v1:
                frac = (level - v0) / (v1 - v0)
                return float(self.t[i - 1] + frac * (self.t[i] - self.t[i - 1]))
        return self.t_start

    def _search_level_forward(self, idx: int, level: float) -> float:
        for i in range(idx, len(self)):
            v0, v1 = self.v[i - 1], self.v[i]
            if (v0 - level) * (v1 - level) <= 0 and v0 != v1:
                frac = (level - v0) / (v1 - v0)
                return float(self.t[i - 1] + frac * (self.t[i] - self.t[i - 1]))
        return self.t_stop

    def rms_error(self, other: "Waveform") -> float:
        """RMS voltage difference, with ``other`` resampled onto this grid."""
        return float(np.sqrt(np.mean((self.v - other.value_at(self.t)) ** 2)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Waveform({len(self)} samples, "
            f"[{self.t_start:.3e}, {self.t_stop:.3e}]s, "
            f"v in [{self.v.min():.3f}, {self.v.max():.3f}]V)"
        )
