"""Smooth EKV-style MOSFET compact model.

The paper characterizes gates with the Nangate 15 nm FinFET models.  We do
not have that PDK, so the substitute is a continuous long-channel EKV
formulation with channel-length modulation, calibrated so a minimum
inverter at VDD = 0.8 V shows 15 nm-class behaviour (~50 µA on-current,
picosecond edges into ~0.1 fF loads).

The drain current interpolates smoothly from subthreshold to strong
inversion::

    i_ds = i_spec * clm(v_ds) * (F((vp - vs) / phi_t) - F((vp - vd) / phi_t))
    vp   = (v_g - v_th) / n_slope
    F(u) = ln(1 + exp(u / 2)) ** 2

Smoothness everywhere is essential: the transient engines integrate these
equations with explicit RK4 and the sigmoid-fitting stage differentiates
the resulting waveforms.

PMOS devices are evaluated in mirrored coordinates around VDD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import PHI_T, VDD


@dataclass(frozen=True)
class MosfetParams:
    """Compact-model parameters for one device polarity.

    Attributes
    ----------
    polarity:
        ``"nmos"`` or ``"pmos"``.
    v_th:
        Threshold voltage magnitude in volts.
    n_slope:
        Subthreshold slope factor (dimensionless, > 1).
    i_spec:
        Specific current in amperes per unit width multiplier.
    lam:
        Channel-length modulation coefficient (1/V).
    c_gs, c_gd, c_db:
        Gate-source, gate-drain (Miller) and drain-bulk capacitances in
        farads per unit width multiplier.
    """

    polarity: str
    v_th: float
    n_slope: float
    i_spec: float
    lam: float
    c_gs: float
    c_gd: float
    c_db: float

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError("polarity must be 'nmos' or 'pmos'")
        if self.v_th <= 0 or self.n_slope <= 1.0 or self.i_spec <= 0:
            raise ValueError("v_th, n_slope-1 and i_spec must be positive")


#: Calibrated NMOS of the 15 nm-class substitute library.
NMOS_15NM = MosfetParams(
    polarity="nmos",
    v_th=0.30,
    n_slope=1.30,
    i_spec=1.1e-6,
    lam=0.08,
    c_gs=0.035e-15,
    c_gd=0.020e-15,
    c_db=0.028e-15,
)

#: Calibrated PMOS; lower mobility is compensated by wider devices in cells.
PMOS_15NM = MosfetParams(
    polarity="pmos",
    v_th=0.32,
    n_slope=1.33,
    i_spec=0.75e-6,
    lam=0.08,
    c_gs=0.035e-15,
    c_gd=0.020e-15,
    c_db=0.028e-15,
)


def softplus_exact(x: np.ndarray) -> np.ndarray:
    """Overflow-safe softplus ``ln(1 + exp(x))``.

    The ``max(x, 0) + log1p(exp(-|x|))`` decomposition is numerically
    identical to ``logaddexp(0, x)`` but built from cheap SIMD-friendly
    ufuncs.  This is the one softplus kernel of the compact model; the
    staged engine's tabulated hot path builds on it too, so both engines
    stay bit-consistent by construction.
    """
    x = np.asarray(x, dtype=float)
    out = np.log1p(np.exp(-np.abs(x)))
    out += np.maximum(x, 0.0)
    return out


def _ekv_interp(u: np.ndarray) -> np.ndarray:
    """EKV interpolation function ``F(u) = ln(1 + exp(u/2))^2``, overflow-safe."""
    soft = softplus_exact(np.asarray(u, dtype=float) / 2.0)
    soft *= soft
    return soft


def _softplus(x: np.ndarray) -> np.ndarray:
    """Overflow-safe softplus used for smooth channel-length modulation."""
    return softplus_exact(x)


def mosfet_current(
    params: MosfetParams,
    v_g: np.ndarray,
    v_d: np.ndarray,
    v_s: np.ndarray,
    width: float | np.ndarray = 1.0,
    vdd: float = VDD,
    phi_t: float = PHI_T,
) -> np.ndarray:
    """Channel current *into the drain node*, in amperes.

    Sign convention: a conducting NMOS pulling its drain toward the source
    returns a negative value (current leaves the drain node); a conducting
    PMOS with source at VDD returns a positive value (current charges the
    drain node).  This is exactly the contribution each device adds to its
    drain node's KCL sum, making engine assembly trivial.

    All voltage arguments broadcast against each other.
    """
    v_g = np.asarray(v_g, dtype=float)
    v_d = np.asarray(v_d, dtype=float)
    v_s = np.asarray(v_s, dtype=float)
    if params.polarity == "pmos":
        # Mirror around the rail: a PMOS with source at VDD behaves like an
        # NMOS with source at ground in the mirrored space.
        v_g = vdd - v_g
        v_d = vdd - v_d
        v_s = vdd - v_s

    v_p = (v_g - params.v_th) / params.n_slope
    forward = _ekv_interp((v_p - v_s) / phi_t)
    reverse = _ekv_interp((v_p - v_d) / phi_t)
    # Smooth channel-length modulation on the forward drain-source drop.
    clm = 1.0 + params.lam * phi_t * _softplus((v_d - v_s) / phi_t)
    i_forward = params.i_spec * clm * (forward - reverse) * width

    # In mirrored (NMOS-like) space, positive i_forward flows drain->source,
    # i.e. it *leaves* the drain node.
    i_into_drain = -i_forward
    if params.polarity == "pmos":
        # Mirroring voltages flips the sign of node currents back.
        i_into_drain = -i_into_drain
    return i_into_drain


def vectorized_current(
    v_th: np.ndarray,
    n_slope: np.ndarray,
    i_spec: np.ndarray,
    lam: np.ndarray,
    pmos_mask: np.ndarray,
    v_g: np.ndarray,
    v_d: np.ndarray,
    v_s: np.ndarray,
    width: np.ndarray,
    vdd: float = VDD,
    phi_t: float = PHI_T,
) -> np.ndarray:
    """Heterogeneous-device form of :func:`mosfet_current`.

    Every parameter is an array over devices (broadcasting against voltage
    arrays of shape ``(n_devices, ...)``), letting a transient engine
    evaluate a whole circuit's transistors in one call.  Returns the
    current into each device's drain node.
    """
    v_g = np.where(pmos_mask, vdd - v_g, v_g)
    v_d = np.where(pmos_mask, vdd - v_d, v_d)
    v_s = np.where(pmos_mask, vdd - v_s, v_s)

    v_p = (v_g - v_th) / n_slope
    forward = _ekv_interp((v_p - v_s) / phi_t)
    reverse = _ekv_interp((v_p - v_d) / phi_t)
    clm = 1.0 + lam * phi_t * _softplus((v_d - v_s) / phi_t)
    i_forward = i_spec * clm * (forward - reverse) * width
    return np.where(pmos_mask, i_forward, -i_forward)


def on_current(params: MosfetParams, width: float = 1.0, vdd: float = VDD) -> float:
    """Saturated on-current magnitude (|Vgs| = |Vds| = VDD), for calibration."""
    if params.polarity == "nmos":
        i = mosfet_current(params, vdd, vdd, 0.0, width=width, vdd=vdd)
    else:
        i = mosfet_current(params, 0.0, 0.0, vdd, width=width, vdd=vdd)
    return float(np.abs(i))


def off_current(params: MosfetParams, width: float = 1.0, vdd: float = VDD) -> float:
    """Leakage magnitude with the gate off and full drain bias."""
    if params.polarity == "nmos":
        i = mosfet_current(params, 0.0, vdd, 0.0, width=width, vdd=vdd)
    else:
        # PMOS off: gate at VDD, source at VDD, drain at 0.
        i = mosfet_current(params, vdd, 0.0, vdd, width=width, vdd=vdd)
    return float(np.abs(i))
