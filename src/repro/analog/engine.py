"""Batch transient engine for full transistor networks.

Solves ``C_ff dv_f/dt = i_f(v, t) - C_fx dv_x/dt`` where ``v_f`` are the
free node voltages, ``v_x`` the fixed (rail/stimulus) nodes, ``C`` the
assembled capacitance matrix and ``i_f`` the device KCL currents.  The
state carries an extra *runs* axis, so a whole characterization sweep
(hundreds of stimulus combinations over one topology, Sec. IV-A of the
paper) integrates in lock-step with fully vectorized device evaluation.

This engine plays the role of SPICE for the circuits it is asked to solve;
``staged.py`` builds on the same device models for circuit sizes where a
monolithic network would be wasteful.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lu_solve

from repro.analog.integrator import integrate_fixed
from repro.analog.mosfet import vectorized_current
from repro.analog.netlist import GND, VDD_NODE, AnalogCircuit, CompiledCircuit
from repro.analog.stimuli import SteppedSource
from repro.analog.waveform import Waveform
from repro.constants import VDD
from repro.errors import SimulationError

#: Default integration step (seconds): well below the ~3 ps edges produced
#: by the calibrated cells.
DEFAULT_DT = 0.05e-12

#: Default settling period prepended before t=0 so the circuit starts from
#: its DC operating point without a Newton solve.
DEFAULT_SETTLE = 40e-12


class TransientResult:
    """Recorded node waveforms of a batch transient run."""

    def __init__(
        self,
        t: np.ndarray,
        voltages: dict[str, np.ndarray],
        n_runs: int,
    ) -> None:
        self.t = t
        self.voltages = voltages
        self.n_runs = n_runs

    @property
    def recorded_nodes(self) -> list[str]:
        return list(self.voltages)

    def samples(self, node: str) -> np.ndarray:
        """Raw samples of ``node``: shape ``(n_times, n_runs)``."""
        try:
            return self.voltages[node]
        except KeyError:
            raise KeyError(
                f"node {node!r} was not recorded; recorded: {self.recorded_nodes}"
            ) from None

    def waveform(self, node: str, run: int = 0) -> Waveform:
        """The waveform of one node in one run."""
        samples = self.samples(node)
        if not 0 <= run < self.n_runs:
            raise IndexError(f"run {run} out of range (n_runs={self.n_runs})")
        return Waveform(self.t, samples[:, run].astype(float))


class TransientEngine:
    """Transient simulator bound to one compiled circuit."""

    def __init__(self, circuit: AnalogCircuit, vdd: float = VDD) -> None:
        self.circuit = circuit
        self.vdd = vdd
        self.compiled: CompiledCircuit = circuit.compile()

    # ------------------------------------------------------------------
    def simulate(
        self,
        sources: dict[str, SteppedSource],
        t_stop: float,
        t_start: float = 0.0,
        dt: float = DEFAULT_DT,
        record_nodes: list[str] | None = None,
        record_every: int = 2,
        settle: float = DEFAULT_SETTLE,
    ) -> TransientResult:
        """Run a batch transient analysis.

        Parameters
        ----------
        sources:
            One :class:`SteppedSource` per declared input node.  All
            sources must agree on the run count.
        record_nodes:
            Node names to record (default: every node).
        settle:
            Duration integrated before ``t_start`` with the stimulus frozen
            at its ``t_start`` value, replacing a DC operating-point solve.
        """
        comp = self.compiled
        missing = [name for name in self.circuit.inputs if name not in sources]
        if missing:
            raise SimulationError(f"missing sources for inputs: {missing}")
        extra = [name for name in sources if name not in self.circuit.inputs]
        if extra:
            raise SimulationError(f"sources for undeclared inputs: {extra}")

        run_counts = {src.n_runs for src in sources.values()}
        if sources:
            if len(run_counts) != 1:
                raise SimulationError(f"sources disagree on run count: {run_counts}")
            n_runs = run_counts.pop()
        else:
            n_runs = 1

        if record_nodes is None:
            record_nodes = [n for n in self.circuit.node_names]
        unknown = [n for n in record_nodes if n not in comp.node_index]
        if unknown:
            raise SimulationError(f"cannot record unknown nodes: {unknown}")

        n_nodes = comp.n_nodes
        fixed_rows = {name: row for row, name in enumerate(comp.fixed_names)}

        def fixed_values(t: float, frozen: bool) -> tuple[np.ndarray, np.ndarray]:
            """Fixed node voltages and their derivatives at time t."""
            vals = np.zeros((len(comp.fixed_names), n_runs))
            derivs = np.zeros_like(vals)
            vals[fixed_rows[VDD_NODE]] = self.vdd
            query_t = t_start if frozen else t
            for name, src in sources.items():
                row = fixed_rows[name]
                vals[row] = src.value(query_t)
                if not frozen:
                    derivs[row] = src.derivative(query_t)
            return vals, derivs

        v_all = np.empty((n_nodes, n_runs))

        def make_rhs(frozen: bool):
            def rhs(t: float, v_free: np.ndarray) -> np.ndarray:
                fixed_v, fixed_dv = fixed_values(t, frozen)
                v_all[comp.free_idx] = v_free
                v_all[comp.fixed_idx] = fixed_v
                currents = np.zeros((n_nodes, n_runs))
                if comp.m_d.size:
                    i_drain = vectorized_current(
                        comp.m_vth[:, None],
                        comp.m_nslope[:, None],
                        comp.m_ispec[:, None],
                        comp.m_lam[:, None],
                        comp.m_pmos[:, None],
                        v_all[comp.m_g],
                        v_all[comp.m_d],
                        v_all[comp.m_s],
                        comp.m_width[:, None],
                        vdd=self.vdd,
                    )
                    np.add.at(currents, comp.m_d, i_drain)
                    np.add.at(currents, comp.m_s, -i_drain)
                if comp.r_a.size:
                    i_r = (v_all[comp.r_b] - v_all[comp.r_a]) * comp.r_g[:, None]
                    np.add.at(currents, comp.r_a, i_r)
                    np.add.at(currents, comp.r_b, -i_r)
                i_free = currents[comp.free_idx]
                i_free -= comp.c_fx @ fixed_dv
                return lu_solve(comp.c_ff_lu, i_free)

            return rhs

        # --- settle to the DC operating point ---------------------------
        v0 = np.zeros((comp.n_free, n_runs))
        if settle > 0:
            _, __, v0 = integrate_fixed(
                make_rhs(frozen=True),
                v0,
                t_start - settle,
                t_start,
                dt=max(dt, 0.1e-12),
                record_every=10**9,
            )

        # --- main run ----------------------------------------------------
        record_rows = np.array(
            [comp.free_pos[comp.node_index[n]] for n in record_nodes
             if comp.node_index[n] in comp.free_pos],
            dtype=int,
        )
        recorded_free = [
            n for n in record_nodes if comp.node_index[n] in comp.free_pos
        ]
        t_rec, y_rec, _ = integrate_fixed(
            make_rhs(frozen=False),
            v0,
            t_start,
            t_stop,
            dt=dt,
            record_every=record_every,
            record_transform=lambda y: y[record_rows],
        )

        voltages: dict[str, np.ndarray] = {}
        for row, name in enumerate(recorded_free):
            voltages[name] = y_rec[:, row, :]
        # Fixed nodes requested for recording are reconstructed exactly.
        for name in record_nodes:
            if name in voltages:
                continue
            if name == GND:
                voltages[name] = np.zeros((t_rec.size, n_runs))
            elif name == VDD_NODE:
                voltages[name] = np.full((t_rec.size, n_runs), self.vdd)
            elif name in sources:
                voltages[name] = sources[name].value(t_rec)
        return TransientResult(t_rec, voltages, n_runs)
