"""Batch transient engine for full transistor networks.

Solves ``C_ff dv_f/dt = i_f(v, t) - C_fx dv_x/dt`` where ``v_f`` are the
free node voltages, ``v_x`` the fixed (rail/stimulus) nodes, ``C`` the
assembled capacitance matrix and ``i_f`` the device KCL currents.  The
state carries an extra *runs* axis, so a whole characterization sweep
(hundreds of stimulus combinations over one topology, Sec. IV-A of the
paper) integrates in lock-step with fully vectorized device evaluation.

Hot-path layout: every time-dependent quantity — stimulus values, their
derivatives, and the Miller injection ``C_fx @ dv_x`` — is tabulated once
per ``simulate()`` call on the RK4 fine grid (see
:func:`repro.analog.integrator.fine_stage_times`), so the per-stage RHS
reduces to one vectorized device evaluation plus an incidence
scatter-add (``bincount`` over flattened node/run indices, replacing the
much slower ``np.add.at``) and one triangular solve.

This engine plays the role of SPICE for the circuits it is asked to solve;
``staged.py`` builds on the same device models for circuit sizes where a
monolithic network would be wasteful.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lu_solve

from repro.analog.integrator import fine_stage_times, integrate_fixed_indexed
from repro.analog.mosfet import vectorized_current
from repro.analog.netlist import GND, VDD_NODE, AnalogCircuit, CompiledCircuit
from repro.analog.stimuli import SteppedSource, StimulusTable
from repro.analog.waveform import Waveform
from repro.constants import VDD
from repro.errors import SimulationError

#: Default integration step (seconds): well below the ~3 ps edges produced
#: by the calibrated cells.
DEFAULT_DT = 0.05e-12

#: Default settling period prepended before t=0 so the circuit starts from
#: its DC operating point without a Newton solve.
DEFAULT_SETTLE = 40e-12


class IncidenceScatter:
    """KCL current accumulation via ``bincount`` over flattened indices.

    Precomputes, once per (circuit, run count), the flattened
    ``node * n_runs + run`` index vector covering every device terminal
    contribution.  ``accumulate`` then reproduces the reference
    sequence::

        np.add.at(currents, m_d, i_drain)
        np.add.at(currents, m_s, -i_drain)
        np.add.at(currents, r_a, i_r)
        np.add.at(currents, r_b, -i_r)

    bit-for-bit: ``bincount`` adds its weights in input order, and the
    concatenated weight vector preserves exactly the order the four
    ``add.at`` calls would apply.
    """

    def __init__(self, comp: CompiledCircuit, n_runs: int) -> None:
        self.n_nodes = comp.n_nodes
        self.n_runs = n_runs
        run = np.arange(n_runs)
        parts = []
        for idx in (comp.m_d, comp.m_s, comp.r_a, comp.r_b):
            if idx.size:
                parts.append((idx[:, None] * n_runs + run[None, :]).ravel())
        self._flat_idx = (
            np.concatenate(parts) if parts else np.empty(0, dtype=int)
        )

    def accumulate(
        self, i_drain: np.ndarray | None, i_r: np.ndarray | None
    ) -> np.ndarray:
        """Node currents of shape ``(n_nodes, n_runs)`` from device currents."""
        parts = []
        if i_drain is not None and i_drain.size:
            parts.append(i_drain.ravel())
            parts.append(-i_drain.ravel())
        if i_r is not None and i_r.size:
            parts.append(i_r.ravel())
            parts.append(-i_r.ravel())
        if not parts:
            return np.zeros((self.n_nodes, self.n_runs))
        weights = np.concatenate(parts)
        flat = np.bincount(
            self._flat_idx, weights=weights,
            minlength=self.n_nodes * self.n_runs,
        )
        return flat.reshape(self.n_nodes, self.n_runs)


class TransientResult:
    """Recorded node waveforms of a batch transient run."""

    def __init__(
        self,
        t: np.ndarray,
        voltages: dict[str, np.ndarray],
        n_runs: int,
    ) -> None:
        self.t = t
        self.voltages = voltages
        self.n_runs = n_runs

    @property
    def recorded_nodes(self) -> list[str]:
        return list(self.voltages)

    def samples(self, node: str) -> np.ndarray:
        """Raw samples of ``node``: shape ``(n_times, n_runs)``."""
        try:
            return self.voltages[node]
        except KeyError:
            raise KeyError(
                f"node {node!r} was not recorded; recorded: {self.recorded_nodes}"
            ) from None

    def waveform(self, node: str, run: int = 0) -> Waveform:
        """The waveform of one node in one run."""
        samples = self.samples(node)
        if not 0 <= run < self.n_runs:
            raise IndexError(f"run {run} out of range (n_runs={self.n_runs})")
        return Waveform(self.t, samples[:, run].astype(float))


class TransientEngine:
    """Transient simulator bound to one compiled circuit."""

    def __init__(self, circuit: AnalogCircuit, vdd: float = VDD) -> None:
        self.circuit = circuit
        self.vdd = vdd
        self.compiled: CompiledCircuit = circuit.compile()

    # ------------------------------------------------------------------
    def _stimulus_tables(
        self,
        sources: dict[str, SteppedSource],
        times: np.ndarray | None,
        n_runs: int,
        frozen_at: float | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-node voltage and derivative tables on the fine grid.

        Returns ``(vals, derivs)`` of shape ``(n_times, n_fixed, n_runs)``.
        With ``frozen_at`` set (settle phase), the stimulus is
        time-invariant: ``times`` must be omitted and a single table row
        is returned, holding the value at that instant with zero
        derivatives — the RHS broadcasts it to every stage.
        """
        comp = self.compiled
        n_fixed = len(comp.fixed_names)
        fixed_rows = {name: row for row, name in enumerate(comp.fixed_names)}
        if (times is None) != (frozen_at is not None):
            raise SimulationError(
                "pass exactly one of a time grid or a freeze instant"
            )
        n_times = 1 if frozen_at is not None else times.size
        vals = np.zeros((n_times, n_fixed, n_runs))
        derivs = np.zeros_like(vals)
        vals[:, fixed_rows[VDD_NODE], :] = self.vdd
        for name, src in sources.items():
            row = fixed_rows[name]
            if frozen_at is not None:
                vals[:, row, :] = src.value(frozen_at)[None, :]
            else:
                table = StimulusTable(src, times)
                vals[:, row, :] = table.values
                derivs[:, row, :] = table.derivatives
        return vals, derivs

    def _make_rhs(
        self,
        vals: np.ndarray,
        derivs: np.ndarray,
        n_runs: int,
        scatter: IncidenceScatter,
    ):
        """Indexed RHS over precomputed fixed-node tables.

        All per-step-invariant quantities — device parameter columns, the
        Miller injection ``C_fx @ dv_x`` per fine index, the scatter index
        map — are hoisted out of the closure's hot path.
        """
        comp = self.compiled
        v_all = np.empty((comp.n_nodes, n_runs))
        # Miller coupling of the fixed nodes, tabulated for every stage.
        cfx_dv = np.tensordot(derivs, comp.c_fx, axes=([1], [1]))
        cfx_dv = np.ascontiguousarray(np.moveaxis(cfx_dv, 2, 1))
        # Single-row (frozen/settle) tables broadcast to every stage index.
        last = vals.shape[0] - 1
        m_vth = comp.m_vth[:, None]
        m_nslope = comp.m_nslope[:, None]
        m_ispec = comp.m_ispec[:, None]
        m_lam = comp.m_lam[:, None]
        m_pmos = comp.m_pmos[:, None]
        m_width = comp.m_width[:, None]
        r_g = comp.r_g[:, None]
        free_idx = comp.free_idx
        fixed_idx = comp.fixed_idx
        has_m = comp.m_d.size > 0
        has_r = comp.r_a.size > 0
        vdd = self.vdd

        def rhs(i: int, t: float, v_free: np.ndarray) -> np.ndarray:
            if i > last:
                i = last
            v_all[free_idx] = v_free
            v_all[fixed_idx] = vals[i]
            i_drain = None
            i_r = None
            if has_m:
                i_drain = vectorized_current(
                    m_vth, m_nslope, m_ispec, m_lam, m_pmos,
                    v_all[comp.m_g], v_all[comp.m_d], v_all[comp.m_s],
                    m_width, vdd=vdd,
                )
            if has_r:
                i_r = (v_all[comp.r_b] - v_all[comp.r_a]) * r_g
            currents = scatter.accumulate(i_drain, i_r)
            i_free = currents[free_idx]
            i_free -= cfx_dv[i]
            return lu_solve(comp.c_ff_lu, i_free)

        return rhs

    # ------------------------------------------------------------------
    def simulate(
        self,
        sources: dict[str, SteppedSource],
        t_stop: float,
        t_start: float = 0.0,
        dt: float = DEFAULT_DT,
        record_nodes: list[str] | None = None,
        record_every: int = 2,
        settle: float = DEFAULT_SETTLE,
    ) -> TransientResult:
        """Run a batch transient analysis.

        Parameters
        ----------
        sources:
            One :class:`SteppedSource` per declared input node.  All
            sources must agree on the run count.
        record_nodes:
            Node names to record (default: every node).
        settle:
            Duration integrated before ``t_start`` with the stimulus frozen
            at its ``t_start`` value, replacing a DC operating-point solve.
        """
        comp = self.compiled
        missing = [name for name in self.circuit.inputs if name not in sources]
        if missing:
            raise SimulationError(f"missing sources for inputs: {missing}")
        extra = [name for name in sources if name not in self.circuit.inputs]
        if extra:
            raise SimulationError(f"sources for undeclared inputs: {extra}")

        run_counts = {src.n_runs for src in sources.values()}
        if sources:
            if len(run_counts) != 1:
                raise SimulationError(f"sources disagree on run count: {run_counts}")
            n_runs = run_counts.pop()
        else:
            n_runs = 1

        if record_nodes is None:
            record_nodes = [n for n in self.circuit.node_names]
        unknown = [n for n in record_nodes if n not in comp.node_index]
        if unknown:
            raise SimulationError(f"cannot record unknown nodes: {unknown}")

        scatter = IncidenceScatter(comp, n_runs)

        # --- settle to the DC operating point ---------------------------
        v0 = np.zeros((comp.n_free, n_runs))
        if settle > 0:
            settle_dt = max(dt, 0.1e-12)
            vals, derivs = self._stimulus_tables(
                sources, None, n_runs, frozen_at=t_start
            )
            _, __, v0 = integrate_fixed_indexed(
                self._make_rhs(vals, derivs, n_runs, scatter),
                v0,
                t_start - settle,
                t_start,
                dt=settle_dt,
                record_every=10**9,
            )

        # --- main run ----------------------------------------------------
        record_rows = np.array(
            [comp.free_pos[comp.node_index[n]] for n in record_nodes
             if comp.node_index[n] in comp.free_pos],
            dtype=int,
        )
        recorded_free = [
            n for n in record_nodes if comp.node_index[n] in comp.free_pos
        ]
        stage_times = fine_stage_times(t_start, t_stop, dt)
        vals, derivs = self._stimulus_tables(
            sources, stage_times, n_runs, frozen_at=None
        )
        t_rec, y_rec, _ = integrate_fixed_indexed(
            self._make_rhs(vals, derivs, n_runs, scatter),
            v0,
            t_start,
            t_stop,
            dt=dt,
            record_every=record_every,
            record_transform=lambda y: y[record_rows],
        )

        voltages: dict[str, np.ndarray] = {}
        for row, name in enumerate(recorded_free):
            voltages[name] = y_rec[:, row, :]
        # Fixed nodes requested for recording are reconstructed exactly.
        for name in record_nodes:
            if name in voltages:
                continue
            if name == GND:
                voltages[name] = np.zeros((t_rec.size, n_runs))
            elif name == VDD_NODE:
                voltages[name] = np.full((t_rec.size, n_runs), self.vdd)
            elif name in sources:
                voltages[name] = sources[name].value(t_rec)
        return TransientResult(t_rec, voltages, n_runs)
