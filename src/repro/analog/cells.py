"""Transistor-level standard cells shared by both analog engines.

A :class:`CellLibrary` fixes device models, sizings and interconnect
parasitics.  The same library instance is used by:

* :meth:`CellLibrary.add_inv` / :meth:`CellLibrary.add_nor2` / ... to
  instantiate cells into a full :class:`~repro.analog.netlist.AnalogCircuit`
  (characterization chains), and
* :class:`~repro.analog.staged.StagedSimulator`, which re-derives its
  per-gate ODEs from the identical parameters,

so the two engines are physically consistent (verified by tests comparing
them on inverter chains).

Pin convention for NOR2: pin 0 ("A") gates the series PMOS next to VDD and
one parallel NMOS; pin 1 ("B") gates the PMOS next to the output.  The
asymmetric stack position is why the paper trains separate ANNs per input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analog.mosfet import MosfetParams, NMOS_15NM, PMOS_15NM
from repro.analog.netlist import AnalogCircuit
from repro.errors import AnalogCircuitError


@dataclass(frozen=True)
class CellLibrary:
    """Device models, cell sizings and parasitics of the substitute library.

    Attributes
    ----------
    nmos, pmos:
        Compact-model parameters.
    inv_wn, inv_wp:
        Inverter pull-down / pull-up width multipliers.
    nor_wn, nor_wp:
        NOR2 widths: each parallel NMOS and each series PMOS (the series
        PMOS is upsized to compensate stacking).
    wire_cap:
        Interconnect capacitance per fanout branch in farads — identical
        for all stages, matching the paper's uniform-interconnect setup.
    staged_miller_factor:
        Extra multiple of each receiving pin's gate-drain capacitance added
        to the driver's load in the staged engine, compensating the
        receiver-side Miller coupling the staged topology lumps to ground.
        Calibrated against the full network engine on inverter chains.
    """

    nmos: MosfetParams = NMOS_15NM
    pmos: MosfetParams = PMOS_15NM
    inv_wn: float = 1.0
    inv_wp: float = 1.6
    nor_wn: float = 1.0
    nor_wp: float = 3.0
    wire_cap: float = 0.05e-15
    staged_miller_factor: float = 0.38

    # ------------------------------------------------------------------
    # capacitance bookkeeping (used by the staged engine and load models)
    # ------------------------------------------------------------------
    def input_capacitance(self, cell_type: str, pin: int = 0) -> float:
        """Gate capacitance presented by one input pin of a cell."""
        c_per_w_n = self.nmos.c_gs + self.nmos.c_gd
        c_per_w_p = self.pmos.c_gs + self.pmos.c_gd
        if cell_type == "INV":
            return c_per_w_n * self.inv_wn + c_per_w_p * self.inv_wp
        if cell_type == "NOR2":
            if pin not in (0, 1):
                raise AnalogCircuitError("NOR2 has pins 0 and 1")
            return c_per_w_n * self.nor_wn + c_per_w_p * self.nor_wp
        if cell_type == "NOR3":
            if pin not in (0, 1, 2):
                raise AnalogCircuitError("NOR3 has pins 0..2")
            return c_per_w_n * self.nor_wn + c_per_w_p * self.nor_wp
        if cell_type == "NAND2":
            if pin not in (0, 1):
                raise AnalogCircuitError("NAND2 has pins 0 and 1")
            return c_per_w_n * self.inv_wn * 2 + c_per_w_p * self.inv_wp
        raise AnalogCircuitError(f"unknown cell type {cell_type!r}")

    def input_miller_capacitance(self, cell_type: str, pin: int = 0) -> float:
        """Gate-drain (Miller) part of one input pin's capacitance."""
        if cell_type == "INV":
            return self.nmos.c_gd * self.inv_wn + self.pmos.c_gd * self.inv_wp
        if cell_type == "NOR2":
            if pin not in (0, 1):
                raise AnalogCircuitError("NOR2 has pins 0 and 1")
            return self.nmos.c_gd * self.nor_wn + self.pmos.c_gd * self.nor_wp
        raise AnalogCircuitError(f"unknown cell type {cell_type!r}")

    def output_self_capacitance(self, cell_type: str) -> float:
        """Drain capacitance a cell contributes to its own output node."""
        if cell_type == "INV":
            return (self.nmos.c_gd + self.nmos.c_db) * self.inv_wn + (
                self.pmos.c_gd + self.pmos.c_db
            ) * self.inv_wp
        if cell_type == "NOR2":
            # Output sees: P_bot drain, both NMOS drains.
            return (self.pmos.c_gd + self.pmos.c_db) * self.nor_wp + 2 * (
                self.nmos.c_gd + self.nmos.c_db
            ) * self.nor_wn
        raise AnalogCircuitError(f"unknown cell type {cell_type!r}")

    # ------------------------------------------------------------------
    # instantiation into a full AnalogCircuit
    # ------------------------------------------------------------------
    def add_inv(self, circuit: AnalogCircuit, inp: str, out: str) -> None:
        """Instantiate an inverter between nets ``inp`` and ``out``."""
        circuit.add_mosfet(self.pmos, out, inp, "vdd", width=self.inv_wp)
        circuit.add_mosfet(self.nmos, out, inp, "gnd", width=self.inv_wn)

    def add_nor2(self, circuit: AnalogCircuit, in_a: str, in_b: str, out: str) -> None:
        """Instantiate a NOR2; the internal PMOS-stack node is ``{out}.m``."""
        mid = f"{out}.m"
        circuit.add_mosfet(self.pmos, mid, in_a, "vdd", width=self.nor_wp)
        circuit.add_mosfet(self.pmos, out, in_b, mid, width=self.nor_wp)
        circuit.add_mosfet(self.nmos, out, in_a, "gnd", width=self.nor_wn)
        circuit.add_mosfet(self.nmos, out, in_b, "gnd", width=self.nor_wn)

    def add_nor3(
        self, circuit: AnalogCircuit, in_a: str, in_b: str, in_c: str, out: str
    ) -> None:
        """Three-input NOR (two internal stack nodes)."""
        mid1 = f"{out}.m1"
        mid2 = f"{out}.m2"
        circuit.add_mosfet(self.pmos, mid1, in_a, "vdd", width=self.nor_wp)
        circuit.add_mosfet(self.pmos, mid2, in_b, mid1, width=self.nor_wp)
        circuit.add_mosfet(self.pmos, out, in_c, mid2, width=self.nor_wp)
        for pin in (in_a, in_b, in_c):
            circuit.add_mosfet(self.nmos, out, pin, "gnd", width=self.nor_wn)

    def add_nand2(self, circuit: AnalogCircuit, in_a: str, in_b: str, out: str) -> None:
        """Two-input NAND (series NMOS stack, parallel PMOS)."""
        mid = f"{out}.m"
        circuit.add_mosfet(self.nmos, out, in_a, mid, width=self.inv_wn * 2)
        circuit.add_mosfet(self.nmos, mid, in_b, "gnd", width=self.inv_wn * 2)
        circuit.add_mosfet(self.pmos, out, in_a, "vdd", width=self.inv_wp)
        circuit.add_mosfet(self.pmos, out, in_b, "vdd", width=self.inv_wp)

    def add_wire_load(self, circuit: AnalogCircuit, net: str, branches: int = 1) -> None:
        """Add interconnect capacitance for ``branches`` fanout branches."""
        if branches < 1:
            raise AnalogCircuitError("need at least one branch")
        circuit.add_capacitor(net, "gnd", self.wire_cap * branches)


#: The library instance used everywhere unless a test overrides it.
DEFAULT_LIBRARY = CellLibrary()
