"""Prediction-as-a-service: a worker fleet over the compiled cores.

:class:`PredictionService` turns the "fast library" into a serving
layer: a thread worker pool holds *warm* compiled circuits keyed by the
netlist digest, concurrent ``simulate`` requests for the same circuit
coalesce into one lock-step ``simulate_batch`` (batched == serial is
the compiled cores' parity contract), a bounded queue applies
backpressure (:class:`~repro.errors.ServiceOverloaded`), and long-lived
connections stream through the checkpointable sessions of
:mod:`repro.core.session` via :meth:`PredictionService.open_stream`.

``python -m repro.cli serve-bench`` measures the layer under a
synthetic many-client load and records p50/p99 latency and
circuits-per-second into ``BENCH_serve.json``.
"""

from repro.errors import (
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
)
from repro.options import ExecutionOptions
from repro.serve.service import PredictionService, ServiceStream

__all__ = [
    "ExecutionOptions",
    "PredictionService",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceStream",
    "ServiceTimeout",
]
