"""Synthetic many-client load bench for :class:`PredictionService`.

Drives the service with a fleet of closed-loop clients (each submits a
request, waits for the result, submits the next) over a small circuit
mix, twice: once with coalescing disabled (``max_batch=1`` — every
request dispatches as its own single-run batch, the naive baseline) and
once with the coalescer on.  Per-request latency (p50/p99) and
circuits-per-second throughput for both modes, plus their ratio, go
into one ledger record for ``BENCH_serve.json``.

Every coalesced response is parity-checked against a *serial*
per-request ``simulate`` reference — digital results must be bitwise
equal, sigmoid parameters within the package-wide 0.05 ps bound — so
the speedup column can never be bought with wrong answers.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.models import GateModelBundle
from repro.core.simulator import SigmoidCircuitSimulator
from repro.core.trace import SigmoidalTrace
from repro.digital.characterize import build_instance_delays
from repro.digital.delay import DelayLibrary
from repro.digital.simulator import DigitalSimulator
from repro.digital.trace import DigitalTrace
from repro.errors import ServiceError
from repro.eval.stimuli import StimulusConfig, random_pi_sources
from repro.eval.table1 import nor_mapped
from repro.ledger import append_bench_record  # re-exported: cli + benches import it from here
from repro.options import ExecutionOptions
from repro.serve.service import PredictionService

#: Sigmoid parity bound vs the serial reference: 0.05 ps in scaled
#: units — the same contract the compiled/interpreted and streaming
#: parity suites use.
PARAM_ATOL = 5e-4

#: Default synthetic load shape (CI-scale; the CLI can raise it).
DEFAULT_CIRCUITS = ("c17", "c499_like")
DEFAULT_STIMULUS = StimulusConfig(20e-12, 10e-12, 6)


def _client_stimuli(cores, stimulus, n_stimuli, seed):
    """Distinct per-(circuit, slot) stimuli: digital + sigmoid forms."""
    jobs = []
    for ci, core in enumerate(cores):
        per_core = []
        for si in range(n_stimuli):
            sources, t_stop = random_pi_sources(
                core.primary_inputs, stimulus, seed + 1000 * ci + si
            )
            pi_digital = {
                pi: DigitalTrace(
                    bool(src.initial_levels[0]),
                    src.run_transitions[0].tolist(),
                )
                for pi, src in sources.items()
            }
            pi_sigmoid = {
                pi: SigmoidalTrace.from_digital(trace)
                for pi, trace in pi_digital.items()
            }
            per_core.append((pi_digital, pi_sigmoid, t_stop))
        jobs.append(per_core)
    return jobs


def _serial_reference(cores, jobs, bundle, delay_library, kind, execution):
    """Per-request serial ``simulate`` results, the parity oracle."""
    refs = {}
    for ci, core in enumerate(cores):
        if kind == "sigmoid":
            sim = SigmoidCircuitSimulator(
                core, bundle, compiled=execution.compiled
            )
            for si, (_, pi_sigmoid, _) in enumerate(jobs[ci]):
                refs[(ci, si)] = sim.simulate(pi_sigmoid)
        else:
            sim = DigitalSimulator(
                core,
                build_instance_delays(core, delay_library),
                compiled=execution.compiled,
            )
            for si, (pi_digital, _, t_stop) in enumerate(jobs[ci]):
                refs[(ci, si)] = sim.simulate(pi_digital, t_stop)
    return refs


def assert_result_parity(kind, got, ref, context=""):
    """Digital bitwise / sigmoid <= 0.05 ps against the reference."""
    if set(got) != set(ref):
        raise AssertionError(
            f"{context}: net sets diverged: {sorted(got)} vs {sorted(ref)}"
        )
    for net in ref:
        if kind == "digital":
            if bool(got[net].initial) != bool(ref[net].initial) or (
                got[net].times != ref[net].times
            ):
                raise AssertionError(
                    f"{context}: digital trace diverged on {net}"
                )
        else:
            g, r = got[net], ref[net]
            if int(g.initial_level) != int(r.initial_level):
                raise AssertionError(
                    f"{context}: initial level diverged on {net}"
                )
            gp = np.asarray(g.params, dtype=float).reshape(-1, 2)
            rp = np.asarray(r.params, dtype=float).reshape(-1, 2)
            if gp.shape != rp.shape:
                raise AssertionError(
                    f"{context}: transition count diverged on {net}"
                )
            if not np.allclose(gp, rp, atol=PARAM_ATOL):
                raise AssertionError(
                    f"{context}: sigmoid params diverged on {net} "
                    f"(max |d| = {np.max(np.abs(gp - rp)):.2e})"
                )


def _drive_load(
    service,
    cores,
    jobs,
    kind,
    *,
    n_clients,
    requests_per_client,
    timeout,
):
    """Closed-loop clients; returns (latencies_s, wall_s, results)."""
    n_stimuli = len(jobs[0])
    digests = [service.register(core) for core in cores]
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    results: list[list] = [[] for _ in range(n_clients)]
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_clients + 1)

    def client(k):
        try:
            barrier.wait()
            for j in range(requests_per_client):
                ci = (k + j) % len(cores)
                si = (k * requests_per_client + j) % n_stimuli
                pi_digital, pi_sigmoid, t_stop = jobs[ci][si]
                t0 = time.perf_counter()
                if kind == "sigmoid":
                    fut = service.submit(
                        digests[ci], pi_sigmoid, kind="sigmoid"
                    )
                else:
                    fut = service.submit(
                        digests[ci], pi_digital, kind="digital", t_stop=t_stop
                    )
                out = fut.result(timeout=timeout)
                latencies[k].append(time.perf_counter() - t0)
                results[k].append(((ci, si), out))
        except BaseException as exc:  # surfaced after the join
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(k,), daemon=True)
        for k in range(n_clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t_start = time.perf_counter()
    for t in threads:
        t.join(timeout=timeout * requests_per_client + 60.0)
    wall = time.perf_counter() - t_start
    if errors:
        raise errors[0]
    if any(t.is_alive() for t in threads):
        raise ServiceError("load clients did not finish in time")
    flat = [lat for per in latencies for lat in per]
    return flat, wall, results


def _quantile_ms(latencies, q):
    if not latencies:
        return 0.0
    ranked = sorted(latencies)
    idx = min(len(ranked) - 1, int(round(q * (len(ranked) - 1))))
    return ranked[idx] * 1e3


def run_serve_bench(
    bundle: GateModelBundle,
    delay_library: DelayLibrary | None = None,
    *,
    circuits: tuple[str, ...] = DEFAULT_CIRCUITS,
    kind: str = "sigmoid",
    stimulus: StimulusConfig = DEFAULT_STIMULUS,
    n_clients: int = 16,
    requests_per_client: int = 6,
    n_stimuli: int = 4,
    seed: int = 0,
    n_workers: int = 4,
    batch_window: float = 0.005,
    max_batch: int = 32,
    timeout: float = 120.0,
    execution: ExecutionOptions | None = None,
    check_parity: bool = True,
    target: str | None = None,
) -> dict:
    """Measure coalesced vs naive dispatch under a many-client load.

    Returns the ledger record (see module docstring); the caller
    appends it to ``BENCH_serve.json`` via :func:`append_bench_record`.
    Each mode additionally records ``compile_cache_delta`` — the
    compile-cache hits/misses *this run* caused (snapshot-and-diff
    around the mode, so the cumulative process-wide counters don't
    blur repeated bench invocations together).  ``target`` overrides
    the execution target of the fused sigmoid kernels.
    """
    from repro.core.compile import compile_cache_info

    if n_clients < 1 or requests_per_client < 1:
        raise ServiceError("need at least one client and one request")
    execution = execution or ExecutionOptions()
    if target is not None:
        execution = execution.merged(target=target)
    cores = [nor_mapped(name) for name in circuits]
    jobs = _client_stimuli(cores, stimulus, n_stimuli, seed)

    modes = {}
    parity_checked = 0
    refs = (
        _serial_reference(
            cores, jobs, bundle, delay_library, kind, execution
        )
        if check_parity
        else {}
    )
    for mode, window, batch_bound in (
        ("naive", 0.0, 1),
        ("coalesced", batch_window, max_batch),
    ):
        cache_before = compile_cache_info()
        service = PredictionService(
            bundle,
            delay_library,
            n_workers=n_workers,
            max_pending=max(256, n_clients * requests_per_client),
            batch_window=window,
            max_batch=batch_bound,
            execution=execution,
        )
        try:
            latencies, wall, results = _drive_load(
                service,
                cores,
                jobs,
                kind,
                n_clients=n_clients,
                requests_per_client=requests_per_client,
                timeout=timeout,
            )
            stats = service.stats()
        finally:
            service.close()
        cache_after = compile_cache_info()
        if check_parity and mode == "coalesced":
            for per_client in results:
                for (ci, si), out in per_client:
                    assert_result_parity(
                        kind,
                        out,
                        refs[(ci, si)],
                        context=f"{circuits[ci]} stimulus {si}",
                    )
                    parity_checked += 1
        n_requests = len(latencies)
        modes[mode] = {
            "wall_s": round(wall, 4),
            "p50_ms": round(_quantile_ms(latencies, 0.50), 3),
            "p99_ms": round(_quantile_ms(latencies, 0.99), 3),
            "mean_ms": round(statistics.fmean(latencies) * 1e3, 3),
            "circuits_per_s": round(n_requests / wall, 2),
            "batches": stats["batches"],
            "coalesced_requests": stats["coalesced"],
            "mean_batch": stats["mean_batch"],
            "max_batch_seen": stats["max_batch"],
            "compile_cache_delta": {
                "hits": cache_after["hits"] - cache_before["hits"],
                "misses": cache_after["misses"] - cache_before["misses"],
            },
        }

    speedup = (
        modes["coalesced"]["circuits_per_s"] / modes["naive"]["circuits_per_s"]
        if modes["naive"]["circuits_per_s"]
        else float("inf")
    )
    return {
        "bench": "serve_load",
        "kind": kind,
        "circuits": list(circuits),
        "stimulus": stimulus.label,
        "n_clients": n_clients,
        "requests_per_client": requests_per_client,
        "n_requests": n_clients * requests_per_client,
        "n_stimuli_per_circuit": n_stimuli,
        "n_workers": n_workers,
        "batch_window_s": batch_window,
        "max_batch": max_batch,
        "backend": execution.backend,
        "compiled": execution.compiled,
        "target": execution.target,
        "naive": modes["naive"],
        "coalesced": modes["coalesced"],
        "throughput_ratio": round(speedup, 3),
        "parity_checked": parity_checked,
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


