"""The prediction service: warm model fleet, coalescer, worker pool.

Request lifecycle
-----------------

``submit()`` validates the request, resolves (or registers) the target
circuit in the warm fleet, and appends the request to one bounded
pending queue shared by every worker thread — full queue means an
immediate :class:`~repro.errors.ServiceOverloaded` (backpressure is the
caller's signal to shed or retry, never silent queuing without bound).
A worker takes the oldest request, holds a short *batching window*
(``batch_window`` seconds) for more requests with the same coalescing
key — ``(kind, netlist digest, backend, compiled, chunk_size, target,
record nets)`` — then executes the whole group as ONE lock-step
``simulate_batch`` on the warm simulator and resolves each request's
future with its own run.  Batched execution equals serial execution
(digital bitwise, sigmoid within the standing 0.05 ps parity bound), so
coalescing is invisible to callers except as latency amortization.

``PredictionService(..., program=True)`` widens the sigmoid coalescing
key further: one-shot compiled requests coalesce *across circuits* into
a single whole-zoo :class:`~repro.core.fused.CompiledProgram`
(:meth:`CompiledProgram.run_jobs` advances every member circuit in the
same lock-step pass), so a mixed-circuit burst costs one fused dispatch
instead of one batch per digest.

Warmness and pinning
--------------------

``register()`` compiles the circuit once and *pins* the compilation
(:func:`repro.core.compile.compile_circuit` with ``pin=True``): LRU
eviction skips fleet members, and the fleet entry additionally holds
strong references, so even a racing
:func:`~repro.core.compile.clear_compile_cache` cannot cold-start an
in-flight request — it only resets the shared cache, which the fleet
re-primes.

Threading model
---------------

Workers are threads: the execution cores are numpy-heavy (BLAS releases
the GIL) and the compile cache is already lock-guarded, so threads
share the warm fleet for free; a process pool would have to re-compile
per worker.  ``asubmit`` bridges the same futures into asyncio.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro.analog.cells import DEFAULT_LIBRARY, CellLibrary
from repro.circuits.netlist import Netlist
from repro.core.compile import (
    compile_cache_info,
    compile_circuit,
    netlist_digest,
    unpin_circuit,
)
from repro.core.models import GateModelBundle
from repro.core.simulator import SigmoidCircuitSimulator
from repro.digital.delay import DelayLibrary
from repro.digital.simulator import DigitalSimulator
from repro.errors import (
    ModelError,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceTimeout,
)
from repro.options import ExecutionOptions, normalize_execution

REQUEST_KINDS = ("sigmoid", "digital")


@dataclass
class _Request:
    """One queued prediction request (internal)."""

    key: tuple
    digest: str
    kind: str
    pi_traces: dict
    t_stop: float | None
    record: tuple[str, ...] | None
    options: ExecutionOptions
    deadline: float | None
    future: Future = field(default_factory=Future)

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class _FleetEntry:
    """One warm circuit: pinned compilation + lazily built simulators."""

    def __init__(self, netlist: Netlist, digest: str) -> None:
        self.netlist = netlist
        self.digest = digest
        self.lock = threading.Lock()
        self.compiled_circuit = None  # pinned sigmoid array program
        self._sigmoid: dict[tuple, SigmoidCircuitSimulator] = {}
        self._digital: dict[bool, DigitalSimulator] = {}

    def sigmoid(
        self, bundle: GateModelBundle, compiled: bool, target: str = "numpy"
    ) -> SigmoidCircuitSimulator:
        with self.lock:
            sim = self._sigmoid.get((compiled, target))
            if sim is None:
                sim = SigmoidCircuitSimulator(
                    self.netlist, bundle, compiled=compiled, target=target
                )
                self._sigmoid[(compiled, target)] = sim
            return sim

    def digital(
        self,
        delay_library: DelayLibrary,
        library: CellLibrary,
        compiled: bool,
    ) -> DigitalSimulator:
        from repro.digital.characterize import build_instance_delays

        with self.lock:
            sim = self._digital.get(compiled)
            if sim is None:
                sim = DigitalSimulator(
                    self.netlist,
                    build_instance_delays(
                        self.netlist, delay_library, library
                    ),
                    compiled=compiled,
                )
                self._digital[compiled] = sim
            return sim


class ServiceStream:
    """A long-lived connection: one streaming session owned by a service.

    Thin delegation over the session (``feed``/``state``/``finish``)
    plus service bookkeeping: the handle keeps the fleet entry warm for
    its whole life, and ``finish``/``close`` deregister it.  Feeds run
    in the caller's thread — a stream is a single client's ordered
    conversation, which must not interleave with the request queue.
    """

    def __init__(self, service: "PredictionService", session, digest: str):
        self._service = service
        self._session = session
        self.digest = digest
        self._open = True

    @property
    def session(self):
        return self._session

    def feed(self, chunks, advance_to=None):
        if not self._open:
            raise ServiceClosed("stream is closed")
        return self._session.feed(chunks, advance_to=advance_to)

    def state(self) -> dict:
        return self._session.state()

    def finish(self):
        if not self._open:
            raise ServiceClosed("stream is closed")
        try:
            return self._session.finish()
        finally:
            self.close()

    def close(self) -> None:
        if self._open:
            self._open = False
            self._service._stream_closed(self)

    def __enter__(self) -> "ServiceStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PredictionService:
    """Serve sigmoid/digital circuit prediction from a warm worker fleet.

    Parameters
    ----------
    bundle:
        Trained transfer-model bundle every sigmoid request runs on.
    delay_library:
        Characterized digital delay library; required only when digital
        requests are submitted.
    n_workers:
        Worker threads (>= 1).  One worker still coalesces — it drains
        whole same-key groups per wakeup.
    max_pending:
        Bounded-queue depth; a full queue rejects with
        :class:`~repro.errors.ServiceOverloaded`.
    batch_window:
        Seconds a worker waits for same-key requests before executing
        (latency it trades for batching).  ``0`` disables waiting;
        already-queued same-key requests still coalesce.
    max_batch:
        Largest coalesced group (``1`` = naive per-request dispatch,
        the bench's baseline mode).
    execution:
        Service-default :class:`~repro.options.ExecutionOptions`;
        per-request options override it.  ``backend`` must match the
        bundle's.
    program:
        Opt-in whole-zoo dispatch: one-shot compiled sigmoid requests
        coalesce **across digests** into one multi-circuit
        :class:`~repro.core.fused.CompiledProgram` per batch (built
        once per distinct warm circuit combination, cached).  Chunked
        or interpreted requests keep the per-digest path.
    """

    #: Bound on cached cross-circuit programs (distinct digest
    #: combinations); oldest combination is dropped first.
    MAX_PROGRAMS = 8

    def __init__(
        self,
        bundle: GateModelBundle,
        delay_library: DelayLibrary | None = None,
        *,
        n_workers: int = 4,
        max_pending: int = 256,
        batch_window: float = 0.002,
        max_batch: int = 64,
        execution: ExecutionOptions | None = None,
        library: CellLibrary = DEFAULT_LIBRARY,
        program: bool = False,
    ) -> None:
        if n_workers < 1:
            raise ServiceError("n_workers must be >= 1")
        if max_pending < 1:
            raise ServiceError("max_pending must be >= 1")
        if max_batch < 1:
            raise ServiceError("max_batch must be >= 1")
        if batch_window < 0:
            raise ServiceError("batch_window must be non-negative")
        self.bundle = bundle
        self.delay_library = delay_library
        self.library = library
        self.execution = normalize_execution(execution)
        if (
            self.bundle.backend != "unknown"
            and self.execution.backend != self.bundle.backend
        ):
            raise ModelError(
                f"service backend is {self.execution.backend!r} but the "
                f"bundle was trained with the {self.bundle.backend!r} backend"
            )
        self.max_pending = max_pending
        self.batch_window = float(batch_window)
        self.max_batch = max_batch
        self.program = bool(program)
        self._programs: dict[tuple, object] = {}

        self._lock = threading.Condition()
        self._pending: deque[_Request] = deque()
        #: Keys some worker is currently collecting a group for: other
        #: workers skip them, so one batching window absorbs the whole
        #: concurrent same-key burst instead of splitting it N ways.
        self._collecting: set = set()
        self._fleet: dict[str, _FleetEntry] = {}
        self._streams: list[ServiceStream] = []
        self._inflight = 0
        self._draining = False
        self._stopping = False
        self._stats = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
            "timed_out": 0,
            "cancelled": 0,
            "batches": 0,
            "coalesced": 0,
            "max_batch": 0,
            "streams_opened": 0,
            "program_batches": 0,
        }
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-{k}",
                daemon=True,
            )
            for k in range(n_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- fleet ----------------------------------------------------------
    def register(self, netlist: Netlist) -> str:
        """Warm a circuit into the fleet; returns its digest.

        Compiles (and pins) the sigmoid array program up front when the
        service default is compiled execution, so the first request
        pays queueing latency only.  Registering twice is a no-op.
        """
        self._require_open()
        netlist.validate()
        digest = netlist_digest(netlist)
        with self._lock:
            entry = self._fleet.get(digest)
        if entry is not None:
            return digest
        entry = _FleetEntry(netlist, digest)
        if self.execution.compiled:
            entry.compiled_circuit = compile_circuit(
                netlist, self.bundle, pin=True
            )
            entry.sigmoid(self.bundle, True)
        with self._lock:
            raced = self._fleet.get(digest)
            if raced is None:
                self._fleet[digest] = entry
        if raced is not None and entry.compiled_circuit is not None:
            # Lost a registration race: drop our duplicate pin so the
            # winner's close() leaves the cache entry unpinned.
            unpin_circuit(netlist, self.bundle)
        return digest

    def unregister(self, circuit) -> bool:
        """Evict a circuit from the warm fleet; returns whether it was warm.

        ``circuit`` is a :class:`Netlist` or a digest.  Drops the fleet
        entry (simulators and all), releases the compile-cache pin so
        the compilation becomes ordinarily LRU-evictable again, and
        forgets any cached cross-circuit programs that included the
        member.  In-flight requests already holding the entry finish
        normally (they own their references); *queued* requests for the
        digest fail when their batch starts.  Unknown digests return
        ``False`` — eviction is idempotent.
        """
        digest = (
            netlist_digest(circuit)
            if isinstance(circuit, Netlist)
            else str(circuit)
        )
        with self._lock:
            entry = self._fleet.pop(digest, None)
            self._programs = {
                digests: program
                for digests, program in self._programs.items()
                if digest not in digests
            }
            # Claim the pin under the lock so a concurrent close() (or a
            # second unregister) can never double-unpin the compilation.
            compiled = entry.compiled_circuit if entry is not None else None
            if entry is not None:
                entry.compiled_circuit = None
        if entry is None:
            return False
        if compiled is not None:
            unpin_circuit(entry.netlist, self.bundle)
        return True

    def circuits(self) -> list[str]:
        """Digests of the currently warm fleet members."""
        with self._lock:
            return sorted(self._fleet)

    def _resolve(self, circuit) -> _FleetEntry:
        if isinstance(circuit, Netlist):
            digest = self.register(circuit)
        else:
            digest = str(circuit)
        with self._lock:
            entry = self._fleet.get(digest)
        if entry is None:
            raise ServiceError(
                f"unknown circuit digest {digest!r}; register() the "
                "netlist first or submit the Netlist itself"
            )
        return entry

    # -- submission -----------------------------------------------------
    def submit(
        self,
        circuit,
        pi_traces: dict,
        *,
        kind: str = "sigmoid",
        t_stop: float | None = None,
        record_nets: list[str] | None = None,
        execution: ExecutionOptions | None = None,
        timeout: float | None = None,
    ) -> Future:
        """Enqueue one prediction request; returns its future.

        ``circuit`` is a :class:`Netlist` (auto-registered on first
        sight) or the digest of an already registered one;
        ``pi_traces`` maps primary inputs to one run's traces
        (:class:`SigmoidalTrace` for ``kind="sigmoid"``,
        :class:`DigitalTrace` + ``t_stop`` for ``kind="digital"``).
        The future resolves to the same per-run dict the simulator's
        ``simulate`` would return.  ``timeout`` bounds *queue* time: a
        request no worker has started within its deadline fails with
        :class:`~repro.errors.ServiceTimeout` (execution, once started,
        runs to completion).
        """
        if kind not in REQUEST_KINDS:
            raise ServiceError(
                f"unknown request kind {kind!r}; options: {REQUEST_KINDS}"
            )
        if timeout is not None and timeout <= 0:
            raise ServiceError("timeout must be positive")
        options = (
            self.execution.merged()
            if execution is None
            else normalize_execution(execution)
        )
        if (
            kind == "sigmoid"
            and self.bundle.backend != "unknown"
            and options.backend != self.bundle.backend
        ):
            raise ModelError(
                f"request backend is {options.backend!r} but the bundle "
                f"was trained with the {self.bundle.backend!r} backend"
            )
        if kind == "digital":
            if self.delay_library is None:
                raise ServiceError(
                    "service has no delay library; digital requests "
                    "need PredictionService(..., delay_library=...)"
                )
            if t_stop is None:
                raise ServiceError("digital requests need t_stop")
        self._require_open()
        entry = self._resolve(circuit)
        record = None if record_nets is None else tuple(record_nets)
        if (
            self.program
            and kind == "sigmoid"
            and options.compiled
            and options.chunk_size is None
        ):
            # Whole-zoo mode: one-shot compiled sigmoid requests share
            # one key regardless of circuit — the fused program runs
            # every member circuit in the same lock-step pass, and each
            # job carries its own digest/record.
            key = ("sigmoid-program", options.backend, options.target)
        else:
            key = (
                kind,
                entry.digest,
                options.backend,
                options.compiled,
                options.chunk_size,
                options.target,
                record,
            )
        request = _Request(
            key=key,
            digest=entry.digest,
            kind=kind,
            pi_traces=dict(pi_traces),
            t_stop=t_stop,
            record=record,
            options=options,
            deadline=None if timeout is None else time.monotonic() + timeout,
        )
        with self._lock:
            if self._draining or self._stopping:
                raise ServiceClosed("service is draining; no new requests")
            if len(self._pending) >= self.max_pending:
                self._stats["rejected"] += 1
                raise ServiceOverloaded(
                    f"pending queue is full ({self.max_pending} requests); "
                    "retry with backoff or raise max_pending"
                )
            self._pending.append(request)
            self._stats["submitted"] += 1
            self._lock.notify()
        return request.future

    async def asubmit(self, circuit, pi_traces: dict, **kwargs):
        """Asyncio twin of :meth:`submit`: awaits the request's result.

        Backpressure surfaces at call time exactly like ``submit``
        (:class:`~repro.errors.ServiceOverloaded` raises before any
        awaiting happens).
        """
        import asyncio

        return await asyncio.wrap_future(
            self.submit(circuit, pi_traces, **kwargs)
        )

    # -- streaming ------------------------------------------------------
    def open_stream(
        self,
        circuit,
        *,
        kind: str = "sigmoid",
        t_stops: list[float] | None = None,
        record_nets: list[str] | None = None,
        guard: float | None = None,
        execution: ExecutionOptions | None = None,
    ) -> ServiceStream:
        """Open a long-lived streaming connection onto a warm circuit.

        Returns a :class:`ServiceStream` wrapping a
        :class:`~repro.core.session.SimulationSession` from the fleet's
        warm simulator — ``feed`` chunks as they arrive, checkpoint
        with ``state()``, ``finish()`` to flush and release the handle.
        """
        if kind not in REQUEST_KINDS:
            raise ServiceError(
                f"unknown request kind {kind!r}; options: {REQUEST_KINDS}"
            )
        self._require_open()
        entry = self._resolve(circuit)
        options = (
            self.execution.merged()
            if execution is None
            else normalize_execution(execution)
        )
        if kind == "sigmoid":
            session = entry.sigmoid(
                self.bundle, options.compiled, options.target
            ).open_session(record_nets, guard=guard)
        else:
            if self.delay_library is None:
                raise ServiceError(
                    "service has no delay library; digital streams "
                    "need PredictionService(..., delay_library=...)"
                )
            if t_stops is None:
                raise ServiceError("digital streams need t_stops")
            session = entry.digital(
                self.delay_library, self.library, options.compiled
            ).open_session(t_stops, record_nets=record_nets)
        stream = ServiceStream(self, session, entry.digest)
        with self._lock:
            self._streams.append(stream)
            self._stats["streams_opened"] += 1
        return stream

    def _stream_closed(self, stream: ServiceStream) -> None:
        with self._lock:
            if stream in self._streams:
                self._streams.remove(stream)

    # -- lifecycle ------------------------------------------------------
    def _require_open(self) -> None:
        with self._lock:
            if self._draining or self._stopping:
                raise ServiceClosed("service is draining or closed")

    def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting requests and wait for queued work to finish.

        Returns ``True`` once the queue and every in-flight batch are
        done, ``False`` if ``timeout`` elapsed first (the drain keeps
        progressing either way).  Open streams are untouched: they are
        client-paced conversations, not queued work.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._draining = True
            self._lock.notify_all()
            while self._pending or self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._lock.wait(remaining)
        return True

    def close(self, timeout: float | None = None) -> None:
        """Drain, stop the workers, and release the fleet's cache pins.

        Idempotent.  Futures already resolved stay valid; open streams
        keep working (they hold their own references) but no new ones
        can be opened.
        """
        self.drain(timeout)
        with self._lock:
            self._stopping = True
            self._lock.notify_all()
        for worker in self._workers:
            worker.join(timeout)
        with self._lock:
            pinned = []
            for entry in self._fleet.values():
                if entry.compiled_circuit is not None:
                    pinned.append(entry.netlist)
                    entry.compiled_circuit = None
        for netlist in pinned:
            unpin_circuit(netlist, self.bundle)

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- observability --------------------------------------------------
    def stats(self) -> dict:
        """JSON-friendly snapshot of service + compile-cache counters.

        ``mean_batch`` is the coalescing win: completed requests per
        executed batch (1.0 = no coalescing happened).
        """
        with self._lock:
            snapshot = dict(self._stats)
            snapshot["pending"] = len(self._pending)
            snapshot["inflight"] = self._inflight
            snapshot["fleet"] = len(self._fleet)
            snapshot["streams_open"] = len(self._streams)
        batches = snapshot["batches"]
        snapshot["mean_batch"] = (
            round(snapshot["completed"] / batches, 3) if batches else 0.0
        )
        snapshot["compile_cache"] = compile_cache_info()
        return snapshot

    # -- worker ---------------------------------------------------------
    def _take_group(self) -> "list[_Request] | None":
        """Block for the next request, then coalesce its key group.

        Returns ``None`` when the service is stopping and the queue is
        empty.  Holding the batching window is a condition wait, so a
        same-key arrival or ``drain()`` wakes the worker immediately.
        A key being collected is claimed: other workers pass over it
        (waiting if nothing else is pending), so a concurrent same-key
        burst lands in ONE batching window instead of splitting across
        workers.
        """
        with self._lock:
            first = None
            while first is None:
                for idx, request in enumerate(self._pending):
                    if request.key not in self._collecting:
                        first = request
                        del self._pending[idx]
                        break
                else:
                    if self._stopping and not self._pending:
                        return None
                    self._lock.wait()
            self._collecting.add(first.key)
            group = [first]
            self._inflight += 1

            def extract_same_key() -> None:
                if len(group) >= self.max_batch:
                    return
                kept: deque[_Request] = deque()
                while self._pending and len(group) < self.max_batch:
                    request = self._pending.popleft()
                    if request.key == first.key:
                        group.append(request)
                        self._inflight += 1
                    else:
                        kept.append(request)
                kept.extend(self._pending)
                self._pending = kept

            extract_same_key()
            if self.max_batch > 1 and self.batch_window > 0:
                window_end = time.monotonic() + self.batch_window
                while (
                    len(group) < self.max_batch
                    and not self._draining
                    and not self._stopping
                ):
                    remaining = window_end - time.monotonic()
                    if remaining <= 0:
                        break
                    self._lock.wait(remaining)
                    extract_same_key()
            self._collecting.discard(first.key)
            # Late same-key arrivals (or a max_batch overflow) are now
            # claimable by any worker, including one currently waiting.
            self._lock.notify_all()
        return group

    def _finish_group(self, n: int) -> None:
        with self._lock:
            self._inflight -= n
            self._lock.notify_all()

    def _worker_loop(self) -> None:
        while True:
            group = self._take_group()
            if group is None:
                return
            try:
                self._execute(group)
            finally:
                self._finish_group(len(group))

    @staticmethod
    def _resolve_future(future, result=None, exception=None) -> None:
        """Resolve a request future without ever raising.

        A client can cancel (or a timeout can resolve) a future between
        our check and the set — ``InvalidStateError`` here would kill
        the worker thread and strand every other request in the group.
        An already-resolved future needs nothing from us.
        """
        try:
            if exception is not None:
                future.set_exception(exception)
            else:
                future.set_result(result)
        except Exception:
            pass

    def _execute(self, group: "list[_Request]") -> None:
        now = time.monotonic()
        live: list[_Request] = []
        for request in group:
            if request.expired(now):
                with self._lock:
                    self._stats["timed_out"] += 1
                self._resolve_future(
                    request.future,
                    exception=ServiceTimeout(
                        "request spent longer than its timeout queued "
                        f"(circuit {request.digest[:12]})"
                    ),
                )
            elif not request.future.set_running_or_notify_cancel():
                with self._lock:
                    self._stats["cancelled"] += 1
            else:
                live.append(request)
        if not live:
            return
        try:
            results = self._run_batch(live)
        except BaseException as exc:  # noqa: BLE001 - forwarded to futures
            with self._lock:
                self._stats["failed"] += len(live)
            for request in live:
                self._resolve_future(request.future, exception=exc)
            return
        with self._lock:
            self._stats["batches"] += 1
            self._stats["completed"] += len(live)
            self._stats["coalesced"] += len(live) - 1
            self._stats["max_batch"] = max(
                self._stats["max_batch"], len(live)
            )
        for request, result in zip(live, results):
            self._resolve_future(request.future, result)

    def _run_batch(self, group: "list[_Request]") -> list:
        """One lock-step ``simulate_batch`` over a coalesced group."""
        first = group[0]
        options = first.options
        if first.key[0] == "sigmoid-program":
            return self._run_program(group, options)
        with self._lock:
            entry = self._fleet.get(first.digest)
        if entry is None:
            raise ServiceError(
                f"circuit {first.digest[:12]} was unregistered while "
                "its request was queued"
            )
        runs = [request.pi_traces for request in group]
        if first.kind == "sigmoid":
            simulator = entry.sigmoid(
                self.bundle, options.compiled, options.target
            )
            record = None if first.record is None else list(first.record)
            if options.chunk_size is None:
                return simulator.simulate_batch(runs, record_nets=record)
            from repro.core.session import stream_sigmoid_batch

            return stream_sigmoid_batch(
                simulator, runs, options.chunk_size, record_nets=record
            )
        simulator = entry.digital(
            self.delay_library, self.library, options.compiled
        )
        t_stops = [request.t_stop for request in group]
        if options.chunk_size is None:
            return simulator.simulate_batch(runs, t_stops)
        from repro.digital.session import stream_digital_batch

        return stream_digital_batch(
            simulator, runs, t_stops, options.chunk_size
        )

    def _run_program(self, group: "list[_Request]", options) -> list:
        """Cross-circuit dispatch: one fused program runs the whole group."""
        digests = tuple(sorted({request.digest for request in group}))
        index_of = {digest: k for k, digest in enumerate(digests)}
        with self._lock:
            program = self._programs.get(digests)
            entries = {d: self._fleet.get(d) for d in digests}
        missing = [d for d, entry in entries.items() if entry is None]
        if missing:
            raise ServiceError(
                f"circuit {missing[0][:12]} was unregistered while its "
                "request was queued"
            )
        if program is None:
            from repro.core.fused import compile_program

            program = compile_program(
                [entries[d].netlist for d in digests], self.bundle
            )
            # Re-check membership under the lock: compilation ran
            # outside it, so an unregister may have purged this digest
            # combination in between.  Caching the stale program would
            # undo that purge — every later batch for these digests
            # would dereference the popped fleet member — so the group
            # fails cleanly instead (identity compare: a re-registered
            # twin is a different entry and must not adopt our pins).
            with self._lock:
                evicted = [
                    d for d in digests
                    if self._fleet.get(d) is not entries[d]
                ]
                if not evicted:
                    while len(self._programs) >= self.MAX_PROGRAMS:
                        self._programs.pop(next(iter(self._programs)))
                    self._programs[digests] = program
            if evicted:
                raise ServiceError(
                    f"circuit {evicted[0][:12]} was unregistered while "
                    "its request was queued"
                )
        jobs = [
            (
                index_of[request.digest],
                request.pi_traces,
                None if request.record is None else list(request.record),
            )
            for request in group
        ]
        results = program.run_jobs(jobs, target=options.target)
        with self._lock:
            self._stats["program_batches"] += 1
        return results
