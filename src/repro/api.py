"""The package facade: one flat namespace over the layered internals.

Everything a consumer of the reproduction needs — load a trained
bundle, compile a circuit, predict traces (one-shot, batched, or
streaming), stand up a :class:`~repro.serve.PredictionService`, run the
paper's Table I or the fuzz harness — is importable from ``repro``
directly::

    import repro

    bundle = repro.load_bundle(scale="tiny")
    traces = repro.simulate(netlist, pi_traces, bundle)

The deep module paths (``repro.core.simulator``, ``repro.eval.table1``,
...) remain the implementation and keep working unchanged; this module
only re-exports and wraps them.  The prediction helpers (``simulate`` /
``simulate_batch`` / ``open_session``) drive the paper's *sigmoid*
predictor — the event-driven digital baseline and the analog reference
stay on their own classes (:class:`repro.digital.simulator.DigitalSimulator`,
:mod:`repro.analog`), which the comparison harnesses wrap.
"""

from __future__ import annotations

from pathlib import Path

from repro.characterization.artifacts import default_bundle
from repro.core.compile import (
    clear_compile_cache,
    compile_circuit,
)
from repro.core.models import GateModelBundle
from repro.core.simulator import SigmoidCircuitSimulator
from repro.options import ExecutionOptions, normalize_execution


def load_bundle(
    path: str | Path | None = None,
    *,
    scale: str = "fast",
    backend: str = "ann",
) -> GateModelBundle:
    """Load a trained transfer-model bundle.

    With ``path``, load that serialized bundle file verbatim.  Without
    one, resolve the cached artifact for ``scale``/``backend`` (same
    cache the test suites use), characterizing and training it first if
    it has never been built on this machine.
    """
    if path is not None:
        return GateModelBundle.load(Path(path))
    return default_bundle(scale=scale, backend=backend)


def _simulator(netlist, bundle, execution) -> SigmoidCircuitSimulator:
    """Simulator for the normalized options.

    ``ExecutionOptions.target`` selects the execution target the fused
    kernels run on (``"numpy"`` always; ``"numba"`` when that optional
    dependency is installed — see :mod:`repro.core.targets`); unknown
    or unavailable targets raise eagerly, before any prediction runs.
    """
    execution = normalize_execution(execution)
    return SigmoidCircuitSimulator(
        netlist,
        bundle,
        compiled=execution.compiled,
        target=execution.target,
    )


def simulate(
    netlist,
    pi_traces,
    bundle: GateModelBundle,
    *,
    record_nets: list[str] | None = None,
    execution: ExecutionOptions | None = None,
) -> dict:
    """Predict sigmoid traces for one stimulus run (default: the POs)."""
    return _simulator(netlist, bundle, execution).simulate(
        pi_traces, record_nets
    )


def simulate_batch(
    netlist,
    pi_traces_runs,
    bundle: GateModelBundle,
    *,
    record_nets: list[str] | None = None,
    execution: ExecutionOptions | None = None,
) -> list[dict]:
    """Predict sigmoid traces for a batch of runs in one lock-step pass."""
    return _simulator(netlist, bundle, execution).simulate_batch(
        pi_traces_runs, record_nets
    )


def open_session(
    netlist,
    bundle: GateModelBundle,
    *,
    record_nets: list[str] | None = None,
    guard: float | None = None,
    state: dict | None = None,
    execution: ExecutionOptions | None = None,
):
    """Open a streaming sigmoid session (chunked feeds, checkpointable).

    Returns a :class:`~repro.core.session.SigmoidSession`; pass
    ``state`` (from a previous session's ``state()``) to resume it.
    """
    return _simulator(netlist, bundle, execution).open_session(
        record_nets, guard=guard, state=state
    )


def open_clocked_session(
    netlist,
    bundle: GateModelBundle,
    *,
    clock=None,
    n_cycles: int = 1,
    guard: float | None = None,
    state: dict | None = None,
    execution: ExecutionOptions | None = None,
):
    """Open a cycle-driven sigmoid session for a *sequential* netlist.

    Returns a :class:`~repro.clocked.ClockedSigmoidSession`: feed one
    PI assignment per clock cycle with ``cycle()``, read ``registers``
    between cycles, ``finish()`` for the full strobe history.  ``clock``
    defaults to ``execution.clock`` if set, else a
    :func:`~repro.clocked.default_clock_for` spec sized to the
    circuit's depth.  The digital twin lives on
    :class:`repro.clocked.ClockedDigitalSession`.
    """
    from repro.clocked import ClockedSigmoidSession, default_clock_for

    execution = normalize_execution(execution)
    if clock is None:
        clock = execution.clock
    if clock is None:
        clock = default_clock_for(netlist, guard=guard)
    return ClockedSigmoidSession(
        netlist,
        bundle,
        clock=clock,
        n_cycles=n_cycles,
        compiled=execution.compiled,
        target=execution.target,
        guard=guard,
        state=state,
    )


__all__ = [
    "ExecutionOptions",
    "GateModelBundle",
    "clear_compile_cache",
    "compile_circuit",
    "load_bundle",
    "open_clocked_session",
    "open_session",
    "simulate",
    "simulate_batch",
]
