"""Sigmoidal signal prediction for digital circuits (DATE 2025 repro).

Reproduction of "Signal Prediction for Digital Circuits by Sigmoidal
Approximations Using Neural Networks" (Salzmann & Schmid, DATE 2025),
including every substrate the paper depends on: an analog transient
simulator (SPICE role), a numpy neural-network library (PyTorch role), an
event-driven digital simulator (ModelSim role), ISCAS-85-class benchmark
circuits, the characterization/training pipeline, and the evaluation
harness.

Entry points
------------
* :func:`repro.characterization.artifacts.default_bundle` — trained
  transfer-function models (cached under ``artifacts/``).
* :class:`repro.core.simulator.SigmoidCircuitSimulator` — the paper's
  prototype simulator.
* :class:`repro.eval.runner.ExperimentRunner` — one circuit × stimulus ×
  {analog, digital, sigmoid} experiment.
* :func:`repro.eval.table1.run_table1` — the Table I harness.

See DESIGN.md for the architecture and EXPERIMENTS.md for results.
"""

__version__ = "0.1.0"
