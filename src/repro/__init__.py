"""Sigmoidal signal prediction for digital circuits (DATE 2025 repro).

Reproduction of "Signal Prediction for Digital Circuits by Sigmoidal
Approximations Using Neural Networks" (Salzmann & Schmid, DATE 2025),
including every substrate the paper depends on: an analog transient
simulator (SPICE role), a numpy neural-network library (PyTorch role), an
event-driven digital simulator (ModelSim role), ISCAS-85-class benchmark
circuits, the characterization/training pipeline, and the evaluation
harness.

Public API (the facade)
-----------------------
The names in ``__all__`` are the supported surface, importable directly
from ``repro`` and resolved lazily on first use:

* :func:`~repro.api.load_bundle` — trained transfer-model bundle (from a
  file, or the cached artifact for a scale/backend).
* :func:`~repro.core.compile.compile_circuit` /
  :func:`~repro.core.compile.clear_compile_cache` — the levelized
  compiled-circuit cache.
* :func:`~repro.core.fused.compile_program` — whole-zoo stacked
  programs: many netlists lowered into one fused multi-circuit
  executor (:class:`~repro.core.fused.CompiledProgram`).
* :func:`~repro.api.simulate` / :func:`~repro.api.simulate_batch` /
  :func:`~repro.api.open_session` — one-shot, lock-step batched, and
  streaming sigmoid prediction.
* :class:`~repro.serve.PredictionService` — the serving layer: a warm
  worker fleet with request coalescing, backpressure, and streams.
* :class:`~repro.options.ExecutionOptions` — the shared
  compiled/backend/chunk_size/target execution knobs.
* :class:`~repro.eval.table1.Table1Config` /
  :func:`~repro.eval.table1.run_table1` — the paper's Table I harness.
* :class:`~repro.verify.fuzz.FuzzConfig` /
  :func:`~repro.verify.fuzz.run_fuzz` — the differential fuzz harness.
* :class:`~repro.faults.FaultList` /
  :class:`~repro.faults.CampaignConfig` /
  :func:`~repro.faults.run_campaign` — fault-simulation campaigns:
  stuck-at and delay faults lowered onto the compiled cores' run axis
  and graded in one lock-step pass.
* :class:`~repro.options.ClockSpec` /
  :class:`~repro.clocked.ClockedDigitalSession` /
  :class:`~repro.clocked.ClockedSigmoidSession` /
  :func:`~repro.clocked.run_clocked` — sequential circuits: D
  flip-flops clocked cycle-by-cycle through the streaming sessions of
  every engine (:func:`~repro.clocked.default_clock_for` sizes a safe
  clock for a netlist);
  :func:`~repro.faults.run_sequential_campaign` grades stuck-at faults
  over clock cycles.

The deep module paths (``repro.core.simulator``,
``repro.eval.table1``, ...) remain importable unchanged.

See DESIGN.md for the architecture and EXPERIMENTS.md for results.
"""

__version__ = "0.2.0"

#: name -> defining module; the facade resolves these lazily (PEP 562)
#: so ``import repro`` stays cheap and free of import cycles.
_EXPORTS = {
    "load_bundle": "repro.api",
    "simulate": "repro.api",
    "simulate_batch": "repro.api",
    "open_session": "repro.api",
    "open_clocked_session": "repro.api",
    "compile_circuit": "repro.core.compile",
    "compile_program": "repro.core.fused",
    "clear_compile_cache": "repro.core.compile",
    "GateModelBundle": "repro.core.models",
    "ExecutionOptions": "repro.options",
    "PredictionService": "repro.serve",
    "ServiceStream": "repro.serve",
    "Table1Config": "repro.eval.table1",
    "run_table1": "repro.eval.table1",
    "FuzzConfig": "repro.verify.fuzz",
    "run_fuzz": "repro.verify.fuzz",
    "FaultList": "repro.faults",
    "StuckAtFault": "repro.faults",
    "DelayFault": "repro.faults",
    "CampaignConfig": "repro.faults",
    "run_campaign": "repro.faults",
    "run_sequential_campaign": "repro.faults",
    "ClockSpec": "repro.options",
    "ClockedDigitalSession": "repro.clocked",
    "ClockedSigmoidSession": "repro.clocked",
    "run_clocked": "repro.clocked",
    "default_clock_for": "repro.clocked",
}

__all__ = sorted(_EXPORTS) + ["__version__"]


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
