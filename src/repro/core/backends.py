"""Pluggable transfer-model backends: registry, shared base, versioned IO.

The paper's prototype realizes the TOM transfer functions with ANNs and
mentions generating "interpolation polynomials, splines, and
look-up-tables for comparison purposes" (Sec. IV-A).  This module turns
those families into interchangeable **backends** behind one protocol:

* :class:`TransferBackend` — the protocol every family implements:
  construct from a characterization dataset
  (``from_training_data``), vectorized ``predict_batch``, scalar
  ``predict``, and versioned ``to_dict`` / ``from_dict``.
* :func:`register_backend` / :func:`get_backend` /
  :func:`available_backends` — the name registry (``ann``, ``lut``,
  ``spline``, ``poly``) used by the characterization pipeline, the
  artifact cache and the Table-I ablation runner.
* :class:`ScaledTransferModel` — the shared base collapsing the
  feature-scaling / valid-region / serialization plumbing previously
  duplicated across ``ann_transfer.py`` and ``table_transfer.py``:
  every backend sees standardized features, optionally clamped to the
  valid region (Sec. IV-B) first.
* :func:`backend_to_dict` / :func:`backend_from_dict` — tagged,
  versioned serialization with registry dispatch.  Legacy (untagged)
  dicts load as ANN models; unknown backends or schema versions raise
  a clear :class:`~repro.errors.ModelError`.
* :class:`StackedTransferModel` — the ``stack()`` evaluation contract
  used by the compiled levelized simulator core
  (:mod:`repro.core.compile`): K same-backend models answer one
  ``(features, members)`` query with per-member grouped arithmetic that
  is bitwise-identical to calling each member's ``predict_batch`` on
  its own rows.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.valid_region import (
    ConvexHullRegion,
    KNNRegion,
    region_from_dict,
)
from repro.errors import DatasetError, ModelError
from repro.nn.scaling import StandardScaler

#: Serialization schema for tagged transfer-model dicts.  Version 1 is
#: the legacy untagged ANN layout (no ``backend`` key); version 2 added
#: the ``backend`` tag and registry dispatch.
SCHEMA_VERSION = 2

_REGISTRY: dict[str, type] = {}


@runtime_checkable
class TransferBackend(Protocol):
    """What every transfer-model family provides.

    Implementations also expose a ``backend_name`` class attribute
    (set by :func:`register_backend`) and a ``from_training_data``
    classmethod constructing the model from raw characterization data.
    """

    def predict(
        self, T: float, a_out_prev: float, a_in: float
    ) -> tuple[float, float]:
        """Scalar ``(a_out, delta_b)`` (the Algorithm-1 protocol)."""
        ...

    def predict_batch(
        self, features: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized prediction for ``(n, 3)`` feature rows."""
        ...

    def to_dict(self) -> dict:
        ...


class StackedTransferModel:
    """K same-backend transfer models behind one vectorized entry point.

    The compiled simulator core resolves every transfer function a
    circuit uses into one stack and then answers each lock-step's
    queries with a single :meth:`predict_members` call.  Rows are
    grouped by member so every member sees exactly the rows it would
    see from its own ``predict_batch`` — region projection, feature
    scaling and the model arithmetic are the member's own, making the
    grouped results bitwise-identical to the looped path per member.

    Subclasses hold the member parameters as stacked arrays (ANN
    weights as ``(K, fan_in, fan_out)``, polynomial coefficients as
    ``(K, n_terms)``, table samples as concatenated rows) and override
    :meth:`_predict_scaled_member` to evaluate one member's
    standardized queries from those views; the default delegates to the
    member model.
    """

    def __init__(self, models: list) -> None:
        if not models:
            raise ModelError("cannot stack an empty model list")
        backends = {getattr(m, "backend_name", None) for m in models}
        if len(backends) != 1 or None in backends:
            raise ModelError(
                "stacked models must share one registered backend; "
                f"got {sorted(str(b) for b in backends)}"
            )
        self.models = list(models)
        self.scaler_means = np.stack([m.x_scaler.mean_ for m in models])
        self.scaler_stds = np.stack([m.x_scaler.std_ for m in models])

    @property
    def n_members(self) -> int:
        return len(self.models)

    def _predict_scaled_member(
        self, member: int, scaled: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.models[member]._predict_scaled(scaled)

    def predict_members(
        self, features: np.ndarray, members: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized prediction with a per-row member index.

        ``features`` is ``(n, 3)`` raw rows ``(T, a_out_prev, a_in)``;
        ``members[i]`` selects which stacked model answers row ``i``.
        Returns ``(a_out, delta_b)`` arrays of length n.
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != 3:
            raise ModelError("features must be (n, 3): (T, a_out_prev, a_in)")
        members = np.asarray(members, dtype=int)
        if members.shape != (features.shape[0],):
            raise ModelError("need one member index per feature row")
        if members.size and (members.min() < 0 or members.max() >= self.n_members):
            raise ModelError("member index out of range")
        a_out = np.empty(features.shape[0])
        delta_b = np.empty(features.shape[0])
        for member in np.unique(members):
            sel = members == member
            rows = features[sel]
            model = self.models[member]
            if model.region is not None:
                rows = model.region.project(rows)
            scaled = (rows - self.scaler_means[member]) / self.scaler_stds[member]
            slope, delay = self._predict_scaled_member(int(member), scaled)
            a_out[sel] = slope
            delta_b[sel] = delay
        return a_out, delta_b

    def fused_evaluator(self, target=None):
        """A whole-stack single-call evaluator for the fused kernels.

        Backends that can answer a ``(features, members)`` query for
        *all* members in one vectorized pass (no per-member python
        loop) return a callable ``evaluate(features, members) ->
        (a_out, delta_b)`` with :meth:`predict_members` semantics up
        to floating-point re-association; ``target`` selects the
        :mod:`repro.core.targets` execution target the dense kernels
        run on.  Two deliberate differences serve the fused
        super-level executor: no input validation, and non-finite
        feature rows yield NaN outputs instead of raising — the
        executor batches the finiteness check once per super-level.

        The default returns ``None`` (no fused path); callers fall
        back to :meth:`predict_members`.
        """
        return None


def register_backend(name: str):
    """Class decorator adding a transfer-model family to the registry."""

    def decorate(cls):
        cls.backend_name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def _ensure_builtin_backends() -> None:
    """Import the built-in backend modules so they self-register."""
    import repro.core.ann_transfer  # noqa: F401
    import repro.core.table_transfer  # noqa: F401


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    _ensure_builtin_backends()
    return sorted(_REGISTRY)


def get_backend(name: str) -> type:
    """Resolve a backend class by registry name."""
    _ensure_builtin_backends()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown transfer-model backend {name!r}; "
            f"options: {sorted(_REGISTRY)}"
        ) from None


def build_region(features: np.ndarray, kind: str):
    """Construct a valid region over raw training features (Sec. IV-B)."""
    if kind == "knn":
        return KNNRegion(features)
    if kind == "convex":
        return ConvexHullRegion(features)
    if kind == "none":
        return None
    raise DatasetError(f"unknown region kind {kind!r}")


def backend_to_dict(model) -> dict:
    """Serialize any registered backend with its tag and schema version."""
    name = getattr(model, "backend_name", None)
    if name is None:
        raise ModelError(
            f"{type(model).__name__} is not a registered transfer backend"
        )
    data = model.to_dict()
    data["backend"] = name
    data["schema_version"] = SCHEMA_VERSION
    return data


def backend_from_dict(data: dict):
    """Rebuild a transfer model from a tagged (or legacy) dict.

    Dicts without a ``backend`` key are the schema-version-1 layout
    written by the pre-registry code, which was always ANN.
    """
    if "backend" not in data:
        return get_backend("ann").from_dict(data)
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ModelError(
            f"unsupported transfer-model schema version {version!r} "
            f"(this build reads versions 1 (legacy untagged) and "
            f"{SCHEMA_VERSION})"
        )
    cls = get_backend(data["backend"])
    return cls.from_dict(data)


class ScaledTransferModel:
    """Shared plumbing: valid-region clamp, feature standardization, IO.

    Every backend predicts from standardized features; queries are first
    projected onto the valid region (fit on *raw* features, matching the
    paper's Sec. IV-B containment) and then scaled.  Subclasses implement
    :meth:`_predict_scaled` over the standardized queries and the
    ``_payload_dict`` / ``_from_payload`` halves of serialization.
    """

    def __init__(self, x_scaler: StandardScaler, region=None) -> None:
        self.x_scaler = x_scaler
        self.region = region

    # -- prediction ----------------------------------------------------
    def _predict_scaled(
        self, scaled: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:  # pragma: no cover - abstract
        raise NotImplementedError

    def predict_batch(
        self, features: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized prediction for (n, 3) feature rows ``(T, a_prev, a_in)``.

        Returns ``(a_out, delta_b)`` arrays of length n.
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != 3:
            raise ModelError("features must be (n, 3): (T, a_out_prev, a_in)")
        if self.region is not None:
            features = self.region.project(features)
        scaled = self.x_scaler.transform(features)
        return self._predict_scaled(scaled)

    def predict(
        self, T: float, a_out_prev: float, a_in: float
    ) -> tuple[float, float]:
        """Scalar convenience wrapper (the :class:`TransferFunction` protocol)."""
        slope, delay = self.predict_batch(np.array([[T, a_out_prev, a_in]]))
        return float(slope[0]), float(delay[0])

    # -- stacked evaluation --------------------------------------------
    @classmethod
    def stack(cls, models: list) -> StackedTransferModel:
        """Stack same-backend models for the compiled simulator core.

        Every registered backend overrides this with a
        :class:`StackedTransferModel` subclass holding its parameters as
        stacked arrays; a backend that has not implemented stacking yet
        fails loudly here with an error naming it, rather than silently
        falling back to scalar calls (the compiled core lets the error
        propagate to its caller).
        """
        name = getattr(cls, "backend_name", cls.__name__)
        raise NotImplementedError(
            f"transfer backend {name!r} does not implement stack(); "
            "compiled simulation needs a StackedTransferModel for it"
        )

    # -- serialization -------------------------------------------------
    def _payload_dict(self) -> dict:  # pragma: no cover - abstract
        raise NotImplementedError

    def to_dict(self) -> dict:
        data = self._payload_dict()
        data["x_scaler"] = self.x_scaler.to_dict()
        data["region"] = (
            self.region.to_dict() if self.region is not None else None
        )
        return data

    @classmethod
    def _common_from_dict(cls, data: dict) -> tuple[StandardScaler, object]:
        region = data.get("region")
        return (
            StandardScaler.from_dict(data["x_scaler"]),
            region_from_dict(region) if region is not None else None,
        )
