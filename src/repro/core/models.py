"""Serializable bundles of trained gate models.

A :class:`GateModelBundle` holds every trained channel —
``(cell, pin, fanout_class) -> GateModel`` — plus provenance metadata, and
round-trips through JSON so the expensive characterize+train pipeline runs
once and is cached under ``artifacts/``.

Format history:

* version 1 — pre-registry bundles; transfer-function dicts are untagged
  and always ANN.  Still readable (legacy dispatch in
  :func:`~repro.core.backends.backend_from_dict`).
* version 2 — transfer-function dicts carry ``backend`` /
  ``schema_version`` tags and dispatch through the backend registry, and
  the bundle metadata records its ``backend`` name, so LUT / spline /
  polynomial ablation bundles cache side by side with the ANN default.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.ann_transfer import GateModel
from repro.errors import ModelError

FORMAT_VERSION = 2

#: Bundle versions this build can read.
READABLE_VERSIONS = (1, 2)


class GateModelBundle:
    """All trained transfer-function models of the cell set."""

    def __init__(self, metadata: dict | None = None) -> None:
        self._models: dict[tuple[str, int, str], GateModel] = {}
        self.metadata = dict(metadata or {})

    def add(self, model: GateModel) -> None:
        self._models[model.key] = model

    def keys(self) -> list[tuple[str, int, str]]:
        return sorted(self._models)

    def __len__(self) -> int:
        return len(self._models)

    @property
    def backend(self) -> str:
        """Registry name of the bundle's transfer-model backend."""
        name = self.metadata.get("backend")
        if name:
            return name
        for model in self._models.values():
            return model.backend
        return "unknown"

    def get(self, cell: str, pin: int, fanout: int) -> GateModel:
        """Resolve the model for an instance with ``fanout`` consumers.

        Fanout >= 2 uses the ``fo2`` models when they exist (the paper
        trains dedicated fanout-2 ANNs for NOR), falling back to ``fo1``.
        """
        preferred = "fo2" if fanout >= 2 else "fo1"
        for fanout_class in (preferred, "fo1", "fo2"):
            model = self._models.get((cell, pin, fanout_class))
            if model is not None:
                return model
        raise ModelError(f"no model for cell={cell} pin={pin}")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "metadata": self.metadata,
            "models": [model.to_dict() for model in self._models.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GateModelBundle":
        version = data.get("format_version")
        if version not in READABLE_VERSIONS:
            raise ModelError(
                f"unsupported bundle version {version!r}; this build reads "
                f"{list(READABLE_VERSIONS)}"
            )
        bundle = cls(metadata=data.get("metadata", {}))
        for entry in data["models"]:
            bundle.add(GateModel.from_dict(entry))
        return bundle

    def save(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "GateModelBundle":
        path = Path(path)
        if not path.exists():
            raise ModelError(f"no model bundle at {path}")
        return cls.from_dict(json.loads(path.read_text()))
