"""Weighted Levenberg-Marquardt least squares, scalar and batched.

The paper fits sigmoid parameters with "the Levenberg-Marquardt least
squares fitting algorithm", using the per-point weighting hook of the
fitter to emphasize inflection points (Sec. II).  This is a from-scratch
implementation (damped normal equations with multiplicative lambda
adaptation); the test-suite cross-checks it against
``scipy.optimize.least_squares``.

:func:`levenberg_marquardt_batch` solves many *independent* small
problems in one stacked call: residuals and Jacobians are evaluated for
all still-active problems at once (amortizing the per-call numpy
overhead that dominates these tiny fits) and the damped normal equations
are solved as one stacked ``np.linalg.solve``.  Per-problem lambda
adaptation, acceptance tests and convergence decisions replay the scalar
algorithm exactly — every problem takes the identical accept/reject
trajectory it would take alone — so a batched fit is bit-compatible with
the scalar one (the per-problem reductions ``J^T J``, ``J^T r`` and the
cost dot products are computed with the very same 2-D BLAS calls).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.errors import ConvergenceError


@dataclass
class LMResult:
    """Outcome of one Levenberg-Marquardt run."""

    x: np.ndarray
    cost: float
    n_iter: int
    converged: bool
    message: str = ""


def levenberg_marquardt(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    jacobian_fn: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    weights: np.ndarray | None = None,
    max_iter: int = 100,
    tol: float = 1e-12,
    lambda0: float = 1e-3,
    lambda_factor: float = 3.0,
    lambda_max: float = 1e10,
    raise_on_failure: bool = False,
) -> LMResult:
    """Minimize ``sum(w_i * r_i(x)^2)`` over ``x``.

    Parameters
    ----------
    residual_fn / jacobian_fn:
        Residual vector ``r(x)`` of shape (m,) and its Jacobian (m, n).
    weights:
        Optional non-negative per-residual weights (the paper's sigma
        vector corresponds to ``weights = 1 / sigma**2``).
    tol:
        Convergence threshold on the relative cost decrease.
    raise_on_failure:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    """
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 1:
        raise ValueError("x0 must be a 1-D parameter vector")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")

    def weighted(r: np.ndarray) -> np.ndarray:
        if weights is None:
            return r
        return r * sqrt_w

    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        sqrt_w = np.sqrt(weights)

    r = weighted(residual_fn(x))
    cost = float(r @ r)
    lam = lambda0
    converged = False
    message = "iteration budget exhausted"
    n_iter = 0

    for n_iter in range(1, max_iter + 1):
        jac = jacobian_fn(x)
        if weights is not None:
            jac = jac * sqrt_w[:, None]
        jtj = jac.T @ jac
        jtr = jac.T @ r
        diag = np.diag(jtj).copy()
        diag[diag <= 0] = 1e-12

        improved = False
        while lam <= lambda_max:
            try:
                step = np.linalg.solve(jtj + lam * np.diag(diag), -jtr)
            except np.linalg.LinAlgError:
                lam *= lambda_factor
                continue
            x_new = x + step
            r_new = weighted(residual_fn(x_new))
            cost_new = float(r_new @ r_new)
            if np.isfinite(cost_new) and cost_new < cost:
                improved = True
                break
            lam *= lambda_factor
        if not improved:
            message = "lambda exhausted without improvement"
            break

        rel_drop = (cost - cost_new) / max(cost, 1e-300)
        x, r, cost = x_new, r_new, cost_new
        lam = max(lam / lambda_factor, 1e-12)
        if rel_drop < tol:
            converged = True
            message = "relative cost decrease below tol"
            break
    else:
        n_iter = max_iter

    # A clean lambda-exhaustion at a stationary point is also convergence.
    if not converged and message == "lambda exhausted without improvement":
        grad_norm = float(np.linalg.norm(jtr))
        if grad_norm < 1e-8 * (1.0 + cost):
            converged = True
            message = "gradient vanished"

    if not converged and raise_on_failure:
        raise ConvergenceError(f"LM failed: {message} (cost={cost:.3e})")
    return LMResult(x=x, cost=cost, n_iter=n_iter, converged=converged,
                    message=message)


def _solve_damped(
    jtj: np.ndarray, diag: np.ndarray, lam: np.ndarray, jtr: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Solve the damped normal equations for a stack of problems.

    Returns ``(steps, ok)``: per-problem solutions of
    ``(jtj + lam * diag(diag)) step = -jtr`` plus a boolean mask of the
    problems whose system was non-singular.  The happy path is one
    stacked LAPACK call; a singular member triggers a per-problem retry
    so one bad system cannot poison its batch mates.
    """
    n_problems, n_params = jtr.shape
    systems = jtj.copy()
    idx = np.arange(n_params)
    systems[:, idx, idx] += lam[:, None] * diag
    steps = np.empty_like(jtr)
    ok = np.ones(n_problems, dtype=bool)
    try:
        steps = np.linalg.solve(systems, -jtr[:, :, None])[:, :, 0]
    except np.linalg.LinAlgError:
        for k in range(n_problems):
            try:
                steps[k] = np.linalg.solve(systems[k], -jtr[k])
            except np.linalg.LinAlgError:
                ok[k] = False
                steps[k] = 0.0
    return steps, ok


def levenberg_marquardt_batch(
    residual_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    jacobian_fn: Callable[[np.ndarray, np.ndarray], np.ndarray],
    x0: np.ndarray,
    weights: np.ndarray | None = None,
    n_valid: np.ndarray | None = None,
    max_iter: int = 100,
    tol: float = 1e-12,
    lambda0: float = 1e-3,
    lambda_factor: float = 3.0,
    lambda_max: float = 1e10,
) -> list[LMResult]:
    """Minimize ``sum_i w_bi r_bi(x_b)^2`` for a batch of problems.

    Parameters
    ----------
    residual_fn / jacobian_fn:
        Stacked callbacks: given parameters ``x`` of shape ``(k, n)`` and
        the corresponding problem indices ``idx`` (``(k,)`` ints into the
        original batch), return residuals ``(k, m)`` respectively
        Jacobians ``(k, m, n)``.  Problems that need more samples than
        others must be padded to a common ``m`` by the caller, with the
        padding masked out through zero ``weights``.
    x0:
        Initial parameters, shape ``(B, n)``.
    weights:
        Optional non-negative per-residual weights, shape ``(B, m)``.
    n_valid:
        Optional per-problem count of leading *meaningful* residual
        samples (defaults to all ``m``).  Padded tails beyond
        ``n_valid[b]`` must carry zero weight; the per-problem
        reductions (cost, ``J^T J``, ``J^T r``) then run on exactly the
        unpadded shapes, which keeps every problem bit-identical to its
        scalar :func:`levenberg_marquardt` run regardless of how much
        padding its batch mates require.

    Returns one :class:`LMResult` per problem, in batch order, each
    identical to what :func:`levenberg_marquardt` returns for that
    problem alone.
    """
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 2:
        raise ValueError("x0 must be a (B, n) parameter stack")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")
    n_problems = x.shape[0]
    all_idx = np.arange(n_problems)
    if n_problems == 0:
        return []

    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        sqrt_w = np.sqrt(weights)

    def weighted(r: np.ndarray, idx: np.ndarray) -> np.ndarray:
        if weights is None:
            return r
        return r * sqrt_w[idx]

    def valid(idx: np.ndarray) -> np.ndarray:
        if n_valid is None:
            return np.full(idx.shape, None)
        return np.asarray(n_valid)[idx]

    # The per-problem scalar reductions reuse the exact BLAS calls (and
    # the exact unpadded operand shapes) of the scalar path so the two
    # implementations agree bitwise.
    def dot_costs(r: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return np.array(
            [float(row[:m] @ row[:m]) for row, m in zip(r, valid(idx))]
        )

    r = weighted(residual_fn(x, all_idx), all_idx)
    cost = dot_costs(r, all_idx)
    lam = np.full(n_problems, lambda0)
    converged = np.zeros(n_problems, dtype=bool)
    n_iter = np.zeros(n_problems, dtype=int)
    messages = ["iteration budget exhausted"] * n_problems
    jtr_final = np.zeros_like(x)
    iterating = np.ones(n_problems, dtype=bool)

    for iteration in range(1, max_iter + 1):
        idx = all_idx[iterating]
        if idx.size == 0:
            break
        n_iter[idx] = iteration
        jac = jacobian_fn(x[idx], idx)
        if weights is not None:
            jac = jac * sqrt_w[idx][:, :, None]
        lengths = valid(idx)
        jtj = np.stack(
            [j[:m].T @ j[:m] for j, m in zip(jac, lengths)]
        )
        jtr = np.stack(
            [
                j[:m].T @ rr[:m]
                for j, rr, m in zip(jac, r[idx], lengths)
            ]
        )
        jtr_final[idx] = jtr
        n_params = x.shape[1]
        diag = jtj[:, np.arange(n_params), np.arange(n_params)].copy()
        diag[diag <= 0] = 1e-12

        improved = np.zeros(idx.size, dtype=bool)
        cost_new = np.empty(idx.size)
        x_new = x[idx].copy()
        r_new = r[idx].copy()
        while True:
            trying = ~improved & (lam[idx] <= lambda_max)
            if not trying.any():
                break
            steps, solvable = _solve_damped(
                jtj[trying], diag[trying], lam[idx[trying]], jtr[trying]
            )
            x_try = x[idx[trying]] + steps
            r_try = weighted(residual_fn(x_try, idx[trying]), idx[trying])
            cost_try = dot_costs(r_try, idx[trying])
            accept = solvable & np.isfinite(cost_try) & (
                cost_try < cost[idx[trying]]
            )
            trying_idx = np.nonzero(trying)[0]
            acc = trying_idx[accept]
            improved[acc] = True
            x_new[acc] = x_try[accept]
            r_new[acc] = r_try[accept]
            cost_new[acc] = cost_try[accept]
            lam[idx[trying_idx[~accept]]] *= lambda_factor

        stalled = idx[~improved]
        if stalled.size:
            iterating[stalled] = False
            for k in stalled:
                messages[k] = "lambda exhausted without improvement"

        moved = idx[improved]
        if moved.size:
            rel_drop = (cost[moved] - cost_new[improved]) / np.maximum(
                cost[moved], 1e-300
            )
            x[moved] = x_new[improved]
            r[moved] = r_new[improved]
            cost[moved] = cost_new[improved]
            lam[moved] = np.maximum(lam[moved] / lambda_factor, 1e-12)
            done = moved[rel_drop < tol]
            converged[done] = True
            iterating[done] = False
            for k in done:
                messages[k] = "relative cost decrease below tol"

    # A clean lambda-exhaustion at a stationary point is also convergence.
    for k in range(n_problems):
        if not converged[k] and (
            messages[k] == "lambda exhausted without improvement"
        ):
            grad_norm = float(np.linalg.norm(jtr_final[k]))
            if grad_norm < 1e-8 * (1.0 + cost[k]):
                converged[k] = True
                messages[k] = "gradient vanished"

    return [
        LMResult(
            x=x[k],
            cost=float(cost[k]),
            n_iter=int(n_iter[k]),
            converged=bool(converged[k]),
            message=messages[k],
        )
        for k in range(n_problems)
    ]
