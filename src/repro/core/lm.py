"""Weighted Levenberg-Marquardt least squares.

The paper fits sigmoid parameters with "the Levenberg-Marquardt least
squares fitting algorithm", using the per-point weighting hook of the
fitter to emphasize inflection points (Sec. II).  This is a from-scratch
implementation (damped normal equations with multiplicative lambda
adaptation); the test-suite cross-checks it against
``scipy.optimize.least_squares``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.errors import ConvergenceError


@dataclass
class LMResult:
    """Outcome of one Levenberg-Marquardt run."""

    x: np.ndarray
    cost: float
    n_iter: int
    converged: bool
    message: str = ""


def levenberg_marquardt(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    jacobian_fn: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    weights: np.ndarray | None = None,
    max_iter: int = 100,
    tol: float = 1e-12,
    lambda0: float = 1e-3,
    lambda_factor: float = 3.0,
    lambda_max: float = 1e10,
    raise_on_failure: bool = False,
) -> LMResult:
    """Minimize ``sum(w_i * r_i(x)^2)`` over ``x``.

    Parameters
    ----------
    residual_fn / jacobian_fn:
        Residual vector ``r(x)`` of shape (m,) and its Jacobian (m, n).
    weights:
        Optional non-negative per-residual weights (the paper's sigma
        vector corresponds to ``weights = 1 / sigma**2``).
    tol:
        Convergence threshold on the relative cost decrease.
    raise_on_failure:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    """
    x = np.asarray(x0, dtype=float).copy()
    if x.ndim != 1:
        raise ValueError("x0 must be a 1-D parameter vector")
    if max_iter < 1:
        raise ValueError("max_iter must be >= 1")

    def weighted(r: np.ndarray) -> np.ndarray:
        if weights is None:
            return r
        return r * sqrt_w

    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        sqrt_w = np.sqrt(weights)

    r = weighted(residual_fn(x))
    cost = float(r @ r)
    lam = lambda0
    converged = False
    message = "iteration budget exhausted"
    n_iter = 0

    for n_iter in range(1, max_iter + 1):
        jac = jacobian_fn(x)
        if weights is not None:
            jac = jac * sqrt_w[:, None]
        jtj = jac.T @ jac
        jtr = jac.T @ r
        diag = np.diag(jtj).copy()
        diag[diag <= 0] = 1e-12

        improved = False
        while lam <= lambda_max:
            try:
                step = np.linalg.solve(jtj + lam * np.diag(diag), -jtr)
            except np.linalg.LinAlgError:
                lam *= lambda_factor
                continue
            x_new = x + step
            r_new = weighted(residual_fn(x_new))
            cost_new = float(r_new @ r_new)
            if np.isfinite(cost_new) and cost_new < cost:
                improved = True
                break
            lam *= lambda_factor
        if not improved:
            message = "lambda exhausted without improvement"
            break

        rel_drop = (cost - cost_new) / max(cost, 1e-300)
        x, r, cost = x_new, r_new, cost_new
        lam = max(lam / lambda_factor, 1e-12)
        if rel_drop < tol:
            converged = True
            message = "relative cost decrease below tol"
            break
    else:
        n_iter = max_iter

    # A clean lambda-exhaustion at a stationary point is also convergence.
    if not converged and message == "lambda exhausted without improvement":
        grad_norm = float(np.linalg.norm(jtr))
        if grad_norm < 1e-8 * (1.0 + cost):
            converged = True
            message = "gradient vanished"

    if not converged and raise_on_failure:
        raise ConvergenceError(f"LM failed: {message} (cost={cost:.3e})")
    return LMResult(x=x, cost=cost, n_iter=n_iter, converged=converged,
                    message=message)
