"""Waveform -> sigmoidal-trace fitting (Sec. II of the paper).

Pipeline implemented by :func:`fit_waveform`:

1. clip the waveform to ``[0, VDD]`` — sigmoids cannot represent Miller
   over/undershoot and it is irrelevant for delay estimation (Sec. II-B),
2. detect VDD/2 threshold crossings; each becomes one sigmoid transition,
3. build initial parameters: ``b_i`` from the crossing time, ``a_i`` from
   the measured crossing slew,
4. weight samples near the inflection points (the paper uses the fitter's
   sigma vector for "a tight fit at the inflection points"),
5. jointly refine all parameters with Levenberg-Marquardt on the Eq. 2
   model minus its rail offset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analog.waveform import Waveform
from repro.constants import TIME_SCALE, VDD
from repro.core.lm import levenberg_marquardt
from repro.core.sigmoid import (
    slope_param_from_slew,
    sum_model_jacobian_tau,
    sum_model_tau,
)
from repro.core.trace import SigmoidalTrace
from repro.errors import FittingError

#: Gaussian weighting width around inflection points, seconds.
DEFAULT_WEIGHT_WIDTH = 2e-12
#: Weight boost at inflection points (1 = no boost).
DEFAULT_WEIGHT_PEAK = 6.0
#: Maximum number of samples handed to the optimizer.
DEFAULT_MAX_POINTS = 900
#: Window margin around the transition region, seconds.
DEFAULT_MARGIN = 15e-12


@dataclass
class FitResult:
    """A fitted trace plus quality metrics."""

    trace: SigmoidalTrace
    rms_error: float
    max_error: float
    converged: bool
    n_iterations: int

    @property
    def n_transitions(self) -> int:
        return self.trace.n_transitions


def fit_waveform(
    waveform: Waveform,
    vdd: float = VDD,
    weight_peak: float = DEFAULT_WEIGHT_PEAK,
    weight_width: float = DEFAULT_WEIGHT_WIDTH,
    max_points: int = DEFAULT_MAX_POINTS,
    margin: float = DEFAULT_MARGIN,
    max_iter: int = 60,
) -> FitResult:
    """Fit a sigmoidal trace to an analog waveform.

    Waveforms without any VDD/2 crossing yield a transition-free trace at
    the appropriate rail.  Raises :class:`FittingError` for waveforms whose
    crossing structure cannot be represented (sign alternation violations
    survive the crossing filter only on pathological data).
    """
    clipped = waveform.clipped(0.0, vdd)
    threshold = vdd / 2.0
    crossings = clipped.crossings(threshold)
    initial_level = 1 if clipped.v[0] > threshold else 0

    # Enforce alternation (like DigitalTrace.from_waveform): drop crossings
    # that repeat the direction we already hold.
    filtered = []
    level = bool(initial_level)
    for crossing in crossings:
        rising = crossing.direction > 0
        if rising == level:
            continue
        filtered.append(crossing)
        level = not level
    if not filtered:
        trace = SigmoidalTrace(initial_level, [], vdd=vdd)
        residual = clipped.v - trace.value(clipped.t)
        return FitResult(
            trace=trace,
            rms_error=float(np.sqrt(np.mean(residual**2))),
            max_error=float(np.max(np.abs(residual))),
            converged=True,
            n_iterations=0,
        )

    # Initial parameters from crossing times and local slews.
    params0 = []
    for crossing in filtered:
        slew = clipped.slew_at_crossing(crossing)
        a0 = slope_param_from_slew(slew, vdd=vdd)
        if a0 == 0.0 or np.sign(a0) != crossing.direction:
            a0 = crossing.direction * 10.0
        params0.append((a0, crossing.time * TIME_SCALE))
    params0 = np.asarray(params0)

    # Restrict the fit window to the transition region plus margins and
    # decimate to keep the optimizer cheap.
    t0 = max(filtered[0].time - margin, clipped.t_start)
    t1 = min(filtered[-1].time + margin, clipped.t_stop)
    window = clipped.restricted(t0, t1) if t1 > t0 else clipped
    if len(window) > max_points:
        idx = np.linspace(0, len(window) - 1, max_points).astype(int)
        t_fit = window.t[idx]
        v_fit = window.v[idx]
    else:
        t_fit, v_fit = window.t, window.v
    tau_fit = t_fit * TIME_SCALE

    weights = np.ones_like(t_fit)
    for crossing in filtered:
        weights += weight_peak * np.exp(
            -(((t_fit - crossing.time) / weight_width) ** 2)
        )

    n_falling = sum(1 for c in filtered if c.direction < 0)
    offset = float(n_falling - initial_level)

    def unpack(x: np.ndarray) -> np.ndarray:
        return x.reshape(-1, 2)

    def residual_fn(x: np.ndarray) -> np.ndarray:
        return sum_model_tau(tau_fit, unpack(x), offset, vdd=vdd) - v_fit

    def jacobian_fn(x: np.ndarray) -> np.ndarray:
        return sum_model_jacobian_tau(tau_fit, unpack(x), vdd=vdd)

    result = levenberg_marquardt(
        residual_fn,
        jacobian_fn,
        params0.ravel(),
        weights=weights,
        max_iter=max_iter,
    )
    params = unpack(result.x)

    # The optimizer may in principle reorder or flip; repair gently by
    # falling back to the initial estimate for any invalid transition.
    if not _params_valid(params, initial_level):
        params = _repair(params, params0, initial_level)

    trace = SigmoidalTrace(initial_level, params, vdd=vdd)
    residual = v_fit - trace.value(t_fit)
    return FitResult(
        trace=trace,
        rms_error=float(np.sqrt(np.mean(residual**2))),
        max_error=float(np.max(np.abs(residual))),
        converged=result.converged,
        n_iterations=result.n_iter,
    )


def _params_valid(params: np.ndarray, initial_level: int) -> bool:
    if np.any(params[:, 0] == 0.0):
        return False
    if np.any(np.diff(params[:, 1]) < 0):
        return False
    expected = -1.0 if initial_level else 1.0
    for a, _b in params:
        if np.sign(a) != expected:
            return False
        expected = -expected
    return True


def _repair(
    params: np.ndarray, params0: np.ndarray, initial_level: int
) -> np.ndarray:
    """Replace invalid rows with their initial estimates, then re-sort."""
    repaired = params.copy()
    expected = -1.0 if initial_level else 1.0
    for i in range(repaired.shape[0]):
        if np.sign(repaired[i, 0]) != expected or repaired[i, 0] == 0.0:
            repaired[i] = params0[i]
        expected = -expected
    # Crossing times must stay ordered; if the fit scrambled them the
    # initial estimates (which are ordered) win.
    if np.any(np.diff(repaired[:, 1]) < 0):
        repaired = params0.copy()
    if not _params_valid(repaired, initial_level):
        raise FittingError("could not repair fitted parameters")
    return repaired
