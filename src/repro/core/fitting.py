"""Waveform -> sigmoidal-trace fitting (Sec. II of the paper).

Pipeline implemented by :func:`fit_waveform`:

1. clip the waveform to ``[0, VDD]`` — sigmoids cannot represent Miller
   over/undershoot and it is irrelevant for delay estimation (Sec. II-B),
2. detect VDD/2 threshold crossings; each becomes one sigmoid transition,
3. build initial parameters: ``b_i`` from the crossing time, ``a_i`` from
   the measured crossing slew,
4. weight samples near the inflection points (the paper uses the fitter's
   sigma vector for "a tight fit at the inflection points"),
5. jointly refine all parameters with Levenberg-Marquardt on the Eq. 2
   model minus its rail offset.

:func:`fit_waveforms` runs the same pipeline for a whole batch of
waveforms at once (the Table-I evaluation fits every primary input of
every stimulus run): fits with the same transition count are grouped and
refined through one stacked :func:`levenberg_marquardt_batch` call, with
shorter fit windows padded behind zero weights.  Each waveform takes the
identical numerical trajectory it would take through
:func:`fit_waveform`, so the two APIs are bit-compatible — the batch
amortizes the per-call numpy overhead across each group without
touching the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analog.waveform import Waveform
from repro.constants import TIME_SCALE, VDD
from repro.core.lm import LMResult, levenberg_marquardt, levenberg_marquardt_batch
from repro.core.sigmoid import (
    slope_param_from_slew,
    sum_model_jacobian_tau,
    sum_model_jacobian_tau_stacked,
    sum_model_tau,
    sum_model_tau_stacked,
)
from repro.core.trace import SigmoidalTrace
from repro.errors import FittingError

#: Gaussian weighting width around inflection points, seconds.
DEFAULT_WEIGHT_WIDTH = 2e-12
#: Weight boost at inflection points (1 = no boost).
DEFAULT_WEIGHT_PEAK = 6.0
#: Maximum number of samples handed to the optimizer.
DEFAULT_MAX_POINTS = 900
#: Window margin around the transition region, seconds.
DEFAULT_MARGIN = 15e-12


@dataclass
class FitResult:
    """A fitted trace plus quality metrics."""

    trace: SigmoidalTrace
    rms_error: float
    max_error: float
    converged: bool
    n_iterations: int

    @property
    def n_transitions(self) -> int:
        return self.trace.n_transitions


@dataclass
class _PreparedFit:
    """One waveform's fit problem, ready for the optimizer."""

    initial_level: int
    params0: np.ndarray
    t_fit: np.ndarray
    tau_fit: np.ndarray
    v_fit: np.ndarray
    weights: np.ndarray
    offset: float
    vdd: float


def _prepare_fit(
    waveform: Waveform,
    vdd: float,
    weight_peak: float,
    weight_width: float,
    max_points: int,
    margin: float,
) -> FitResult | _PreparedFit:
    """Stages 1-4 of the pipeline; trivial waveforms fit immediately."""
    clipped = waveform.clipped(0.0, vdd)
    threshold = vdd / 2.0
    crossings = clipped.crossings(threshold)
    initial_level = 1 if clipped.v[0] > threshold else 0

    # Enforce alternation (like DigitalTrace.from_waveform): drop crossings
    # that repeat the direction we already hold.
    filtered = []
    level = bool(initial_level)
    for crossing in crossings:
        rising = crossing.direction > 0
        if rising == level:
            continue
        filtered.append(crossing)
        level = not level
    if not filtered:
        trace = SigmoidalTrace(initial_level, [], vdd=vdd)
        residual = clipped.v - trace.value(clipped.t)
        return FitResult(
            trace=trace,
            rms_error=float(np.sqrt(np.mean(residual**2))),
            max_error=float(np.max(np.abs(residual))),
            converged=True,
            n_iterations=0,
        )

    # Initial parameters from crossing times and local slews.
    params0 = []
    for crossing in filtered:
        slew = clipped.slew_at_crossing(crossing)
        a0 = slope_param_from_slew(slew, vdd=vdd)
        if a0 == 0.0 or np.sign(a0) != crossing.direction:
            a0 = crossing.direction * 10.0
        params0.append((a0, crossing.time * TIME_SCALE))
    params0 = np.asarray(params0)

    # Restrict the fit window to the transition region plus margins and
    # decimate to keep the optimizer cheap.
    t0 = max(filtered[0].time - margin, clipped.t_start)
    t1 = min(filtered[-1].time + margin, clipped.t_stop)
    window = clipped.restricted(t0, t1) if t1 > t0 else clipped
    if len(window) > max_points:
        idx = np.linspace(0, len(window) - 1, max_points).astype(int)
        t_fit = window.t[idx]
        v_fit = window.v[idx]
    else:
        t_fit, v_fit = window.t, window.v
    tau_fit = t_fit * TIME_SCALE

    weights = np.ones_like(t_fit)
    for crossing in filtered:
        weights += weight_peak * np.exp(
            -(((t_fit - crossing.time) / weight_width) ** 2)
        )

    n_falling = sum(1 for c in filtered if c.direction < 0)
    offset = float(n_falling - initial_level)
    return _PreparedFit(
        initial_level=initial_level,
        params0=params0,
        t_fit=t_fit,
        tau_fit=tau_fit,
        v_fit=v_fit,
        weights=weights,
        offset=offset,
        vdd=vdd,
    )


def _finalize_fit(prepared: _PreparedFit, result: LMResult) -> FitResult:
    """Validate/repair the refined parameters and score the fit."""
    params = result.x.reshape(-1, 2)

    # The optimizer may in principle reorder or flip; repair gently by
    # falling back to the initial estimate for any invalid transition.
    if not _params_valid(params, prepared.initial_level):
        params = _repair(params, prepared.params0, prepared.initial_level)

    trace = SigmoidalTrace(prepared.initial_level, params, vdd=prepared.vdd)
    residual = prepared.v_fit - trace.value(prepared.t_fit)
    return FitResult(
        trace=trace,
        rms_error=float(np.sqrt(np.mean(residual**2))),
        max_error=float(np.max(np.abs(residual))),
        converged=result.converged,
        n_iterations=result.n_iter,
    )


def fit_waveform(
    waveform: Waveform,
    vdd: float = VDD,
    weight_peak: float = DEFAULT_WEIGHT_PEAK,
    weight_width: float = DEFAULT_WEIGHT_WIDTH,
    max_points: int = DEFAULT_MAX_POINTS,
    margin: float = DEFAULT_MARGIN,
    max_iter: int = 60,
) -> FitResult:
    """Fit a sigmoidal trace to an analog waveform.

    Waveforms without any VDD/2 crossing yield a transition-free trace at
    the appropriate rail.  Raises :class:`FittingError` for waveforms whose
    crossing structure cannot be represented (sign alternation violations
    survive the crossing filter only on pathological data).
    """
    prepared = _prepare_fit(
        waveform, vdd, weight_peak, weight_width, max_points, margin
    )
    if isinstance(prepared, FitResult):
        return prepared
    tau_fit = prepared.tau_fit
    v_fit = prepared.v_fit
    offset = prepared.offset

    def unpack(x: np.ndarray) -> np.ndarray:
        return x.reshape(-1, 2)

    def residual_fn(x: np.ndarray) -> np.ndarray:
        return sum_model_tau(tau_fit, unpack(x), offset, vdd=vdd) - v_fit

    def jacobian_fn(x: np.ndarray) -> np.ndarray:
        return sum_model_jacobian_tau(tau_fit, unpack(x), vdd=vdd)

    result = levenberg_marquardt(
        residual_fn,
        jacobian_fn,
        prepared.params0.ravel(),
        weights=prepared.weights,
        max_iter=max_iter,
    )
    return _finalize_fit(prepared, result)


def fit_waveforms(
    waveforms: "list[Waveform]",
    vdd: float = VDD,
    weight_peak: float = DEFAULT_WEIGHT_PEAK,
    weight_width: float = DEFAULT_WEIGHT_WIDTH,
    max_points: int = DEFAULT_MAX_POINTS,
    margin: float = DEFAULT_MARGIN,
    max_iter: int = 60,
) -> list[FitResult]:
    """Fit many waveforms at once; bit-compatible with looped fits.

    Fit problems sharing a transition count are refined through one
    stacked Levenberg-Marquardt call (see
    :func:`repro.core.lm.levenberg_marquardt_batch`); problems whose fit
    windows hold fewer samples than their group's widest are padded with
    zero-weight samples, which leaves every per-problem reduction
    unchanged.  Results come back in input order and equal
    ``[fit_waveform(w, ...) for w in waveforms]``.
    """
    prepared: list[FitResult | _PreparedFit] = [
        _prepare_fit(w, vdd, weight_peak, weight_width, max_points, margin)
        for w in waveforms
    ]
    results: list[FitResult | None] = [
        p if isinstance(p, FitResult) else None for p in prepared
    ]

    groups: dict[int, list[int]] = {}
    for k, prep in enumerate(prepared):
        if isinstance(prep, _PreparedFit):
            groups.setdefault(prep.params0.shape[0], []).append(k)

    for members in groups.values():
        probs = [prepared[k] for k in members]
        n_samples = max(p.tau_fit.size for p in probs)
        tau = np.empty((len(probs), n_samples))
        v = np.zeros_like(tau)
        weights = np.zeros_like(tau)
        for row, prep in enumerate(probs):
            m = prep.tau_fit.size
            tau[row, :m] = prep.tau_fit
            # Padding repeats the last sample behind zero weight: the
            # model stays finite there and the extra residuals vanish
            # exactly from every cost and normal-equation reduction.
            tau[row, m:] = prep.tau_fit[-1]
            v[row, :m] = prep.v_fit
            weights[row, :m] = prep.weights
        offsets = np.array([p.offset for p in probs])
        x0 = np.stack([p.params0.ravel() for p in probs])

        def residual_fn(x: np.ndarray, idx: np.ndarray) -> np.ndarray:
            params = x.reshape(x.shape[0], -1, 2)
            model = sum_model_tau_stacked(
                tau[idx], params, offsets[idx], vdd=vdd
            )
            return model - v[idx]

        def jacobian_fn(x: np.ndarray, idx: np.ndarray) -> np.ndarray:
            params = x.reshape(x.shape[0], -1, 2)
            return sum_model_jacobian_tau_stacked(tau[idx], params, vdd=vdd)

        lm_results = levenberg_marquardt_batch(
            residual_fn,
            jacobian_fn,
            x0,
            weights=weights,
            n_valid=np.array([p.tau_fit.size for p in probs]),
            max_iter=max_iter,
        )
        for k, lm_result in zip(members, lm_results):
            results[k] = _finalize_fit(prepared[k], lm_result)

    return results


def _params_valid(params: np.ndarray, initial_level: int) -> bool:
    if np.any(params[:, 0] == 0.0):
        return False
    if np.any(np.diff(params[:, 1]) < 0):
        return False
    expected = -1.0 if initial_level else 1.0
    for a, _b in params:
        if np.sign(a) != expected:
            return False
        expected = -expected
    return True


def _repair(
    params: np.ndarray, params0: np.ndarray, initial_level: int
) -> np.ndarray:
    """Replace invalid rows with their initial estimates, then re-sort."""
    repaired = params.copy()
    expected = -1.0 if initial_level else 1.0
    for i in range(repaired.shape[0]):
        if np.sign(repaired[i, 0]) != expected or repaired[i, 0] == 0.0:
            repaired[i] = params0[i]
        expected = -expected
    # Crossing times must stay ordered; if the fit scrambled them the
    # initial estimates (which are ordered) win.
    if np.any(np.diff(repaired[:, 1]) < 0):
        repaired = params0.copy()
    if not _params_valid(repaired, initial_level):
        raise FittingError("could not repair fitted parameters")
    return repaired
