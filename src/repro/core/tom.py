"""Third-order model (TOM) transfer functions and Algorithm 1.

The TOM (Sec. III, Eq. 3) predicts the parameters of the next output
sigmoid of a gate from the current input sigmoid and the previous output
sigmoid::

    (a_out_n, b_out_n - b_in_n) = F_G(b_in_n - b_out_{n-1}, a_in_n, a_out_{n-1})

:func:`predict_gate_output` is the paper's Algorithm 1: it seeds the
output list with a dummy transition at ``-inf`` (realized as a large but
finite history so ANN inputs stay in range), walks the input transitions
in time order, dispatches to the rising/falling transfer function, and
applies sub-threshold pulse cancellation on the fly (the refinement the
paper describes below Algorithm 1).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.constants import NOMINAL_SLOPE
from repro.core.cancellation import pair_crosses_threshold
from repro.core.trace import SigmoidalTrace
from repro.errors import ModelError

#: History cap (scaled time units, = 100 ps): a previous output transition
#: farther back than this has no influence (the paper's decay property —
#: gate-state recovery completes within a few gate delays); it also
#: realizes the dummy ``(s, -inf)`` seed with in-range ANN inputs.  Keeping
#: the cap close to the dynamic range matters: it anchors the feature
#: scaling that the valid region uses, so near-cliff queries project onto
#: cliff-edge training points instead of healthy ones.
T_CAP: float = 1.0


class TransferFunction(Protocol):
    """One polarity's transfer function ``F_G`` (Eq. 3).

    Implementations: :class:`~repro.core.ann_transfer.ANNTransferFunction`
    (the paper's), plus LUT/polynomial/RBF alternatives in
    :mod:`~repro.core.table_transfer`.
    """

    def predict(
        self, T: float, a_out_prev: float, a_in: float
    ) -> tuple[float, float]:
        """Return ``(a_out, delta_b)`` with ``delta_b = b_out - b_in``."""
        ...


def clamp_history(T: float, t_cap: float = T_CAP) -> float:
    """Clamp the history feature to the decay cap (handles the -inf seed)."""
    return float(min(T, t_cap))


def predict_gate_output(
    input_trace: SigmoidalTrace,
    tf_rise: TransferFunction,
    tf_fall: TransferFunction,
    initial_output_level: int,
    dummy_slope: float = NOMINAL_SLOPE,
    t_cap: float = T_CAP,
    cancel_subthreshold: bool = True,
) -> SigmoidalTrace:
    """Algorithm 1: predict a single-input gate's output sigmoid list.

    Parameters
    ----------
    input_trace:
        The gate input as a sigmoidal trace.
    tf_rise / tf_fall:
        Transfer functions used for rising (``a_in > 0``) and falling
        input transitions respectively.
    initial_output_level:
        Steady-state output level before any transition (for an inverter:
        the complement of the input's initial level).
    dummy_slope:
        Magnitude of the dummy previous-output slope ``s``; its polarity
        matches the initial conditions (line 1 of Algorithm 1).
    cancel_subthreshold:
        Remove adjacent output pairs that never cross VDD/2, as described
        below Algorithm 1.
    """
    if initial_output_level not in (0, 1):
        raise ModelError("initial_output_level must be 0 or 1")

    # Dummy previous output transition (s, -inf): the polarity is the one
    # that *led to* the initial level (rising if the output now rests high).
    s_sign = 1.0 if initial_output_level == 1 else -1.0
    prev_a = s_sign * abs(dummy_slope)
    prev_b = -np.inf

    output_params: list[tuple[float, float]] = []
    expected_sign = -s_sign  # output transitions alternate after the dummy

    for a_in, b_in in input_trace.params:
        T = clamp_history(b_in - prev_b, t_cap)
        tf = tf_rise if a_in > 0 else tf_fall
        a_out, delta_b = tf.predict(T, prev_a, a_in)
        if not np.isfinite(a_out) or not np.isfinite(delta_b):
            raise ModelError("transfer function produced non-finite output")
        # Enforce the structural alternation of the output trace: the
        # prediction's magnitude is kept, the polarity is dictated by the
        # sequence (a mispredicted sign cannot produce a valid trace).
        a_out = expected_sign * abs(a_out)
        b_out = b_in + delta_b

        # Output transitions must stay ordered; a prediction that would
        # jump before its predecessor is snapped just after it.
        if output_params and b_out <= output_params[-1][1]:
            b_out = output_params[-1][1] + 1e-6

        output_params.append((a_out, b_out))
        prev_a, prev_b = a_out, b_out
        expected_sign = -expected_sign

        if cancel_subthreshold and len(output_params) >= 2:
            first = output_params[-2]
            second = output_params[-1]
            if not pair_crosses_threshold(first, second):
                # Drop the sub-threshold pulse; the previous output
                # transition reverts to the one before the pair.
                output_params.pop()
                output_params.pop()
                if output_params:
                    prev_a, prev_b = output_params[-1]
                else:
                    prev_a, prev_b = s_sign * abs(dummy_slope), -np.inf
                expected_sign = -np.sign(prev_a)

    return SigmoidalTrace(initial_output_level, output_params,
                          vdd=input_trace.vdd)
