"""Sub-threshold pulse cancellation (Sec. III, below Algorithm 1).

Two adjacent output tuples form a pulse; if the sum of their two sigmoids
never crosses the threshold voltage, the pulse would not be visible at the
digital level and the tuples "can safely be dropped from the output list".

For a rising-falling pair above a low rail, the pulse peak is
``VDD * max_t (Fs(a1,b1) + Fs(a2,b2) - 1)``; the pair is kept only when
that peak reaches the threshold.  The falling-rising case (a dip below a
high rail) is symmetric.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize_scalar

from repro.constants import VDD, VTH
from repro.core.sigmoid import sigmoid_tau, transition_width_tau
from repro.errors import ModelError


def pulse_peak_value(
    first: tuple[float, float],
    second: tuple[float, float],
    vdd: float = VDD,
) -> float:
    """Extreme voltage reached by an adjacent pair of output sigmoids.

    For a rising-then-falling pair the returned value is the maximum of
    the pulse; for a falling-then-rising pair it is the minimum of the dip.
    """
    a1, b1 = first
    a2, b2 = second
    if a1 == 0.0 or a2 == 0.0:
        raise ModelError("slope parameters must be nonzero")
    if np.sign(a1) == np.sign(a2):
        raise ModelError("a pulse pair needs opposite transition polarities")

    rising_first = a1 > 0

    def height(tau: float) -> float:
        # Pair contribution relative to the rail before the pulse.
        value = sigmoid_tau(tau, a1, b1) + sigmoid_tau(tau, a2, b2)
        return value - 1.0 if rising_first else value

    # The extremum lies between the two crossing times; search a bracket
    # padded by both transition widths.
    w1 = transition_width_tau(a1)
    w2 = transition_width_tau(a2)
    lo = min(b1, b2) - 2 * (w1 + w2)
    hi = max(b1, b2) + 2 * (w1 + w2)
    sign = -1.0 if rising_first else 1.0
    result = minimize_scalar(
        lambda tau: sign * height(tau), bounds=(lo, hi), method="bounded"
    )
    extreme = height(float(result.x))
    return float(vdd * extreme if rising_first else vdd * extreme)


def pair_crosses_threshold(
    first: tuple[float, float],
    second: tuple[float, float],
    vdd: float = VDD,
    threshold: float = VTH,
) -> bool:
    """Whether the pulse formed by two adjacent tuples crosses VDD/2."""
    peak = pulse_peak_value(first, second, vdd=vdd)
    if first[0] > 0:  # pulse above the low rail
        return peak >= threshold
    return peak <= threshold  # dip below the high rail


def cancel_subthreshold_pulses(
    params: list[tuple[float, float]],
    initial_level: int,
    vdd: float = VDD,
    threshold: float = VTH,
) -> list[tuple[float, float]]:
    """Post-pass form of the cancellation: scan until no pair is droppable.

    Equivalent to the in-loop cancellation of Algorithm 1 when applied to
    a complete output list; exposed for testing and for the table-based
    transfer functions.
    """
    result = list(params)
    changed = True
    while changed:
        changed = False
        for i in range(len(result) - 1):
            if not pair_crosses_threshold(
                result[i], result[i + 1], vdd=vdd, threshold=threshold
            ):
                del result[i : i + 2]
                changed = True
                break
    return result
