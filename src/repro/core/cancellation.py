"""Sub-threshold pulse cancellation (Sec. III, below Algorithm 1).

Two adjacent output tuples form a pulse; if the sum of their two sigmoids
never crosses the threshold voltage, the pulse would not be visible at the
digital level and the tuples "can safely be dropped from the output list".

For a rising-falling pair above a low rail, the pulse peak is
``VDD * max_t (Fs(a1,b1) + Fs(a2,b2) - 1)``; the pair is kept only when
that peak reaches the threshold.  The falling-rising case (a dip below a
high rail) is symmetric.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import minimize_scalar
from scipy.special import expit

from repro.constants import VDD, VTH
from repro.core.sigmoid import sigmoid_tau, transition_width_tau
from repro.errors import ModelError

#: Safety margin (volts) of the closed-form pulse-peak bounds used by
#: :func:`pair_crosses_threshold_batch`.  Pairs whose analytic bounds
#: land within the margin of the threshold fall back to the exact
#: scalar optimizer, so the vectorized decision can never disagree with
#: :func:`pair_crosses_threshold` (whose bounded-Brent peak estimate is
#: accurate to far better than this margin).
_BOUND_MARGIN_V = 1e-6

_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0


def _sig(x: float) -> float:
    """Scalar logistic with overflow clamping (``math.exp`` based)."""
    if x >= 0.0:
        return 1.0 / (1.0 + math.exp(-x)) if x < 700.0 else 1.0
    return math.exp(x) / (1.0 + math.exp(x)) if x > -700.0 else 0.0


def _pulse_peak_fast(a1: float, b1: float, a2: float, b2: float) -> float:
    """Cheap twin of :func:`pulse_peak_value`'s extremum search.

    Grid-seeded golden-section over the same padded bracket, in pure
    python (``math.exp``), so the hot cancellation path does not pay
    scipy's per-call optimizer overhead.  48 reuse iterations shrink
    the bracket to ~1e-10 of its width; the extremum *value* error is
    quadratically smaller still, far below ``_BOUND_MARGIN_V`` — the
    batch caller only trusts the result outside that margin and
    delegates the sliver to the exact scalar routine.
    """
    rising = a1 > 0.0
    sign = -1.0 if rising else 1.0
    off = -1.0 if rising else 0.0

    def g(tau: float) -> float:
        return sign * (_sig(a1 * (tau - b1)) + _sig(a2 * (tau - b2)) + off)

    w = 2.0 * (transition_width_tau(a1) + transition_width_tau(a2))
    lo = min(b1, b2) - w
    hi = max(b1, b2) + w
    # The best cell of a 9-point seed grid brackets the extremum.
    step = (hi - lo) / 8.0
    vals = [g(lo + i * step) for i in range(9)]
    best = vals.index(min(vals))
    a = lo + max(best - 1, 0) * step
    b = lo + min(best + 1, 8) * step
    span = b - a
    c = b - _INVPHI * span
    d = a + _INVPHI * span
    fc = g(c)
    fd = g(d)
    for _ in range(48):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _INVPHI * (b - a)
            fc = g(c)
        else:
            a, c, fc = c, d, fd
            d = a + _INVPHI * (b - a)
            fd = g(d)
    return sign * min(fc, fd)


def pulse_peak_value(
    first: tuple[float, float],
    second: tuple[float, float],
    vdd: float = VDD,
) -> float:
    """Extreme voltage reached by an adjacent pair of output sigmoids.

    For a rising-then-falling pair the returned value is the maximum of
    the pulse; for a falling-then-rising pair it is the minimum of the dip.
    """
    a1, b1 = first
    a2, b2 = second
    if a1 == 0.0 or a2 == 0.0:
        raise ModelError("slope parameters must be nonzero")
    if np.sign(a1) == np.sign(a2):
        raise ModelError("a pulse pair needs opposite transition polarities")

    rising_first = a1 > 0

    def height(tau: float) -> float:
        # Pair contribution relative to the rail before the pulse.
        value = sigmoid_tau(tau, a1, b1) + sigmoid_tau(tau, a2, b2)
        return value - 1.0 if rising_first else value

    # The extremum lies between the two crossing times; search a bracket
    # padded by both transition widths.
    w1 = transition_width_tau(a1)
    w2 = transition_width_tau(a2)
    lo = min(b1, b2) - 2 * (w1 + w2)
    hi = max(b1, b2) + 2 * (w1 + w2)
    sign = -1.0 if rising_first else 1.0
    result = minimize_scalar(
        lambda tau: sign * height(tau), bounds=(lo, hi), method="bounded"
    )
    extreme = height(float(result.x))
    return float(vdd * extreme if rising_first else vdd * extreme)


def pair_crosses_threshold(
    first: tuple[float, float],
    second: tuple[float, float],
    vdd: float = VDD,
    threshold: float = VTH,
) -> bool:
    """Whether the pulse formed by two adjacent tuples crosses VDD/2."""
    peak = pulse_peak_value(first, second, vdd=vdd)
    if first[0] > 0:  # pulse above the low rail
        return peak >= threshold
    return peak <= threshold  # dip below the high rail


def pair_crosses_threshold_batch(
    first: np.ndarray,
    second: np.ndarray,
    vdd: np.ndarray,
    threshold: float = VTH,
) -> np.ndarray:
    """Vectorized :func:`pair_crosses_threshold` over ``(n, 2)`` pairs.

    Uses a closed-form two-sided bound on the pulse peak: the two
    sigmoids of a pair cross at ``tau_c = (a1 b1 - a2 b2) / (a1 - a2)``
    where both equal ``s_c``; for a rising-first pulse the peak height
    lies in ``[2 s_c - 1, s_c]`` and for a falling-first dip the minimum
    lies in ``[s_c, 2 s_c]`` (each bound is the pair sum either *at*
    the crossing or bounded by the smaller sigmoid there).  Pairs whose
    bounds clear the threshold either way — the overwhelming majority —
    are decided without optimization; the ambiguous sliver (and any
    degenerate slopes) delegates to the exact scalar routine, so the
    batch decision matches the scalar one pair for pair.
    """
    first = np.atleast_2d(np.asarray(first, dtype=float))
    second = np.atleast_2d(np.asarray(second, dtype=float))
    vdd = np.broadcast_to(np.asarray(vdd, dtype=float), (first.shape[0],))
    return _pair_crosses_split(
        first[:, 0], first[:, 1], second[:, 0], second[:, 1], vdd, threshold
    )


def _pair_crosses_split(
    a1: np.ndarray,
    b1: np.ndarray,
    a2: np.ndarray,
    b2: np.ndarray,
    vdd: np.ndarray,
    threshold: float = VTH,
) -> np.ndarray:
    """:func:`pair_crosses_threshold_batch` on already-split 1-d params.

    The hot-loop entry (:func:`~repro.core.compile.lockstep_level` calls
    it with raw column slices), sparing the ``(n, 2)`` stacking and
    re-splitting of the public wrapper.  When the supply rail is uniform
    across the batch — every compiled-core call — the four peak-bound
    comparisons reduce to scalar thresholds on ``s_c`` alone.
    """
    result = np.zeros(a1.shape[0], dtype=bool)

    regular = (a1 != 0.0) & (a2 != 0.0) & (np.sign(a1) != np.sign(a2))
    with np.errstate(invalid="ignore", divide="ignore"):
        tau_c = (a1 * b1 - a2 * b2) / (a1 - a2)
        s_c = expit(a1 * (tau_c - b1))
    rising = a1 > 0
    v0 = float(vdd[0]) if vdd.size else 1.0
    if vdd.size == 0 or bool((vdd == v0).all()):
        # Uniform rail: the volt-domain bounds of the docstring, solved
        # for s_c, become four scalar cutoffs.
        tk = (threshold + _BOUND_MARGIN_V) / v0
        tc = (threshold - _BOUND_MARGIN_V) / v0
        keep_sure = np.where(
            rising, s_c >= 0.5 * (1.0 + tk), s_c <= 0.5 * tc
        )
        cancel_sure = np.where(rising, s_c < tc, s_c > tk)
    else:
        # Peak / dip bounds in volts (see docstring).
        tight = np.where(rising, vdd * (2.0 * s_c - 1.0), vdd * 2.0 * s_c)
        loose = vdd * s_c
        keep_sure = np.where(
            rising,
            tight >= threshold + _BOUND_MARGIN_V,
            tight <= threshold - _BOUND_MARGIN_V,
        )
        cancel_sure = np.where(
            rising,
            loose < threshold - _BOUND_MARGIN_V,
            loose > threshold + _BOUND_MARGIN_V,
        )
    decided = regular & np.isfinite(s_c) & (keep_sure | cancel_sure)
    result[decided] = keep_sure[decided]
    # Non-finite pairs (NaN placeholders from a fused super-level whose
    # finiteness check is deferred) are kept as-is rather than handed to
    # the scalar routine — the super-level check raises for them anyway,
    # and keeping them preserves the lane for that diagnostic.  A sum is
    # non-finite exactly when any addend is (inf pairs of opposite sign
    # collapse to NaN), so one ``isfinite`` covers all four parameters.
    finite = np.isfinite(a1 + b1 + a2 + b2)
    result[~finite] = True
    for i in np.nonzero(~decided & finite)[0]:
        fa1, fb1 = float(a1[i]), float(b1[i])
        fa2, fb2 = float(a2[i]), float(b2[i])
        if regular[i]:
            # Cheap exact-search refinement: trusted only when the
            # extremum clears the threshold by the same margin the
            # analytic bounds use; the sliver (and degenerate pairs)
            # still goes to the scipy-exact scalar routine.
            peak = float(vdd[i]) * _pulse_peak_fast(fa1, fb1, fa2, fb2)
            if abs(peak - threshold) > _BOUND_MARGIN_V:
                result[i] = (
                    peak >= threshold if rising[i] else peak <= threshold
                )
                continue
        result[i] = pair_crosses_threshold(
            (fa1, fb1), (fa2, fb2), vdd=float(vdd[i]), threshold=threshold
        )
    return result


def cancel_subthreshold_pulses(
    params: list[tuple[float, float]],
    initial_level: int,
    vdd: float = VDD,
    threshold: float = VTH,
) -> list[tuple[float, float]]:
    """Post-pass form of the cancellation: scan until no pair is droppable.

    Equivalent to the in-loop cancellation of Algorithm 1 when applied to
    a complete output list; exposed for testing and for the table-based
    transfer functions.
    """
    result = list(params)
    changed = True
    while changed:
        changed = False
        for i in range(len(result) - 1):
            if not pair_crosses_threshold(
                result[i], result[i + 1], vdd=vdd, threshold=threshold
            ):
                del result[i : i + 2]
                changed = True
                break
    return result
