"""Sub-threshold pulse cancellation (Sec. III, below Algorithm 1).

Two adjacent output tuples form a pulse; if the sum of their two sigmoids
never crosses the threshold voltage, the pulse would not be visible at the
digital level and the tuples "can safely be dropped from the output list".

For a rising-falling pair above a low rail, the pulse peak is
``VDD * max_t (Fs(a1,b1) + Fs(a2,b2) - 1)``; the pair is kept only when
that peak reaches the threshold.  The falling-rising case (a dip below a
high rail) is symmetric.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize_scalar
from scipy.special import expit

from repro.constants import VDD, VTH
from repro.core.sigmoid import sigmoid_tau, transition_width_tau
from repro.errors import ModelError

#: Safety margin (volts) of the closed-form pulse-peak bounds used by
#: :func:`pair_crosses_threshold_batch`.  Pairs whose analytic bounds
#: land within the margin of the threshold fall back to the exact
#: scalar optimizer, so the vectorized decision can never disagree with
#: :func:`pair_crosses_threshold` (whose bounded-Brent peak estimate is
#: accurate to far better than this margin).
_BOUND_MARGIN_V = 1e-6


def pulse_peak_value(
    first: tuple[float, float],
    second: tuple[float, float],
    vdd: float = VDD,
) -> float:
    """Extreme voltage reached by an adjacent pair of output sigmoids.

    For a rising-then-falling pair the returned value is the maximum of
    the pulse; for a falling-then-rising pair it is the minimum of the dip.
    """
    a1, b1 = first
    a2, b2 = second
    if a1 == 0.0 or a2 == 0.0:
        raise ModelError("slope parameters must be nonzero")
    if np.sign(a1) == np.sign(a2):
        raise ModelError("a pulse pair needs opposite transition polarities")

    rising_first = a1 > 0

    def height(tau: float) -> float:
        # Pair contribution relative to the rail before the pulse.
        value = sigmoid_tau(tau, a1, b1) + sigmoid_tau(tau, a2, b2)
        return value - 1.0 if rising_first else value

    # The extremum lies between the two crossing times; search a bracket
    # padded by both transition widths.
    w1 = transition_width_tau(a1)
    w2 = transition_width_tau(a2)
    lo = min(b1, b2) - 2 * (w1 + w2)
    hi = max(b1, b2) + 2 * (w1 + w2)
    sign = -1.0 if rising_first else 1.0
    result = minimize_scalar(
        lambda tau: sign * height(tau), bounds=(lo, hi), method="bounded"
    )
    extreme = height(float(result.x))
    return float(vdd * extreme if rising_first else vdd * extreme)


def pair_crosses_threshold(
    first: tuple[float, float],
    second: tuple[float, float],
    vdd: float = VDD,
    threshold: float = VTH,
) -> bool:
    """Whether the pulse formed by two adjacent tuples crosses VDD/2."""
    peak = pulse_peak_value(first, second, vdd=vdd)
    if first[0] > 0:  # pulse above the low rail
        return peak >= threshold
    return peak <= threshold  # dip below the high rail


def pair_crosses_threshold_batch(
    first: np.ndarray,
    second: np.ndarray,
    vdd: np.ndarray,
    threshold: float = VTH,
) -> np.ndarray:
    """Vectorized :func:`pair_crosses_threshold` over ``(n, 2)`` pairs.

    Uses a closed-form two-sided bound on the pulse peak: the two
    sigmoids of a pair cross at ``tau_c = (a1 b1 - a2 b2) / (a1 - a2)``
    where both equal ``s_c``; for a rising-first pulse the peak height
    lies in ``[2 s_c - 1, s_c]`` and for a falling-first dip the minimum
    lies in ``[s_c, 2 s_c]`` (each bound is the pair sum either *at*
    the crossing or bounded by the smaller sigmoid there).  Pairs whose
    bounds clear the threshold either way — the overwhelming majority —
    are decided without optimization; the ambiguous sliver (and any
    degenerate slopes) delegates to the exact scalar routine, so the
    batch decision matches the scalar one pair for pair.
    """
    first = np.atleast_2d(np.asarray(first, dtype=float))
    second = np.atleast_2d(np.asarray(second, dtype=float))
    vdd = np.broadcast_to(np.asarray(vdd, dtype=float), (first.shape[0],))
    a1, b1 = first[:, 0], first[:, 1]
    a2, b2 = second[:, 0], second[:, 1]
    result = np.zeros(first.shape[0], dtype=bool)

    regular = (a1 != 0.0) & (a2 != 0.0) & (np.sign(a1) != np.sign(a2))
    with np.errstate(invalid="ignore", divide="ignore"):
        tau_c = (a1 * b1 - a2 * b2) / (a1 - a2)
        s_c = expit(a1 * (tau_c - b1))
    rising = a1 > 0
    # Peak / dip bounds in volts (see docstring).
    tight = np.where(rising, vdd * (2.0 * s_c - 1.0), vdd * 2.0 * s_c)
    loose = vdd * s_c
    keep_sure = np.where(
        rising,
        tight >= threshold + _BOUND_MARGIN_V,
        tight <= threshold - _BOUND_MARGIN_V,
    )
    cancel_sure = np.where(
        rising,
        loose < threshold - _BOUND_MARGIN_V,
        loose > threshold + _BOUND_MARGIN_V,
    )
    decided = regular & np.isfinite(s_c) & (keep_sure | cancel_sure)
    result[decided] = keep_sure[decided]
    for i in np.nonzero(~decided)[0]:
        result[i] = pair_crosses_threshold(
            (float(a1[i]), float(b1[i])),
            (float(a2[i]), float(b2[i])),
            vdd=float(vdd[i]),
            threshold=threshold,
        )
    return result


def cancel_subthreshold_pulses(
    params: list[tuple[float, float]],
    initial_level: int,
    vdd: float = VDD,
    threshold: float = VTH,
) -> list[tuple[float, float]]:
    """Post-pass form of the cancellation: scan until no pair is droppable.

    Equivalent to the in-loop cancellation of Algorithm 1 when applied to
    a complete output list; exposed for testing and for the table-based
    transfer functions.
    """
    result = list(params)
    changed = True
    while changed:
        changed = False
        for i in range(len(result) - 1):
            if not pair_crosses_threshold(
                result[i], result[i + 1], vdd=vdd, threshold=threshold
            ):
                del result[i : i + 2]
                changed = True
                break
    return result
