"""Execution-target registry for the compiled kernels.

The lowering pipeline in :mod:`repro.core.compile` emits its fused
kernels against a tiny target-agnostic contract — an
:class:`ExecutionTarget` supplies the few dense primitives the kernels
need (today: a gathered batched matmul).  Everything else in the
compiled path (index precomputation, masking, event assembly) is plain
numpy and stays identical across targets, which is what makes the
cross-target parity contract cheap to state: targets may differ by
floating-point ulps, never by structure.

Two targets ship:

* ``numpy`` — the default, always available, pure numpy.
* ``numba`` — optional; detected via :func:`importlib.util.find_spec`
  and JIT-compiled lazily on first use.  When numba is not installed
  the target reports itself unavailable and :func:`resolve_target`
  raises a clear :class:`~repro.errors.SimulationError`.

A GPU target (cupy et al.) can slot in later by registering another
subclass — nothing in the kernel code assumes host memory beyond this
module.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "ExecutionTarget",
    "NumbaTarget",
    "NumpyTarget",
    "available_targets",
    "get_target",
    "register_target",
    "registered_targets",
    "resolve_target",
]


class ExecutionTarget:
    """One way of executing the fused numeric kernels.

    Subclasses implement :meth:`matmul_gather` (the single dense
    primitive the fused ANN forward needs) and :meth:`available`.
    Instances are stateless and shared; registration happens at import
    time via :func:`register_target`.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    def available(self) -> bool:
        """Whether this target can execute on the current host."""
        raise NotImplementedError

    def matmul_gather(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        biases: np.ndarray,
        members: np.ndarray,
    ) -> np.ndarray:
        """Per-row gathered affine map: ``x[i] @ weights[members[i]] +
        biases[members[i]]``.

        ``x`` is ``(n, f_in)`` float64, ``weights`` ``(k, f_in, f_out)``,
        ``biases`` ``(k, f_out)``, ``members`` ``(n,)`` int.  Returns
        ``(n, f_out)`` float64.
        """
        raise NotImplementedError


class NumpyTarget(ExecutionTarget):
    """Pure-numpy execution — always available, the parity reference."""

    name = "numpy"

    def available(self) -> bool:
        return True

    def matmul_gather(self, x, weights, biases, members):
        # (n, 1, f_in) @ (n, f_in, f_out) -> (n, 1, f_out)
        return np.matmul(x[:, None, :], weights[members])[:, 0, :] + biases[members]


class NumbaTarget(ExecutionTarget):
    """Numba-JIT execution; optional, gated on the package being present.

    The kernel is compiled lazily on first call so importing this
    module (and listing targets) never pays JIT or numba-import cost.
    """

    name = "numba"

    def __init__(self) -> None:
        self._kernel = None

    def available(self) -> bool:
        return importlib.util.find_spec("numba") is not None

    def _compiled_kernel(self):
        if self._kernel is None:
            import numba

            @numba.njit(cache=True)
            def _matmul_gather(x, weights, biases, members, out):
                n, f_in = x.shape
                f_out = weights.shape[2]
                for i in range(n):
                    m = members[i]
                    for j in range(f_out):
                        acc = biases[m, j]
                        for k in range(f_in):
                            acc += x[i, k] * weights[m, k, j]
                        out[i, j] = acc

            self._kernel = _matmul_gather
        return self._kernel

    def matmul_gather(self, x, weights, biases, members):
        out = np.empty((x.shape[0], weights.shape[2]), dtype=np.float64)
        self._compiled_kernel()(
            np.ascontiguousarray(x, dtype=np.float64),
            weights,
            biases,
            members.astype(np.int64),
            out,
        )
        return out


_TARGETS: "dict[str, ExecutionTarget]" = {}


def register_target(target: ExecutionTarget) -> None:
    """Register an execution target under ``target.name``."""
    if not target.name:
        raise SimulationError("execution target needs a non-empty name")
    _TARGETS[target.name] = target


def registered_targets() -> "list[str]":
    """All registered target names, available on this host or not."""
    return sorted(_TARGETS)


def available_targets() -> "list[str]":
    """Registered target names that can execute on this host."""
    return sorted(n for n, t in _TARGETS.items() if t.available())


def get_target(name: str) -> ExecutionTarget:
    """Look up a registered target by name (availability unchecked)."""
    try:
        return _TARGETS[name]
    except KeyError:
        raise SimulationError(
            f"unknown execution target {name!r}; "
            f"registered: {', '.join(registered_targets())}"
        ) from None


def resolve_target(target) -> ExecutionTarget:
    """Resolve ``None`` / a name / an instance to a usable target.

    ``None`` means the default ``numpy`` target.  Raises
    :class:`~repro.errors.SimulationError` for unknown names and for
    targets whose optional dependency is not installed.
    """
    if target is None:
        target = "numpy"
    if isinstance(target, str):
        target = get_target(target)
    if not isinstance(target, ExecutionTarget):
        raise SimulationError(
            f"execution target must be a name or ExecutionTarget, "
            f"got {type(target).__name__}"
        )
    if not target.available():
        raise SimulationError(
            f"execution target {target.name!r} is not available on this "
            f"host (optional dependency not installed); available: "
            f"{', '.join(available_targets())}"
        )
    return target


register_target(NumpyTarget())
register_target(NumbaTarget())
