"""Full-circuit sigmoid simulator (the paper's prototype, Sec. V-A).

Processes an INV/NOR2 netlist in topological order: every gate's output
trace is predicted from its input traces with the trained TOM transfer
functions — Algorithm 1 for inverters, the decision procedure of
:mod:`~repro.core.multi_input` for NOR gates.  Models are selected per
instance by fanout class (dedicated fanout >= 2 ANNs, Sec. V-A).

Input signals are supplied "in the form of sigmoid parameter lists":
either fits of analog waveforms (the Table-I default) or nominal-slope
conversions of digital stimuli (the "same stimulus" row).

By default the instance lowers the netlist into a compiled levelized
array program (:mod:`repro.core.compile`) and evaluates whole levels ×
whole run batches per stacked backend call; ``compiled=False`` keeps
the per-gate interpreted walk as the equivalence-testing reference.
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.core.models import GateModelBundle
from repro.core.trace import SigmoidalTrace
from repro.errors import SimulationError


class SigmoidCircuitSimulator:
    """Sigmoid-domain simulator bound to a netlist and trained models."""

    def __init__(
        self,
        netlist: Netlist,
        bundle: GateModelBundle,
        compiled: bool = True,
        target: str | None = None,
        fused: bool = True,
    ) -> None:
        netlist.validate()
        if netlist.is_sequential:
            raise SimulationError(
                f"netlist {netlist.name!r} has state elements; run it "
                "through a clocked session "
                "(repro.clocked.ClockedSigmoidSession) instead"
            )
        for gate in netlist.gates.values():
            if gate.gtype is GateType.INV:
                continue
            if gate.gtype is GateType.NOR and len(gate.inputs) == 2:
                continue
            raise SimulationError(
                "sigmoid simulator supports INV and NOR2 only; "
                f"gate {gate.name} is {gate.gtype.value}/{len(gate.inputs)}"
            )
        self.netlist = netlist
        self.bundle = bundle
        self.compiled = compiled
        self.target = target
        self.fused = fused
        self._compiled_circuit = None
        if compiled:
            from repro.core.compile import compile_circuit

            self._compiled_circuit = compile_circuit(
                netlist, bundle, target=target
            )
        elif target is not None:
            from repro.core.targets import resolve_target

            resolve_target(target)  # eager validation, interpreted mode

    # ------------------------------------------------------------------
    def open_session(
        self,
        record_nets: list[str] | None = None,
        *,
        guard: float | None = None,
        state: dict | None = None,
    ):
        """Open a streaming :class:`~repro.core.session.SigmoidSession`.

        Compiled instances stream through the lock-step array kernels;
        interpreted instances stream the scalar Algorithm 1 walk — the
        same pairing as the one-shot entry points.
        """
        from repro.core.session import STREAM_GUARD, SigmoidSession

        if self._compiled_circuit is not None:
            return self._compiled_circuit.open_session(
                record_nets, guard=guard, state=state, target=self.target
            )
        return SigmoidSession(
            self.netlist,
            bundle=self.bundle,
            record_nets=record_nets,
            guard=STREAM_GUARD if guard is None else guard,
            state=state,
        )

    # ------------------------------------------------------------------
    def simulate(
        self,
        pi_traces: dict[str, SigmoidalTrace],
        record_nets: list[str] | None = None,
    ) -> dict[str, SigmoidalTrace]:
        """Predict traces for every requested net (default: primary outputs)."""
        return self.simulate_batch([pi_traces], record_nets)[0]

    def simulate_batch(
        self,
        pi_traces_runs: "list[dict[str, SigmoidalTrace]]",
        record_nets: list[str] | None = None,
    ) -> list[dict[str, SigmoidalTrace]]:
        """Predict traces for a batch of stimulus runs in one pass.

        One-shot semantics: the whole stimulus is consumed at once, and
        per run the predictions are exactly the ones :meth:`simulate`
        makes — the two entry points are bit-compatible.

        With ``compiled=True`` (the default) the batch executes through
        the fused whole-program kernels of :mod:`repro.core.fused` on
        the instance's execution ``target``; ``fused=False`` pins the
        per-level streaming-session path, and ``compiled=False`` runs
        the scalar per-gate walk both array paths are parity-locked
        against.
        """
        if self._compiled_circuit is not None and self.fused:
            return self._compiled_circuit.run_batch(
                pi_traces_runs, record_nets, target=self.target
            )
        from repro.core.session import one_shot_sigmoid_batch

        return one_shot_sigmoid_batch(
            self.open_session, self.netlist, pi_traces_runs, record_nets
        )
