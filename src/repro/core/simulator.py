"""Full-circuit sigmoid simulator (the paper's prototype, Sec. V-A).

Processes an INV/NOR2 netlist in topological order: every gate's output
trace is predicted from its input traces with the trained TOM transfer
functions — Algorithm 1 for inverters, the decision procedure of
:mod:`~repro.core.multi_input` for NOR gates.  Models are selected per
instance by fanout class (dedicated fanout >= 2 ANNs, Sec. V-A).

Input signals are supplied "in the form of sigmoid parameter lists":
either fits of analog waveforms (the Table-I default) or nominal-slope
conversions of digital stimuli (the "same stimulus" row).

By default the instance lowers the netlist into a compiled levelized
array program (:mod:`repro.core.compile`) and evaluates whole levels ×
whole run batches per stacked backend call; ``compiled=False`` keeps
the per-gate interpreted walk as the equivalence-testing reference.
"""

from __future__ import annotations

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.core.models import GateModelBundle
from repro.core.multi_input import predict_nor_output
from repro.core.tom import predict_gate_output
from repro.core.trace import SigmoidalTrace
from repro.errors import SimulationError


class SigmoidCircuitSimulator:
    """Sigmoid-domain simulator bound to a netlist and trained models."""

    def __init__(
        self,
        netlist: Netlist,
        bundle: GateModelBundle,
        compiled: bool = True,
    ) -> None:
        netlist.validate()
        for gate in netlist.gates.values():
            if gate.gtype is GateType.INV:
                continue
            if gate.gtype is GateType.NOR and len(gate.inputs) == 2:
                continue
            raise SimulationError(
                "sigmoid simulator supports INV and NOR2 only; "
                f"gate {gate.name} is {gate.gtype.value}/{len(gate.inputs)}"
            )
        self.netlist = netlist
        self.bundle = bundle
        self.compiled = compiled
        self._compiled_circuit = None
        self._order: list[str] | None = None
        self._plan: list[tuple] | None = None
        if compiled:
            from repro.core.compile import compile_circuit

            self._compiled_circuit = compile_circuit(netlist, bundle)
        else:
            self._build_plan()

    def _build_plan(self) -> None:
        """Resolve the interpreted walk's per-gate model plan.

        Model selection depends only on the static netlist (gate type,
        tied inputs, fanout class), so it is resolved once per instance
        here instead of once per gate per run.  Each plan entry is
        ``(name, inputs, single_channel_tfs | None, nor_pin_tfs | None)``.
        The compiled path does its own (equivalent) lowering in
        :mod:`repro.core.compile`, so the plan is only built when the
        instance actually interprets.
        """
        netlist, bundle = self.netlist, self.bundle
        self._order = netlist.topological_order()
        fanout_map = netlist.fanout()
        fanout_count = {
            net: len(fanout_map.get(net, ())) for net in netlist.nets
        }
        self._plan = []
        for name in self._order:
            gate = netlist.gates[name]
            fanout = fanout_count[name]
            if gate.gtype is GateType.INV:
                model = bundle.get("INV", 0, fanout)
                entry = (name, gate.inputs, (model.tf_rise, model.tf_fall), None)
            elif gate.inputs[0] == gate.inputs[1]:
                # Tied-input NOR: the inverter-class elementary gate of the
                # pure-NOR mapping — a single-input channel (Algorithm 1)
                # with its dedicated tied-cell models.
                model = bundle.get("NOR2T", 0, fanout)
                entry = (name, gate.inputs, (model.tf_rise, model.tf_fall), None)
            else:
                pin_tfs = []
                for pin in range(2):
                    model = bundle.get("NOR2", pin, fanout)
                    pin_tfs.append((model.tf_rise, model.tf_fall))
                entry = (name, gate.inputs, None, pin_tfs)
            self._plan.append(entry)

    # ------------------------------------------------------------------
    def simulate(
        self,
        pi_traces: dict[str, SigmoidalTrace],
        record_nets: list[str] | None = None,
    ) -> dict[str, SigmoidalTrace]:
        """Predict traces for every requested net (default: primary outputs)."""
        return self.simulate_batch([pi_traces], record_nets)[0]

    def simulate_batch(
        self,
        pi_traces_runs: "list[dict[str, SigmoidalTrace]]",
        record_nets: list[str] | None = None,
    ) -> list[dict[str, SigmoidalTrace]]:
        """Predict traces for a batch of stimulus runs in one pass.

        One walk of the topological order covers every run: the static
        per-gate work (ordering, fanout classing, model resolution) is
        done once for the whole batch and each gate's per-run predictions
        run back to back.  Per run, the predictions are exactly the ones
        :meth:`simulate` makes — the two entry points are bit-compatible.

        With ``compiled=True`` (the default) the walk is the lock-step
        array program of :mod:`repro.core.compile`; the interpreted
        loop below is the ``compiled=False`` reference.
        """
        if self._compiled_circuit is not None:
            return self._compiled_circuit.run_batch(
                pi_traces_runs, record_nets
            )
        pis = self.netlist.primary_inputs
        for pi_traces in pi_traces_runs:
            missing = [pi for pi in pis if pi not in pi_traces]
            if missing:
                raise SimulationError(f"missing PI traces: {missing}")
        if record_nets is None:
            record_nets = list(self.netlist.primary_outputs)

        # Steady-state levels anchor each gate's initial output level.
        level_runs = [
            self.netlist.evaluate(
                {pi: bool(pi_traces[pi].initial_level) for pi in pis}
            )
            for pi_traces in pi_traces_runs
        ]

        trace_runs: list[dict[str, SigmoidalTrace]] = [
            dict(pi_traces) for pi_traces in pi_traces_runs
        ]
        for name, inputs, single_tfs, nor_pin_tfs in self._plan:
            for traces, initial_levels in zip(trace_runs, level_runs):
                if single_tfs is not None:
                    traces[name] = predict_gate_output(
                        traces[inputs[0]],
                        single_tfs[0],
                        single_tfs[1],
                        initial_output_level=int(initial_levels[name]),
                    )
                else:
                    traces[name] = predict_nor_output(
                        [traces[inputs[0]], traces[inputs[1]]],
                        nor_pin_tfs,
                    )
                predicted_initial = traces[name].initial_level
                if predicted_initial != int(initial_levels[name]):
                    raise SimulationError(
                        f"initial level mismatch at gate {name}"
                    )  # pragma: no cover - defensive

        try:
            return [
                {net: traces[net] for net in record_nets}
                for traces in trace_runs
            ]
        except KeyError as exc:
            raise SimulationError(f"unknown record net: {exc}") from None
