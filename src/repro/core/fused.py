"""Fused super-level execution: whole-circuit / whole-zoo array programs.

:mod:`repro.core.compile` lowers a circuit to per-level index arrays,
but its streaming sessions still assemble every lane's events in python
and dispatch one grouped ``predict_members`` call per level per
transition step.  This module is the next lowering stage: a
:class:`CompiledProgram` precomputes cross-level gather indices (net ->
dense slot, per-level fanin slots, stacked member ids remapped onto one
merged :class:`~repro.core.backends.StackedTransferModel`) at compile
time, and :meth:`CompiledProgram.run_jobs` executes whole one-shot
batches with vectorized event assembly — NOR masking, tie ordering,
member selection and compaction all as array passes — feeding the
shared :func:`~repro.core.compile.lockstep_level` recurrence with the
backend's fused whole-stack evaluator on a selectable execution target
(:mod:`repro.core.targets`).

Super-levels: consecutive topological levels whose gates share a
transfer-backend kind form one group.  Within a group the per-step
python dispatch, the feature ``np.stack`` and the finiteness check are
hoisted — features fill one reused buffer, the fused evaluator answers
without per-member grouping, and finiteness is checked once per group
(non-finite predictions propagate as NaN, which the recurrence and the
cancellation guard tolerate, until the group check raises the canonical
:class:`~repro.errors.ModelError`).  The exact-scalar paths survive
where exactness is contractual: ambiguous cancellations still fall back
to ``minimize_scalar`` inside ``pair_crosses_threshold_batch``, and NOR
lanes whose cross-pin events land inside the ``MERGE_TIE_EPS`` window
fall back to the scalar :func:`~repro.core.compile.nor_merge_masked`
walk, so fused results match the per-level compiled path to float
re-association noise — far inside the 0.05 ps parity tolerance.

:func:`compile_program` builds one program over *many* netlists (the
benchmark zoo, a serve fleet's warm set): ragged levels are padded and
masked, and every lock-step call advances all member circuits at once.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NOMINAL_SLOPE, VDD
from repro.core.compile import (
    MERGE_TIE_EPS,
    compile_circuit,
    lockstep_level,
    nor_merge_masked,
)
from repro.core.tom import T_CAP
from repro.core.trace import SigmoidalTrace
from repro.errors import ModelError, SimulationError

__all__ = ["CompiledProgram", "compile_program"]


class _LevelArrays:
    """Compile-time gather indices for one circuit's topological level."""

    __slots__ = (
        "n_gates",
        "sl_out",
        "sl_in0",
        "sl_in1",
        "single",
        "si",
        "ni",
        "rise_m",
        "fall_m",
        "nor_m",
    )

    def __init__(self, program, slot_of, remap) -> None:
        n = len(program.names)
        self.n_gates = n
        self.sl_out = np.array(
            [slot_of[name] for name in program.names], dtype=int
        )
        self.sl_in0 = np.array([slot_of[net] for net in program.in0], dtype=int)
        # Tied/INV gates read one net; aliasing in1 to in0 makes the
        # boolean settle uniform: out = ~(v0 | v1) for every gate kind.
        self.sl_in1 = np.array(
            [
                slot_of[net] if net is not None else self.sl_in0[i]
                for i, net in enumerate(program.in1)
            ],
            dtype=int,
        )
        self.single = program.single.copy()
        self.si = np.nonzero(self.single)[0]
        self.ni = np.nonzero(~self.single)[0]
        self.rise_m = remap[program.rise_members]
        self.fall_m = remap[program.fall_members]
        self.nor_m = remap[program.nor_members[self.ni]]


class _CircuitPlan:
    """One member circuit's compile-time slice of the program."""

    __slots__ = ("circuit", "levels", "vdd_root", "pi_slots")

    def __init__(self, circuit, remap) -> None:
        self.circuit = circuit
        slot_of = circuit.slot_of
        self.levels = [
            _LevelArrays(program, slot_of, remap) for program in circuit.levels
        ]
        # vdd propagates from each gate's pin-0 chain back to a primary
        # input; resolving the chain at compile time turns per-run vdd
        # assignment into one gather.
        root = np.arange(circuit.n_slots)
        for la in self.levels:
            root[la.sl_out] = root[la.sl_in0]
        self.vdd_root = root
        self.pi_slots = np.array(
            [slot_of[pi] for pi in circuit.netlist.primary_inputs], dtype=int
        )


class _BatchState:
    """Per-slot event stores for one circuit's batch of runs."""

    __slots__ = (
        "n_runs",
        "ev_a",
        "ev_b",
        "ev_n",
        "init",
        "vdd",
        "jobs",
        "forced_mask",
        "forced_val",
        "b_shift",
    )

    def __init__(self, n_slots: int, n_runs: int) -> None:
        self.n_runs = n_runs
        empty = np.empty((n_runs, 0))
        self.ev_a: list = [empty] * n_slots
        self.ev_b: list = [empty] * n_slots
        self.ev_n = np.zeros((n_slots, n_runs), dtype=int)
        self.init = np.zeros((n_slots, n_runs), dtype=bool)
        self.vdd = np.full((n_slots, n_runs), VDD)
        self.jobs: list = []
        # Fault-campaign lowering (None when the batch is fault-free):
        # ``forced_mask``/``forced_val`` pin (slot, run) cells to a
        # constant level — stuck-at faults as forced-lane masks — and
        # ``b_shift`` offsets a gate slot's output crossing times, the
        # sigmoid twin of a perturbed arc-delay gather.
        self.forced_mask: np.ndarray | None = None
        self.forced_val: np.ndarray | None = None
        self.b_shift: np.ndarray | None = None


def compile_program(
    netlists, bundle, *, pin: bool = False, target=None
) -> "CompiledProgram":
    """Lower many netlists + one bundle into a single stacked program.

    Each netlist compiles (through the shared per-circuit cache, so
    repeated program builds over a warm fleet recompile nothing;
    ``pin`` passes through) and the compiled circuits merge into one
    :class:`CompiledProgram` whose transfer stack spans every distinct
    transfer function any member circuit uses.  ``target`` is validated
    eagerly, like :func:`~repro.core.compile.compile_circuit`'s.
    """
    circuits = [
        compile_circuit(netlist, bundle, pin=pin, target=target)
        for netlist in netlists
    ]
    return CompiledProgram(circuits)


class CompiledProgram:
    """Multi-circuit fused program: one stack, lock-step across members.

    Level ``L`` of the program advances level ``L`` of every member
    circuit that is deep enough — ragged depths simply stop
    contributing lanes — so a whole zoo (or one circuit: the
    single-member case behind
    :meth:`~repro.core.compile.CompiledCircuit.run_batch`) runs in one
    lock-step pass per level.
    """

    def __init__(self, circuits: list) -> None:
        if not circuits:
            raise SimulationError("a compiled program needs at least one circuit")
        backends = {circuit.backend for circuit in circuits}
        if len(backends) != 1:
            raise SimulationError(
                "program circuits must share one transfer backend; "
                f"got {sorted(backends)}"
            )
        self.circuits = list(circuits)
        self.backend = circuits[0].backend

        # Merge every circuit's transfer functions into one stack
        # (dedup by identity: fleet circuits over one bundle share most
        # models) and remap each circuit's member ids onto it.
        merged_ids: dict[int, int] = {}
        merged_tfs: list = []
        remaps = []
        for circuit in circuits:
            remap = np.zeros(max(circuit.n_members, 1), dtype=int)
            for local, tf in enumerate(circuit.tf_objects):
                index = merged_ids.get(id(tf))
                if index is None:
                    index = len(merged_tfs)
                    merged_ids[id(tf)] = index
                    merged_tfs.append(tf)
                remap[local] = index
            remaps.append(remap)
        if merged_tfs:
            if len(circuits) == 1:
                self.stack = circuits[0].stack
            else:
                self.stack = type(merged_tfs[0]).stack(merged_tfs)
        else:
            self.stack = None
        self.n_members = len(merged_tfs)

        self.plans = [
            _CircuitPlan(circuit, remap)
            for circuit, remap in zip(circuits, remaps)
        ]
        self.n_levels = max(
            (len(plan.levels) for plan in self.plans), default=0
        )
        # Super-level grouping: consecutive levels sharing a transfer
        # backend kind fuse into one group (one deferred finiteness
        # check, one feature buffer).  A uniform bundle yields a single
        # kind, hence one group spanning the whole program.
        kinds = [self.backend] * self.n_levels
        self.groups: list[tuple[int, int]] = []
        start = 0
        for level in range(1, self.n_levels + 1):
            if level == self.n_levels or kinds[level] != kinds[start]:
                self.groups.append((start, level))
                start = level
        self._fused_cache: dict = {}

    # ------------------------------------------------------------------
    def _predict_for(self, target):
        """(predict, deferred) for a target: fused raw or checked fallback."""
        from repro.core.targets import resolve_target

        resolved = resolve_target(target)
        if self.stack is None:
            return None, False
        evaluate = self.stack.fused_evaluator(resolved)
        if evaluate is not None:
            return evaluate, True
        return None, False  # lockstep_level falls back to checked stack calls

    # ------------------------------------------------------------------
    def run_jobs(
        self,
        jobs,
        *,
        t_cap: float = T_CAP,
        dummy_slope: float = NOMINAL_SLOPE,
        target=None,
        faults=None,
    ) -> list:
        """Execute one-shot prediction jobs in a single lock-step pass.

        ``jobs`` is a list of ``(circuit_index, pi_traces,
        record_nets)`` tuples — one stimulus run each, any mix of
        member circuits.  Returns one ``{net: SigmoidalTrace}`` dict
        per job, in order, with
        :func:`~repro.core.session.one_shot_sigmoid_batch` semantics
        (recorded primary inputs pass the caller's trace objects
        through; ``record_nets=None`` records the primary outputs;
        unknown record nets raise).  ``faults`` aligns one fault (or
        ``None``) with each job — stuck-at faults force the job's slot
        lanes, delay faults shift the faulted gate's output ``b``
        parameters (see :mod:`repro.faults.model`).
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if faults is None:
            faults = [None] * len(jobs)
        else:
            faults = list(faults)
            if len(faults) != len(jobs):
                raise SimulationError(
                    f"need one fault (or None) per job ({len(jobs)}), "
                    f"got {len(faults)}"
                )
        states: dict[int, _BatchState] = {}
        order = []
        for job_index, (ci, pi_traces, record) in enumerate(jobs):
            if not 0 <= ci < len(self.circuits):
                raise SimulationError(
                    f"circuit index {ci} out of range for a "
                    f"{len(self.circuits)}-circuit program"
                )
            pis = self.circuits[ci].netlist.primary_inputs
            missing = [pi for pi in pis if pi not in pi_traces]
            if missing:
                raise SimulationError(f"missing PI traces: {missing}")
            order.append((ci, pi_traces, record, faults[job_index]))
        for ci in sorted({ci for ci, _, _, _ in order}):
            runs = [
                (pi_traces, record, fault)
                for c, pi_traces, record, fault in order
                if c == ci
            ]
            states[ci] = self._ingest(ci, runs)

        predict, deferred = self._predict_for(target)
        abs_dummy = abs(float(dummy_slope))
        feature_buf = None
        for start, stop in self.groups:
            group_ok = True
            for level in range(start, stop):
                feature_buf, level_ok = self._advance_level(
                    level, states, float(t_cap), abs_dummy, predict,
                    feature_buf,
                )
                group_ok = group_ok and level_ok
            if deferred and not group_ok:
                raise ModelError(
                    "transfer function produced non-finite output"
                )

        results: list = []
        cursor = dict.fromkeys(states, 0)
        for ci, pi_traces, record, _fault in order:
            run = cursor[ci]
            cursor[ci] = run + 1
            results.append(self._extract(ci, states[ci], run, pi_traces, record))
        return results

    # ------------------------------------------------------------------
    def _ingest(self, ci: int, runs: list) -> _BatchState:
        """Load a circuit's stimulus batch into slot stores and settle."""
        plan = self.plans[ci]
        circuit = plan.circuit
        state = _BatchState(circuit.n_slots, len(runs))
        state.jobs = runs
        pis = circuit.netlist.primary_inputs
        for pi, slot in zip(pis, plan.pi_slots):
            traces = [pi_traces[pi] for pi_traces, _, _ in runs]
            width = max(t.params.shape[0] for t in traces)
            ev_a = np.zeros((state.n_runs, width))
            ev_b = np.zeros((state.n_runs, width))
            for run, trace in enumerate(traces):
                params = trace.params
                n = params.shape[0]
                ev_a[run, :n] = params[:, 0]
                ev_b[run, :n] = params[:, 1]
                state.ev_n[slot, run] = n
                state.init[slot, run] = bool(trace.initial_level)
                state.vdd[slot, run] = float(trace.vdd)
            state.ev_a[slot] = ev_a
            state.ev_b[slot] = ev_b
        state.vdd = state.vdd[plan.vdd_root]
        self._lower_faults(ci, state, runs)
        if state.forced_mask is not None:
            # Forced slots start — and stay — at the forced level; a
            # forced PI additionally swallows its stimulus events.
            np.copyto(state.init, state.forced_val, where=state.forced_mask)
            state.ev_n[state.forced_mask] = 0
        for la in plan.levels:  # boolean settle, level-vectorized
            state.init[la.sl_out] = ~(
                state.init[la.sl_in0] | state.init[la.sl_in1]
            )
            if state.forced_mask is not None:
                # Re-pin forced cells so the next level's settle reads
                # the stuck level, not the computed one.
                np.copyto(
                    state.init, state.forced_val, where=state.forced_mask
                )
        return state

    # ------------------------------------------------------------------
    def _lower_faults(self, ci: int, state: _BatchState, runs: list) -> None:
        """Populate the batch's forced-lane masks and ``b`` shifts."""
        if all(fault is None for _, _, fault in runs):
            return
        circuit = self.plans[ci].circuit
        slot_of = circuit.slot_of
        n_slots = circuit.n_slots
        forced_mask = np.zeros((n_slots, state.n_runs), dtype=bool)
        forced_val = np.zeros((n_slots, state.n_runs), dtype=bool)
        b_shift = np.zeros((n_slots, state.n_runs))
        any_shift = False
        for run, (_pi_traces, _record, fault) in enumerate(runs):
            if fault is None:
                continue
            for net, value in fault.stuck_nets().items():
                slot = slot_of.get(net)
                if slot is None:
                    raise SimulationError(
                        f"stuck-at fault on unknown net {net!r}"
                    )
                forced_mask[slot, run] = True
                forced_val[slot, run] = bool(value)
            for gate, shift in fault.b_shifts().items():
                slot = slot_of.get(gate)
                if slot is None or gate not in circuit.netlist.gates:
                    raise SimulationError(
                        f"delay fault on unknown gate {gate!r}"
                    )
                b_shift[slot, run] = float(shift)
                any_shift = True
        state.forced_mask = forced_mask
        state.forced_val = forced_val
        state.b_shift = b_shift if any_shift else None

    # ------------------------------------------------------------------
    def _advance_level(
        self, level, states, t_cap, abs_dummy, predict, feature_buf
    ):
        """One lock-step pass over every circuit's gates at ``level``."""
        parts = []
        for ci, state in states.items():
            plan = self.plans[ci]
            if level >= len(plan.levels):
                continue
            la = plan.levels[level]
            if la.n_gates:
                parts.append((la, state) + self._assemble(la, state))
        if not parts:
            return feature_buf, True
        width_in = max(part[2].shape[1] for part in parts)
        B = np.zeros((sum(p[2].shape[0] for p in parts), width_in))
        A = np.zeros_like(B)
        MEM = np.zeros(B.shape, dtype=int)
        counts = np.empty(B.shape[0], dtype=int)
        s_sign = np.empty(B.shape[0])
        cancel_vdd = np.empty(B.shape[0])
        offset = 0
        for _la, _state, b, a, mem, cnt, sgn, cvdd in parts:
            n, w = b.shape
            B[offset : offset + n, :w] = b
            A[offset : offset + n, :w] = a
            MEM[offset : offset + n, :w] = mem
            counts[offset : offset + n] = cnt
            s_sign[offset : offset + n] = sgn
            cancel_vdd[offset : offset + n] = cvdd
            offset += n

        width_out = int(counts.max()) if counts.size else 0
        out_a = np.zeros((B.shape[0], width_out))
        out_b = np.zeros((B.shape[0], width_out))
        n_out = np.zeros(B.shape[0], dtype=int)
        if width_out:
            if feature_buf is None or feature_buf.shape[0] < B.shape[0]:
                feature_buf = np.empty((B.shape[0], 3))
            lockstep_level(
                self.stack, B, A, MEM, counts, s_sign, cancel_vdd,
                out_a, out_b, n_out, t_cap, abs_dummy,
                predict=predict, feature_buf=feature_buf,
            )
        level_ok = bool(
            np.isfinite(out_a).all() and np.isfinite(out_b).all()
        )

        offset = 0
        for la, state, b, *_rest in parts:
            n = b.shape[0]
            r = state.n_runs
            part_a = out_a[offset : offset + n].reshape(la.n_gates, r, width_out)
            part_b = out_b[offset : offset + n].reshape(la.n_gates, r, width_out)
            part_n = n_out[offset : offset + n].reshape(la.n_gates, r)
            for g in range(la.n_gates):
                slot = la.sl_out[g]
                w = int(part_n[g].max()) if width_out else 0
                state.ev_a[slot] = part_a[g, :, :w]
                state.ev_b[slot] = part_b[g, :, :w]
                state.ev_n[slot] = part_n[g]
                if state.forced_mask is not None:
                    # Forced-lane mask: a stuck gate's predictions are
                    # discarded — the slot reads as a constant trace.
                    mask = state.forced_mask[slot]
                    if mask.any():
                        state.ev_n[slot][mask] = 0
                if state.b_shift is not None:
                    shift = state.b_shift[slot]
                    if shift.any():
                        # Delay fault: shift the faulted run's output
                        # crossings before any consumer gathers them.
                        state.ev_b[slot] = state.ev_b[slot] + shift[:, None]
            offset += n
        return feature_buf, level_ok

    # ------------------------------------------------------------------
    def _assemble(self, la: _LevelArrays, state: _BatchState):
        """Gate-major lane arrays ``(B, A, MEM, counts, s_sign, vdd)``.

        Lanes are ``gate * n_runs + run``; singles take their input
        stream verbatim (member by transition polarity), NOR lanes run
        the vectorized masking walk of :func:`nor_merge_masked` (scalar
        fallback only for lanes with cross-pin events inside the
        ``MERGE_TIE_EPS`` window).
        """
        r = state.n_runs
        n_g = la.n_gates
        counts = np.zeros((n_g, r), dtype=int)

        sb = sa = sm = None
        if la.si.size:
            widths = [state.ev_b[la.sl_in0[g]].shape[1] for g in la.si]
            w_s = max(widths)
            sb = np.zeros((la.si.size, r, w_s))
            sa = np.zeros((la.si.size, r, w_s))
            for k, g in enumerate(la.si):
                slot = la.sl_in0[g]
                w = widths[k]
                sb[k, :, :w] = state.ev_b[slot]
                sa[k, :, :w] = state.ev_a[slot]
            counts[la.si] = state.ev_n[la.sl_in0[la.si]]
            sm = np.where(
                sa > 0,
                la.rise_m[la.si][:, None, None],
                la.fall_m[la.si][:, None, None],
            )

        nb = na = nm = None
        if la.ni.size:
            nb, na, nm, n_counts = self._assemble_nor(la, state)
            counts[la.ni] = n_counts

        width = max(
            sb.shape[2] if sb is not None else 0,
            nb.shape[2] if nb is not None else 0,
        )
        B = np.zeros((n_g, r, width))
        A = np.zeros((n_g, r, width))
        MEM = np.zeros((n_g, r, width), dtype=int)
        if sb is not None:
            B[la.si, :, : sb.shape[2]] = sb
            A[la.si, :, : sa.shape[2]] = sa
            MEM[la.si, :, : sm.shape[2]] = sm
        if nb is not None:
            B[la.ni, :, : nb.shape[2]] = nb
            A[la.ni, :, : na.shape[2]] = na
            MEM[la.ni, :, : nm.shape[2]] = nm

        init_out = state.init[la.sl_out]
        s_sign = np.where(init_out, 1.0, -1.0)
        cancel_vdd = np.where(
            la.single[:, None], VDD, state.vdd[la.sl_in0]
        )
        return (
            B.reshape(n_g * r, width),
            A.reshape(n_g * r, width),
            MEM.reshape(n_g * r, width),
            counts.reshape(n_g * r),
            s_sign.reshape(n_g * r),
            cancel_vdd.reshape(n_g * r),
        )

    def _assemble_nor(self, la: _LevelArrays, state: _BatchState):
        """Vectorized NOR2 event merge + masking over all NOR lanes."""
        r = state.n_runs
        n_nor = la.ni.size
        w0s = [state.ev_b[la.sl_in0[g]].shape[1] for g in la.ni]
        w1s = [state.ev_b[la.sl_in1[g]].shape[1] for g in la.ni]
        w_raw = max(a + b for a, b in zip(w0s, w1s))
        if w_raw == 0:
            empty = np.zeros((n_nor, r, 0))
            return empty, empty, empty.astype(int), np.zeros((n_nor, r), int)
        b = np.full((n_nor, r, w_raw), np.inf)
        a = np.zeros((n_nor, r, w_raw))
        pin = np.zeros((n_nor, r, w_raw), dtype=int)
        valid = np.zeros((n_nor, r, w_raw), dtype=bool)
        pos = np.arange(w_raw)
        for k, g in enumerate(la.ni):
            s0, s1 = la.sl_in0[g], la.sl_in1[g]
            w0, w1 = w0s[k], w1s[k]
            b[k, :, :w0] = state.ev_b[s0]
            a[k, :, :w0] = state.ev_a[s0]
            valid[k, :, :w0] = pos[:w0] < state.ev_n[s0][:, None]
            b[k, :, w0 : w0 + w1] = state.ev_b[s1]
            a[k, :, w0 : w0 + w1] = state.ev_a[s1]
            pin[k, :, w0 : w0 + w1] = 1
            valid[k, :, w0 : w0 + w1] = pos[:w1] < state.ev_n[s1][:, None]
        n_lanes = n_nor * r
        b = b.reshape(n_lanes, w_raw)
        a = a.reshape(n_lanes, w_raw)
        pin = pin.reshape(n_lanes, w_raw)
        valid = valid.reshape(n_lanes, w_raw)
        b[~valid] = np.inf

        # Stable time sort of the [pin0-block | pin1-block] layout is
        # exactly the session's stable merge: exact cross-pin ties keep
        # pin 0 first, same-pin order is already time order.
        order = np.argsort(b, axis=1, kind="stable")
        b_s = np.take_along_axis(b, order, axis=1)
        a_s = np.take_along_axis(a, order, axis=1)
        pin_s = np.take_along_axis(pin, order, axis=1)
        valid_s = np.take_along_axis(valid, order, axis=1)

        # Lanes where a pin-1 event precedes a pin-0 event by less than
        # the tie window need nor_merge_masked's bubble pass — rare
        # (reconvergent near-ties), handled exactly below.
        bubbled = np.zeros(n_lanes, dtype=bool)
        if w_raw > 1:
            with np.errstate(invalid="ignore"):  # inf-padding deltas
                near = (
                    valid_s[:, :-1]
                    & valid_s[:, 1:]
                    & (pin_s[:, :-1] == 1)
                    & (pin_s[:, 1:] == 0)
                    & (b_s[:, 1:] - b_s[:, :-1] < MERGE_TIE_EPS)
                )
            bubbled = near.any(axis=1)

        polarity = a_s > 0
        index = np.arange(w_raw)
        lev0_init = state.init[la.sl_in0[la.ni]].reshape(n_lanes, 1)
        lev1_init = state.init[la.sl_in1[la.ni]].reshape(n_lanes, 1)
        last0 = np.maximum.accumulate(
            np.where(valid_s & (pin_s == 0), index, -1), axis=1
        )
        last1 = np.maximum.accumulate(
            np.where(valid_s & (pin_s == 1), index, -1), axis=1
        )
        lev0 = np.where(
            last0 >= 0,
            np.take_along_axis(polarity, np.maximum(last0, 0), axis=1),
            lev0_init,
        )
        lev1 = np.where(
            last1 >= 0,
            np.take_along_axis(polarity, np.maximum(last1, 0), axis=1),
            lev1_init,
        )
        out = ~(lev0 | lev1)
        init_out = ~(lev0_init | lev1_init)
        prev = np.concatenate([init_out, out[:, :-1]], axis=1)
        emit = (out != prev) & valid_s

        gate_of = np.repeat(np.arange(n_nor), r)
        member = la.nor_m[
            gate_of[:, None], pin_s, (~polarity).astype(int)
        ]

        # Exact fallbacks first, so the compacted width covers them
        # (reordering inside the tie window can change the emit count).
        n_emit = emit.sum(axis=1)
        fallback = {}
        for lane in np.nonzero(bubbled)[0]:
            keep = valid_s[lane]
            k = lane // r
            eb, ea, em, _end0, _end1 = nor_merge_masked(
                la.nor_m[k],
                bool(lev0_init[lane, 0]),
                bool(lev1_init[lane, 0]),
                b_s[lane][keep],
                a_s[lane][keep],
                pin_s[lane][keep],
            )
            fallback[lane] = (eb, ea, em)
            n_emit[lane] = eb.size

        # Compact emitted events to the left, preserving time order.
        compact = np.argsort(~emit, axis=1, kind="stable")
        w_emit = int(n_emit.max())
        b_c = np.take_along_axis(b_s, compact, axis=1)[:, :w_emit]
        a_c = np.take_along_axis(a_s, compact, axis=1)[:, :w_emit]
        m_c = np.take_along_axis(member, compact, axis=1)[:, :w_emit]
        for lane, (eb, ea, em) in fallback.items():
            b_c[lane, : eb.size] = eb
            a_c[lane, : eb.size] = ea
            m_c[lane, : eb.size] = em

        return (
            b_c.reshape(n_nor, r, w_emit),
            a_c.reshape(n_nor, r, w_emit),
            m_c.reshape(n_nor, r, w_emit),
            n_emit.reshape(n_nor, r),
        )

    # ------------------------------------------------------------------
    def _extract(self, ci, state, run, pi_traces, record) -> dict:
        """One job's result dict (one-shot record semantics)."""
        circuit = self.plans[ci].circuit
        if record is None:
            record = list(circuit.netlist.primary_outputs)
        slot_of = circuit.slot_of
        result = {}
        for net in record:
            slot = slot_of.get(net)
            forced = (
                state.forced_mask is not None
                and slot is not None
                and bool(state.forced_mask[slot, run])
            )
            if net in pi_traces and not forced:
                result[net] = pi_traces[net]
                continue
            if slot is None:
                raise SimulationError(f"unknown record net: {net!r}")
            n = int(state.ev_n[slot, run])
            params = np.stack(
                [state.ev_a[slot][run, :n], state.ev_b[slot][run, :n]],
                axis=1,
            )
            result[net] = SigmoidalTrace(
                int(state.init[slot, run]),
                params,
                vdd=float(state.vdd[slot, run]),
            )
        return result
