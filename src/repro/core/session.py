"""Streaming simulation sessions: chunked execution with bounded memory.

Algorithm 1 is a left-to-right walk over the transition index — a
discrete-time state evolution.  The one-shot ``simulate`` entry points
hide that inside a single call, which forces memory and latency to grow
with trace length.  A :class:`SimulationSession` makes the state
explicit: the caller ``feed``\\ s stimulus *chunks* (per-run dicts of
trace segments) and receives back the waveform *segments* that have
become final, then ``finish()`` flushes the rest.  ``state()`` /
``restore(state)`` serialize the full carried state (a JSON-compatible
dict), so a long run can be checkpointed and resumed in a fresh
process.

Streaming correctness rests on per-net **watermarks**: every feed
advances each run's *horizon* (the largest stimulus time seen so far),
each net carries the time up to which its transition stream is final,
and a gate only *consumes* input events at or before the minimum of its
input watermarks.  For the digital cores the propagated watermark is
exact — a committed transition can never be revised, so chunked
execution is bitwise identical to one-shot.  For the sigmoid cores,
sub-threshold pulse cancellation can reach *backwards* (the freshly
closed pair is popped), so predicted transitions are held back in a
per-gate *tail* and only released once they trail the input watermark
by a guard band (:data:`STREAM_GUARD`).  The cancellation horizon of a
pair at nominal slopes is well under 0.1 scaled units, so the default
guard of 5.0 (= 500 ps) is conservative; if a cancellation ever does
reach a released transition the session raises
:class:`~repro.errors.SimulationError` loudly instead of silently
diverging from the one-shot result.

The one-shot entry points of all four cores are thin wrappers over
sessions (feed everything, finish), which keeps the interpreted /
compiled parity contracts intact:

* interpreted sigmoid and both digital cores replay the exact scalar
  operation sequence of the pre-session code — bitwise identical;
* the compiled sigmoid core regroups ``predict_members`` calls at the
  chunk boundary, which only moves float re-association noise (orders
  of magnitude below the 0.05 ps parity tolerance).

:mod:`repro.digital.session` holds the digital twin of this module.
"""

from __future__ import annotations

import math

import numpy as np

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.constants import NOMINAL_SLOPE, VDD
from repro.core.cancellation import pair_crosses_threshold
from repro.core.models import GateModelBundle
from repro.core.tom import T_CAP, clamp_history
from repro.core.trace import SigmoidalTrace
from repro.errors import ModelError, SimulationError

#: Release guard band (scaled time units, = 500 ps): a predicted output
#: transition is only released once it trails the gate's input
#: watermark by this much.  Sub-threshold cancellation pairs the newest
#: prediction with its immediate predecessor, and the crossing-decision
#: window of a pair at trained slopes is a few ps, so 500 ps is a
#: conservative bound; a violation raises instead of diverging.
STREAM_GUARD = 5.0

#: Accepted checkpoint format tags.  Checkpoints are JSON-compatible
#: dicts.  v1 carried raw ``inf``/``-inf`` floats, which only survive a
#: JSON round trip via Python's non-standard ``Infinity`` literal
#: extension — strict parsers (and most other languages) reject such
#: documents.  v2 encodes every non-finite float as a portable string
#: sentinel (``"inf"`` / ``"-inf"`` / ``"nan"``); the ``float()`` /
#: ``np.array(..., dtype=float)`` conversions on the restore paths
#: parse the sentinels, so both formats load.
STATE_FORMATS = ("repro.session/v1", "repro.session/v2")

#: Format tag written by ``state()``.
STATE_FORMAT = STATE_FORMATS[-1]


def encode_nonfinite(obj):
    """Recursively replace non-finite floats with portable sentinels.

    Applied to every ``state()`` payload before it is returned, so a
    checkpoint contains only strictly-JSON-representable values: ``inf``
    becomes ``"inf"``, ``-inf`` becomes ``"-inf"`` and ``nan`` becomes
    ``"nan"``.  Dict keys are left untouched (they are net/gate names).
    The inverse needs no dedicated decoder — ``float("inf")`` et al.
    parse the sentinels wherever ``restore()`` coerces numbers.
    """
    if isinstance(obj, float):
        if math.isinf(obj):
            return "inf" if obj > 0 else "-inf"
        if math.isnan(obj):
            return "nan"
        return obj
    if isinstance(obj, dict):
        return {k: encode_nonfinite(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [encode_nonfinite(v) for v in obj]
    return obj


class SimulationSession:
    """Base streaming session: ``feed`` chunks, ``finish``, checkpoint.

    Subclasses implement one simulator core each.  Shared contract:

    * ``feed(chunks)`` takes one ``{net: trace-segment}`` dict per run
      and returns one ``{net: segment}`` dict per run holding the
      output transitions that became final; segments concatenate to
      the one-shot trace.
    * the first feed must supply every primary input (it establishes
      initial levels); later feeds may omit quiet inputs and may be
      empty (``advance_to`` pushes the horizon without new events).
    * ``finish()`` flushes all remaining state and closes the session.
    * ``state()`` returns a JSON-compatible checkpoint;
      ``restore(state)`` loads one into a compatible session.
    """

    kind = "session"

    def __init__(self) -> None:
        self._finished = False

    # -- subclass API ---------------------------------------------------
    def feed(self, chunks, advance_to=None):
        raise NotImplementedError

    def finish(self):
        raise NotImplementedError

    def state(self) -> dict:
        raise NotImplementedError

    def restore(self, state: dict) -> None:
        raise NotImplementedError

    # -- shared helpers -------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._finished

    def _require_active(self) -> None:
        if self._finished:
            raise SimulationError("session is finished")

    def _check_header(self, state: dict, mode: str, digest: str) -> None:
        """Validate a checkpoint header against this session.

        Every mismatched field is reported in ONE error: a checkpoint
        from a different circuit fed to the wrong session *kind* used
        to name only the first differing field, hiding that both the
        netlist digest and the session kind were wrong.
        """
        mismatches = [
            f"{field} is {state.get(field)!r}, session expects {expect!r}"
            for field, expect in (
                ("kind", self.kind),
                ("mode", mode),
                ("digest", digest),
            )
            if state.get(field) != expect
        ]
        if state.get("format") not in STATE_FORMATS:
            mismatches.insert(
                0,
                f"format is {state.get('format')!r}, session expects "
                f"one of {STATE_FORMATS!r}",
            )
        if mismatches:
            raise SimulationError(
                "checkpoint mismatch: " + "; ".join(mismatches)
            )


class _SigmoidLevel:
    """Static per-level gate metadata shared by both sigmoid kernels."""

    __slots__ = ("names", "single", "in0", "in1", "tfs", "program")

    def __init__(self) -> None:
        self.names: list[str] = []
        self.single: list[bool] = []
        self.in0: list[str] = []
        self.in1: list[str | None] = []
        self.tfs: list = []  # interpreted mode only
        self.program = None  # compiled mode only


def _interpreted_levels(
    netlist: Netlist, bundle: GateModelBundle
) -> list[_SigmoidLevel]:
    """Levelized model plan for the interpreted kernel.

    Same per-gate model selection as the one-shot interpreted walk
    (INV / tied-input NOR2T / per-pin NOR2, classed by fanout), grouped
    by topological level so the session can stream level by level.
    """
    fanout_map = netlist.fanout()
    fanout_count = {net: len(fanout_map.get(net, ())) for net in netlist.nets}
    metas: list[_SigmoidLevel] = []
    for level_names in netlist.levels():
        meta = _SigmoidLevel()
        for name in level_names:
            gate = netlist.gates[name]
            fanout = fanout_count[name]
            meta.names.append(name)
            meta.in0.append(gate.inputs[0])
            if gate.gtype is GateType.INV:
                model = bundle.get("INV", 0, fanout)
                meta.single.append(True)
                meta.in1.append(None)
                meta.tfs.append((model.tf_rise, model.tf_fall))
            elif gate.inputs[0] == gate.inputs[1]:
                model = bundle.get("NOR2T", 0, fanout)
                meta.single.append(True)
                meta.in1.append(None)
                meta.tfs.append((model.tf_rise, model.tf_fall))
            else:
                meta.single.append(False)
                meta.in1.append(gate.inputs[1])
                meta.tfs.append(
                    tuple(
                        (
                            bundle.get("NOR2", pin, fanout).tf_rise,
                            bundle.get("NOR2", pin, fanout).tf_fall,
                        )
                        for pin in range(2)
                    )
                )
        metas.append(meta)
    return metas


class SigmoidSession(SimulationSession):
    """Streaming Algorithm 1 over an INV/NOR2 netlist.

    Carried per-gate state: unconsumed input-event buffers, the NOR
    masking levels, the unreleased output *tail* (still cancellable),
    and the last released transition (the snap/cancellation anchor).
    The kernel is the compiled lock-step array program when constructed
    from a :class:`~repro.core.compile.CompiledCircuit`, the scalar
    Algorithm 1 walk when constructed from a netlist + bundle.
    """

    kind = "sigmoid"

    def __init__(
        self,
        netlist: Netlist,
        bundle: GateModelBundle | None = None,
        compiled_circuit=None,
        record_nets: list[str] | None = None,
        guard: float = STREAM_GUARD,
        t_cap: float = T_CAP,
        dummy_slope: float = NOMINAL_SLOPE,
        state: dict | None = None,
        target=None,
    ) -> None:
        super().__init__()
        if compiled_circuit is None and bundle is None:
            raise SimulationError(
                "SigmoidSession needs a bundle or a compiled circuit"
            )
        if guard < 0:
            raise SimulationError("guard must be non-negative")
        from repro.core.compile import netlist_digest

        self.netlist = netlist
        self._cc = compiled_circuit
        self._compiled = compiled_circuit is not None
        self._bundle = (
            compiled_circuit.bundle if self._compiled else bundle
        )
        self.guard = float(guard)
        self._t_cap = float(t_cap)
        self._abs_dummy = abs(float(dummy_slope))
        self._pis = list(netlist.primary_inputs)
        if record_nets is None:
            record_nets = list(netlist.primary_outputs)
        known = set(netlist.nets)
        for net in record_nets:
            if net not in known:
                raise SimulationError(f"unknown record net: {net!r}")
        self._record = list(record_nets)
        self._digest = netlist_digest(netlist)
        # Sessions run the fused kernels too: when the stack offers a
        # fused whole-stack evaluator for the selected execution target
        # it replaces the per-member predict_members dispatch inside
        # lockstep_level, re-wrapped with the per-step finiteness check
        # (streaming keeps the strict error contract — only the one-shot
        # program executor batches that check per super-level).
        self._predict = None
        self._feature_buf = None
        if self._compiled and compiled_circuit.stack is not None:
            evaluate = compiled_circuit.stack.fused_evaluator(target)
            if evaluate is not None:
                from repro.core.compile import checked_predict

                self._predict = checked_predict(evaluate)
        elif target is not None:
            from repro.core.targets import resolve_target

            resolve_target(target)
        if self._compiled:
            self._stack = compiled_circuit.stack
            self._levels = []
            for program in compiled_circuit.levels:
                meta = _SigmoidLevel()
                meta.names = program.names
                meta.single = [bool(s) for s in program.single]
                meta.in0 = program.in0
                meta.in1 = program.in1
                meta.program = program
                self._levels.append(meta)
        else:
            netlist.validate()
            for gate in netlist.gates.values():
                if gate.gtype is GateType.INV:
                    continue
                if gate.gtype is GateType.NOR and len(gate.inputs) == 2:
                    continue
                raise SimulationError(
                    "sigmoid simulator supports INV and NOR2 only; "
                    f"gate {gate.name} is "
                    f"{gate.gtype.value}/{len(gate.inputs)}"
                )
            self._stack = None
            self._levels = _interpreted_levels(netlist, bundle)
        self._n_runs: int | None = None
        if state is not None:
            self.restore(state)

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        return "compiled" if self._compiled else "interpreted"

    def feed(self, chunks, advance_to: float | None = None):
        """Ingest one stimulus chunk per run; return the final segments.

        Each chunk maps primary inputs to :class:`SigmoidalTrace`
        segments whose transitions are strictly after the run's current
        horizon and whose initial level continues the stream.
        ``advance_to`` pushes the horizon even without new events
        (releasing more of the tails).
        """
        self._require_active()
        chunks = list(chunks)
        if self._n_runs is None:
            self._initialize(chunks)
        elif len(chunks) != self._n_runs:
            raise SimulationError(
                f"need one chunk dict per run ({self._n_runs}), "
                f"got {len(chunks)}"
            )
        emitted = self._ingest(chunks, advance_to)
        return self._step(emitted, final=False)

    def finish(self):
        """Flush every tail (horizon -> +inf) and close the session."""
        self._require_active()
        if self._n_runs is None:
            raise SimulationError("cannot finish before the first feed")
        emitted: list[dict] = [{} for _ in range(self._n_runs)]
        segments = self._step(emitted, final=True)
        self._finished = True
        return segments

    # ------------------------------------------------------------------
    def _initialize(self, chunks) -> None:
        if not chunks:
            raise SimulationError("need at least one run")
        n_runs = len(chunks)
        self._init: list[dict] = []
        self._vdd: list[dict] = []
        self._final: list[dict] = []
        for chunk in chunks:
            missing = [pi for pi in self._pis if pi not in chunk]
            if missing:
                raise SimulationError(f"missing PI traces: {missing}")
            pi_levels = {pi: bool(chunk[pi].initial_level) for pi in self._pis}
            if self._compiled:
                levels = self._cc._evaluate(pi_levels)
            else:
                levels = self.netlist.evaluate(pi_levels)
            init = {net: int(levels[net]) for net in levels}
            vdd = {pi: float(chunk[pi].vdd) for pi in self._pis}
            for meta in self._levels:
                for i, name in enumerate(meta.names):
                    vdd[name] = vdd[meta.in0[i]]
            self._init.append(init)
            self._vdd.append(vdd)
            self._final.append(dict(init))
        self._alloc_dynamic(n_runs)
        # Seed the NOR masking levels from the initial input levels.
        for meta, st in zip(self._levels, self._lanes):
            n_g = len(meta.names)
            for run in range(n_runs):
                init = self._init[run]
                for i in range(n_g):
                    if not meta.single[i]:
                        lane = run * n_g + i
                        st["lev0"][lane] = bool(init[meta.in0[i]])
                        st["lev1"][lane] = bool(init[meta.in1[i]])

    def _alloc_dynamic(self, n_runs: int) -> None:
        self._n_runs = n_runs
        self._horizon = [-math.inf] * n_runs
        self._wm = [
            dict.fromkeys(self.netlist.nets, -math.inf)
            for _ in range(n_runs)
        ]
        self._lanes = []
        for meta in self._levels:
            n = len(meta.names) * n_runs
            self._lanes.append(
                {
                    "buf0": [[] for _ in range(n)],
                    "buf1": [[] for _ in range(n)],
                    "lev0": [False] * n,
                    "lev1": [False] * n,
                    "tail": [[] for _ in range(n)],
                    "rel": [None] * n,
                }
            )
        self._derive_lane_static()

    def _derive_lane_static(self) -> None:
        """Per-lane constants (run-major, matching the one-shot layout)."""
        self._lane_static = []
        for meta in self._levels:
            n_g = len(meta.names)
            n = n_g * self._n_runs
            s_sign = np.empty(n)
            cancel_vdd = np.empty(n)
            lane = 0
            for run in range(self._n_runs):
                init = self._init[run]
                vdd = self._vdd[run]
                for i in range(n_g):
                    init_out = init[meta.names[i]]
                    s_sign[lane] = 1.0 if init_out == 1 else -1.0
                    # Algorithm 1 checks the pulse against the default
                    # rail, the NOR decision procedure against the
                    # input's; replicated for parity.
                    cancel_vdd[lane] = (
                        VDD if meta.single[i] else vdd[meta.in0[i]]
                    )
                    lane += 1
            self._lane_static.append((s_sign, cancel_vdd))

    # ------------------------------------------------------------------
    def _ingest(self, chunks, advance_to) -> list[dict]:
        emitted: list[dict] = [{} for _ in range(self._n_runs)]
        pis = set(self._pis)
        for run, chunk in enumerate(chunks):
            extra = [net for net in chunk if net not in pis]
            if extra:
                raise SimulationError(
                    f"chunk nets must be primary inputs; got {sorted(extra)}"
                )
            horizon = self._horizon[run]
            new_horizon = horizon
            for pi in self._pis:
                seg = chunk.get(pi)
                if seg is None:
                    continue
                if float(seg.vdd) != self._vdd[run][pi]:
                    raise SimulationError(
                        f"chunk for {pi!r} changes vdd mid-stream"
                    )
                if int(seg.initial_level) != self._final[run][pi]:
                    raise SimulationError(
                        f"chunk for {pi!r} breaks level continuity: "
                        f"segment starts at {int(seg.initial_level)}, "
                        f"stream level is {self._final[run][pi]}"
                    )
                if seg.n_transitions == 0:
                    continue
                params = seg.params
                if params[0, 1] <= horizon:
                    raise SimulationError(
                        f"chunk for {pi!r} starts at {float(params[0, 1])!r}"
                        f" <= stream horizon {horizon!r}; transitions must "
                        "arrive in time order"
                    )
                events = [(float(a), float(b)) for a, b in params]
                emitted[run][pi] = events
                self._final[run][pi] = int(seg.final_level())
                new_horizon = max(new_horizon, events[-1][1])
            if advance_to is not None:
                new_horizon = max(new_horizon, float(advance_to))
            self._horizon[run] = new_horizon
            wm = self._wm[run]
            for pi in self._pis:
                wm[pi] = new_horizon
        return emitted

    # ------------------------------------------------------------------
    def _step(self, emitted: list[dict], final: bool):
        for li in range(len(self._levels)):
            self._step_level(li, emitted, final)
        results = []
        for run in range(self._n_runs):
            emit_run = emitted[run]
            final_run = self._final[run]
            vdd_run = self._vdd[run]
            seg = {}
            for net in self._record:
                events = emit_run.get(net, [])
                # The level before this segment's transitions: undo the
                # toggles the segment applied to the stream level.
                initial = (final_run[net] + len(events)) % 2
                seg[net] = SigmoidalTrace(initial, events, vdd=vdd_run[net])
            results.append(seg)
        return results

    def _step_level(self, li: int, emitted: list[dict], final: bool) -> None:
        from repro.core.compile import MERGE_TIE_EPS

        meta = self._levels[li]
        st = self._lanes[li]
        n_g = len(meta.names)
        if n_g == 0:
            return
        n_lanes = n_g * self._n_runs
        consumed: list[list] = [()] * n_lanes
        release_bound = [0.0] * n_lanes

        for run in range(self._n_runs):
            emit_run = emitted[run]
            wm_run = self._wm[run]
            for i in range(n_g):
                lane = run * n_g + i
                in0 = meta.in0[i]
                buf0 = st["buf0"][lane]
                new0 = emit_run.get(in0)
                if new0:
                    buf0.extend((b, 0, a) for a, b in new0)
                if meta.single[i]:
                    horizon = math.inf if final else wm_run[in0]
                    k = 0
                    while k < len(buf0) and buf0[k][0] <= horizon:
                        k += 1
                    consumed[lane] = buf0[:k]
                    del buf0[:k]
                    release_bound[lane] = horizon
                else:
                    in1 = meta.in1[i]
                    buf1 = st["buf1"][lane]
                    new1 = emit_run.get(in1)
                    if new1:
                        buf1.extend((b, 1, a) for a, b in new1)
                    horizon = (
                        math.inf
                        if final
                        else min(wm_run[in0], wm_run[in1])
                    )
                    # Stable merge: the interpreter appends pin 0 first
                    # then sorts by time, so buf0-before-buf1 on ties.
                    merged = sorted(buf0 + buf1, key=lambda e: e[0])
                    n_m = len(merged)
                    cut = 0
                    while cut < n_m and merged[cut][0] <= horizon:
                        cut += 1
                    if self._compiled:
                        # The compiled kernel bubbles cross-pin events
                        # inside MERGE_TIE_EPS windows; defer any event
                        # closer than the window to the next available
                        # (or possible) event so no window straddles
                        # the consumption boundary.
                        while cut > 0:
                            nxt = (
                                merged[cut][0] if cut < n_m else math.inf
                            )
                            gap = min(nxt, horizon) - merged[cut - 1][0]
                            if gap < MERGE_TIE_EPS:
                                cut -= 1
                            else:
                                break
                    events = merged[:cut]
                    if cut:
                        from0 = sum(1 for e in events if e[1] == 0)
                        del buf0[:from0]
                        del buf1[: cut - from0]
                    consumed[lane] = events
                    if cut == n_m:
                        release_bound[lane] = horizon
                    else:
                        release_bound[lane] = min(horizon, merged[cut][0])

        if self._compiled:
            self._kernel_compiled(li, consumed)
        else:
            self._kernel_interpreted(li, consumed)

        for run in range(self._n_runs):
            emit_run = emitted[run]
            wm_run = self._wm[run]
            final_run = self._final[run]
            for i in range(n_g):
                lane = run * n_g + i
                name = meta.names[i]
                tail = st["tail"][lane]
                wm_prev = wm_run[name]
                if tail and tail[0][1] <= wm_prev:
                    raise SimulationError(
                        "streaming finality horizon violated at gate "
                        f"{name}: a new output transition landed at or "
                        "before the released watermark; increase the "
                        "session guard"
                    )
                cutoff = (
                    math.inf if final else release_bound[lane] - self.guard
                )
                k = 0
                while k < len(tail) and tail[k][1] <= cutoff:
                    k += 1
                if k:
                    released = tail[:k]
                    del tail[:k]
                    st["rel"][lane] = released[-1]
                    emit_run[name] = released
                    final_run[name] = (final_run[name] + k) % 2
                if cutoff > wm_prev:
                    wm_run[name] = cutoff

    # ------------------------------------------------------------------
    def _kernel_interpreted(self, li: int, consumed: list) -> None:
        """Scalar Algorithm 1 per lane with carried tail/release state.

        Replays the exact operation sequence of the one-shot
        interpreted walk (``predict_gate_output`` /
        ``predict_nor_output``) on the consumed events, seeding
        ``prev``/``expected_sign`` from the carried output history.
        """
        meta = self._levels[li]
        st = self._lanes[li]
        s_sign_arr, cancel_vdd_arr = self._lane_static[li]
        n_g = len(meta.names)
        for run in range(self._n_runs):
            for i in range(n_g):
                lane = run * n_g + i
                events = consumed[lane]
                if not events:
                    continue
                single = meta.single[i]
                tfs = meta.tfs[i]
                tail = st["tail"][lane]
                rel = st["rel"][lane]
                sgn = float(s_sign_arr[lane])
                vdd = float(cancel_vdd_arr[lane])
                if tail:
                    prev_a, prev_b = tail[-1]
                elif rel is not None:
                    prev_a, prev_b = rel
                else:
                    prev_a, prev_b = sgn * self._abs_dummy, -math.inf
                expected_sign = 1.0 if prev_a < 0 else -1.0
                if single:
                    tf_rise, tf_fall = tfs
                else:
                    lev0 = st["lev0"][lane]
                    lev1 = st["lev1"][lane]
                    out_level = not (lev0 or lev1)
                for b_in, pin, a_in in events:
                    if not single:
                        if pin == 0:
                            lev0 = a_in > 0
                        else:
                            lev1 = a_in > 0
                        new_out = not (lev0 or lev1)
                        if new_out == out_level:
                            continue  # masked by the other input
                        out_level = new_out
                        tf_rise, tf_fall = tfs[pin]
                    tf = tf_rise if a_in > 0 else tf_fall
                    T = clamp_history(b_in - prev_b, self._t_cap)
                    a_out, delta_b = tf.predict(T, prev_a, a_in)
                    if not np.isfinite(a_out) or not np.isfinite(delta_b):
                        raise ModelError(
                            "transfer function produced non-finite output"
                        )
                    a_out = expected_sign * abs(a_out)
                    b_out = b_in + delta_b
                    if tail:
                        last_b = tail[-1][1]
                    elif rel is not None:
                        last_b = rel[1]
                    else:
                        last_b = None
                    if last_b is not None and b_out <= last_b:
                        b_out = last_b + 1e-6
                    tail.append((a_out, b_out))
                    prev_a, prev_b = a_out, b_out
                    expected_sign = -expected_sign
                    if len(tail) >= 2 or rel is not None:
                        first = tail[-2] if len(tail) >= 2 else rel
                        second = tail[-1]
                        if not pair_crosses_threshold(first, second, vdd=vdd):
                            tail.pop()
                            if tail:
                                tail.pop()
                            else:
                                raise SimulationError(
                                    "streaming finality horizon violated "
                                    f"at gate {meta.names[i]}: a "
                                    "sub-threshold cancellation reached a "
                                    "released transition; increase the "
                                    "session guard"
                                )
                            if tail:
                                prev_a, prev_b = tail[-1]
                            elif rel is not None:
                                prev_a, prev_b = rel
                            else:
                                prev_a = sgn * self._abs_dummy
                                prev_b = -math.inf
                            expected_sign = 1.0 if prev_a < 0 else -1.0
                if not single:
                    st["lev0"][lane] = lev0
                    st["lev1"][lane] = lev1

    # ------------------------------------------------------------------
    def _kernel_compiled(self, li: int, consumed: list) -> None:
        """Lock-step array kernel seeded with the carried output state.

        The released-last transition (if any) occupies slot 0 as a
        *sentinel*: it anchors the ordering snap and the cancellation
        pair exactly like the one-shot output buffer did, and the
        kernel's ``floor`` argument turns a cancellation that would pop
        it into a loud failure.
        """
        from repro.core.compile import lockstep_level, nor_merge_masked

        meta = self._levels[li]
        program = meta.program
        st = self._lanes[li]
        s_sign, cancel_vdd = self._lane_static[li]
        n_g = len(meta.names)
        n_lanes = n_g * self._n_runs

        lane_b: list[np.ndarray] = []
        lane_a: list[np.ndarray] = []
        lane_m: list[np.ndarray] = []
        empty = np.empty(0)
        empty_m = np.empty(0, dtype=int)
        for lane in range(n_lanes):
            events = consumed[lane]
            if not events:
                lane_b.append(empty)
                lane_a.append(empty)
                lane_m.append(empty_m)
                continue
            i = lane % n_g
            b = np.array([e[0] for e in events])
            pin = np.array([e[1] for e in events], dtype=int)
            a = np.array([e[2] for e in events])
            if meta.single[i]:
                member = np.where(
                    a > 0,
                    program.rise_members[i],
                    program.fall_members[i],
                )
            else:
                b, a, member, end0, end1 = nor_merge_masked(
                    program.nor_members[i],
                    st["lev0"][lane],
                    st["lev1"][lane],
                    b,
                    a,
                    pin,
                )
                st["lev0"][lane] = end0
                st["lev1"][lane] = end1
            lane_b.append(b)
            lane_a.append(a)
            lane_m.append(member)

        counts = np.array([b.size for b in lane_b], dtype=int)
        if not counts.any():
            return

        tails = st["tail"]
        rels = st["rel"]
        floor = np.zeros(n_lanes, dtype=int)
        prev_a = np.empty(n_lanes)
        prev_b = np.empty(n_lanes)
        n_seed = np.zeros(n_lanes, dtype=int)
        for lane in range(n_lanes):
            rel = rels[lane]
            tail = tails[lane]
            floor[lane] = 0 if rel is None else 1
            n_seed[lane] = floor[lane] + len(tail)
            if tail:
                prev_a[lane], prev_b[lane] = tail[-1]
            elif rel is not None:
                prev_a[lane], prev_b[lane] = rel
            else:
                prev_a[lane] = s_sign[lane] * self._abs_dummy
                prev_b[lane] = -np.inf
        exp_sign = -np.sign(prev_a)

        width = int((n_seed + counts).max())
        max_in = int(counts.max())
        out_a = np.zeros((n_lanes, width))
        out_b = np.zeros((n_lanes, width))
        n_out = n_seed.copy()
        B = np.zeros((n_lanes, max_in))
        A = np.zeros((n_lanes, max_in))
        MEM = np.zeros((n_lanes, max_in), dtype=int)
        for lane in range(n_lanes):
            rel = rels[lane]
            if rel is not None:
                out_a[lane, 0], out_b[lane, 0] = rel
            base = int(floor[lane])
            for k, (ta, tb) in enumerate(tails[lane]):
                out_a[lane, base + k] = ta
                out_b[lane, base + k] = tb
            b = lane_b[lane]
            if b.size:
                B[lane, : b.size] = b
                A[lane, : b.size] = lane_a[lane]
                MEM[lane, : b.size] = lane_m[lane]

        if self._feature_buf is None or self._feature_buf.shape[0] < n_lanes:
            self._feature_buf = np.empty((n_lanes, 3))
        lockstep_level(
            self._stack, B, A, MEM, counts, s_sign, cancel_vdd,
            out_a, out_b, n_out, self._t_cap, self._abs_dummy,
            prev_a=prev_a, prev_b=prev_b, exp_sign=exp_sign, floor=floor,
            predict=self._predict, feature_buf=self._feature_buf,
        )

        for lane in range(n_lanes):
            base = int(floor[lane])
            tails[lane] = [
                (float(out_a[lane, k]), float(out_b[lane, k]))
                for k in range(base, int(n_out[lane]))
            ]

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """JSON-compatible checkpoint of the full carried state."""
        self._require_active()
        if self._n_runs is None:
            raise SimulationError("nothing to checkpoint before the first feed")
        lanes = []
        for st in self._lanes:
            lanes.append(
                {
                    "buf0": [
                        [[b, p, a] for b, p, a in buf] for buf in st["buf0"]
                    ],
                    "buf1": [
                        [[b, p, a] for b, p, a in buf] for buf in st["buf1"]
                    ],
                    "lev0": [bool(v) for v in st["lev0"]],
                    "lev1": [bool(v) for v in st["lev1"]],
                    "tail": [
                        [[a, b] for a, b in tail] for tail in st["tail"]
                    ],
                    "rel": [
                        None if rel is None else [rel[0], rel[1]]
                        for rel in st["rel"]
                    ],
                }
            )
        return encode_nonfinite({
            "format": STATE_FORMAT,
            "kind": self.kind,
            "mode": self.mode,
            "digest": self._digest,
            "backend": self._bundle.backend,
            "record_nets": list(self._record),
            "guard": self.guard,
            "t_cap": self._t_cap,
            "dummy_slope": self._abs_dummy,
            "n_runs": self._n_runs,
            "horizon": list(self._horizon),
            "watermark": [dict(wm) for wm in self._wm],
            "level": [dict(fin) for fin in self._final],
            "vdd": [dict(vdd) for vdd in self._vdd],
            "initial": [dict(init) for init in self._init],
            "lanes": lanes,
        })

    def restore(self, state: dict) -> None:
        """Load a checkpoint produced by :meth:`state`."""
        self._require_active()
        self._check_header(state, self.mode, self._digest)
        self.guard = float(state["guard"])
        self._t_cap = float(state["t_cap"])
        self._abs_dummy = float(state["dummy_slope"])
        self._record = list(state["record_nets"])
        n_runs = int(state["n_runs"])
        self._init = [
            {net: int(v) for net, v in init.items()}
            for init in state["initial"]
        ]
        self._vdd = [
            {net: float(v) for net, v in vdd.items()} for vdd in state["vdd"]
        ]
        self._final = [
            {net: int(v) for net, v in fin.items()} for fin in state["level"]
        ]
        self._alloc_dynamic(n_runs)
        self._horizon = [float(h) for h in state["horizon"]]
        self._wm = [
            {net: float(v) for net, v in wm.items()}
            for wm in state["watermark"]
        ]
        if len(state["lanes"]) != len(self._lanes):
            raise SimulationError("checkpoint level count mismatch")
        for st, saved in zip(self._lanes, state["lanes"]):
            n = len(st["buf0"])
            if len(saved["buf0"]) != n:
                raise SimulationError("checkpoint lane count mismatch")
            st["buf0"] = [
                [(float(b), int(p), float(a)) for b, p, a in buf]
                for buf in saved["buf0"]
            ]
            st["buf1"] = [
                [(float(b), int(p), float(a)) for b, p, a in buf]
                for buf in saved["buf1"]
            ]
            st["lev0"] = [bool(v) for v in saved["lev0"]]
            st["lev1"] = [bool(v) for v in saved["lev1"]]
            st["tail"] = [
                [(float(a), float(b)) for a, b in tail]
                for tail in saved["tail"]
            ]
            st["rel"] = [
                None if rel is None else (float(rel[0]), float(rel[1]))
                for rel in saved["rel"]
            ]


# ----------------------------------------------------------------------
# Chunking and concatenation helpers (the --chunk-size plumbing).


def merged_boundaries(times: list[float], chunk_size: int) -> list[float]:
    """Chunk boundaries putting ~``chunk_size`` merged events per chunk.

    ``times`` is the merged (sorted) list of every source's transition
    times; the boundary *includes* its time (ties never split).
    """
    if chunk_size < 1:
        raise SimulationError("chunk_size must be >= 1")
    return [
        times[k - 1] for k in range(chunk_size, len(times), chunk_size)
    ]


def split_sigmoid_trace(
    trace: SigmoidalTrace, boundaries: list[float]
) -> list[SigmoidalTrace]:
    """Split a trace into ``len(boundaries) + 1`` contiguous segments.

    Segment ``k`` holds the transitions with ``b <= boundaries[k]``
    (and after the previous boundary); the last segment holds the
    remainder.  Zero-transition segments are valid.
    """
    params = trace.params
    level = int(trace.initial_level)
    segments = []
    start = 0
    n = params.shape[0]
    for bound in boundaries:
        k = start
        while k < n and params[k, 1] <= bound:
            k += 1
        segments.append(
            SigmoidalTrace(level, params[start:k], vdd=trace.vdd)
        )
        level = (level + (k - start)) % 2
        start = k
    segments.append(SigmoidalTrace(level, params[start:], vdd=trace.vdd))
    return segments


def sigmoid_chunks(
    pi_traces: dict[str, SigmoidalTrace],
    chunk_size: int | None = None,
    boundaries: list[float] | None = None,
) -> list[dict[str, SigmoidalTrace]]:
    """Split a full stimulus into session-sized feed chunks.

    Pass either ``chunk_size`` (~that many transitions per chunk,
    merged across inputs) or explicit ``boundaries`` (sorted times;
    duplicates produce zero-length chunks).
    """
    if (chunk_size is None) == (boundaries is None):
        raise SimulationError(
            "pass exactly one of chunk_size / boundaries"
        )
    if boundaries is None:
        times = sorted(
            float(b)
            for trace in pi_traces.values()
            for b in trace.params[:, 1]
        )
        boundaries = merged_boundaries(times, chunk_size)
    per_pi = {
        pi: split_sigmoid_trace(trace, boundaries)
        for pi, trace in pi_traces.items()
    }
    return [
        {pi: segments[k] for pi, segments in per_pi.items()}
        for k in range(len(boundaries) + 1)
    ]


def concat_sigmoid_traces(
    segments: list[SigmoidalTrace],
) -> SigmoidalTrace:
    """Concatenate contiguous trace segments back into one trace."""
    segments = list(segments)
    if not segments:
        raise SimulationError("nothing to concatenate")
    level = int(segments[0].initial_level)
    expect = level
    rows = []
    for seg in segments:
        if int(seg.initial_level) != expect:
            raise SimulationError(
                "trace segments are not level-contiguous"
            )
        rows.append(np.asarray(seg.params, dtype=float).reshape(-1, 2))
        expect = int(seg.final_level())
    params = np.concatenate(rows) if rows else np.empty((0, 2))
    return SigmoidalTrace(level, params, vdd=segments[0].vdd)


def merge_segment_batches(batches: list, concat) -> list[dict]:
    """Fold per-feed segment batches into one result dict per run."""
    if not batches:
        raise SimulationError("nothing to merge")
    n_runs = len(batches[0])
    results = []
    for run in range(n_runs):
        nets = batches[0][run].keys()
        results.append(
            {
                net: concat([batch[run][net] for batch in batches])
                for net in nets
            }
        )
    return results


def one_shot_sigmoid_batch(
    open_session,
    netlist,
    pi_traces_runs: list[dict[str, SigmoidalTrace]],
    record_nets: list[str] | None,
) -> list[dict[str, SigmoidalTrace]]:
    """One-shot ``simulate_batch`` semantics on top of a fresh session.

    Feeds the complete stimulus as a single chunk and finishes —
    reproducing the pre-session entry points exactly, including the
    PI passthrough (recorded inputs return the caller's trace objects)
    and the unknown-record-net error.  ``open_session`` maps a record
    list to a new session.
    """
    pis = netlist.primary_inputs
    for pi_traces in pi_traces_runs:
        missing = [pi for pi in pis if pi not in pi_traces]
        if missing:
            raise SimulationError(f"missing PI traces: {missing}")
    if not pi_traces_runs:
        return []
    if record_nets is None:
        record_nets = list(netlist.primary_outputs)
    known = set(netlist.nets)
    pi_set = set(pis)
    session_record = list(
        dict.fromkeys(
            net for net in record_nets if net in known and net not in pi_set
        )
    )
    session = open_session(session_record)
    chunks = [
        {pi: pi_traces[pi] for pi in pis} for pi_traces in pi_traces_runs
    ]
    batches = [session.feed(chunks), session.finish()]
    merged = merge_segment_batches(batches, concat_sigmoid_traces)
    results = []
    for run, pi_traces in enumerate(pi_traces_runs):
        out = {}
        for net in record_nets:
            if net in pi_traces:
                out[net] = pi_traces[net]
            elif net in merged[run]:
                out[net] = merged[run][net]
            else:
                raise SimulationError(f"unknown record net: {net!r}")
        results.append(out)
    return results


def stream_sigmoid_batch(
    simulator,
    pi_traces_runs: list[dict[str, SigmoidalTrace]],
    chunk_size: int,
    record_nets: list[str] | None = None,
    guard: float = STREAM_GUARD,
) -> list[dict[str, SigmoidalTrace]]:
    """Chunked-execution twin of ``simulate_batch`` (same results).

    Splits each run's stimulus into ~``chunk_size``-transition chunks,
    feeds them through one streaming session, and concatenates the
    returned segments — the bounded-memory path behind ``--chunk-size``.
    """
    session = simulator.open_session(
        record_nets=record_nets, guard=guard
    )
    per_run = [
        sigmoid_chunks(pi_traces, chunk_size=chunk_size)
        for pi_traces in pi_traces_runs
    ]
    n_chunks = max(len(chunks) for chunks in per_run)
    batches = []
    for k in range(n_chunks):
        batches.append(
            session.feed(
                [
                    chunks[k] if k < len(chunks) else {}
                    for chunks in per_run
                ]
            )
        )
    batches.append(session.finish())
    return merge_segment_batches(batches, concat_sigmoid_traces)
