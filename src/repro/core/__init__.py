"""The paper's contribution: sigmoidal traces, fitting, TOM, simulator.

Submodules
----------
``sigmoid``
    Eq. 1 single-transition model and Eq. 2 joint model with Jacobians.
``trace``
    :class:`SigmoidalTrace` — the sigmoid-parameter signal representation.
``lm``
    Weighted Levenberg-Marquardt least squares (from scratch).
``fitting``
    Waveform -> sigmoid-parameter extraction with the paper's fitting
    improvements (clipping, inflection-point weighting).
``tom``
    The third-order-model transfer function interface and Algorithm 1.
``cancellation``
    Sub-threshold output pulse removal.
``valid_region``
    Valid-region containment for ANN inputs (Sec. IV-B).
``backends``
    The pluggable transfer-model registry: one protocol for ANN, LUT,
    spline and polynomial families, shared scaling/region plumbing and
    versioned serialization dispatch.
``ann_transfer``
    The four-MLP transfer-function implementation (Sec. IV); the
    ``"ann"`` (default) backend.
``table_transfer``
    LUT / polynomial / RBF alternatives used for comparison — the
    ``"lut"`` / ``"poly"`` / ``"spline"`` backends.
``multi_input``
    NOR decision procedure reducing multi-input gates to channels.
``simulator``
    Full-circuit sigmoid simulator for INV/NOR netlists.
``compile``
    Compiled levelized simulator core: one cached array program per
    circuit, executed level × run-batch lock-step on stacked backends.
``models``
    Serializable bundles of trained gate models.
"""

from repro.core.sigmoid import sigmoid_tau, sigmoid_value, sum_model_tau
from repro.core.trace import SigmoidalTrace
from repro.core.lm import LMResult, levenberg_marquardt
from repro.core.fitting import FitResult, fit_waveform
from repro.core.tom import TransferFunction, predict_gate_output
from repro.core.valid_region import ConvexHullRegion, KNNRegion, ValidRegion
from repro.core.backends import (
    ScaledTransferModel,
    StackedTransferModel,
    TransferBackend,
    available_backends,
    backend_from_dict,
    backend_to_dict,
    get_backend,
    register_backend,
)
from repro.core.ann_transfer import ANNTransferFunction, GateModel
from repro.core.table_transfer import (
    LUTTransferFunction,
    PolynomialTransferFunction,
    RBFTransferFunction,
)
from repro.core.simulator import SigmoidCircuitSimulator
from repro.core.compile import CompiledCircuit, compile_circuit
from repro.core.models import GateModelBundle

__all__ = [
    "TransferBackend",
    "ScaledTransferModel",
    "StackedTransferModel",
    "CompiledCircuit",
    "compile_circuit",
    "available_backends",
    "get_backend",
    "register_backend",
    "backend_to_dict",
    "backend_from_dict",
    "LUTTransferFunction",
    "PolynomialTransferFunction",
    "RBFTransferFunction",
    "sigmoid_tau",
    "sigmoid_value",
    "sum_model_tau",
    "SigmoidalTrace",
    "LMResult",
    "levenberg_marquardt",
    "FitResult",
    "fit_waveform",
    "TransferFunction",
    "predict_gate_output",
    "ValidRegion",
    "ConvexHullRegion",
    "KNNRegion",
    "ANNTransferFunction",
    "GateModel",
    "SigmoidCircuitSimulator",
    "GateModelBundle",
]
