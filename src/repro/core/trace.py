"""Sigmoidal traces: the signal representation of the paper.

A :class:`SigmoidalTrace` generalizes a digital trace: each transition
carries a slope parameter ``a`` and a crossing time ``b`` (scaled time).
The trace evaluates to an analog voltage via the Eq. 2 joint model, can be
digitized at VDD/2, and can be constructed from a digital trace with a
nominal slope (the "same stimulus" mode of Table I's last row).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.optimize import brentq

from repro.constants import NOMINAL_SLOPE, TIME_SCALE, VDD, VTH, from_scaled
from repro.core.sigmoid import sum_model_tau, transition_width_tau
from repro.digital.trace import DigitalTrace
from repro.errors import FittingError


class SigmoidalTrace:
    """A signal as a sum of sigmoids plus an initial rail level.

    Parameters
    ----------
    initial_level:
        Logic value long before the first transition (0 or 1).
    params:
        Sequence of ``(a, b)`` rows sorted by ascending ``b``; the signs of
        ``a`` must alternate, starting opposite to ``initial_level``
        (a trace resting at 0 must begin with a rising sigmoid).
    vdd:
        Rail voltage of the represented signal.
    """

    __slots__ = ("initial_level", "params", "vdd")

    def __init__(
        self,
        initial_level: int,
        params: Sequence[tuple[float, float]] | np.ndarray = (),
        vdd: float = VDD,
    ) -> None:
        if initial_level not in (0, 1):
            raise FittingError("initial_level must be 0 or 1")
        array = np.asarray(list(params), dtype=float).reshape(-1, 2)
        if array.size:
            if np.any(array[:, 0] == 0.0):
                raise FittingError("slope parameters must be nonzero")
            if np.any(np.diff(array[:, 1]) < 0):
                raise FittingError("crossing times must be ascending")
            expected_sign = -1.0 if initial_level else 1.0
            for a, _b in array:
                if np.sign(a) != expected_sign:
                    raise FittingError(
                        "slope signs must alternate starting "
                        f"{'falling' if initial_level else 'rising'}"
                    )
                expected_sign = -expected_sign
        self.initial_level = int(initial_level)
        self.params = array
        self.vdd = vdd

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_digital(
        cls,
        trace: DigitalTrace,
        slope: float = NOMINAL_SLOPE,
        vdd: float = VDD,
    ) -> "SigmoidalTrace":
        """Digital trace -> sigmoids with a fixed nominal slope magnitude."""
        params = []
        sign = -1.0 if trace.initial else 1.0
        for time in trace.times:
            params.append((sign * abs(slope), time * TIME_SCALE))
            sign = -sign
        return cls(int(trace.initial), params, vdd=vdd)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_transitions(self) -> int:
        return int(self.params.shape[0])

    @property
    def offset(self) -> float:
        """Rail offset of the Eq. 2 sum (``n_falling - initial_level``)."""
        n_falling = int(np.sum(self.params[:, 0] < 0)) if self.params.size else 0
        return float(n_falling - self.initial_level)

    def final_level(self) -> int:
        return (self.initial_level + self.n_transitions) % 2

    def value(self, t_seconds) -> np.ndarray:
        """Analog value at times (seconds)."""
        tau = np.asarray(t_seconds, dtype=float) * TIME_SCALE
        if not self.params.size:
            return np.full(tau.shape, self.initial_level * self.vdd)
        return sum_model_tau(tau, self.params, self.offset, vdd=self.vdd)

    def value_tau(self, tau) -> np.ndarray:
        """Analog value at scaled times."""
        tau = np.asarray(tau, dtype=float)
        if not self.params.size:
            return np.full(tau.shape, self.initial_level * self.vdd)
        return sum_model_tau(tau, self.params, self.offset, vdd=self.vdd)

    # ------------------------------------------------------------------
    # digitization
    # ------------------------------------------------------------------
    def crossing_times_tau(self, threshold: float = VTH) -> list[float]:
        """Scaled times where the trace crosses ``threshold``.

        Well-separated transitions cross once near each ``b_i``; degraded
        (overlapping) pairs may not cross at all.  The search samples a
        dense grid spanning all transitions and refines each sign change
        with Brent's method.
        """
        if not self.params.size:
            return []
        widths = np.array([transition_width_tau(a) for a, _ in self.params])
        lo = float(self.params[0, 1] - 8 * widths[0] - 1.0)
        hi = float(self.params[-1, 1] + 8 * widths[-1] + 1.0)
        # Dense local grids around each transition + a coarse global grid.
        pieces = [np.linspace(lo, hi, 256)]
        for (a, b), w in zip(self.params, widths):
            pieces.append(np.linspace(b - 6 * w, b + 6 * w, 128))
        grid = np.unique(np.concatenate(pieces))
        values = self.value_tau(grid) - threshold
        crossings = []
        signs = np.sign(values)
        change = np.nonzero(np.diff(signs) != 0)[0]
        for i in change:
            if values[i] == 0.0:
                crossings.append(float(grid[i]))
                continue
            root = brentq(
                lambda x: float(self.value_tau(np.array([x]))[0] - threshold),
                grid[i],
                grid[i + 1],
                xtol=1e-8,
            )
            crossings.append(float(root))
        return crossings

    def digitize(self, threshold: float = VTH) -> DigitalTrace:
        """Threshold the trace into a :class:`DigitalTrace`."""
        crossings = self.crossing_times_tau(threshold)
        initial = bool(self.initial_level)
        times = []
        value = initial
        for tau in crossings:
            times.append(from_scaled(tau).item())
            value = not value
        return DigitalTrace(initial, times)

    # ------------------------------------------------------------------
    def shifted(self, dt_seconds: float) -> "SigmoidalTrace":
        params = self.params.copy()
        if params.size:
            params[:, 1] += dt_seconds * TIME_SCALE
        return SigmoidalTrace(self.initial_level, params, vdd=self.vdd)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SigmoidalTrace(initial={self.initial_level}, "
            f"n={self.n_transitions})"
        )
