"""Multi-input gates: per-input channels plus a boolean decision procedure.

The paper reduces multi-input gates to single-input channels with internal
zero-time boolean logic (like the IDM): for a two-input NOR, Algorithm 1
runs with input I1 as the relevant one as long as I2 = GND, and vice
versa (Sec. III, last paragraph).

:func:`predict_nor_output` implements that: it merges both inputs'
transitions in time order, tracks each input's logic level, and emits an
output prediction only for transitions that actually change the NOR
output — using the transfer functions of the pin the relevant transition
arrived on.  Masked transitions (the other input holds the output low) do
not touch the channel state, and sub-threshold output pulses are cancelled
on the fly exactly as in Algorithm 1.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NOMINAL_SLOPE
from repro.core.cancellation import pair_crosses_threshold
from repro.core.tom import T_CAP, clamp_history
from repro.core.trace import SigmoidalTrace
from repro.errors import ModelError


def predict_nor_output(
    input_traces: list[SigmoidalTrace],
    pin_transfer_functions: list[tuple],
    dummy_slope: float = NOMINAL_SLOPE,
    t_cap: float = T_CAP,
    cancel_subthreshold: bool = True,
) -> SigmoidalTrace:
    """Predict a NOR2 output trace from its two input traces.

    Parameters
    ----------
    input_traces:
        One :class:`SigmoidalTrace` per input pin.
    pin_transfer_functions:
        Per pin, a ``(tf_rise, tf_fall)`` pair dispatching on the *input*
        transition polarity, as in Algorithm 1.
    """
    if len(input_traces) != 2 or len(pin_transfer_functions) != 2:
        raise ModelError("NOR2 prediction needs exactly two inputs")

    vdd = input_traces[0].vdd
    levels = [bool(trace.initial_level) for trace in input_traces]
    out_level = not (levels[0] or levels[1])
    initial_output_level = int(out_level)

    # Merge transitions across pins, sorted by crossing time.
    events: list[tuple[float, int, float]] = []  # (b, pin, a)
    for pin, trace in enumerate(input_traces):
        for a, b in trace.params:
            events.append((float(b), pin, float(a)))
    events.sort(key=lambda e: e[0])

    s_sign = 1.0 if initial_output_level == 1 else -1.0
    prev_a = s_sign * abs(dummy_slope)
    prev_b = -np.inf
    expected_sign = -s_sign

    output_params: list[tuple[float, float]] = []

    for b_in, pin, a_in in events:
        levels[pin] = a_in > 0  # the transition's own polarity sets the level
        new_out = not (levels[0] or levels[1])
        if new_out == out_level:
            continue  # masked by the other input: no output transition
        out_level = new_out

        tf_rise, tf_fall = pin_transfer_functions[pin]
        tf = tf_rise if a_in > 0 else tf_fall
        T = clamp_history(b_in - prev_b, t_cap)
        a_out, delta_b = tf.predict(T, prev_a, a_in)
        if not np.isfinite(a_out) or not np.isfinite(delta_b):
            raise ModelError("transfer function produced non-finite output")
        a_out = expected_sign * abs(a_out)
        b_out = b_in + delta_b
        if output_params and b_out <= output_params[-1][1]:
            b_out = output_params[-1][1] + 1e-6

        output_params.append((a_out, b_out))
        prev_a, prev_b = a_out, b_out
        expected_sign = -expected_sign

        if cancel_subthreshold and len(output_params) >= 2:
            first = output_params[-2]
            second = output_params[-1]
            if not pair_crosses_threshold(first, second, vdd=vdd):
                output_params.pop()
                output_params.pop()
                if output_params:
                    prev_a, prev_b = output_params[-1]
                else:
                    prev_a, prev_b = s_sign * abs(dummy_slope), -np.inf
                expected_sign = -np.sign(prev_a)

    return SigmoidalTrace(initial_output_level, output_params, vdd=vdd)
