"""Compiled levelized sigmoid-simulator core: one array program per circuit.

The interpreted :class:`~repro.core.simulator.SigmoidCircuitSimulator`
walks the netlist gate by gate and predicts one transition at a time —
every step pays a scalar transfer-function call (region projection,
feature scaling, model forward) plus a scalar pulse-cancellation
optimization.  :func:`compile_circuit` lowers a netlist + trained bundle
once into a :class:`CompiledCircuit`: per-topological-level index arrays
(gate kinds, fanin gathers, transfer-function member ids) bound to one
:class:`~repro.core.backends.StackedTransferModel` holding every
distinct transfer function the circuit uses.

Execution then runs Algorithm 1 for **all gates of a level × all runs
of a batch in lock-step** over the transition index: each step answers
every active lane's query with one grouped
:meth:`~repro.core.backends.StackedTransferModel.predict_members` call,
and sub-threshold pulse cancellation is decided by the closed-form
bounds of :func:`~repro.core.cancellation.pair_crosses_threshold_batch`
(scalar fallback only in the ambiguous sliver).  The recurrence of
Algorithm 1 (history clamp, polarity alternation, ordering snap,
cancellation rollback) is replicated operation for operation, so the
compiled and interpreted paths agree to float re-association noise —
far below the 0.05 ps golden-snapshot tolerance; the parity suite
(``tests/test_compiled_parity.py``) pins this across the fuzz corpus
and all registered backends.

Compilations are cached per ``(netlist digest, bundle, backend)``
(:func:`netlist_digest` is canonical under gate-insertion permutation,
like :meth:`~repro.circuits.netlist.Netlist.topological_order`), so
repeated simulator constructions over the same circuit — the fuzz
driver, the Table-I harness, serial/batched parity checks — compile
once.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from repro.circuits.gates import GateType, eval_gate
from repro.circuits.netlist import Netlist
from repro.constants import NOMINAL_SLOPE, VDD
from repro.core.cancellation import pair_crosses_threshold_batch
from repro.core.models import GateModelBundle
from repro.core.tom import T_CAP
from repro.core.trace import SigmoidalTrace
from repro.errors import ModelError, SimulationError

#: Bound on the compile cache (distinct circuit × bundle pairs held).
COMPILE_CACHE_SIZE = 64

#: Cross-pin merge tie window (scaled time units, = 1e-17 s).  Exact
#: ties are common — reconvergent fanout through identical models makes
#: the interpreter's scalar arithmetic produce bitwise-equal crossing
#: times, which its stable sort orders pin 0 first.  The compiled
#: path's batched kernels can split such a tie by a few ulps, and an
#: order flip is a *discrete* divergence (different masking decision,
#: different pin's transfer functions).  Ordering cross-pin events
#: closer than this window pin 0 first restores the interpreter's tie
#: behavior; genuinely distinct transitions are never this close (the
#: ordering snap alone spaces same-gate outputs 1e-6 apart).
MERGE_TIE_EPS = 1e-7

_CACHE: "OrderedDict[tuple, CompiledCircuit]" = OrderedDict()


def netlist_digest(netlist: Netlist) -> str:
    """Canonical digest of a netlist's structure **and** net names.

    Stable under gate-insertion permutation (gates are serialized in
    sorted-name order), so two netlists holding the same gates hash —
    and therefore compile — identically.
    """
    payload = repr(
        (
            netlist.name,
            tuple(netlist.primary_inputs),
            tuple(
                (gate.name, gate.gtype.value, gate.inputs)
                for gate in sorted(netlist.gates.values(), key=lambda g: g.name)
            ),
            tuple(netlist.primary_outputs),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def clear_compile_cache() -> None:
    """Drop every cached compilation (test hook)."""
    _CACHE.clear()


def compile_cache_info() -> dict:
    """Cache occupancy snapshot (exposed for tests and diagnostics)."""
    return {"size": len(_CACHE), "max_size": COMPILE_CACHE_SIZE}


def compile_circuit(netlist: Netlist, bundle: GateModelBundle) -> "CompiledCircuit":
    """Lower ``netlist`` + ``bundle`` into a cached array program."""
    key = (netlist_digest(netlist), id(bundle), bundle.backend)
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        return cached
    compiled = CompiledCircuit(netlist, bundle)
    _CACHE[key] = compiled
    while len(_CACHE) > COMPILE_CACHE_SIZE:
        _CACHE.popitem(last=False)
    return compiled


class _LevelProgram:
    """Static per-level arrays: gate kinds, fanins, TF member ids."""

    __slots__ = (
        "names",
        "single",
        "in0",
        "in1",
        "rise_members",
        "fall_members",
        "nor_members",
    )

    def __init__(self, n: int) -> None:
        self.names: list[str] = [""] * n
        self.single = np.zeros(n, dtype=bool)
        self.in0: list[str] = [""] * n
        self.in1: list[str | None] = [None] * n
        self.rise_members = np.zeros(n, dtype=int)
        self.fall_members = np.zeros(n, dtype=int)
        # (gate, pin, polarity) with polarity 0 = rising input, 1 = falling.
        self.nor_members = np.zeros((n, 2, 2), dtype=int)


class CompiledCircuit:
    """A netlist lowered to per-level index arrays + one TF stack."""

    def __init__(self, netlist: Netlist, bundle: GateModelBundle) -> None:
        netlist.validate()
        for gate in netlist.gates.values():
            if gate.gtype is GateType.INV:
                continue
            if gate.gtype is GateType.NOR and len(gate.inputs) == 2:
                continue
            raise SimulationError(
                "sigmoid simulator supports INV and NOR2 only; "
                f"gate {gate.name} is {gate.gtype.value}/{len(gate.inputs)}"
            )
        self.netlist = netlist
        self.bundle = bundle
        self.backend = bundle.backend
        order = netlist.topological_order()
        self._eval_order = [
            (name, netlist.gates[name].gtype, netlist.gates[name].inputs)
            for name in order
        ]
        # One fanout pass for all nets (fanout_count per net is O(gates)).
        fanout_map = netlist.fanout()
        fanout_count = {net: len(fanout_map.get(net, ())) for net in netlist.nets}

        # Collect the distinct transfer functions the circuit uses and
        # assign stack member ids (dedup by object identity: fanout-class
        # fallback can hand the same model to many gates).
        members: dict[int, int] = {}
        tf_objects: list = []

        def member_of(tf) -> int:
            index = members.get(id(tf))
            if index is None:
                index = len(tf_objects)
                members[id(tf)] = index
                tf_objects.append(tf)
            return index

        self.levels: list[_LevelProgram] = []
        for level_names in netlist.levels():
            program = _LevelProgram(len(level_names))
            for i, name in enumerate(level_names):
                gate = netlist.gates[name]
                fanout = fanout_count[name]
                program.names[i] = name
                program.in0[i] = gate.inputs[0]
                if gate.gtype is GateType.INV:
                    model = bundle.get("INV", 0, fanout)
                    program.single[i] = True
                    program.rise_members[i] = member_of(model.tf_rise)
                    program.fall_members[i] = member_of(model.tf_fall)
                elif gate.inputs[0] == gate.inputs[1]:
                    model = bundle.get("NOR2T", 0, fanout)
                    program.single[i] = True
                    program.rise_members[i] = member_of(model.tf_rise)
                    program.fall_members[i] = member_of(model.tf_fall)
                else:
                    program.in1[i] = gate.inputs[1]
                    for pin in range(2):
                        model = bundle.get("NOR2", pin, fanout)
                        program.nor_members[i, pin, 0] = member_of(model.tf_rise)
                        program.nor_members[i, pin, 1] = member_of(model.tf_fall)
            self.levels.append(program)

        if tf_objects:
            self.stack = type(tf_objects[0]).stack(tf_objects)
        else:  # gate-free netlist: nothing to predict with
            self.stack = None
        self.n_members = len(tf_objects)

    # ------------------------------------------------------------------
    def _evaluate(self, pi_levels: dict[str, bool]) -> dict[str, bool]:
        """Boolean settle on the precompiled order (no re-levelization)."""
        values = dict(pi_levels)
        for name, gtype, inputs in self._eval_order:
            values[name] = eval_gate(gtype, [values[n] for n in inputs])
        return values

    # ------------------------------------------------------------------
    def run_batch(
        self,
        pi_traces_runs: "list[dict[str, SigmoidalTrace]]",
        record_nets: list[str] | None = None,
        t_cap: float = T_CAP,
        dummy_slope: float = NOMINAL_SLOPE,
    ) -> "list[dict[str, SigmoidalTrace]]":
        """Predict traces for a batch of stimulus runs, level by level.

        The lock-step twin of
        :meth:`~repro.core.simulator.SigmoidCircuitSimulator.simulate_batch`:
        identical per-run predictions, one grouped stacked call per
        transition step instead of one scalar call per gate transition.
        """
        netlist = self.netlist
        pis = netlist.primary_inputs
        for pi_traces in pi_traces_runs:
            missing = [pi for pi in pis if pi not in pi_traces]
            if missing:
                raise SimulationError(f"missing PI traces: {missing}")
        if record_nets is None:
            record_nets = list(netlist.primary_outputs)
        n_runs = len(pi_traces_runs)

        level_runs = [
            self._evaluate({pi: bool(pi_traces[pi].initial_level) for pi in pis})
            for pi_traces in pi_traces_runs
        ]

        # Internal store: (run, net) -> (initial_level, params, vdd).
        store: list[dict[str, tuple[int, np.ndarray, float]]] = [
            {
                pi: (trace.initial_level, trace.params, trace.vdd)
                for pi, trace in pi_traces.items()
            }
            for pi_traces in pi_traces_runs
        ]

        abs_dummy = abs(dummy_slope)
        for program in self.levels:
            self._run_level(program, store, level_runs, n_runs, t_cap, abs_dummy)

        results: list[dict[str, SigmoidalTrace]] = []
        for run, pi_traces in enumerate(pi_traces_runs):
            out: dict[str, SigmoidalTrace] = {}
            for net in record_nets:
                if net in pi_traces:
                    out[net] = pi_traces[net]
                    continue
                try:
                    initial, params, vdd = store[run][net]
                except KeyError as exc:
                    raise SimulationError(f"unknown record net: {exc}") from None
                out[net] = SigmoidalTrace(initial, params, vdd=vdd)
            results.append(out)
        return results

    # ------------------------------------------------------------------
    def _run_level(
        self,
        program: _LevelProgram,
        store: list,
        level_runs: list,
        n_runs: int,
        t_cap: float,
        abs_dummy: float,
    ) -> None:
        n_gates = len(program.names)
        n_lanes = n_gates * n_runs
        if n_lanes == 0:
            return

        # ---- derive each lane's emitting events from its input traces
        lane_b: list[np.ndarray] = []
        lane_a: list[np.ndarray] = []
        lane_m: list[np.ndarray] = []
        initial = np.zeros(n_lanes, dtype=int)
        trace_vdd = np.empty(n_lanes)
        cancel_vdd = np.empty(n_lanes)
        s_sign = np.empty(n_lanes)

        lane = 0
        for run in range(n_runs):
            run_store = store[run]
            levels = level_runs[run]
            for i in range(n_gates):
                name = program.names[i]
                init0, p0, vdd0 = run_store[program.in0[i]]
                if program.single[i]:
                    b = p0[:, 1]
                    a = p0[:, 0]
                    member = np.where(
                        a > 0,
                        program.rise_members[i],
                        program.fall_members[i],
                    )
                    init_out = int(levels[name])
                    # Algorithm 1 checks the pulse against the default
                    # rail, the NOR decision procedure against the
                    # input's; replicated for parity.
                    cancel_vdd[lane] = VDD
                else:
                    init1, p1, _vdd1 = run_store[program.in1[i]]
                    b, a, member, init_out = self._nor_events(
                        program.nor_members[i], init0, p0, init1, p1
                    )
                    if init_out != int(levels[name]):
                        raise SimulationError(
                            f"initial level mismatch at gate {name}"
                        )  # pragma: no cover - defensive
                    cancel_vdd[lane] = vdd0
                lane_b.append(b)
                lane_a.append(a)
                lane_m.append(member)
                initial[lane] = init_out
                trace_vdd[lane] = vdd0
                s_sign[lane] = 1.0 if init_out == 1 else -1.0
                lane += 1

        counts = np.array([b.size for b in lane_b])
        max_events = int(counts.max()) if counts.size else 0

        out_a = np.empty((n_lanes, max_events)) if max_events else None
        out_b = np.empty((n_lanes, max_events)) if max_events else None
        n_out = np.zeros(n_lanes, dtype=int)

        if max_events:
            B = np.zeros((n_lanes, max_events))
            A = np.zeros((n_lanes, max_events))
            MEM = np.zeros((n_lanes, max_events), dtype=int)
            for k, (b, a, member) in enumerate(zip(lane_b, lane_a, lane_m)):
                B[k, : b.size] = b
                A[k, : a.size] = a
                MEM[k, : member.size] = member
            self._lockstep(
                B, A, MEM, counts, s_sign, cancel_vdd,
                out_a, out_b, n_out, t_cap, abs_dummy,
            )

        # ---- write the level's traces back into the store
        lane = 0
        for run in range(n_runs):
            run_store = store[run]
            for i in range(n_gates):
                count = int(n_out[lane])
                if count:
                    params = np.stack(
                        [out_a[lane, :count], out_b[lane, :count]], axis=1
                    )
                else:
                    params = np.empty((0, 2))
                run_store[program.names[i]] = (
                    int(initial[lane]),
                    params,
                    float(trace_vdd[lane]),
                )
                lane += 1

    # ------------------------------------------------------------------
    @staticmethod
    def _nor_events(
        members: np.ndarray,
        init0: int,
        p0: np.ndarray,
        init1: int,
        p1: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Merged, masked NOR2 events (the decision procedure, data only).

        Mirrors :func:`~repro.core.multi_input.predict_nor_output`'s
        event walk: merge both pins' transitions in (stable) time order,
        track each pin's level from the transition polarity, and keep
        only the events that flip the NOR output — all of which depends
        on the input traces alone, never on a prediction, so it runs
        before any model call.
        """
        b = np.concatenate([p0[:, 1], p1[:, 1]])
        a = np.concatenate([p0[:, 0], p1[:, 0]])
        pin = np.concatenate(
            [
                np.zeros(p0.shape[0], dtype=int),
                np.ones(p1.shape[0], dtype=int),
            ]
        )
        init_out = int(not (bool(init0) or bool(init1)))
        if b.size == 0:
            return b, a, np.zeros(0, dtype=int), init_out
        order = np.argsort(b, kind="stable")
        b, a, pin = b[order], a[order], pin[order]
        # Pin-stable near-tie ordering (see MERGE_TIE_EPS): adjacent
        # cross-pin events inside the window bubble to pin 0 first;
        # same-pin events keep their (alternation-mandated) order.
        changed = True
        while changed:
            changed = False
            for i in range(b.size - 1):
                if pin[i] > pin[i + 1] and b[i + 1] - b[i] < MERGE_TIE_EPS:
                    for arr in (b, a, pin):
                        arr[i], arr[i + 1] = arr[i + 1], arr[i]
                    changed = True
        polarity = a > 0
        index = np.arange(b.size)
        last0 = np.maximum.accumulate(np.where(pin == 0, index, -1))
        last1 = np.maximum.accumulate(np.where(pin == 1, index, -1))
        lev0 = np.where(last0 >= 0, polarity[np.maximum(last0, 0)], bool(init0))
        lev1 = np.where(last1 >= 0, polarity[np.maximum(last1, 0)], bool(init1))
        out = ~(lev0 | lev1)
        prev = np.concatenate([[bool(init_out)], out[:-1]])
        emit = out != prev
        b, a, pin = b[emit], a[emit], pin[emit]
        member = members[pin, (~polarity[emit]).astype(int)]
        return b, a, member, init_out

    # ------------------------------------------------------------------
    def _lockstep(
        self,
        B: np.ndarray,
        A: np.ndarray,
        MEM: np.ndarray,
        counts: np.ndarray,
        s_sign: np.ndarray,
        cancel_vdd: np.ndarray,
        out_a: np.ndarray,
        out_b: np.ndarray,
        n_out: np.ndarray,
        t_cap: float,
        abs_dummy: float,
    ) -> None:
        """Algorithm 1 across all lanes, lock-step over transition index."""
        if self.stack is None:  # pragma: no cover - guarded by compile
            raise ModelError("compiled circuit has no transfer functions")
        n_lanes = B.shape[0]
        prev_a = s_sign * abs_dummy
        prev_b = np.full(n_lanes, -np.inf)
        exp_sign = -s_sign
        lanes = np.arange(n_lanes)

        for j in range(B.shape[1]):
            idx = lanes[counts > j]
            if idx.size == 0:
                break
            b_in = B[idx, j]
            a_in = A[idx, j]
            T = np.minimum(b_in - prev_b[idx], t_cap)
            features = np.stack([T, prev_a[idx], a_in], axis=1)
            a_raw, delta_b = self.stack.predict_members(features, MEM[idx, j])
            if not (np.all(np.isfinite(a_raw)) and np.all(np.isfinite(delta_b))):
                raise ModelError("transfer function produced non-finite output")
            a_out = exp_sign[idx] * np.abs(a_raw)
            b_out = b_in + delta_b

            # Ordering snap: a prediction jumping before its predecessor
            # lands just after it (same 1e-6 nudge as the interpreter).
            has_prev = n_out[idx] > 0
            last_slot = np.maximum(n_out[idx] - 1, 0)
            last_b = np.where(has_prev, out_b[idx, last_slot], -np.inf)
            snap = has_prev & (b_out <= last_b)
            b_out = np.where(snap, last_b + 1e-6, b_out)

            out_a[idx, n_out[idx]] = a_out
            out_b[idx, n_out[idx]] = b_out
            n_out[idx] += 1
            prev_a[idx] = a_out
            prev_b[idx] = b_out
            exp_sign[idx] = -exp_sign[idx]

            # Sub-threshold cancellation on the freshly closed pair.
            pair_idx = idx[n_out[idx] >= 2]
            if pair_idx.size:
                slot = n_out[pair_idx]
                first = np.stack(
                    [out_a[pair_idx, slot - 2], out_b[pair_idx, slot - 2]],
                    axis=1,
                )
                second = np.stack(
                    [out_a[pair_idx, slot - 1], out_b[pair_idx, slot - 1]],
                    axis=1,
                )
                crosses = pair_crosses_threshold_batch(
                    first, second, cancel_vdd[pair_idx]
                )
                drop = pair_idx[~crosses]
                if drop.size:
                    n_out[drop] -= 2
                    has = n_out[drop] > 0
                    slot = np.maximum(n_out[drop] - 1, 0)
                    restored_a = np.where(
                        has, out_a[drop, slot], s_sign[drop] * abs_dummy
                    )
                    restored_b = np.where(has, out_b[drop, slot], -np.inf)
                    prev_a[drop] = restored_a
                    prev_b[drop] = restored_b
                    exp_sign[drop] = -np.sign(restored_a)
