"""Compiled levelized sigmoid-simulator core: one array program per circuit.

The interpreted :class:`~repro.core.simulator.SigmoidCircuitSimulator`
walks the netlist gate by gate and predicts one transition at a time —
every step pays a scalar transfer-function call (region projection,
feature scaling, model forward) plus a scalar pulse-cancellation
optimization.  :func:`compile_circuit` lowers a netlist + trained bundle
once into a :class:`CompiledCircuit`: per-topological-level index arrays
(gate kinds, fanin gathers, transfer-function member ids) bound to one
:class:`~repro.core.backends.StackedTransferModel` holding every
distinct transfer function the circuit uses.

Execution then runs Algorithm 1 for **all gates of a level × all runs
of a batch in lock-step** over the transition index: each step answers
every active lane's query with one grouped
:meth:`~repro.core.backends.StackedTransferModel.predict_members` call,
and sub-threshold pulse cancellation is decided by the closed-form
bounds of :func:`~repro.core.cancellation.pair_crosses_threshold_batch`
(scalar fallback only in the ambiguous sliver).  The recurrence of
Algorithm 1 (history clamp, polarity alternation, ordering snap,
cancellation rollback) is replicated operation for operation, so the
compiled and interpreted paths agree to float re-association noise —
far below the 0.05 ps golden-snapshot tolerance; the parity suite
(``tests/test_compiled_parity.py``) pins this across the fuzz corpus
and all registered backends.

Compilations are cached per ``(netlist digest, bundle, backend)``
(:func:`netlist_digest` is canonical under gate-insertion permutation,
like :meth:`~repro.circuits.netlist.Netlist.topological_order`), so
repeated simulator constructions over the same circuit — the fuzz
driver, the Table-I harness, serial/batched parity checks — compile
once.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.circuits.gates import GateType, eval_gate
from repro.circuits.netlist import Netlist
from repro.constants import NOMINAL_SLOPE
from repro.core.cancellation import _pair_crosses_split
from repro.core.models import GateModelBundle
from repro.core.tom import T_CAP
from repro.core.trace import SigmoidalTrace
from repro.errors import ModelError, SimulationError

#: Bound on the compile cache (distinct circuit × bundle pairs held).
COMPILE_CACHE_SIZE = 64

#: Cross-pin merge tie window (scaled time units, = 1e-17 s).  Exact
#: ties are common — reconvergent fanout through identical models makes
#: the interpreter's scalar arithmetic produce bitwise-equal crossing
#: times, which its stable sort orders pin 0 first.  The compiled
#: path's batched kernels can split such a tie by a few ulps, and an
#: order flip is a *discrete* divergence (different masking decision,
#: different pin's transfer functions).  Ordering cross-pin events
#: closer than this window pin 0 first restores the interpreter's tie
#: behavior; genuinely distinct transitions are never this close (the
#: ordering snap alone spaces same-gate outputs 1e-6 apart).
MERGE_TIE_EPS = 1e-7

_CACHE: "OrderedDict[tuple, CompiledCircuit]" = OrderedDict()
#: Pin refcounts per cache key.  Pinned entries (the serving layer's
#: warm fleet) are skipped by LRU eviction, so a burst of one-off
#: compiles cannot evict a circuit a service promises to keep warm.
#: ``clear_compile_cache`` drops pins too — it is the reset-the-world
#: test hook, and pin holders keep their own strong references anyway.
_PINNED: dict[tuple, int] = {}
#: Lookup statistics (under ``_CACHE_LOCK``), exposed by
#: :func:`compile_cache_info` for the serving layer's stats endpoint.
_HITS = 0
_MISSES = 0
#: Guards the LRU against concurrent compile/evict/clear (the worker
#: pool of the serving path shares one process-wide cache).  Reentrant:
#: a cache clearer may consult cache info while the clearing lock is
#: held.
_CACHE_LOCK = threading.RLock()
#: Sibling caches (e.g. the compiled *digital* cores) register a
#: clearer so :func:`clear_compile_cache` drops every lazily compiled
#: artifact in the process, not just the sigmoid programs.
_CACHE_CLEARERS: list = []


def register_cache_clearer(clearer) -> None:
    """Register a callable to run whenever the compile cache is cleared."""
    if clearer not in _CACHE_CLEARERS:
        _CACHE_CLEARERS.append(clearer)


def netlist_digest(netlist: Netlist) -> str:
    """Canonical digest of a netlist's structure **and** net names.

    Stable under gate-insertion permutation (gates are serialized in
    sorted-name order), so two netlists holding the same gates hash —
    and therefore compile — identically.
    """
    payload = repr(
        (
            netlist.name,
            tuple(netlist.primary_inputs),
            tuple(
                (gate.name, gate.gtype.value, gate.inputs)
                for gate in sorted(netlist.gates.values(), key=lambda g: g.name)
            ),
            tuple(netlist.primary_outputs),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def clear_compile_cache() -> None:
    """Drop every cached compilation, sigmoid *and* registered siblings.

    The compiled digital cores keep their own lazily recompiled state;
    they register a clearer here at import, so tests cannot leak a
    compiled core across cases by only clearing this cache.
    """
    global _HITS, _MISSES
    with _CACHE_LOCK:
        _CACHE.clear()
        _PINNED.clear()
        _HITS = 0
        _MISSES = 0
    for clearer in list(_CACHE_CLEARERS):
        clearer()


def compile_cache_info() -> dict:
    """Cache occupancy snapshot (exposed for tests and diagnostics)."""
    with _CACHE_LOCK:
        return {
            "size": len(_CACHE),
            "max_size": COMPILE_CACHE_SIZE,
            "pinned": len(_PINNED),
            "hits": _HITS,
            "misses": _MISSES,
        }


def _cache_key(netlist: Netlist, bundle: GateModelBundle) -> tuple:
    return (netlist_digest(netlist), id(bundle), bundle.backend)


def _evict_over_bound() -> None:
    """LRU-evict unpinned entries until the bound holds (lock held).

    Pinned keys are skipped, so the cache may transiently exceed the
    bound by the number of pins — the serving layer's warm fleet is an
    explicit capacity decision, not an accident of traffic order.
    """
    if len(_CACHE) <= COMPILE_CACHE_SIZE:
        return
    for key in list(_CACHE):
        if len(_CACHE) <= COMPILE_CACHE_SIZE:
            break
        if key in _PINNED:
            continue
        del _CACHE[key]


def compile_circuit(
    netlist: Netlist,
    bundle: GateModelBundle,
    pin: bool = False,
    target=None,
) -> "CompiledCircuit":
    """Lower ``netlist`` + ``bundle`` into a cached array program.

    Thread-safe: lookups and inserts hold the cache lock, compilation
    itself runs outside it, and a compile raced by another thread keeps
    the first-inserted instance (so repeated calls return one object).
    ``pin=True`` additionally marks the entry as warm-fleet resident:
    LRU eviction skips it until a matching :func:`unpin_circuit` (pins
    are refcounted; ``clear_compile_cache`` drops them all).

    ``target`` names an execution target
    (:func:`repro.core.targets.resolve_target`) and is validated here so
    an unknown or unavailable target fails at compile time; the compiled
    artifact itself is target-agnostic (one compilation serves every
    target — the target is re-resolved where kernels actually run), so
    ``target`` does not enter the cache key.
    """
    global _HITS, _MISSES
    if target is not None:
        from repro.core.targets import resolve_target

        resolve_target(target)
    key = _cache_key(netlist, bundle)
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _HITS += 1
            if pin:
                _PINNED[key] = _PINNED.get(key, 0) + 1
            return cached
    compiled = CompiledCircuit(netlist, bundle)
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _HITS += 1
            if pin:
                _PINNED[key] = _PINNED.get(key, 0) + 1
            return cached
        _MISSES += 1
        _CACHE[key] = compiled
        if pin:
            _PINNED[key] = _PINNED.get(key, 0) + 1
        _evict_over_bound()
    return compiled


def unpin_circuit(netlist: Netlist, bundle: GateModelBundle) -> None:
    """Release one pin on a compilation (idempotent past zero).

    The entry stays cached (now eviction-eligible); an entry already
    cleared — e.g. by a racing :func:`clear_compile_cache` — is a
    no-op, so service shutdown never has to order against cache resets.
    """
    key = _cache_key(netlist, bundle)
    with _CACHE_LOCK:
        count = _PINNED.get(key)
        if count is None:
            return
        if count <= 1:
            del _PINNED[key]
        else:
            _PINNED[key] = count - 1
        _evict_over_bound()


class _LevelProgram:
    """Static per-level arrays: gate kinds, fanins, TF member ids."""

    __slots__ = (
        "names",
        "single",
        "in0",
        "in1",
        "rise_members",
        "fall_members",
        "nor_members",
    )

    def __init__(self, n: int) -> None:
        self.names: list[str] = [""] * n
        self.single = np.zeros(n, dtype=bool)
        self.in0: list[str] = [""] * n
        self.in1: list[str | None] = [None] * n
        self.rise_members = np.zeros(n, dtype=int)
        self.fall_members = np.zeros(n, dtype=int)
        # (gate, pin, polarity) with polarity 0 = rising input, 1 = falling.
        self.nor_members = np.zeros((n, 2, 2), dtype=int)


class CompiledCircuit:
    """A netlist lowered to per-level index arrays + one TF stack."""

    def __init__(self, netlist: Netlist, bundle: GateModelBundle) -> None:
        netlist.validate()
        for gate in netlist.gates.values():
            if gate.gtype is GateType.INV:
                continue
            if gate.gtype is GateType.NOR and len(gate.inputs) == 2:
                continue
            raise SimulationError(
                "sigmoid simulator supports INV and NOR2 only; "
                f"gate {gate.name} is {gate.gtype.value}/{len(gate.inputs)}"
            )
        self.netlist = netlist
        self.bundle = bundle
        self.backend = bundle.backend
        order = netlist.topological_order()
        self._eval_order = [
            (name, netlist.gates[name].gtype, netlist.gates[name].inputs)
            for name in order
        ]
        # One fanout pass for all nets (fanout_count per net is O(gates)).
        fanout_map = netlist.fanout()
        fanout_count = {net: len(fanout_map.get(net, ())) for net in netlist.nets}

        # Collect the distinct transfer functions the circuit uses and
        # assign stack member ids (dedup by object identity: fanout-class
        # fallback can hand the same model to many gates).
        members: dict[int, int] = {}
        tf_objects: list = []

        def member_of(tf) -> int:
            index = members.get(id(tf))
            if index is None:
                index = len(tf_objects)
                members[id(tf)] = index
                tf_objects.append(tf)
            return index

        self.levels: list[_LevelProgram] = []
        for level_names in netlist.levels():
            program = _LevelProgram(len(level_names))
            for i, name in enumerate(level_names):
                gate = netlist.gates[name]
                fanout = fanout_count[name]
                program.names[i] = name
                program.in0[i] = gate.inputs[0]
                if gate.gtype is GateType.INV:
                    model = bundle.get("INV", 0, fanout)
                    program.single[i] = True
                    program.rise_members[i] = member_of(model.tf_rise)
                    program.fall_members[i] = member_of(model.tf_fall)
                elif gate.inputs[0] == gate.inputs[1]:
                    model = bundle.get("NOR2T", 0, fanout)
                    program.single[i] = True
                    program.rise_members[i] = member_of(model.tf_rise)
                    program.fall_members[i] = member_of(model.tf_fall)
                else:
                    program.in1[i] = gate.inputs[1]
                    for pin in range(2):
                        model = bundle.get("NOR2", pin, fanout)
                        program.nor_members[i, pin, 0] = member_of(model.tf_rise)
                        program.nor_members[i, pin, 1] = member_of(model.tf_fall)
            self.levels.append(program)

        if tf_objects:
            self.stack = type(tf_objects[0]).stack(tf_objects)
        else:  # gate-free netlist: nothing to predict with
            self.stack = None
        self.n_members = len(tf_objects)
        self.tf_objects = tf_objects

        # Dense net -> slot map (PIs first, then gates in level order)
        # for the fused whole-program executor's slot stores.
        self.slot_of: dict[str, int] = {}
        for name in netlist.primary_inputs:
            self.slot_of[name] = len(self.slot_of)
        for program in self.levels:
            for name in program.names:
                self.slot_of[name] = len(self.slot_of)
        self.n_slots = len(self.slot_of)
        self._fused_program = None

    # ------------------------------------------------------------------
    def fused_program(self) -> "object":
        """This circuit as a lazily built single-member fused program."""
        if self._fused_program is None:
            from repro.core.fused import CompiledProgram

            self._fused_program = CompiledProgram([self])
        return self._fused_program

    # ------------------------------------------------------------------
    def _evaluate(self, pi_levels: dict[str, bool]) -> dict[str, bool]:
        """Boolean settle on the precompiled order (no re-levelization)."""
        values = dict(pi_levels)
        for name, gtype, inputs in self._eval_order:
            values[name] = eval_gate(gtype, [values[n] for n in inputs])
        return values

    # ------------------------------------------------------------------
    def run_batch(
        self,
        pi_traces_runs: "list[dict[str, SigmoidalTrace]]",
        record_nets: list[str] | None = None,
        t_cap: float = T_CAP,
        dummy_slope: float = NOMINAL_SLOPE,
        fused: bool = True,
        target=None,
        faults: list | None = None,
    ) -> "list[dict[str, SigmoidalTrace]]":
        """Predict traces for a batch of stimulus runs, level by level.

        The lock-step twin of
        :meth:`~repro.core.simulator.SigmoidCircuitSimulator.simulate_batch`:
        identical per-run predictions, one grouped stacked call per
        transition step instead of one scalar call per gate transition.
        ``fused`` (the default) executes through the whole-program fused
        super-level kernels of :mod:`repro.core.fused` on the selected
        execution ``target``; ``fused=False`` keeps the per-level
        streaming-session path (the PR-5 compiled reference the fused
        parity contract is stated against) — a thin one-shot wrapper
        over :meth:`open_session`: feed the whole stimulus, finish.
        ``faults`` (fused only) injects one fault per run via the
        forced-lane masks of :meth:`~repro.core.fused.CompiledProgram.run_jobs`.
        """
        if fused:
            return self.fused_program().run_jobs(
                [(0, runs, record_nets) for runs in pi_traces_runs],
                t_cap=t_cap,
                dummy_slope=dummy_slope,
                target=target,
                faults=faults,
            )
        if faults is not None and any(f is not None for f in faults):
            raise SimulationError(
                "fault injection requires the fused execution path "
                "(run_batch(fused=True))"
            )
        from repro.core.session import one_shot_sigmoid_batch

        return one_shot_sigmoid_batch(
            lambda record: self.open_session(
                record, t_cap=t_cap, dummy_slope=dummy_slope, target=target
            ),
            self.netlist,
            pi_traces_runs,
            record_nets,
        )

    # ------------------------------------------------------------------
    def open_session(
        self,
        record_nets: list[str] | None = None,
        *,
        guard: float | None = None,
        state: dict | None = None,
        t_cap: float = T_CAP,
        dummy_slope: float = NOMINAL_SLOPE,
        target=None,
    ):
        """Open a streaming session running this compiled program."""
        from repro.core.session import STREAM_GUARD, SigmoidSession

        return SigmoidSession(
            self.netlist,
            compiled_circuit=self,
            record_nets=record_nets,
            guard=STREAM_GUARD if guard is None else guard,
            t_cap=t_cap,
            dummy_slope=dummy_slope,
            state=state,
            target=target,
        )


# ----------------------------------------------------------------------
# Level kernels, shared by the one-shot path and the streaming session.


def nor_merge_masked(
    members: np.ndarray,
    lev0: bool,
    lev1: bool,
    b: np.ndarray,
    a: np.ndarray,
    pin: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, bool, bool]:
    """Masked NOR2 events from a stable-merged slice of pin transitions.

    Mirrors :func:`~repro.core.multi_input.predict_nor_output`'s event
    walk: events arrive merged in (stable, pin-0-first) time order, each
    pin's level is tracked from the transition polarity starting at the
    carried ``lev0``/``lev1``, and only the events that flip the NOR
    output are kept — all of which depends on the input traces alone,
    never on a prediction, so it runs before any model call.  Returns
    the emitted ``(b, a, member)`` arrays plus both pins' end levels
    (the carry for the next streamed slice).
    """
    if b.size == 0:
        return b, a, np.zeros(0, dtype=int), bool(lev0), bool(lev1)
    b, a, pin = b.copy(), a.copy(), pin.copy()
    # Pin-stable near-tie ordering (see MERGE_TIE_EPS): adjacent
    # cross-pin events inside the window bubble to pin 0 first;
    # same-pin events keep their (alternation-mandated) order.
    changed = True
    while changed:
        changed = False
        for i in range(b.size - 1):
            if pin[i] > pin[i + 1] and b[i + 1] - b[i] < MERGE_TIE_EPS:
                for arr in (b, a, pin):
                    arr[i], arr[i + 1] = arr[i + 1], arr[i]
                changed = True
    polarity = a > 0
    index = np.arange(b.size)
    last0 = np.maximum.accumulate(np.where(pin == 0, index, -1))
    last1 = np.maximum.accumulate(np.where(pin == 1, index, -1))
    lev0_arr = np.where(last0 >= 0, polarity[np.maximum(last0, 0)], bool(lev0))
    lev1_arr = np.where(last1 >= 0, polarity[np.maximum(last1, 0)], bool(lev1))
    out = ~(lev0_arr | lev1_arr)
    init_out = not (bool(lev0) or bool(lev1))
    prev = np.concatenate([[init_out], out[:-1]])
    emit = out != prev
    member = members[pin[emit], (~polarity[emit]).astype(int)]
    return (
        b[emit],
        a[emit],
        member,
        bool(lev0_arr[-1]),
        bool(lev1_arr[-1]),
    )


def checked_predict(predict):
    """Wrap a ``(features, members)`` evaluator with the finite check.

    The per-step error contract of the streaming sessions: any
    non-finite model output raises immediately, before the value can
    enter the recurrence.
    """

    def checked(features, members):
        a_raw, delta_b = predict(features, members)
        if not (np.all(np.isfinite(a_raw)) and np.all(np.isfinite(delta_b))):
            raise ModelError("transfer function produced non-finite output")
        return a_raw, delta_b

    return checked


def lockstep_level(
    stack,
    B: np.ndarray,
    A: np.ndarray,
    MEM: np.ndarray,
    counts: np.ndarray,
    s_sign: np.ndarray,
    cancel_vdd: np.ndarray,
    out_a: np.ndarray,
    out_b: np.ndarray,
    n_out: np.ndarray,
    t_cap: float,
    abs_dummy: float,
    prev_a: np.ndarray | None = None,
    prev_b: np.ndarray | None = None,
    exp_sign: np.ndarray | None = None,
    floor: np.ndarray | None = None,
    predict=None,
    feature_buf: np.ndarray | None = None,
) -> None:
    """Algorithm 1 across all lanes, lock-step over transition index.

    Appends into ``out_a``/``out_b`` starting at each lane's ``n_out``
    (mutated in place, like ``prev_a``/``prev_b``/``exp_sign`` when
    passed).  The optional carry arguments resume a lane mid-stream:
    ``prev_a``/``prev_b``/``exp_sign`` seed the recurrence (defaults
    reproduce the dummy seed of a fresh run) and ``floor`` marks how
    many leading output slots are already *released* — the ordering
    snap and pair cancellation still see them, but a cancellation that
    would pop below the floor raises instead of revising history.

    ``predict`` overrides the transfer-function call: a callable
    ``(features, members) -> (a_out, delta_b)``.  The default wraps
    ``stack.predict_members`` with the per-step finiteness check; the
    fused executor passes a raw fused evaluator instead and batches
    that check once per super-level (non-finite rows then propagate as
    NaN through this recurrence, harmlessly, until that check raises).
    ``feature_buf`` is an optional ``(>= n_lanes, 3)`` scratch array
    reused across steps in place of a fresh ``np.stack`` per step.
    """
    if predict is None:
        if stack is None:  # pragma: no cover - guarded by compile
            raise ModelError("compiled circuit has no transfer functions")
        predict = checked_predict(stack.predict_members)
    n_lanes = B.shape[0]
    if prev_a is None:
        prev_a = s_sign * abs_dummy
    if prev_b is None:
        prev_b = np.full(n_lanes, -np.inf)
    if exp_sign is None:
        exp_sign = -s_sign
    if floor is None:
        floor = np.zeros(n_lanes, dtype=int)
    lanes = np.arange(n_lanes)

    # Busiest-first lane order: sorted descending by transition count,
    # the lanes active at step ``j`` are exactly a *prefix*, so the
    # per-step state gathers and scatters below become contiguous
    # slices instead of fancy-index round trips.  Mutated carry arrays
    # are restored to caller order on every exit path (the permutation
    # is pure bookkeeping — per lane the recurrence is unchanged).
    order = np.argsort(-counts, kind="stable")
    if np.array_equal(order, lanes):
        order = None
    else:
        B, A, MEM = B[order], A[order], MEM[order]
        counts = counts[order]
        s_sign = s_sign[order]
        cancel_vdd = cancel_vdd[order]
        caller_arrays = (out_a, out_b, n_out, prev_a, prev_b, exp_sign)
        out_a, out_b = out_a[order], out_b[order]
        n_out, prev_a, prev_b = n_out[order], prev_a[order], prev_b[order]
        exp_sign = exp_sign[order]
        floor = floor[order]

    try:
        _lockstep_sorted(
            B, A, MEM, counts, s_sign, cancel_vdd, out_a, out_b, n_out,
            t_cap, abs_dummy, prev_a, prev_b, exp_sign, floor, predict,
            feature_buf, lanes,
        )
    finally:
        if order is not None:
            rank = np.empty(n_lanes, dtype=np.intp)
            rank[order] = lanes
            for dst, src in zip(caller_arrays, (
                out_a, out_b, n_out, prev_a, prev_b, exp_sign
            )):
                dst[:] = src[rank]


def _lockstep_sorted(
    B, A, MEM, counts, s_sign, cancel_vdd, out_a, out_b, n_out,
    t_cap, abs_dummy, prev_a, prev_b, exp_sign, floor, predict,
    feature_buf, lanes,
) -> None:
    """:func:`lockstep_level` body over busiest-first-ordered lanes."""
    neg_counts = -counts

    for j in range(B.shape[1]):
        # Lanes with counts > j form the leading prefix.
        na = int(np.searchsorted(neg_counts, -j, side="left"))
        if na == 0:
            break
        idx = lanes[:na]
        b_in = B[:na, j]
        a_in = A[:na, j]
        T = np.minimum(b_in - prev_b[:na], t_cap)
        if feature_buf is not None:
            features = feature_buf[:na]
            features[:, 0] = T
            features[:, 1] = prev_a[:na]
            features[:, 2] = a_in
        else:
            features = np.stack([T, prev_a[:na], a_in], axis=1)
        e_sign = exp_sign[:na]
        a_raw, delta_b = predict(features, MEM[:na, j])
        a_out = e_sign * np.abs(a_raw)
        b_out = b_in + delta_b

        # Ordering snap: a prediction jumping before its predecessor
        # lands just after it (same 1e-6 nudge as the interpreter).
        cnt = n_out[:na]  # prefix view; incremented in place below
        has_prev = cnt > 0
        last_slot = np.maximum(cnt - 1, 0)
        last_b = np.where(has_prev, out_b[idx, last_slot], -np.inf)
        snap = has_prev & (b_out <= last_b)
        b_out = np.where(snap, last_b + 1e-6, b_out)

        out_a[idx, cnt] = a_out
        out_b[idx, cnt] = b_out
        cnt += 1
        prev_a[:na] = a_out
        prev_b[:na] = b_out
        exp_sign[:na] = -e_sign

        # Sub-threshold cancellation on the freshly closed pair.  The
        # pair's second element is the transition written above, so only
        # its first element needs a gather from the output arrays.
        pair = cnt >= 2
        if pair.any():
            pair_idx = idx[pair]
            slot = cnt[pair] - 2
            crosses = _pair_crosses_split(
                out_a[pair_idx, slot],
                out_b[pair_idx, slot],
                a_out[pair],
                b_out[pair],
                cancel_vdd[pair_idx],
            )
            drop = pair_idx[~crosses]
            if drop.size:
                if np.any(n_out[drop] - 2 < floor[drop]):
                    raise SimulationError(
                        "streaming finality horizon violated: a "
                        "sub-threshold cancellation reached a released "
                        "transition; increase the session guard"
                    )
                n_out[drop] -= 2
                has = n_out[drop] > 0
                slot = np.maximum(n_out[drop] - 1, 0)
                restored_a = np.where(
                    has, out_a[drop, slot], s_sign[drop] * abs_dummy
                )
                restored_b = np.where(has, out_b[drop, slot], -np.inf)
                prev_a[drop] = restored_a
                prev_b[drop] = restored_b
                exp_sign[drop] = -np.sign(restored_a)
