"""Valid-region containment for transfer-function inputs (Sec. IV-B).

ANNs extrapolate arbitrarily outside their training set, and in a circuit
the output of one gate feeds the next, so prediction errors could carry a
query far outside the characterized region and then amplify.  The paper
computes a concave hull of the training inputs ``(T, a_out_prev, a_in)``
and projects out-of-region queries onto it.

Computing a true 3-D concave hull is, as the paper notes, "a delicate
task" (it is not uniquely defined).  Two practical region families are
provided:

* :class:`ConvexHullRegion` — Delaunay-based membership with exact
  nearest-point-on-hull projection.  Slightly larger than the concave
  hull but unambiguous.
* :class:`KNNRegion` — the Moreira-Santos k-nearest-neighbour flavour of
  concavity: a query is valid when its k-th-neighbour distance (in
  feature-scaled space) does not exceed a calibrated radius; invalid
  queries are projected to the nearest training point.  This tracks
  concave training sets more tightly and is the default.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np
from scipy.spatial import ConvexHull, Delaunay, cKDTree

from repro.errors import RegionError


class ValidRegion(Protocol):
    """Membership plus projection onto the region."""

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask for (n, d) query points."""
        ...

    def project(self, points: np.ndarray) -> np.ndarray:
        """Project queries onto the region (valid points pass through)."""
        ...


def _check_points(points: np.ndarray, dim: int | None = None) -> np.ndarray:
    array = np.atleast_2d(np.asarray(points, dtype=float))
    if array.ndim != 2:
        raise RegionError("points must be a 2-D array")
    if dim is not None and array.shape[1] != dim:
        raise RegionError(f"expected {dim}-D points, got {array.shape[1]}-D")
    return array


class KNNRegion:
    """k-NN concave region with nearest-training-point projection.

    Distances are measured after per-feature standardization so the
    heterogeneous TOM features (time differences vs slopes) contribute
    comparably.  The validity radius is the ``radius_quantile`` of the
    training points' own k-th-neighbour distances times ``margin``.
    """

    def __init__(
        self,
        training_points: np.ndarray,
        k: int = 5,
        radius_quantile: float = 0.98,
        margin: float = 1.5,
    ) -> None:
        points = _check_points(training_points)
        if points.shape[0] < k + 1:
            raise RegionError(f"need at least {k + 1} training points")
        self.dim = points.shape[1]
        self.k = k
        self._mean = points.mean(axis=0)
        std = points.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        self._scaled = (points - self._mean) / self._std
        self._points = points
        self._tree = cKDTree(self._scaled)
        own_dists, _ = self._tree.query(self._scaled, k=k + 1)
        self.radius = float(np.quantile(own_dists[:, k], radius_quantile) * margin)
        if self.radius <= 0:
            raise RegionError("degenerate training set (zero radius)")

    def _scale(self, points: np.ndarray) -> np.ndarray:
        return (points - self._mean) / self._std

    def contains(self, points: np.ndarray) -> np.ndarray:
        queries = self._scale(_check_points(points, self.dim))
        dists, _ = self._tree.query(queries, k=self.k)
        kth = dists[:, -1] if self.k > 1 else dists
        return np.asarray(kth) <= self.radius

    def project(self, points: np.ndarray) -> np.ndarray:
        queries = _check_points(points, self.dim)
        inside = self.contains(queries)
        if np.all(inside):
            return queries
        result = queries.copy()
        scaled = self._scale(queries[~inside])
        _, nearest = self._tree.query(scaled, k=1)
        result[~inside] = self._points[np.atleast_1d(nearest)]
        return result

    def to_dict(self) -> dict:
        return {
            "kind": "knn",
            "points": self._points.tolist(),
            "k": self.k,
            "radius": self.radius,
            "mean": self._mean.tolist(),
            "std": self._std.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KNNRegion":
        region = cls.__new__(cls)
        points = np.asarray(data["points"], dtype=float)
        region._points = points
        region.dim = points.shape[1]
        region.k = int(data["k"])
        region._mean = np.asarray(data["mean"], dtype=float)
        region._std = np.asarray(data["std"], dtype=float)
        region._scaled = (points - region._mean) / region._std
        region._tree = cKDTree(region._scaled)
        region.radius = float(data["radius"])
        return region


class ConvexHullRegion:
    """Convex-hull membership with exact projection onto the hull surface."""

    def __init__(self, training_points: np.ndarray) -> None:
        points = _check_points(training_points)
        if points.shape[0] < points.shape[1] + 1:
            raise RegionError("not enough points for a full-dimensional hull")
        self.dim = points.shape[1]
        self._points = points
        try:
            self._delaunay = Delaunay(points)
            self._hull = ConvexHull(points)
        except Exception as exc:
            raise RegionError(f"degenerate training set: {exc}") from exc
        # Facet vertex coordinates, (n_facets, d, d).
        self._facets = points[self._hull.simplices]

    def contains(self, points: np.ndarray) -> np.ndarray:
        queries = _check_points(points, self.dim)
        return self._delaunay.find_simplex(queries) >= 0

    def project(self, points: np.ndarray) -> np.ndarray:
        queries = _check_points(points, self.dim)
        inside = self.contains(queries)
        if np.all(inside):
            return queries
        result = queries.copy()
        for i in np.nonzero(~inside)[0]:
            result[i] = self._project_single(queries[i])
        return result

    def _project_single(self, query: np.ndarray) -> np.ndarray:
        best = None
        best_dist = np.inf
        for facet in self._facets:
            candidate = _closest_point_on_simplex(query, facet)
            dist = float(np.linalg.norm(candidate - query))
            if dist < best_dist:
                best_dist = dist
                best = candidate
        return best

    def to_dict(self) -> dict:
        return {"kind": "convex", "points": self._points.tolist()}

    @classmethod
    def from_dict(cls, data: dict) -> "ConvexHullRegion":
        return cls(np.asarray(data["points"], dtype=float))


def region_from_dict(data: dict):
    """Rebuild a region serialized by either class."""
    kind = data.get("kind")
    if kind == "knn":
        return KNNRegion.from_dict(data)
    if kind == "convex":
        return ConvexHullRegion.from_dict(data)
    raise RegionError(f"unknown region kind {kind!r}")


def _closest_point_on_simplex(query: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """Closest point on a (d-1)-simplex embedded in R^d.

    Solves the small constrained least-squares problem over barycentric
    coordinates by active-set enumeration (facets here have at most three
    vertices for 3-D hulls, so enumeration is cheap and exact).
    """
    n = vertices.shape[0]
    best = None
    best_dist = np.inf
    # Enumerate all non-empty vertex subsets; project onto each affine
    # hull and keep feasible (all-nonnegative barycentric) candidates.
    for mask in range(1, 2**n):
        subset = vertices[[i for i in range(n) if mask >> i & 1]]
        base = subset[0]
        if subset.shape[0] == 1:
            candidate = base
        else:
            directions = subset[1:] - base
            gram = directions @ directions.T
            rhs = directions @ (query - base)
            try:
                coefficients = np.linalg.solve(gram, rhs)
            except np.linalg.LinAlgError:
                continue
            if np.any(coefficients < -1e-12) or coefficients.sum() > 1 + 1e-12:
                continue
            candidate = base + coefficients @ directions
        dist = float(np.linalg.norm(candidate - query))
        if dist < best_dist:
            best_dist = dist
            best = candidate
    return best
