"""Valid-region containment for transfer-function inputs (Sec. IV-B).

ANNs extrapolate arbitrarily outside their training set, and in a circuit
the output of one gate feeds the next, so prediction errors could carry a
query far outside the characterized region and then amplify.  The paper
computes a concave hull of the training inputs ``(T, a_out_prev, a_in)``
and projects out-of-region queries onto it.

Computing a true 3-D concave hull is, as the paper notes, "a delicate
task" (it is not uniquely defined).  Two practical region families are
provided:

* :class:`ConvexHullRegion` — Delaunay-based membership with exact
  nearest-point-on-hull projection.  Slightly larger than the concave
  hull but unambiguous.
* :class:`KNNRegion` — the Moreira-Santos k-nearest-neighbour flavour of
  concavity: a query is valid when its k-th-neighbour distance (in
  feature-scaled space) does not exceed a calibrated radius; invalid
  queries are projected to the nearest training point.  This tracks
  concave training sets more tightly and is the default.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np
from scipy.spatial import ConvexHull, Delaunay, cKDTree

from repro.errors import RegionError


class ValidRegion(Protocol):
    """Membership plus projection onto the region."""

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask for (n, d) query points."""
        ...

    def project(self, points: np.ndarray) -> np.ndarray:
        """Project queries onto the region (valid points pass through)."""
        ...


def _check_points(points: np.ndarray, dim: int | None = None) -> np.ndarray:
    array = np.atleast_2d(np.asarray(points, dtype=float))
    if array.ndim != 2:
        raise RegionError("points must be a 2-D array")
    if dim is not None and array.shape[1] != dim:
        raise RegionError(f"expected {dim}-D points, got {array.shape[1]}-D")
    return array


class KNNRegion:
    """k-NN concave region with nearest-training-point projection.

    Distances are measured after per-feature standardization so the
    heterogeneous TOM features (time differences vs slopes) contribute
    comparably.  The validity radius is the ``radius_quantile`` of the
    training points' own k-th-neighbour distances times ``margin``.
    """

    def __init__(
        self,
        training_points: np.ndarray,
        k: int = 5,
        radius_quantile: float = 0.98,
        margin: float = 1.5,
    ) -> None:
        points = _check_points(training_points)
        if points.shape[0] < k + 1:
            raise RegionError(f"need at least {k + 1} training points")
        self.dim = points.shape[1]
        self.k = k
        self._mean = points.mean(axis=0)
        std = points.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        self._scaled = (points - self._mean) / self._std
        self._points = points
        self._tree = cKDTree(self._scaled)
        own_dists, _ = self._tree.query(self._scaled, k=k + 1)
        self.radius = float(np.quantile(own_dists[:, k], radius_quantile) * margin)
        if self.radius <= 0:
            raise RegionError("degenerate training set (zero radius)")

    def _scale(self, points: np.ndarray) -> np.ndarray:
        return (points - self._mean) / self._std

    def contains(self, points: np.ndarray) -> np.ndarray:
        queries = self._scale(_check_points(points, self.dim))
        dists, _ = self._tree.query(queries, k=self.k)
        kth = dists[:, -1] if self.k > 1 else dists
        return np.asarray(kth) <= self.radius

    def project(self, points: np.ndarray) -> np.ndarray:
        queries = _check_points(points, self.dim)
        inside = self.contains(queries)
        if np.all(inside):
            return queries
        result = queries.copy()
        scaled = self._scale(queries[~inside])
        _, nearest = self._tree.query(scaled, k=1)
        result[~inside] = self._points[np.atleast_1d(nearest)]
        return result

    def to_dict(self) -> dict:
        return {
            "kind": "knn",
            "points": self._points.tolist(),
            "k": self.k,
            "radius": self.radius,
            "mean": self._mean.tolist(),
            "std": self._std.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KNNRegion":
        region = cls.__new__(cls)
        points = np.asarray(data["points"], dtype=float)
        region._points = points
        region.dim = points.shape[1]
        region.k = int(data["k"])
        region._mean = np.asarray(data["mean"], dtype=float)
        region._std = np.asarray(data["std"], dtype=float)
        region._scaled = (points - region._mean) / region._std
        region._tree = cKDTree(region._scaled)
        region.radius = float(data["radius"])
        return region


#: Member-axis offset appended as an extra KD-tree coordinate when many
#: members' regions are merged into one tree.  Scaled feature
#: coordinates are O(1), validity radii are O(1), so 1e6 guarantees the
#: k nearest neighbours of any query are always points of the query's
#: own member while the appended coordinate contributes an exact 0.0 to
#: same-member squared distances (bitwise-identical kth distances).
_MEMBER_SEP = 1e6

#: Voxel-certificate grid over the scaled feature space (per-axis
#: resolution).  Cells are certified lazily — one k-NN query at the
#: center of each *visited* cell — so the cost is proportional to the
#: trajectory's footprint, never to the full grid volume.
_GRID_RES = 48

#: Cell certificate codes.
_CELL_NEW = 0  # never visited
_CELL_INSIDE = 1  # whole cell certified inside its member's region
_CELL_OUTSIDE = 2  # whole cell certified outside
_CELL_BAND = 3  # boundary band: rows here take the exact tree query


class MergedKNNRegions:
    """Many members' :class:`KNNRegion`\\ s fused into one KD-tree.

    The compiled fused kernels evaluate all stacked members in one call,
    so per-member ``region.project`` dispatch would reintroduce the
    python loop they exist to remove.  This class concatenates every
    member's *scaled* training points into a single tree, appending a
    fourth coordinate ``member * _MEMBER_SEP`` to both points and
    queries: same-member distances are bitwise-unchanged, cross-member
    distances are ~1e6, so containment decisions and nearest-projection
    targets match the per-member path exactly.

    Built via :meth:`try_build`, which returns ``None`` whenever the
    member regions are not uniformly mergeable (a non-KNN region, or
    mismatched ``k``/dimension) — callers then fall back to the
    per-member path.
    """

    def __init__(self, regions) -> None:
        self._has_region = np.array([r is not None for r in regions], dtype=bool)
        self._all_present = bool(self._has_region.all())
        self._cert = None
        present = [r for r in regions if r is not None]
        if not present:
            self._tree = None
            return
        self.k = present[0].k
        self.dim = present[0].dim
        n_members = len(regions)
        self._means = np.zeros((n_members, self.dim))
        self._stds = np.ones((n_members, self.dim))
        self._radii = np.zeros(n_members)
        self._bbox_lo = np.zeros((n_members, self.dim))
        self._bbox_hi = np.zeros((n_members, self.dim))
        scaled_blocks = []
        point_blocks = []
        member_blocks = []
        for member, region in enumerate(regions):
            if region is None:
                continue
            self._means[member] = region._mean
            self._stds[member] = region._std
            self._radii[member] = region.radius
            self._bbox_lo[member] = region._scaled.min(axis=0)
            self._bbox_hi[member] = region._scaled.max(axis=0)
            scaled_blocks.append(region._scaled)
            point_blocks.append(region._points)
            member_blocks.append(
                np.full(len(region._points), member * _MEMBER_SEP)
            )
        self._inv_stds = 1.0 / self._stds
        merged = np.concatenate(
            [
                np.concatenate(scaled_blocks, axis=0),
                np.concatenate(member_blocks)[:, None],
            ],
            axis=1,
        )
        self._points = np.concatenate(point_blocks, axis=0)
        self._tree = cKDTree(merged)

    @classmethod
    def try_build(cls, regions) -> "MergedKNNRegions | None":
        """Merge if every present region is a same-``k`` KNNRegion."""
        present = [r for r in regions if r is not None]
        if any(not isinstance(r, KNNRegion) for r in present):
            return None
        if len({(r.k, r.dim) for r in present}) > 1:
            return None
        return cls(regions)

    def _init_grid(self) -> None:
        """Allocate the (empty) per-member voxel certificate grid.

        Each member's grid spans its scaled training bounding box padded
        by its radius, so any query landing *off* the grid is farther
        than the radius from every training point — certified outside
        with no state at all.  Cells certify lazily in
        :meth:`_project_certified`: one k-NN query at the center of each
        visited cell.  A cell is certified inside when the center's k-th
        neighbour distance plus the cell half-diagonal clears the
        radius, outside when the center distance minus the half-diagonal
        exceeds it (the k-th-NN distance is 1-Lipschitz, so both
        certificates hold for *every* query in the cell); the boundary
        band keeps the exact per-row tree query.  Certified decisions
        therefore match the tree decisions exactly — this grid is a
        cache, not an approximation.
        """
        G = _GRID_RES
        pad = self._radii[:, None] + 1e-9
        lo = self._bbox_lo - pad
        span = np.maximum(self._bbox_hi + pad - lo, 1e-300)
        h = span / G
        self._grid_lo = lo
        self._grid_h = h
        inv_h = 1.0 / h
        self._half_diag = 0.5 * np.sqrt(np.sum(h * h, axis=1))
        # Folded cell-coordinate affine: the fractional cell index of an
        # *unscaled* row is ``row * _cell_mul[m] - _cell_off[m]`` (the
        # feature scaling and the grid origin collapse into one
        # multiply-subtract on the hot path).
        self._cell_mul = self._inv_stds * inv_h
        self._cell_off = (self._means * self._inv_stds + lo) * inv_h
        # The grid carries a one-cell border pre-certified *outside*:
        # off-grid rows are farther than the radius pad from every
        # training point, and clamping their (floored) cell index into
        # the border makes them hit that verdict with no range mask.
        # Published last: concurrent projectors only take the grid path
        # once the geometry above is in place (certification of a cell
        # is idempotent, so racing writers stay correct).
        cert = np.full(
            (self._has_region.size,) + (G + 2,) * self.dim,
            _CELL_OUTSIDE,
            dtype=np.int8,
        )
        cert[(slice(None),) + (slice(1, G + 1),) * self.dim] = _CELL_NEW
        self._cert = cert

    def _certify_cells(self, members: np.ndarray, cells: np.ndarray) -> None:
        """Certify the (deduplicated) cells via one batched center query.

        ``cells`` are border-padded indices (interior cell ``c`` lives at
        index ``c + 1``), exactly as gathered on the hot path.
        """
        G = _GRID_RES + 2
        flat = members
        for axis in range(self.dim):
            flat = flat * G + cells[:, axis]
        uniq, first = np.unique(flat, return_index=True)
        u_members = members[first]
        u_cells = cells[first]
        centers = self._grid_lo[u_members] + (u_cells - 0.5) * self._grid_h[
            u_members
        ]
        queries = np.empty((uniq.size, self.dim + 1))
        queries[:, : self.dim] = centers
        queries[:, self.dim] = u_members * _MEMBER_SEP
        dists, _ = self._tree.query(queries, k=self.k)
        kth = dists[:, -1] if self.k > 1 else np.atleast_1d(dists)
        radius = self._radii[u_members]
        half_diag = self._half_diag[u_members]
        code = np.where(
            kth + half_diag <= radius,
            np.int8(_CELL_INSIDE),
            np.where(
                kth - half_diag > radius,
                np.int8(_CELL_OUTSIDE),
                np.int8(_CELL_BAND),
            ),
        )
        self._cert[(u_members,) + tuple(u_cells.T)] = code

    def _project_certified(self, rows: np.ndarray, members: np.ndarray):
        """Grid-accelerated :meth:`project` (all members present)."""
        # Fractional cell index straight from the unscaled rows (one
        # multiply-subtract); floor-then-clamp lands off-grid rows in
        # the pre-certified outside border, so no range mask is needed.
        cell = np.clip(
            np.floor(rows * self._cell_mul[members] - self._cell_off[members]),
            -1.0,
            _GRID_RES,
        ).astype(np.intp)
        cell += 1
        cix = (members,) + tuple(cell.T)
        cert = self._cert[cix]
        new = cert == _CELL_NEW
        if new.any():
            self._certify_cells(members[new], cell[new])
            cert[new] = self._cert[(members[new],) + tuple(cell[new].T)]
        hot = cert != _CELL_INSIDE
        if not hot.any():  # every row certified inside
            return rows
        # One exact k-NN batch serves both remaining kinds of row: band
        # rows need the k-th distance for the containment verdict,
        # certified-outside rows only the first neighbour (their
        # projection target); both fall out of the same query.
        hidx = np.nonzero(hot)[0]
        h_members = members[hidx]
        h_rows = rows[hidx]
        queries = np.empty((hidx.size, self.dim + 1))
        queries[:, : self.dim] = (
            h_rows - self._means[h_members]
        ) * self._inv_stds[h_members]
        queries[:, self.dim] = h_members * _MEMBER_SEP
        dists, nbrs = self._tree.query(queries, k=self.k)
        if self.k > 1:
            kth = dists[:, -1]
            first = nbrs[:, 0]
        else:
            kth = np.atleast_1d(dists)
            first = np.atleast_1d(nbrs)
        out = (cert[hidx] == _CELL_OUTSIDE) | (kth > self._radii[h_members])
        if not out.any():
            return rows
        result = rows.copy()
        result[hidx[out]] = self._points[first[out]]
        return result

    def project(self, rows: np.ndarray, members: np.ndarray) -> np.ndarray:
        """Project each row onto its member's region (finite rows only)."""
        if self._tree is None:
            return rows
        if self._all_present:
            if self._cert is None:
                self._init_grid()
            return self._project_certified(rows, members)
        idx = np.nonzero(self._has_region[members])[0]
        if idx.size == 0:
            return rows
        sub_members = members[idx]
        queries = np.empty((sub_members.size, self.dim + 1))
        sub_rows = rows[idx]
        queries[:, : self.dim] = (sub_rows - self._means[sub_members]) / self._stds[
            sub_members
        ]
        queries[:, self.dim] = sub_members * _MEMBER_SEP
        # One k-NN query decides containment (k-th distance vs radius)
        # AND carries the projection target (the first neighbour is the
        # nearest training point) — no second query needed.
        dists, nbrs = self._tree.query(queries, k=self.k)
        if self.k > 1:
            kth = dists[:, -1]
            nearest = nbrs[:, 0]
        else:
            kth = dists
            nearest = nbrs
        outside = np.asarray(kth) > self._radii[sub_members]
        if not np.any(outside):
            return rows
        result = rows.copy()
        result[idx[outside]] = self._points[np.atleast_1d(nearest[outside])]
        return result


class ConvexHullRegion:
    """Convex-hull membership with exact projection onto the hull surface."""

    def __init__(self, training_points: np.ndarray) -> None:
        points = _check_points(training_points)
        if points.shape[0] < points.shape[1] + 1:
            raise RegionError("not enough points for a full-dimensional hull")
        self.dim = points.shape[1]
        self._points = points
        try:
            self._delaunay = Delaunay(points)
            self._hull = ConvexHull(points)
        except Exception as exc:
            raise RegionError(f"degenerate training set: {exc}") from exc
        # Facet vertex coordinates, (n_facets, d, d).
        self._facets = points[self._hull.simplices]

    def contains(self, points: np.ndarray) -> np.ndarray:
        queries = _check_points(points, self.dim)
        return self._delaunay.find_simplex(queries) >= 0

    def project(self, points: np.ndarray) -> np.ndarray:
        queries = _check_points(points, self.dim)
        inside = self.contains(queries)
        if np.all(inside):
            return queries
        result = queries.copy()
        for i in np.nonzero(~inside)[0]:
            result[i] = self._project_single(queries[i])
        return result

    def _project_single(self, query: np.ndarray) -> np.ndarray:
        best = None
        best_dist = np.inf
        for facet in self._facets:
            candidate = _closest_point_on_simplex(query, facet)
            dist = float(np.linalg.norm(candidate - query))
            if dist < best_dist:
                best_dist = dist
                best = candidate
        return best

    def to_dict(self) -> dict:
        return {"kind": "convex", "points": self._points.tolist()}

    @classmethod
    def from_dict(cls, data: dict) -> "ConvexHullRegion":
        return cls(np.asarray(data["points"], dtype=float))


def region_from_dict(data: dict):
    """Rebuild a region serialized by either class."""
    kind = data.get("kind")
    if kind == "knn":
        return KNNRegion.from_dict(data)
    if kind == "convex":
        return ConvexHullRegion.from_dict(data)
    raise RegionError(f"unknown region kind {kind!r}")


def _closest_point_on_simplex(query: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """Closest point on a (d-1)-simplex embedded in R^d.

    Solves the small constrained least-squares problem over barycentric
    coordinates by active-set enumeration (facets here have at most three
    vertices for 3-D hulls, so enumeration is cheap and exact).
    """
    n = vertices.shape[0]
    best = None
    best_dist = np.inf
    # Enumerate all non-empty vertex subsets; project onto each affine
    # hull and keep feasible (all-nonnegative barycentric) candidates.
    for mask in range(1, 2**n):
        subset = vertices[[i for i in range(n) if mask >> i & 1]]
        base = subset[0]
        if subset.shape[0] == 1:
            candidate = base
        else:
            directions = subset[1:] - base
            gram = directions @ directions.T
            rhs = directions @ (query - base)
            try:
                coefficients = np.linalg.solve(gram, rhs)
            except np.linalg.LinAlgError:
                continue
            if np.any(coefficients < -1e-12) or coefficients.sum() > 1 + 1e-12:
                continue
            candidate = base + coefficients @ directions
        dist = float(np.linalg.norm(candidate - query))
        if dist < best_dist:
            best_dist = dist
            best = candidate
    return best
