"""Table-based transfer-function alternatives.

The paper mentions generating "interpolation polynomials, splines, and
look-up-tables for comparison purposes" from the same characterization
data (Sec. IV-A).  These implementations plug into Algorithm 1 through the
same :class:`~repro.core.tom.TransferFunction` protocol, enabling the
ANN-vs-table ablation benches.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import LinearNDInterpolator, NearestNDInterpolator, RBFInterpolator

from repro.errors import ModelError


class LUTTransferFunction:
    """Scattered-data look-up table with linear interpolation.

    Inside the convex hull of the training features, prediction is
    barycentric-linear; outside, it falls back to nearest-neighbour
    (mirroring how tabular delay models clamp at their corners).
    """

    def __init__(self, features: np.ndarray, slopes: np.ndarray, delays: np.ndarray):
        features = np.atleast_2d(np.asarray(features, dtype=float))
        slopes = np.asarray(slopes, dtype=float).ravel()
        delays = np.asarray(delays, dtype=float).ravel()
        if features.shape[0] != slopes.size or slopes.size != delays.size:
            raise ModelError("feature/target row counts differ")
        if features.shape[0] < features.shape[1] + 1:
            raise ModelError("need at least d+1 samples")
        self._linear_slope = LinearNDInterpolator(features, slopes)
        self._linear_delay = LinearNDInterpolator(features, delays)
        self._nearest_slope = NearestNDInterpolator(features, slopes)
        self._nearest_delay = NearestNDInterpolator(features, delays)

    def predict(self, T: float, a_out_prev: float, a_in: float) -> tuple[float, float]:
        query = np.array([[T, a_out_prev, a_in]])
        slope = self._linear_slope(query)[0]
        delay = self._linear_delay(query)[0]
        if not np.isfinite(slope):
            slope = self._nearest_slope(query)[0]
        if not np.isfinite(delay):
            delay = self._nearest_delay(query)[0]
        return float(slope), float(delay)


class PolynomialTransferFunction:
    """Multivariate polynomial least-squares fit of a fixed total degree."""

    def __init__(
        self,
        features: np.ndarray,
        slopes: np.ndarray,
        delays: np.ndarray,
        degree: int = 3,
    ) -> None:
        if degree < 1:
            raise ModelError("degree must be >= 1")
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != 3:
            raise ModelError("expects 3 features")
        self.degree = degree
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0] = 1.0
        self._std = std
        design = self._design((features - self._mean) / self._std)
        if design.shape[0] < design.shape[1]:
            raise ModelError("not enough samples for the polynomial degree")
        self._coef_slope, *_ = np.linalg.lstsq(
            design, np.asarray(slopes, dtype=float).ravel(), rcond=None
        )
        self._coef_delay, *_ = np.linalg.lstsq(
            design, np.asarray(delays, dtype=float).ravel(), rcond=None
        )

    def _design(self, x: np.ndarray) -> np.ndarray:
        columns = []
        for i in range(self.degree + 1):
            for j in range(self.degree + 1 - i):
                for k in range(self.degree + 1 - i - j):
                    columns.append(x[:, 0] ** i * x[:, 1] ** j * x[:, 2] ** k)
        return np.column_stack(columns)

    def predict(self, T: float, a_out_prev: float, a_in: float) -> tuple[float, float]:
        x = (np.array([[T, a_out_prev, a_in]]) - self._mean) / self._std
        design = self._design(x)
        return (
            float((design @ self._coef_slope)[0]),
            float((design @ self._coef_delay)[0]),
        )


class RBFTransferFunction:
    """Thin-plate-spline radial-basis interpolation (the "splines" entry)."""

    def __init__(
        self,
        features: np.ndarray,
        slopes: np.ndarray,
        delays: np.ndarray,
        max_points: int = 600,
        smoothing: float = 1e-8,
        seed: int = 0,
    ) -> None:
        features = np.atleast_2d(np.asarray(features, dtype=float))
        slopes = np.asarray(slopes, dtype=float).ravel()
        delays = np.asarray(delays, dtype=float).ravel()
        if features.shape[0] != slopes.size:
            raise ModelError("feature/target row counts differ")
        if features.shape[0] > max_points:
            rng = np.random.default_rng(seed)
            idx = rng.choice(features.shape[0], size=max_points, replace=False)
            features, slopes, delays = features[idx], slopes[idx], delays[idx]
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0] = 1.0
        self._std = std
        scaled = (features - self._mean) / self._std
        self._rbf_slope = RBFInterpolator(
            scaled, slopes, kernel="thin_plate_spline", smoothing=smoothing
        )
        self._rbf_delay = RBFInterpolator(
            scaled, delays, kernel="thin_plate_spline", smoothing=smoothing
        )

    def predict(self, T: float, a_out_prev: float, a_in: float) -> tuple[float, float]:
        x = (np.array([[T, a_out_prev, a_in]]) - self._mean) / self._std
        return float(self._rbf_slope(x)[0]), float(self._rbf_delay(x)[0])
