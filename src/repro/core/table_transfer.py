"""Table-based transfer-function alternatives.

The paper mentions generating "interpolation polynomials, splines, and
look-up-tables for comparison purposes" from the same characterization
data (Sec. IV-A).  These implementations plug into Algorithm 1 through the
same :class:`~repro.core.tom.TransferFunction` protocol and, since the
backend-registry refactor, behave exactly like the ANN backend: they
standardize features through the shared
:class:`~repro.core.backends.ScaledTransferModel` base, optionally clamp
queries to the valid region, predict in vectorized batches, and
round-trip through the versioned backend serialization — which is what
enables the per-backend Table-I ablation runs
(``python -m repro.cli table1 --backend {ann,lut,spline,poly}``).
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import (
    LinearNDInterpolator,
    NearestNDInterpolator,
    RBFInterpolator,
)

from repro.core.backends import (
    ScaledTransferModel,
    StackedTransferModel,
    build_region,
    register_backend,
)
from repro.errors import ModelError
from repro.nn.scaling import StandardScaler


class TableStackedTransfer(StackedTransferModel):
    """Stacked scattered-data tables (``lut`` and ``spline`` members).

    The member sample tables are stacked as one concatenated
    ``(sum_k n_k, d)`` feature array plus per-member row offsets —
    scattered-data interpolants have no fixed-shape coefficient block to
    stack, so evaluation stays with each member's own (deterministic)
    interpolator objects, one vectorized call per member per query.
    """

    def __init__(self, models: list) -> None:
        super().__init__(models)
        self.sample_offsets = np.concatenate(
            [[0], np.cumsum([m._features.shape[0] for m in models])]
        )

    # The concatenated views are introspection-only (evaluation stays
    # with the member interpolators), so they materialize on demand
    # instead of doubling the table memory of every cached compilation.
    @property
    def sample_features(self) -> np.ndarray:
        return np.concatenate([m._features for m in self.models], axis=0)

    @property
    def sample_slopes(self) -> np.ndarray:
        return np.concatenate([m._slopes for m in self.models])

    @property
    def sample_delays(self) -> np.ndarray:
        return np.concatenate([m._delays for m in self.models])


class PolyStackedTransfer(StackedTransferModel):
    """Stacked polynomial members: one ``(K, n_terms)`` block per target.

    Members whose degree differs from the first member's keep their own
    coefficient vectors and fall back to the member model; uniform
    members evaluate ``design @ coef[k]`` on the stacked blocks — the
    same matmul :meth:`PolynomialTransferFunction._predict_scaled` runs.
    """

    def __init__(self, models: list) -> None:
        super().__init__(models)
        self.degree = models[0].degree
        self._uniform = np.array([m.degree == self.degree for m in models])
        template = models[int(np.argmax(self._uniform))]
        self.coef_slope = np.stack(
            [
                m._coef_slope
                if u
                else np.zeros_like(template._coef_slope)
                for m, u in zip(models, self._uniform)
            ]
        )
        self.coef_delay = np.stack(
            [
                m._coef_delay
                if u
                else np.zeros_like(template._coef_delay)
                for m, u in zip(models, self._uniform)
            ]
        )

    def _predict_scaled_member(
        self, member: int, scaled: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if not self._uniform[member]:
            return self.models[member]._predict_scaled(scaled)
        design = self.models[member]._design(scaled)
        return design @ self.coef_slope[member], design @ self.coef_delay[member]


def _check_training_arrays(
    features: np.ndarray, slopes: np.ndarray, delays: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    features = np.atleast_2d(np.asarray(features, dtype=float))
    slopes = np.asarray(slopes, dtype=float).ravel()
    delays = np.asarray(delays, dtype=float).ravel()
    if features.shape[0] != slopes.size or slopes.size != delays.size:
        raise ModelError("feature/target row counts differ")
    return features, slopes, delays


@register_backend("lut")
class LUTTransferFunction(ScaledTransferModel):
    """Scattered-data look-up table with linear interpolation.

    Inside the convex hull of the (standardized) training features,
    prediction is barycentric-linear; outside, it falls back to
    nearest-neighbour (mirroring how tabular delay models clamp at their
    corners).
    """

    def __init__(
        self,
        features: np.ndarray,
        slopes: np.ndarray,
        delays: np.ndarray,
        region=None,
    ) -> None:
        features, slopes, delays = _check_training_arrays(
            features, slopes, delays
        )
        if features.shape[0] < features.shape[1] + 1:
            raise ModelError("need at least d+1 samples")
        super().__init__(StandardScaler().fit(features), region)
        self._features = features
        self._slopes = slopes
        self._delays = delays
        scaled = self.x_scaler.transform(features)
        self._linear_slope = LinearNDInterpolator(scaled, slopes)
        self._linear_delay = LinearNDInterpolator(scaled, delays)
        self._nearest_slope = NearestNDInterpolator(scaled, slopes)
        self._nearest_delay = NearestNDInterpolator(scaled, delays)

    @classmethod
    def from_training_data(
        cls,
        features: np.ndarray,
        slopes: np.ndarray,
        delays: np.ndarray,
        *,
        region_kind: str = "knn",
        config=None,
        seed: int = 0,
    ) -> "LUTTransferFunction":
        del config, seed  # tables have no training loop
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return cls(
            features, slopes, delays, region=build_region(features, region_kind)
        )

    def _predict_scaled(
        self, scaled: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        slope = np.asarray(self._linear_slope(scaled), dtype=float)
        delay = np.asarray(self._linear_delay(scaled), dtype=float)
        bad = ~np.isfinite(slope)
        if bad.any():
            slope[bad] = self._nearest_slope(scaled[bad])
        bad = ~np.isfinite(delay)
        if bad.any():
            delay[bad] = self._nearest_delay(scaled[bad])
        return slope, delay

    @classmethod
    def stack(cls, models: list) -> TableStackedTransfer:
        """Stack LUT members (concatenated sample tables + offsets)."""
        return TableStackedTransfer(models)

    def _payload_dict(self) -> dict:
        return {
            "features": self._features.tolist(),
            "slopes": self._slopes.tolist(),
            "delays": self._delays.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LUTTransferFunction":
        _x_scaler, region = cls._common_from_dict(data)
        # The scaler and triangulation are deterministic functions of the
        # stored samples; rebuilding reproduces them bit for bit.
        return cls(
            np.asarray(data["features"], dtype=float),
            np.asarray(data["slopes"], dtype=float),
            np.asarray(data["delays"], dtype=float),
            region=region,
        )


@register_backend("poly")
class PolynomialTransferFunction(ScaledTransferModel):
    """Multivariate polynomial least-squares fit of a fixed total degree."""

    def __init__(
        self,
        features: np.ndarray,
        slopes: np.ndarray,
        delays: np.ndarray,
        degree: int = 3,
        region=None,
    ) -> None:
        if degree < 1:
            raise ModelError("degree must be >= 1")
        features, slopes, delays = _check_training_arrays(
            features, slopes, delays
        )
        if features.shape[1] != 3:
            raise ModelError("expects 3 features")
        super().__init__(StandardScaler().fit(features), region)
        self.degree = degree
        design = self._design(self.x_scaler.transform(features))
        if design.shape[0] < design.shape[1]:
            raise ModelError("not enough samples for the polynomial degree")
        self._coef_slope, *_ = np.linalg.lstsq(design, slopes, rcond=None)
        self._coef_delay, *_ = np.linalg.lstsq(design, delays, rcond=None)

    @classmethod
    def from_training_data(
        cls,
        features: np.ndarray,
        slopes: np.ndarray,
        delays: np.ndarray,
        *,
        region_kind: str = "knn",
        config=None,
        seed: int = 0,
        degree: int = 3,
    ) -> "PolynomialTransferFunction":
        del config, seed
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return cls(
            features,
            slopes,
            delays,
            degree=degree,
            region=build_region(features, region_kind),
        )

    def _design(self, x: np.ndarray) -> np.ndarray:
        columns = []
        for i in range(self.degree + 1):
            for j in range(self.degree + 1 - i):
                for k in range(self.degree + 1 - i - j):
                    columns.append(x[:, 0] ** i * x[:, 1] ** j * x[:, 2] ** k)
        return np.column_stack(columns)

    def _predict_scaled(
        self, scaled: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        design = self._design(scaled)
        return design @ self._coef_slope, design @ self._coef_delay

    @classmethod
    def stack(cls, models: list) -> PolyStackedTransfer:
        """Stack polynomial members as ``(K, n_terms)`` coefficient blocks."""
        return PolyStackedTransfer(models)

    def _payload_dict(self) -> dict:
        return {
            "degree": self.degree,
            "coef_slope": self._coef_slope.tolist(),
            "coef_delay": self._coef_delay.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PolynomialTransferFunction":
        x_scaler, region = cls._common_from_dict(data)
        model = cls.__new__(cls)
        ScaledTransferModel.__init__(model, x_scaler, region)
        model.degree = int(data["degree"])
        model._coef_slope = np.asarray(data["coef_slope"], dtype=float)
        model._coef_delay = np.asarray(data["coef_delay"], dtype=float)
        return model


@register_backend("spline")
class RBFTransferFunction(ScaledTransferModel):
    """Thin-plate-spline radial-basis interpolation (the "splines" entry)."""

    def __init__(
        self,
        features: np.ndarray,
        slopes: np.ndarray,
        delays: np.ndarray,
        max_points: int = 600,
        smoothing: float = 1e-8,
        seed: int = 0,
        region=None,
    ) -> None:
        features, slopes, delays = _check_training_arrays(
            features, slopes, delays
        )
        if features.shape[0] > max_points:
            rng = np.random.default_rng(seed)
            idx = rng.choice(features.shape[0], size=max_points, replace=False)
            features, slopes, delays = features[idx], slopes[idx], delays[idx]
        super().__init__(StandardScaler().fit(features), region)
        self.max_points = max_points
        self.smoothing = smoothing
        self.seed = seed
        self._features = features
        self._slopes = slopes
        self._delays = delays
        scaled = self.x_scaler.transform(features)
        self._rbf_slope = RBFInterpolator(
            scaled, slopes, kernel="thin_plate_spline", smoothing=smoothing
        )
        self._rbf_delay = RBFInterpolator(
            scaled, delays, kernel="thin_plate_spline", smoothing=smoothing
        )

    @classmethod
    def from_training_data(
        cls,
        features: np.ndarray,
        slopes: np.ndarray,
        delays: np.ndarray,
        *,
        region_kind: str = "knn",
        config=None,
        seed: int = 0,
        max_points: int = 600,
        smoothing: float = 1e-8,
    ) -> "RBFTransferFunction":
        del config
        features = np.atleast_2d(np.asarray(features, dtype=float))
        return cls(
            features,
            slopes,
            delays,
            max_points=max_points,
            smoothing=smoothing,
            seed=seed,
            region=build_region(features, region_kind),
        )

    def _predict_scaled(
        self, scaled: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        return self._rbf_slope(scaled), self._rbf_delay(scaled)

    @classmethod
    def stack(cls, models: list) -> TableStackedTransfer:
        """Stack RBF members (concatenated sample tables + offsets)."""
        return TableStackedTransfer(models)

    def _payload_dict(self) -> dict:
        return {
            "features": self._features.tolist(),
            "slopes": self._slopes.tolist(),
            "delays": self._delays.tolist(),
            "max_points": self.max_points,
            "smoothing": self.smoothing,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RBFTransferFunction":
        _x_scaler, region = cls._common_from_dict(data)
        # The stored samples are already subsampled; the deterministic
        # solve rebuilds the interpolants bit for bit.
        return cls(
            np.asarray(data["features"], dtype=float),
            np.asarray(data["slopes"], dtype=float),
            np.asarray(data["delays"], dtype=float),
            max_points=int(data["max_points"]),
            smoothing=float(data["smoothing"]),
            seed=int(data["seed"]),
            region=region,
        )
