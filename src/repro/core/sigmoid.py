"""Sigmoid building blocks: Eq. 1 and Eq. 2 of the paper.

The single-transition model (Eq. 1) is::

    Fs(t, a, b) = 1 / (1 + exp(-a * (t * 1e10 - b)))

``a`` encodes slope and polarity (``a > 0`` rising), ``b`` the threshold
crossing time in *scaled time* (``tau = t * 1e10``; see
:mod:`repro.constants`).  A waveform with N transitions is the joint model
(Eq. 2): ``VDD * sum_i Fs(t, a_i, b_i)`` minus a rail offset.

Everything here works in scaled time (``tau``); the ``*_value`` wrappers
accept seconds.
"""

from __future__ import annotations

import numpy as np
from scipy.special import expit

from repro.constants import TIME_SCALE, VDD


def sigmoid_tau(tau, a: float, b: float) -> np.ndarray:
    """Eq. 1 evaluated in scaled time: ``1 / (1 + exp(-a (tau - b)))``."""
    tau = np.asarray(tau, dtype=float)
    return expit(a * (tau - b))


def sigmoid_value(t_seconds, a: float, b: float) -> np.ndarray:
    """Eq. 1 evaluated at times in seconds."""
    return sigmoid_tau(np.asarray(t_seconds, dtype=float) * TIME_SCALE, a, b)


def sum_model_tau(
    tau, params: np.ndarray, offset: float, vdd: float = VDD
) -> np.ndarray:
    """Eq. 2 joint model: ``vdd * (sum_i Fs(tau, a_i, b_i) - offset)``.

    ``params`` is an (N, 2) array of rows ``(a_i, b_i)``.  The offset
    removes the rail multiples introduced by summing sigmoids (the paper
    supplies ``FT - k*VDD`` to the fitter for the same reason).
    """
    tau = np.asarray(tau, dtype=float)
    params = np.atleast_2d(np.asarray(params, dtype=float))
    total = np.zeros_like(tau)
    for a, b in params:
        total = total + expit(a * (tau - b))
    return vdd * (total - offset)


def sum_model_jacobian_tau(
    tau, params: np.ndarray, vdd: float = VDD
) -> np.ndarray:
    """Jacobian of :func:`sum_model_tau` w.r.t. the packed parameter vector.

    Returns shape ``(len(tau), 2 N)`` with columns ordered
    ``[a_1, b_1, a_2, b_2, ...]``:

    * ``d/da_i = vdd * s_i (1 - s_i) (tau - b_i)``
    * ``d/db_i = -vdd * a_i s_i (1 - s_i)``
    """
    tau = np.asarray(tau, dtype=float)
    params = np.atleast_2d(np.asarray(params, dtype=float))
    jac = np.empty((tau.size, 2 * params.shape[0]))
    for i, (a, b) in enumerate(params):
        s = expit(a * (tau - b))
        core = s * (1.0 - s)
        jac[:, 2 * i] = vdd * core * (tau - b)
        jac[:, 2 * i + 1] = -vdd * a * core
    return jac


def sum_model_tau_stacked(
    tau: np.ndarray, params: np.ndarray, offset: np.ndarray, vdd: float = VDD
) -> np.ndarray:
    """Eq. 2 over a stack of independent problems in one call.

    ``tau`` is ``(B, M)`` (each row its own fit grid), ``params`` is
    ``(B, N, 2)`` and ``offset`` is ``(B,)``.  Row ``k`` of the result is
    bit-identical to ``sum_model_tau(tau[k], params[k], offset[k])``: the
    transitions accumulate in the same index order and every operation is
    elementwise, so stacking never changes the arithmetic.
    """
    tau = np.asarray(tau, dtype=float)
    params = np.asarray(params, dtype=float)
    offset = np.asarray(offset, dtype=float)
    total = np.zeros_like(tau)
    for i in range(params.shape[1]):
        a = params[:, i, 0][:, None]
        b = params[:, i, 1][:, None]
        total = total + expit(a * (tau - b))
    return vdd * (total - offset[:, None])


def sum_model_jacobian_tau_stacked(
    tau: np.ndarray, params: np.ndarray, vdd: float = VDD
) -> np.ndarray:
    """Stacked Jacobians of :func:`sum_model_tau_stacked`.

    Returns ``(B, M, 2 N)`` with the same column order as
    :func:`sum_model_jacobian_tau`; row ``k`` is bit-identical to the
    scalar Jacobian of problem ``k``.
    """
    tau = np.asarray(tau, dtype=float)
    params = np.asarray(params, dtype=float)
    n_problems, n_times = tau.shape
    jac = np.empty((n_problems, n_times, 2 * params.shape[1]))
    for i in range(params.shape[1]):
        a = params[:, i, 0][:, None]
        b = params[:, i, 1][:, None]
        s = expit(a * (tau - b))
        core = s * (1.0 - s)
        jac[:, :, 2 * i] = vdd * core * (tau - b)
        jac[:, :, 2 * i + 1] = -vdd * a * core
    return jac


def transition_width_tau(a: float, lo: float = 0.1, hi: float = 0.9) -> float:
    """Duration (scaled time) a sigmoid spends between ``lo`` and ``hi``.

    For the logistic this is ``ln(hi(1-lo)/(lo(1-hi))) / |a|``
    (≈ 4.39/|a| for 10-90%).
    """
    if a == 0:
        raise ValueError("slope parameter must be nonzero")
    span = np.log(hi * (1 - lo) / (lo * (1 - hi)))
    return float(span / abs(a))


def slope_param_from_slew(slew_v_per_s: float, vdd: float = VDD) -> float:
    """Invert the mid-crossing derivative to a slope parameter.

    At the crossing ``dV/dt = vdd * a * TIME_SCALE / 4``, so
    ``a = 4 * slew / (vdd * TIME_SCALE)`` (sign preserved).
    """
    return 4.0 * slew_v_per_s / (vdd * TIME_SCALE)
