"""ANN implementation of the TOM transfer functions (Sec. IV).

Each polarity's transfer function is realized by **two** MLPs — one
predicting the output slope ``a_out``, one the output delay
``delta_b = b_out - b_in`` — so a single-input gate needs four ANNs, as in
the paper (Fig. 2).  Each network is the paper's architecture: two hidden
layers of 10 neurons and one of 5, ReLU everywhere (built by
:func:`repro.nn.mlp.paper_architecture`).

The class registers as the ``"ann"`` backend (the default) and inherits
the shared valid-region / feature-scaling plumbing from
:class:`~repro.core.backends.ScaledTransferModel`; construction from raw
characterization data trains both networks through the vectorized
:func:`~repro.nn.ensemble.train_ensemble` (a two-member ensemble — the
full-zoo path stacks every channel's networks into one ensemble, see
:mod:`repro.characterization.train_gate`).
"""

from __future__ import annotations

import numpy as np

from repro.core.backends import (
    ScaledTransferModel,
    StackedTransferModel,
    backend_from_dict,
    backend_to_dict,
    build_region,
    register_backend,
)
from repro.core.valid_region import MergedKNNRegions
from repro.errors import ModelError
from repro.nn.ensemble import MLPEnsemble, train_ensemble
from repro.nn.io import mlp_from_dict, mlp_to_dict
from repro.nn.mlp import MLP, PAPER_LAYER_SIZES
from repro.nn.scaling import StandardScaler


def ann_init_seeds(base_seed: int) -> tuple[int, int]:
    """The (slope, delay) weight-init seed convention of one polarity."""
    return base_seed, base_seed + 1


def prepare_channel_arrays(
    features: np.ndarray, slopes: np.ndarray, delays: np.ndarray
) -> dict:
    """Fit one polarity's scalers and standardize features/targets.

    The single source of the scaling convention shared by the
    per-polarity :meth:`ANNTransferFunction.fit` path and the
    whole-zoo job collector in
    :mod:`repro.characterization.train_gate`.
    """
    features = np.atleast_2d(np.asarray(features, dtype=float))
    slopes = np.asarray(slopes, dtype=float).reshape(-1, 1)
    delays = np.asarray(delays, dtype=float).reshape(-1, 1)
    x_scaler = StandardScaler().fit(features)
    y_slope_scaler = StandardScaler().fit(slopes)
    y_delay_scaler = StandardScaler().fit(delays)
    return {
        "features": features,
        "x_scaler": x_scaler,
        "y_slope_scaler": y_slope_scaler,
        "y_delay_scaler": y_delay_scaler,
        "x": x_scaler.transform(features),
        "y_slope": y_slope_scaler.transform(slopes),
        "y_delay": y_delay_scaler.transform(delays),
    }


class ANNStackedTransfer(StackedTransferModel):
    """Stacked ANN transfer functions: MLPEnsemble-style parameter views.

    Both networks of every member are stacked per dense layer as
    ``(K, fan_in, fan_out)`` weight and ``(K, fan_out)`` bias arrays
    (the same layout :class:`~repro.nn.ensemble.MLPEnsemble` trains
    with), plus ``(K, 1)`` target-scaler rows.  A member's slice of a
    stacked array holds exactly the member's own parameters, so the
    per-member forward below runs the same ``x @ W + b`` / ReLU
    arithmetic as :meth:`ANNTransferFunction._predict_scaled` — bitwise,
    which the stack coverage tests assert.

    Members whose architecture or activation differs from the first
    member's fall back to the member model's own forward pass.
    """

    def __init__(self, models: list) -> None:
        super().__init__(models)
        self._fused_cache: dict = {}
        first = models[0]
        self._layer_sizes = first.slope_net.layer_sizes
        self._activation = first.slope_net.activation_name
        self._uniform = np.array(
            [
                m.slope_net.layer_sizes == self._layer_sizes
                and m.delay_net.layer_sizes == self._layer_sizes
                and m.slope_net.activation_name == self._activation
                and m.delay_net.activation_name == self._activation
                and self._activation == "relu"
                for m in models
            ]
        )
        if not self._uniform.any():
            return
        template = [m for m, u in zip(models, self._uniform) if u][0]
        n_layers = len(template.slope_net.dense_layers())

        def stack_net(pick):
            weights, biases = [], []
            for i in range(n_layers):
                weights.append(
                    np.stack(
                        [
                            pick(m).dense_layers()[i].weight
                            if u
                            else np.zeros_like(
                                pick(template).dense_layers()[i].weight
                            )
                            for m, u in zip(models, self._uniform)
                        ]
                    )
                )
                biases.append(
                    np.stack(
                        [
                            pick(m).dense_layers()[i].bias
                            if u
                            else np.zeros_like(
                                pick(template).dense_layers()[i].bias
                            )
                            for m, u in zip(models, self._uniform)
                        ]
                    )
                )
            return weights, biases

        self.slope_weights, self.slope_biases = stack_net(lambda m: m.slope_net)
        self.delay_weights, self.delay_biases = stack_net(lambda m: m.delay_net)
        self.y_slope_means = np.stack([m.y_slope_scaler.mean_ for m in models])
        self.y_slope_stds = np.stack([m.y_slope_scaler.std_ for m in models])
        self.y_delay_means = np.stack([m.y_delay_scaler.mean_ for m in models])
        self.y_delay_stds = np.stack([m.y_delay_scaler.std_ for m in models])

    def _forward_member(
        self,
        member: int,
        scaled: np.ndarray,
        weights: list,
        biases: list,
    ) -> np.ndarray:
        out = scaled
        last = len(weights) - 1
        for i, (weight, bias) in enumerate(zip(weights, biases)):
            out = out @ weight[member] + bias[member]
            if i != last:
                # Match ReLU.forward exactly (np.where, not np.maximum).
                out = np.where(out > 0.0, out, 0.0)
        return out

    def _predict_scaled_member(
        self, member: int, scaled: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        if not self._uniform[member]:
            return self.models[member]._predict_scaled(scaled)
        slope = self._forward_member(
            member, scaled, self.slope_weights, self.slope_biases
        )
        delay = self._forward_member(
            member, scaled, self.delay_weights, self.delay_biases
        )
        slope = (slope * self.y_slope_stds[member] + self.y_slope_means[member])[:, 0]
        delay = (delay * self.y_delay_stds[member] + self.y_delay_means[member])[:, 0]
        return slope, delay

    def fused_evaluator(self, target=None):
        """One-call all-members evaluator (see the base-class contract).

        Both nets of every member are concatenated along the member
        axis — slope members ``0..K-1``, delay members ``K..2K-1`` — so
        each query row becomes two gathered rows and the whole stack
        answers with ``n_layers`` target ``matmul_gather`` calls.
        Region containment runs on a single merged KD-tree
        (:class:`~repro.core.valid_region.MergedKNNRegions`) whose
        decisions are bitwise-identical to the per-member trees.
        Returns ``None`` when any member is architecture-non-uniform or
        its region is not mergeable — callers fall back to
        :meth:`predict_members`.
        """
        from repro.core.targets import resolve_target

        target = resolve_target(target)
        if target.name in self._fused_cache:
            return self._fused_cache[target.name]
        evaluate = None
        merged = (
            MergedKNNRegions.try_build([m.region for m in self.models])
            if self._uniform.all()
            else None
        )
        if merged is not None:
            evaluate = self._build_fused(target, merged)
        self._fused_cache[target.name] = evaluate
        return evaluate

    def _build_fused(self, target, merged):
        n_members = self.n_members
        n_layers = len(self.slope_weights)
        last = n_layers - 1
        weights = [
            np.ascontiguousarray(
                np.concatenate([self.slope_weights[i], self.delay_weights[i]])
            )
            for i in range(n_layers)
        ]
        biases = [
            np.ascontiguousarray(
                np.concatenate([self.slope_biases[i], self.delay_biases[i]])
            )
            for i in range(n_layers)
        ]
        y_means = np.concatenate(
            [self.y_slope_means[:, 0], self.y_delay_means[:, 0]]
        )
        y_stds = np.concatenate(
            [self.y_slope_stds[:, 0], self.y_delay_stds[:, 0]]
        )
        scaler_means = self.scaler_means
        inv_scaler_stds = 1.0 / self.scaler_stds

        def evaluate(features, members):
            n = features.shape[0]
            finite = np.isfinite(features).all(axis=1)
            all_finite = bool(finite.all())
            rows = features if all_finite else np.where(finite[:, None], features, 0.0)
            rows = merged.project(rows, members)
            scaled = (rows - scaler_means[members]) * inv_scaler_stds[members]
            out = np.concatenate([scaled, scaled], axis=0)
            two = np.concatenate([members, members + n_members])
            for i in range(n_layers):
                out = target.matmul_gather(out, weights[i], biases[i], two)
                if i != last:
                    out = np.where(out > 0.0, out, 0.0)
            values = out[:, 0] * y_stds[two] + y_means[two]
            a_out = values[:n]
            delta_b = values[n:]
            if not all_finite:
                a_out = np.where(finite, a_out, np.nan)
                delta_b = np.where(finite, delta_b, np.nan)
            return a_out, delta_b

        return evaluate


@register_backend("ann")
class ANNTransferFunction(ScaledTransferModel):
    """One polarity's ``F_G``: slope net + delay net + scalers + region."""

    def __init__(
        self,
        slope_net: MLP,
        delay_net: MLP,
        x_scaler: StandardScaler,
        y_slope_scaler: StandardScaler,
        y_delay_scaler: StandardScaler,
        region=None,
    ) -> None:
        if slope_net.n_inputs != 3 or delay_net.n_inputs != 3:
            raise ModelError("TOM transfer networks take 3 features")
        if slope_net.n_outputs != 1 or delay_net.n_outputs != 1:
            raise ModelError("TOM transfer networks emit 1 target each")
        super().__init__(x_scaler, region)
        self.slope_net = slope_net
        self.delay_net = delay_net
        self.y_slope_scaler = y_slope_scaler
        self.y_delay_scaler = y_delay_scaler

    # ------------------------------------------------------------------
    def _predict_scaled(
        self, scaled: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        slope = self.y_slope_scaler.inverse_transform(
            self.slope_net.forward(scaled)
        )[:, 0]
        delay = self.y_delay_scaler.inverse_transform(
            self.delay_net.forward(scaled)
        )[:, 0]
        return slope, delay

    @classmethod
    def stack(cls, models: list) -> ANNStackedTransfer:
        """Stack ANN members as ``(K, fan_in, fan_out)`` parameter views."""
        return ANNStackedTransfer(models)

    # ------------------------------------------------------------------
    @classmethod
    def from_training_data(
        cls,
        features: np.ndarray,
        slopes: np.ndarray,
        delays: np.ndarray,
        *,
        region_kind: str = "knn",
        config=None,
        seed: int = 0,
    ) -> "ANNTransferFunction":
        """Train one polarity's slope+delay networks on raw (unscaled) data.

        The two networks train as a two-member vectorized ensemble with
        the exact splits/batch order of two serial
        :func:`~repro.nn.training.train_mlp` calls.
        """
        model, _histories = cls.fit(
            features,
            slopes,
            delays,
            region_kind=region_kind,
            config=config,
            seed=seed,
        )
        return model

    @classmethod
    def fit(
        cls,
        features: np.ndarray,
        slopes: np.ndarray,
        delays: np.ndarray,
        *,
        region_kind: str = "knn",
        config=None,
        seed: int = 0,
    ):
        """Like :meth:`from_training_data` but also returns the histories."""
        from repro.nn.training import TrainingConfig

        if config is None:
            config = TrainingConfig(seed=seed)
        prep = prepare_channel_arrays(features, slopes, delays)
        slope_seed, delay_seed = ann_init_seeds(seed)
        ensemble = MLPEnsemble(
            PAPER_LAYER_SIZES,
            2,
            rngs=[
                np.random.default_rng(slope_seed),
                np.random.default_rng(delay_seed),
            ],
        )
        histories = train_ensemble(
            ensemble,
            [prep["x"], prep["x"]],
            [prep["y_slope"], prep["y_delay"]],
            [config, config],
        )
        model = cls(
            slope_net=ensemble.member(0),
            delay_net=ensemble.member(1),
            x_scaler=prep["x_scaler"],
            y_slope_scaler=prep["y_slope_scaler"],
            y_delay_scaler=prep["y_delay_scaler"],
            region=build_region(prep["features"], region_kind),
        )
        return model, {"slope": histories[0], "delay": histories[1]}

    # ------------------------------------------------------------------
    def _payload_dict(self) -> dict:
        return {
            "slope_net": mlp_to_dict(self.slope_net),
            "delay_net": mlp_to_dict(self.delay_net),
            "y_slope_scaler": self.y_slope_scaler.to_dict(),
            "y_delay_scaler": self.y_delay_scaler.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ANNTransferFunction":
        x_scaler, region = cls._common_from_dict(data)
        return cls(
            slope_net=mlp_from_dict(data["slope_net"]),
            delay_net=mlp_from_dict(data["delay_net"]),
            x_scaler=x_scaler,
            y_slope_scaler=StandardScaler.from_dict(data["y_slope_scaler"]),
            y_delay_scaler=StandardScaler.from_dict(data["y_delay_scaler"]),
            region=region,
        )


class GateModel:
    """Transfer functions of one gate input channel.

    Identified by cell type, input pin and fanout class (the paper uses
    distinct ANNs for NOR gates with fanout 1 and fanout >= 2, Sec. V-A).
    The rise/fall transfer functions may come from any registered backend
    (serialization dispatches through the backend registry).
    """

    def __init__(
        self,
        cell: str,
        pin: int,
        fanout_class: str,
        tf_rise,
        tf_fall,
    ) -> None:
        if fanout_class not in ("fo1", "fo2"):
            raise ModelError("fanout_class must be 'fo1' or 'fo2'")
        self.cell = cell
        self.pin = pin
        self.fanout_class = fanout_class
        self.tf_rise = tf_rise
        self.tf_fall = tf_fall

    @property
    def key(self) -> tuple[str, int, str]:
        return (self.cell, self.pin, self.fanout_class)

    @property
    def backend(self) -> str:
        """Registry name of the rise transfer function's backend."""
        return getattr(self.tf_rise, "backend_name", "unknown")

    def to_dict(self) -> dict:
        return {
            "cell": self.cell,
            "pin": self.pin,
            "fanout_class": self.fanout_class,
            "tf_rise": backend_to_dict(self.tf_rise),
            "tf_fall": backend_to_dict(self.tf_fall),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GateModel":
        return cls(
            cell=data["cell"],
            pin=int(data["pin"]),
            fanout_class=data["fanout_class"],
            tf_rise=backend_from_dict(data["tf_rise"]),
            tf_fall=backend_from_dict(data["tf_fall"]),
        )
