"""ANN implementation of the TOM transfer functions (Sec. IV).

Each polarity's transfer function is realized by **two** MLPs — one
predicting the output slope ``a_out``, one the output delay
``delta_b = b_out - b_in`` — so a single-input gate needs four ANNs, as in
the paper (Fig. 2).  Each network is the paper's architecture: two hidden
layers of 10 neurons and one of 5, ReLU everywhere (built by
:func:`repro.nn.mlp.paper_architecture`).

Features are standardized; queries are first clamped to the valid region
(Sec. IV-B) before scaling.
"""

from __future__ import annotations

import numpy as np

from repro.core.valid_region import region_from_dict
from repro.errors import ModelError
from repro.nn.io import mlp_from_dict, mlp_to_dict
from repro.nn.mlp import MLP
from repro.nn.scaling import StandardScaler


class ANNTransferFunction:
    """One polarity's ``F_G``: slope net + delay net + scalers + region."""

    def __init__(
        self,
        slope_net: MLP,
        delay_net: MLP,
        x_scaler: StandardScaler,
        y_slope_scaler: StandardScaler,
        y_delay_scaler: StandardScaler,
        region=None,
    ) -> None:
        if slope_net.n_inputs != 3 or delay_net.n_inputs != 3:
            raise ModelError("TOM transfer networks take 3 features")
        if slope_net.n_outputs != 1 or delay_net.n_outputs != 1:
            raise ModelError("TOM transfer networks emit 1 target each")
        self.slope_net = slope_net
        self.delay_net = delay_net
        self.x_scaler = x_scaler
        self.y_slope_scaler = y_slope_scaler
        self.y_delay_scaler = y_delay_scaler
        self.region = region

    # ------------------------------------------------------------------
    def predict_batch(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized prediction for (n, 3) feature rows ``(T, a_prev, a_in)``.

        Returns ``(a_out, delta_b)`` arrays of length n.
        """
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != 3:
            raise ModelError("features must be (n, 3): (T, a_out_prev, a_in)")
        if self.region is not None:
            features = self.region.project(features)
        scaled = self.x_scaler.transform(features)
        slope = self.y_slope_scaler.inverse_transform(
            self.slope_net.forward(scaled)
        )[:, 0]
        delay = self.y_delay_scaler.inverse_transform(
            self.delay_net.forward(scaled)
        )[:, 0]
        return slope, delay

    def predict(self, T: float, a_out_prev: float, a_in: float) -> tuple[float, float]:
        """Scalar convenience wrapper (the :class:`TransferFunction` protocol)."""
        slope, delay = self.predict_batch(np.array([[T, a_out_prev, a_in]]))
        return float(slope[0]), float(delay[0])

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "slope_net": mlp_to_dict(self.slope_net),
            "delay_net": mlp_to_dict(self.delay_net),
            "x_scaler": self.x_scaler.to_dict(),
            "y_slope_scaler": self.y_slope_scaler.to_dict(),
            "y_delay_scaler": self.y_delay_scaler.to_dict(),
            "region": self.region.to_dict() if self.region is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ANNTransferFunction":
        region = data.get("region")
        return cls(
            slope_net=mlp_from_dict(data["slope_net"]),
            delay_net=mlp_from_dict(data["delay_net"]),
            x_scaler=StandardScaler.from_dict(data["x_scaler"]),
            y_slope_scaler=StandardScaler.from_dict(data["y_slope_scaler"]),
            y_delay_scaler=StandardScaler.from_dict(data["y_delay_scaler"]),
            region=region_from_dict(region) if region is not None else None,
        )


class GateModel:
    """Transfer functions of one gate input channel.

    Identified by cell type, input pin and fanout class (the paper uses
    distinct ANNs for NOR gates with fanout 1 and fanout >= 2, Sec. V-A).
    """

    def __init__(
        self,
        cell: str,
        pin: int,
        fanout_class: str,
        tf_rise,
        tf_fall,
    ) -> None:
        if fanout_class not in ("fo1", "fo2"):
            raise ModelError("fanout_class must be 'fo1' or 'fo2'")
        self.cell = cell
        self.pin = pin
        self.fanout_class = fanout_class
        self.tf_rise = tf_rise
        self.tf_fall = tf_fall

    @property
    def key(self) -> tuple[str, int, str]:
        return (self.cell, self.pin, self.fanout_class)

    def to_dict(self) -> dict:
        return {
            "cell": self.cell,
            "pin": self.pin,
            "fanout_class": self.fanout_class,
            "tf_rise": self.tf_rise.to_dict(),
            "tf_fall": self.tf_fall.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GateModel":
        return cls(
            cell=data["cell"],
            pin=int(data["pin"]),
            fanout_class=data["fanout_class"],
            tf_rise=ANNTransferFunction.from_dict(data["tf_rise"]),
            tf_fall=ANNTransferFunction.from_dict(data["tf_fall"]),
        )
