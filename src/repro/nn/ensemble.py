"""Vectorized training of many structurally-identical MLPs at once.

The characterization pipeline trains a zoo of identical 3-10-10-5-1
networks (gate class x pin x fanout class x polarity x {slope, delay}).
Training them one :func:`~repro.nn.training.train_mlp` call at a time is
overhead-bound: every minibatch step of every network pays dozens of
numpy dispatches on tiny matrices.  :class:`MLPEnsemble` stacks the K
networks' parameters as ``(K, fan_in, fan_out)`` arrays (views into one
flat parameter vector) so one stacked matmul per layer covers the whole
zoo, and :func:`train_ensemble` runs the full minibatch/early-stopping
loop for all members in a single vectorized sweep with per-member
stopping masks.

Bitwise equivalence with the looped path is a design requirement, not an
accident, and the kernels are chosen for it:

* every minibatch runs through stacked ``np.matmul`` on identical
  shapes in both paths: batches are zero-padded to the shared
  ``batch_size`` (the looped path pads its last partial batch the same
  way, and exact-zero gradient rows leave the sums untouched), and a
  member's slice of a stacked matmul equals the same matmul run with
  ``K = 1`` — asserted by the test suite on this platform;
* the per-epoch train/validation losses are evaluated on exact-length
  row slices, grouped by identical row counts — summation length
  changes accumulation grouping, so ragged reductions are never
  compared against padded ones;
* the optimizer state lives in flat per-element buffers whose updates
  are purely elementwise, which is shape-independent by construction;
* :func:`~repro.nn.training.train_mlp` itself delegates here with
  ``K = 1``, so "looped" and "vectorized" training share every kernel.

``tests/test_ensemble_training.py`` asserts the equivalence exactly
(``==`` on loss histories, ``np.array_equal`` on weights) and
``benchmarks/test_bench_training_speed.py`` records the speedup ledger.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.data import train_val_split
from repro.nn.initializers import get_initializer
from repro.nn.mlp import MLP


def _stacked_forward(
    x: np.ndarray,
    weights: Sequence[np.ndarray],
    biases: Sequence[np.ndarray],
    activation: str,
    cache: list[np.ndarray] | None = None,
) -> np.ndarray:
    """Forward pass over ``(K, batch, features)`` with optional caching.

    ``cache`` (when given) receives, per dense layer, the layer input and
    — for hidden layers — the activation state needed by backward.
    """
    h = x
    last = len(weights) - 1
    for i, (weight, bias) in enumerate(zip(weights, biases)):
        if cache is not None:
            cache.append(h)
        h = np.matmul(h, weight)
        h += bias[:, None, :]
        if i != last:
            if activation == "relu":
                if cache is not None:
                    cache.append(h > 0.0)
                h = np.maximum(h, 0.0)
            elif activation == "tanh":
                h = np.tanh(h)
                if cache is not None:
                    cache.append(h)
            else:  # pragma: no cover - guarded in MLPEnsemble.__init__
                raise ValueError(f"unsupported activation {activation!r}")
    return h


class MLPEnsemble:
    """K identical-architecture MLPs with stacked parameters.

    Parameters
    ----------
    layer_sizes:
        Feature counts including input and output, shared by all members.
    n_members:
        Ensemble size K.
    activation:
        Hidden activation (``relu``/``tanh``); output is linear.
    rngs:
        One seeded generator per member.  Each member's parameters are
        drawn in exactly the order :class:`~repro.nn.mlp.MLP` draws them,
        so ``member(k)`` is bitwise-identical to ``MLP(layer_sizes,
        rng=rngs[k])``.

    Parameters and gradients are stored as views into flat vectors
    (``flat_params`` / ``flat_grads``) so optimizers can update the whole
    zoo with a handful of elementwise operations; ``flat_member_map``
    maps every flat slot to its owning member.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        n_members: int,
        activation: str = "relu",
        rngs: Sequence[np.random.Generator] | None = None,
        init: str = "he_normal",
    ) -> None:
        sizes = list(layer_sizes)
        if len(sizes) < 2:
            raise ValueError("need at least input and output sizes")
        if any(s <= 0 for s in sizes):
            raise ValueError("layer sizes must be positive")
        if n_members < 1:
            raise ValueError("need at least one member")
        if activation not in ("relu", "tanh"):
            raise ValueError("ensemble supports relu/tanh hidden activations")
        if rngs is None:
            rngs = [np.random.default_rng() for _ in range(n_members)]
        if len(rngs) != n_members:
            raise ValueError("need exactly one rng per member")
        self.layer_sizes = sizes
        self.activation_name = activation
        self.n_members = n_members
        self._init_storage()
        initializer = get_initializer(init)
        # Per member, draw layer by layer — the exact MLP.__init__ order —
        # so slices reproduce individually-built networks.
        for k, rng in enumerate(rngs):
            for layer, (fan_in, fan_out) in enumerate(
                zip(sizes[:-1], sizes[1:])
            ):
                self.weights[layer][k] = initializer(rng, fan_in, fan_out)

    def _init_storage(self) -> None:
        sizes = self.layer_sizes
        K = self.n_members
        shapes = [(K, fi, fo) for fi, fo in zip(sizes[:-1], sizes[1:])]
        shapes += [(K, fo) for fo in sizes[1:]]
        total = sum(int(np.prod(shape)) for shape in shapes)
        self.flat_params = np.zeros(total)
        self.flat_grads = np.zeros(total)
        member_map = np.empty(total, dtype=np.intp)
        views_p: list[np.ndarray] = []
        views_g: list[np.ndarray] = []
        offset = 0
        for shape in shapes:
            size = int(np.prod(shape))
            views_p.append(self.flat_params[offset : offset + size].reshape(shape))
            views_g.append(self.flat_grads[offset : offset + size].reshape(shape))
            member_map[offset : offset + size] = np.repeat(
                np.arange(K), size // K
            )
            offset += size
        n_layers = len(sizes) - 1
        self.weights = views_p[:n_layers]
        self.biases = views_p[n_layers:]
        self.grad_weights = views_g[:n_layers]
        self.grad_biases = views_g[n_layers:]
        self.flat_member_map = member_map
        self._cache: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        return self.layer_sizes[0]

    @property
    def n_outputs(self) -> int:
        return self.layer_sizes[-1]

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    def n_parameters(self) -> int:
        """Total trainable scalar count across all members."""
        return self.flat_params.size

    # ------------------------------------------------------------------
    @classmethod
    def from_mlps(cls, models: Sequence[MLP]) -> "MLPEnsemble":
        """Stack existing MLPs (identical architectures) into an ensemble."""
        if not models:
            raise ValueError("need at least one model")
        first = models[0]
        for model in models[1:]:
            if model.layer_sizes != first.layer_sizes:
                raise ValueError("ensemble members must share an architecture")
            if model.activation_name != first.activation_name:
                raise ValueError("ensemble members must share an activation")
        ensemble = cls.__new__(cls)
        ensemble.layer_sizes = list(first.layer_sizes)
        ensemble.activation_name = first.activation_name
        ensemble.n_members = len(models)
        ensemble._init_storage()
        for k, model in enumerate(models):
            for layer, dense in enumerate(model.dense_layers()):
                ensemble.weights[layer][k] = dense.weight
                ensemble.biases[layer][k] = dense.bias
        return ensemble

    def member(self, k: int) -> MLP:
        """Export member ``k`` as a standalone MLP (copied parameters)."""
        model = MLP(
            self.layer_sizes,
            activation=self.activation_name,
            rng=np.random.default_rng(0),
        )
        self.write_member(k, model)
        return model

    def write_member(self, k: int, model: MLP) -> None:
        """Copy member ``k``'s parameters into an existing MLP in place."""
        if model.layer_sizes != self.layer_sizes:
            raise ValueError("architectures differ")
        for layer, weight, bias in zip(
            model.dense_layers(), self.weights, self.biases
        ):
            layer.weight[...] = weight[k]
            layer.bias[...] = bias[k]

    def member_params(self, k: int) -> list[tuple[np.ndarray, np.ndarray]]:
        """Member ``k``'s ``(weight, bias)`` pairs (copies), forward order."""
        return [
            (w[k].copy(), b[k].copy())
            for w, b in zip(self.weights, self.biases)
        ]

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run all members on ``(K, batch, n_inputs)``; caches for backward."""
        x = np.asarray(x, dtype=float)
        if x.ndim != 3 or x.shape[0] != self.n_members:
            raise ValueError(
                f"expected (K={self.n_members}, batch, {self.n_inputs}) input"
            )
        if x.shape[2] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input features, got {x.shape[2]}"
            )
        return self._forward_train(x)

    def _forward_train(self, x: np.ndarray) -> np.ndarray:
        """Validation-free forward with caching (training hot path)."""
        self._cache = []
        return _stacked_forward(
            x, self.weights, self.biases, self.activation_name, self._cache
        )

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass without caching intermediates."""
        x = np.asarray(x, dtype=float)
        return _stacked_forward(
            x, self.weights, self.biases, self.activation_name, None
        )

    def backward(self, grad_out: np.ndarray) -> None:
        """Backpropagate ``(K, batch, n_outputs)`` loss gradients.

        Overwrites ``grad_weights`` / ``grad_biases`` (views into
        ``flat_grads``).  Gradients w.r.t. the network inputs are not
        materialized — training does not consume them.
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        grad = np.asarray(grad_out, dtype=float)
        cache = self._cache
        pos = len(cache)
        for layer in range(self.n_layers - 1, -1, -1):
            if layer != self.n_layers - 1:
                # Undo the hidden activation that followed this dense layer.
                pos -= 1
                if self.activation_name == "relu":
                    grad = np.multiply(grad, cache[pos], out=grad)
                else:  # tanh: cache holds the activation output
                    grad = grad * (1.0 - cache[pos] ** 2)
            pos -= 1
            x_in = cache[pos]
            np.matmul(
                np.swapaxes(x_in, 1, 2), grad, out=self.grad_weights[layer]
            )
            np.einsum("kbo->ko", grad, out=self.grad_biases[layer])
            if layer != 0:
                weight = self.weights[layer]
                if weight.shape[2] == 1:
                    # Contraction over a single element is a plain product
                    # (bitwise-identical to the k=1 GEMM); the broadcast
                    # multiply skips the per-slice GEMM loop.
                    grad = grad * weight[:, None, :, 0]
                else:
                    grad = np.matmul(grad, np.swapaxes(weight, 1, 2))

    def zero_grad(self) -> None:
        self.flat_grads[...] = 0.0


class EnsembleAdam:
    """Adam generalized to stacked parameters with per-member step masks.

    The update arithmetic mirrors :class:`~repro.nn.optim.Adam` operation
    by operation, applied to the ensemble's flat parameter vector;
    masked members keep their parameters, moments and step counters
    untouched, exactly as if their loop had already exited.
    """

    def __init__(
        self,
        ensemble: MLPEnsemble,
        lr: float | np.ndarray = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        lr = np.broadcast_to(
            np.asarray(lr, dtype=float), (ensemble.n_members,)
        ).copy()
        if np.any(lr <= 0):
            raise ValueError("learning rate must be positive")
        self.ensemble = ensemble
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._lr_flat = lr[ensemble.flat_member_map]
        self._t = np.zeros(ensemble.n_members, dtype=np.int64)
        self._m = np.zeros_like(ensemble.flat_params)
        self._v = np.zeros_like(ensemble.flat_params)

    def step(self, step_mask: np.ndarray | None = None) -> None:
        """Apply one Adam step to every member selected by ``step_mask``."""
        ensemble = self.ensemble
        if step_mask is None:
            step_mask = np.ones(ensemble.n_members, dtype=bool)
        step_mask = np.asarray(step_mask, dtype=bool)
        if not step_mask.any():
            return
        all_step = bool(step_mask.all())
        self._t = np.where(step_mask, self._t + 1, self._t)
        t = self._t.astype(float)
        # Members that have never stepped keep a harmless divisor of 1.
        correction1 = np.where(self._t > 0, 1.0 - self.beta1**t, 1.0)
        correction2 = np.where(self._t > 0, 1.0 - self.beta2**t, 1.0)
        member_map = ensemble.flat_member_map
        grad = ensemble.flat_grads
        if all_step:
            # The moment buffers are updated in place; `a*m + c*g` is
            # evaluated in the same operation order either way.
            m_new = self._m
            m_new *= self.beta1
            m_new += (1.0 - self.beta1) * grad
            v_new = self._v
            v_new *= self.beta2
            v_new += (1.0 - self.beta2) * grad**2
        else:
            m_new = self.beta1 * self._m + (1.0 - self.beta1) * grad
            v_new = self.beta2 * self._v + (1.0 - self.beta2) * grad**2
        m_hat = m_new / correction1[member_map]
        v_hat = v_new / correction2[member_map]
        update = self._lr_flat * m_hat / (np.sqrt(v_hat) + self.eps)
        if all_step:
            ensemble.flat_params -= update
        else:
            mask = step_mask[member_map]
            params = ensemble.flat_params
            params[...] = np.where(mask, params - update, params)
            self._m = np.where(mask, m_new, self._m)
            self._v = np.where(mask, v_new, self._v)

    def zero_grad(self) -> None:
        self.ensemble.zero_grad()


def _round_up(n: int, multiple: int) -> int:
    return -(-n // multiple) * multiple


def _length_groups(
    lengths: np.ndarray, multiple: int
) -> list[tuple[int, np.ndarray]]:
    """Group member indices by padded row count (zero rows dropped).

    Row counts are rounded up to a multiple of the batch size; the pad
    target depends only on the member's own data, so a ``K = 1`` run
    computes the same padded shape as the member's slot in a zoo run.
    """
    by_length: dict[int, list[int]] = {}
    for k, n in enumerate(lengths):
        if n > 0:
            by_length.setdefault(_round_up(int(n), multiple), []).append(k)
    return [
        (n, np.asarray(idx, dtype=np.intp))
        for n, idx in sorted(by_length.items())
    ]


def member_mse_losses(
    ensemble: MLPEnsemble,
    x: np.ndarray,
    y: np.ndarray,
    lengths: np.ndarray,
    counts: np.ndarray,
    groups: list[tuple[int, np.ndarray]],
) -> np.ndarray:
    """Per-member full-set MSE with canonically-padded stacked forwards.

    Members sharing a *padded* row count (their exact count rounded up
    to the batch size) run through one stacked forward; a slice of a
    stacked matmul equals its ``K = 1`` twin, and both paths forward the
    identical padded shape, so the padded garbage rows affect neither.
    Each member's loss reduction then runs over exactly its own rows —
    never over padding, since summation length changes accumulation
    grouping.  The result is bitwise-identical to evaluating every
    member alone through this same function.
    """
    out = np.zeros(ensemble.n_members)
    for padded_n, idx in groups:
        pred = _stacked_forward(
            x[idx, :padded_n],
            [w[idx] for w in ensemble.weights],
            [b[idx] for b in ensemble.biases],
            ensemble.activation_name,
        )
        diff = pred - y[idx, :padded_n]
        np.multiply(diff, diff, out=diff)
        for j, k in enumerate(idx):
            out[k] = np.einsum("bo->", diff[j, : lengths[k]]) / counts[k]
    return out


def masked_mse_grad(
    pred: np.ndarray,
    target: np.ndarray,
    mask: np.ndarray | None,
    counts: np.ndarray,
) -> np.ndarray:
    """Per-member MSE gradient w.r.t. ``pred`` (padded rows: exact 0).

    ``mask=None`` marks a batch with no padded rows — the common case —
    and skips the select.
    """
    grad = 2.0 * (pred - target) / counts[:, None, None]
    if mask is None:
        return grad
    return np.where(mask, grad, 0.0)


def _pad_stack(
    arrays: list[np.ndarray], width: int, multiple: int = 1
) -> np.ndarray:
    """Stack ragged ``(n_k, width)`` arrays into ``(K, max_n, width)``.

    ``max_n`` is rounded up to ``multiple`` so the canonically-padded
    evaluation slices (see :func:`member_mse_losses`) stay in bounds.
    """
    max_n = max((a.shape[0] for a in arrays), default=0)
    max_n = _round_up(max(max_n, 1), multiple)
    out = np.zeros((len(arrays), max_n, width))
    for k, array in enumerate(arrays):
        out[k, : array.shape[0]] = array
    return out


def _row_mask(lengths: np.ndarray, max_n: int) -> np.ndarray:
    """(K, max_n, 1) boolean mask selecting each member's real rows."""
    return (np.arange(max_n)[None, :] < lengths[:, None])[:, :, None]


def train_ensemble(
    ensemble: MLPEnsemble,
    xs: Sequence[np.ndarray],
    ys: Sequence[np.ndarray],
    configs,
) -> list:
    """Train every ensemble member on its own dataset in one loop.

    Parameters
    ----------
    ensemble:
        The stacked networks; trained in place and restored, per member,
        to the parameters of that member's best validation epoch.
    xs / ys:
        Per-member feature/target matrices (already scaled).  Members may
        have different row counts; features and targets must match the
        ensemble's input/output widths.
    configs:
        One :class:`~repro.nn.training.TrainingConfig` per member (or a
        single config shared by all).  Seeds, epochs, patience, learning
        rates and validation fractions may differ per member; the batch
        size must be shared — it defines the lock-step minibatch grid.

    Returns one :class:`~repro.nn.training.TrainingHistory` per member,
    bitwise-identical to running :func:`~repro.nn.training.train_mlp`
    member by member.
    """
    from repro.nn.training import TrainingConfig, TrainingHistory

    K = ensemble.n_members
    if isinstance(configs, TrainingConfig):
        configs = [configs] * K
    configs = list(configs)
    if len(xs) != K or len(ys) != K or len(configs) != K:
        raise ValueError("need exactly one dataset and config per member")
    batch_size = configs[0].batch_size
    if any(c.batch_size != batch_size for c in configs):
        raise ValueError("all members must share one batch size")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")

    xs = [np.atleast_2d(np.asarray(x, dtype=float)) for x in xs]
    ys = [np.atleast_2d(np.asarray(y, dtype=float)) for y in ys]
    for x, y in zip(xs, ys):
        if x.shape[0] == 0:
            raise ValueError("cannot train on an empty dataset")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y row counts differ")
        if x.shape[1] != ensemble.n_inputs:
            raise ValueError(
                f"expected {ensemble.n_inputs} input features, got {x.shape[1]}"
            )
        if y.shape[1] != ensemble.n_outputs:
            raise ValueError(
                f"expected {ensemble.n_outputs} targets, got {y.shape[1]}"
            )

    # Per-member split, exactly as train_mlp performs it: one generator
    # seeded from the member's config drives both the split and the
    # minibatch shuffles.
    rngs = [np.random.default_rng(c.seed) for c in configs]
    x_train_list, y_train_list, x_val_list, y_val_list = [], [], [], []
    for x, y, config, rng in zip(xs, ys, configs, rngs):
        x_tr, y_tr, x_va, y_va = train_val_split(
            x, y, val_fraction=config.val_fraction, rng=rng
        )
        if x_tr.shape[0] == 0:
            # Degenerate split (tiny dataset): train on everything.
            x_tr, y_tr = x, y
            x_va = np.empty((0, x.shape[1]))
            y_va = np.empty((0, y.shape[1]))
        x_train_list.append(x_tr)
        y_train_list.append(y_tr)
        x_val_list.append(x_va)
        y_val_list.append(y_va)

    n_train = np.array([x.shape[0] for x in x_train_list], dtype=np.int64)
    n_val = np.array([x.shape[0] for x in x_val_list], dtype=np.int64)
    has_val = n_val > 0
    n_out = ensemble.n_outputs

    x_train = _pad_stack(x_train_list, ensemble.n_inputs, batch_size)
    y_train = _pad_stack(y_train_list, n_out, batch_size)
    x_val = _pad_stack(x_val_list, ensemble.n_inputs, batch_size)
    y_val = _pad_stack(y_val_list, n_out, batch_size)
    train_counts = (n_train * n_out).astype(float)
    # Members without a validation split never read their val loss; a
    # dummy divisor of 1 keeps the evaluation finite.
    val_counts = np.where(has_val, n_val * n_out, 1).astype(float)

    optimizer = EnsembleAdam(
        ensemble, lr=np.array([c.learning_rate for c in configs])
    )
    epochs = np.array([c.epochs for c in configs], dtype=np.int64)
    patience = np.array([c.patience for c in configs], dtype=np.int64)
    min_delta = np.array([c.min_delta for c in configs], dtype=float)

    histories = [TrainingHistory() for _ in range(K)]
    best_flat = ensemble.flat_params.copy()
    best_val = np.full(K, np.inf)
    best_epoch = np.full(K, -1, dtype=np.int64)
    since_best = np.zeros(K, dtype=np.int64)
    stopped = np.zeros(K, dtype=bool)

    k_col = np.arange(K)[:, None]
    steps_per_epoch = -(-n_train // batch_size)  # ceil
    train_groups = _length_groups(n_train, batch_size)
    val_groups = _length_groups(n_val, batch_size)

    for epoch in range(int(epochs.max(initial=0))):
        active = ~stopped & (epoch < epochs)
        if not active.any():
            break
        # Each active member draws its own epoch permutation from its own
        # generator — the same draw its looped twin would make.  The
        # permutations land in one zero-padded index matrix so every
        # lock-step batch is a plain column slice.
        n_steps = int(steps_per_epoch[active].max())
        perm_pad = np.zeros((K, n_steps * batch_size), dtype=np.int64)
        for k in np.nonzero(active)[0]:
            perm_pad[k, : n_train[k]] = rngs[k].permutation(int(n_train[k]))
        # One gather covers the whole epoch; each lock-step batch is a
        # view.  Per-step masks/counts are precomputed in one sweep.
        xb_all = x_train[k_col, perm_pad]
        yb_all = y_train[k_col, perm_pad]
        starts = np.arange(n_steps) * batch_size
        step_masks = active[None, :] & (starts[:, None] < n_train[None, :])
        rows_all = np.where(
            step_masks,
            np.clip(n_train[None, :] - starts[:, None], 0, batch_size),
            0,
        )
        counts_all = np.where(step_masks, rows_all * n_out, 1).astype(float)
        for step in range(n_steps):
            start = starts[step]
            stepping = step_masks[step]
            rows = rows_all[step]
            # Padded batch rows must carry exact-zero gradients; members
            # not stepping at all are masked out inside the optimizer, so
            # the row mask is only needed when a stepping member has a
            # partial batch.
            if (rows[stepping] == batch_size).all():
                batch_mask = None
            else:
                batch_mask = _row_mask(rows, batch_size)
            pred = ensemble._forward_train(
                xb_all[:, start : start + batch_size]
            )
            grad = masked_mse_grad(
                pred,
                yb_all[:, start : start + batch_size],
                batch_mask,
                counts_all[step],
            )
            ensemble.backward(grad)
            optimizer.step(stepping)

        train_loss = member_mse_losses(
            ensemble, x_train, y_train, n_train, train_counts, train_groups
        )
        val_loss = np.where(
            has_val,
            member_mse_losses(
                ensemble, x_val, y_val, n_val, val_counts, val_groups
            ),
            train_loss,
        )
        for k in np.nonzero(active)[0]:
            histories[k].train_loss.append(float(train_loss[k]))
            histories[k].val_loss.append(float(val_loss[k]))

        improved = active & (val_loss < best_val - min_delta)
        if improved.any():
            best_val = np.where(improved, val_loss, best_val)
            best_epoch = np.where(improved, epoch, best_epoch)
            sel = improved[ensemble.flat_member_map]
            best_flat = np.where(sel, ensemble.flat_params, best_flat)
        since_best = np.where(
            improved, 0, np.where(active, since_best + 1, since_best)
        )
        newly_stopped = active & ~improved & (since_best >= patience)
        for k in np.nonzero(newly_stopped)[0]:
            histories[k].stopped_early = True
        stopped |= newly_stopped

    ensemble.flat_params[...] = best_flat
    for k in range(K):
        histories[k].best_val_loss = float(best_val[k])
        histories[k].best_epoch = int(best_epoch[k])
    return histories
