"""Weight initialization schemes.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is reproducible end-to-end.
"""

from __future__ import annotations

import numpy as np


def he_normal(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He (Kaiming) normal initialization, the standard choice for ReLU nets.

    Weights are drawn from ``N(0, sqrt(2 / fan_in))`` which keeps the
    forward-pass variance roughly constant through ReLU layers.
    """
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh/linear layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


INITIALIZERS = {
    "he_normal": he_normal,
    "xavier_uniform": xavier_uniform,
}


def get_initializer(name: str):
    """Look up an initializer by name, raising ``KeyError`` with options."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        options = ", ".join(sorted(INITIALIZERS))
        raise KeyError(f"unknown initializer {name!r}; options: {options}") from None
