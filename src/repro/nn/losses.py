"""Loss functions and their gradients for regression training."""

from __future__ import annotations

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error over every element of the batch."""
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return float(np.mean((pred - target) ** 2))


def mse_loss_grad(pred: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Gradient of :func:`mse_loss` with respect to ``pred``."""
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return 2.0 * (pred - target) / pred.size


def mae_loss(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean absolute error, reported as a robust validation metric."""
    pred = np.asarray(pred, dtype=float)
    target = np.asarray(target, dtype=float)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return float(np.mean(np.abs(pred - target)))
