"""Optimizers operating on the parameter dictionaries exposed by layers."""

from __future__ import annotations

import numpy as np

from repro.nn.mlp import MLP


class Optimizer:
    """Base optimizer bound to one model's trainable layers."""

    def __init__(self, model: MLP) -> None:
        self.model = model

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset accumulated gradients on all dense layers."""
        for layer in self.model.dense_layers():
            layer.grad_weight[...] = 0.0
            layer.grad_bias[...] = 0.0


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, model: MLP, lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(model)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [
            (np.zeros_like(layer.weight), np.zeros_like(layer.bias))
            for layer in model.dense_layers()
        ]

    def step(self) -> None:
        for layer, (vel_w, vel_b) in zip(self.model.dense_layers(), self._velocity):
            vel_w *= self.momentum
            vel_w -= self.lr * layer.grad_weight
            vel_b *= self.momentum
            vel_b -= self.lr * layer.grad_bias
            layer.weight += vel_w
            layer.bias += vel_b


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias-corrected moment estimates."""

    def __init__(
        self,
        model: MLP,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(model)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._t = 0
        self._m = [
            (np.zeros_like(layer.weight), np.zeros_like(layer.bias))
            for layer in model.dense_layers()
        ]
        self._v = [
            (np.zeros_like(layer.weight), np.zeros_like(layer.bias))
            for layer in model.dense_layers()
        ]

    def step(self) -> None:
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for layer, (m_w, m_b), (v_w, v_b) in zip(
            self.model.dense_layers(), self._m, self._v
        ):
            for param, grad, m, v in (
                (layer.weight, layer.grad_weight, m_w, v_w),
                (layer.bias, layer.grad_bias, m_b, v_b),
            ):
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad**2
                m_hat = m / correction1
                v_hat = v / correction2
                param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
