"""Training loop with minibatching, validation tracking and early stopping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.data import minibatches, train_val_split
from repro.nn.losses import mse_loss, mse_loss_grad
from repro.nn.mlp import MLP
from repro.nn.optim import Adam


@dataclass
class TrainingConfig:
    """Hyperparameters for :func:`train_mlp`.

    The defaults train one of the paper's 3-10-10-5-1 networks to
    convergence on a characterization dataset in a few seconds.
    """

    epochs: int = 400
    batch_size: int = 64
    learning_rate: float = 3e-3
    val_fraction: float = 0.15
    patience: int = 60
    min_delta: float = 1e-6
    seed: int = 0


@dataclass
class TrainingHistory:
    """Loss trajectory and early-stopping outcome of one training run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_loss: float = float("inf")
    stopped_early: bool = False

    @property
    def epochs_run(self) -> int:
        return len(self.train_loss)


def train_mlp(
    model: MLP,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainingConfig | None = None,
) -> TrainingHistory:
    """Train ``model`` in place on ``(x, y)`` with Adam + early stopping.

    Inputs are assumed to be already scaled (see
    :class:`~repro.nn.scaling.StandardScaler`).  The model is restored to
    the parameters of the best validation epoch before returning.  When the
    dataset is too small for a validation split the training loss is used
    for model selection instead.
    """
    if config is None:
        config = TrainingConfig()
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.atleast_2d(np.asarray(y, dtype=float))
    if x.shape[0] == 0:
        raise ValueError("cannot train on an empty dataset")
    if x.shape[0] != y.shape[0]:
        raise ValueError("x and y row counts differ")

    rng = np.random.default_rng(config.seed)
    x_train, y_train, x_val, y_val = train_val_split(
        x, y, val_fraction=config.val_fraction, rng=rng
    )
    if x_train.shape[0] == 0:
        # Degenerate split (tiny dataset): train on everything.
        x_train, y_train = x, y
        x_val = np.empty((0, x.shape[1]))
        y_val = np.empty((0, y.shape[1]))
    has_val = x_val.shape[0] > 0

    optimizer = Adam(model, lr=config.learning_rate)
    history = TrainingHistory()
    best_snapshot = _snapshot(model)
    epochs_since_best = 0

    for epoch in range(config.epochs):
        for xb, yb in minibatches(x_train, y_train, config.batch_size, rng):
            pred = model.forward(xb)
            grad = mse_loss_grad(pred, yb)
            optimizer.zero_grad()
            model.backward(grad)
            optimizer.step()

        train_loss = mse_loss(model.forward(x_train), y_train)
        history.train_loss.append(train_loss)
        if has_val:
            val_loss = mse_loss(model.forward(x_val), y_val)
        else:
            val_loss = train_loss
        history.val_loss.append(val_loss)

        if val_loss < history.best_val_loss - config.min_delta:
            history.best_val_loss = val_loss
            history.best_epoch = epoch
            best_snapshot = _snapshot(model)
            epochs_since_best = 0
        else:
            epochs_since_best += 1
            if epochs_since_best >= config.patience:
                history.stopped_early = True
                break

    _restore(model, best_snapshot)
    return history


def _snapshot(model: MLP) -> list[tuple[np.ndarray, np.ndarray]]:
    return [
        (layer.weight.copy(), layer.bias.copy()) for layer in model.dense_layers()
    ]


def _restore(model: MLP, snapshot: list[tuple[np.ndarray, np.ndarray]]) -> None:
    for layer, (weight, bias) in zip(model.dense_layers(), snapshot):
        layer.weight[...] = weight
        layer.bias[...] = bias
